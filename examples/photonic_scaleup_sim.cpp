// Event-driven simulation of a collective on a photonic scale-up domain:
// executes the optimized, static and naive-BvN schedules on the flow-level
// simulator, prints per-step timelines, and cross-checks the analytic model.
//
// Usage: photonic_scaleup_sim [n] [message_mib] [alpha_r_us]
#include <cstdio>
#include <cstdlib>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/sim/flow_sim.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main(int argc, char** argv) {
  using namespace psd;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double m_mib = argc > 2 ? std::atof(argv[2]) : 16.0;
  const double ar_us = argc > 3 ? std::atof(argv[3]) : 10.0;

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(ar_us);
  params.b = gbps(800);

  const auto sched = collective::alltoall_transpose(n, mib(m_mib));
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);
  const auto plans = planner.plan(sched);

  sim::SimConfig cfg;
  cfg.params = params;
  sim::FlowLevelSimulator simulator(topo::directed_ring(n, gbps(800)),
                                    topo::Matching::rotation(n, 1), cfg);

  std::printf("All-to-All on n=%d GPUs, M=%s, alpha_r=%s (event-driven "
              "flow-level simulation)\n\n",
              n, to_string(mib(m_mib)).c_str(),
              to_string(params.alpha_r).c_str());

  struct Run {
    const char* name;
    const core::ReconfigPlan* plan;
  };
  const Run runs[] = {{"OPT", &plans.optimal},
                      {"static ring", &plans.static_base},
                      {"naive BvN", &plans.naive_bvn}};

  TextTable summary;
  summary.set_header({"schedule", "sim completion", "model prediction",
                      "reconfigs", "sim/model"});
  for (const auto& run : runs) {
    const auto res = simulator.run(sched, *run.plan);
    summary.add_row(
        {run.name, to_string(res.completion_time),
         to_string(run.plan->total_time()),
         std::to_string(res.reconfigurations),
         fmt_double(res.completion_time / run.plan->total_time(), 6)});
  }
  std::fputs(summary.render().c_str(), stdout);

  // Per-step timeline of the optimized schedule.
  const auto res = simulator.run(sched, plans.optimal);
  std::printf("\nOPT timeline (first 12 steps):\n");
  TextTable timeline;
  timeline.set_header({"step", "topology", "start", "comm start", "end",
                       "theta", "max hops", "max link util"});
  for (const auto& st : res.steps) {
    if (st.step >= 12) break;
    timeline.add_row({std::to_string(st.step),
                      st.choice == core::TopoChoice::kMatched ? "matched" : "ring",
                      to_string(st.start), to_string(st.comm_start),
                      to_string(st.end), fmt_double(st.theta, 3),
                      std::to_string(st.max_hops),
                      fmt_double(st.max_link_utilization, 2)});
  }
  std::fputs(timeline.render().c_str(), stdout);

  // How would a max-min-fair transport (rather than the model's optimal
  // concurrent-flow allocation) change things?
  sim::SimConfig mm_cfg = cfg;
  mm_cfg.policy = sim::RatePolicy::kMaxMinFair;
  sim::FlowLevelSimulator mm(topo::directed_ring(n, gbps(800)),
                             topo::Matching::rotation(n, 1), mm_cfg);
  const auto mm_res = mm.run(sched, plans.optimal);
  std::printf("\nmax-min-fair transport: %s (%.4fx the model-optimal "
              "allocation), %lld flow re-rating events\n",
              to_string(mm_res.completion_time).c_str(),
              mm_res.completion_time / res.completion_time,
              mm_res.flow_completion_events);
  return 0;
}
