// Multi-tenant sweep: evaluate a whole design-space grid — topologies ×
// node counts × collectives × message sizes × reconfiguration delays — in
// one call, with every planner sharing a single cross-planner θ cache.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_sweep_scenarios
#include <cstdio>

#include "psd/sweep/driver.hpp"

int main() {
  using namespace psd;

  // The grid: 2 topologies x 2 sizes x 3 collectives x 2 message sizes x
  // 2 reconfiguration delays = 48 scenarios (minus invalid combinations).
  sweep::ScenarioGrid grid;
  grid.topologies = {sweep::TopologyKind::kDirectedRing,
                     sweep::TopologyKind::kHypercube};
  grid.node_counts = {8, 16};
  grid.collectives = {
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllReduce,
                            .allreduce = workload::AllReduceAlgo::kSwing},
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllReduce,
                            .allreduce = workload::AllReduceAlgo::kHalvingDoubling},
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllGather},
  };
  grid.message_sizes = {mib(1), mib(32)};
  for (const double alpha_r_ns : {100.0, 10000.0}) {
    core::CostParams p;
    p.alpha = nanoseconds(100);
    p.delta = nanoseconds(100);
    p.alpha_r = nanoseconds(alpha_r_ns);
    p.b = gbps(800);
    grid.cost_params.push_back(p);
  }

  // One θ memo for the whole fleet: scenarios that differ only in message
  // size or α_r ask about identical (topology, matching) pairs, so all but
  // the first tenant per topology run almost entirely on cache hits.
  sweep::SweepOptions options;
  options.shared_cache = sweep::make_shared_theta_cache();

  const auto report = sweep::run_sweep(grid, options);

  std::printf("%s\n", sweep::to_table(report).c_str());
  std::printf("planned %zu scenarios (%zu invalid combinations skipped)\n",
              report.rows.size(), report.skipped);
  std::printf("shared theta cache: %zu hits / %zu misses (hit rate %.3f), "
              "%zu entries\n",
              report.cache.hits, report.cache.misses, report.cache.hit_rate(),
              report.cache.entries);
  return 0;
}
