// Planning the full communication of an LLM training iteration on an
// adaptive photonic scale-up domain, using the workload generators:
// tensor-parallel activation AllReduces, MoE All-to-Alls, and bucketed
// data-parallel gradient sync — then exporting the plan as JSON.
#include <cstdio>

#include "psd/core/planner.hpp"
#include "psd/core/report.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"
#include "psd/workload/workload.hpp"

int main() {
  using namespace psd;
  const int n = 32;

  // A 7B-parameter-class model sharded over the domain: fp16 gradients,
  // 16 MiB of activations per layer crossing the TP group, a couple of MoE
  // layers moving 8 MiB of tokens each way.
  workload::TrainingIterationSpec spec;
  spec.tp = {mib(16), 4};
  spec.moe = {mib(8), 2};
  spec.dp = {gib(1.75), 8};

  const auto requests = workload::training_iteration(spec);
  std::printf("training iteration: %zu collectives, %s per GPU total\n\n",
              requests.size(), to_string(workload::total_bytes(requests)).c_str());

  TextTable reqs;
  reqs.set_header({"#", "collective", "bytes", "tag"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    reqs.add_row({std::to_string(i), workload::to_string(requests[i].kind),
                  to_string(requests[i].size), requests[i].tag});
  }
  std::fputs(reqs.render().c_str(), stdout);

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(10);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  // Compare materialization choices end to end.
  std::printf("\niteration completion time by algorithm choice:\n");
  TextTable table;
  table.set_header({"allreduce", "alltoall", "static", "OPT", "reconfigs",
                    "speedup vs static"});
  for (auto ar : {workload::AllReduceAlgo::kRing,
                  workload::AllReduceAlgo::kHalvingDoubling,
                  workload::AllReduceAlgo::kSwing}) {
    for (auto a2a : {workload::AllToAllAlgo::kTranspose,
                     workload::AllToAllAlgo::kBruck}) {
      workload::MaterializeOptions opts;
      opts.allreduce = ar;
      opts.alltoall = a2a;
      const auto sched = workload::materialize_sequence(requests, n, opts);
      const auto r = planner.plan(sched);
      const char* ar_name =
          ar == workload::AllReduceAlgo::kRing
              ? "ring"
              : (ar == workload::AllReduceAlgo::kHalvingDoubling ? "halving/doubling"
                                                                 : "swing");
      table.add_row({ar_name,
                     a2a == workload::AllToAllAlgo::kTranspose ? "transpose" : "bruck",
                     to_string(r.static_base.total_time()),
                     to_string(r.optimal.total_time()),
                     std::to_string(r.optimal.num_reconfigurations),
                     fmt_double(r.speedup_vs_static(), 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Export the best plan as JSON for downstream tooling.
  workload::MaterializeOptions best;
  best.allreduce = workload::AllReduceAlgo::kSwing;
  const auto sched = workload::materialize_sequence(requests, n, best);
  const auto r = planner.plan(sched);
  const std::string json = core::to_json(r.optimal);
  std::printf("\nJSON export of the optimized plan (first 160 chars):\n%.160s...\n",
              json.c_str());
  return 0;
}
