// Building a custom collective: the framework accepts ANY algorithm that is
// a sequence of matchings (§3.3). This example
//   1. defines a custom recursive-exchange AllReduce from a bespoke peer
//      function and machine-verifies its correctness,
//   2. shows how an invalid peer function is rejected by the partition
//      invariant,
//   3. plans it against the standard algorithms, and
//   4. maps one reconfigured step onto AWGR wavelengths (the paper's
//      controller-free fabric alternative).
#include <cstdio>

#include "psd/collective/executor.hpp"
#include "psd/collective/recursive_exchange.hpp"
#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/photonic/fabric.hpp"
#include "psd/topo/builders.hpp"

int main() {
  using namespace psd;
  const int n = 16;

  // A custom peer function: like halving/doubling but smallest distance
  // first (XOR bit 0 upward). Same volumes, different locality profile.
  const auto lowbit_first = [](int j, int s) { return j ^ (1 << s); };

  const auto custom = collective::recursive_exchange_allreduce(
      "lowbit-first-allreduce", n, mib(16), lowbit_first);
  std::printf("custom collective '%s': %d steps\n", custom.name().c_str(),
              custom.num_steps());

  // Machine-checked semantics: every chunk ends fully reduced everywhere.
  std::printf("semantics verified: %s\n",
              collective::is_valid_allreduce(custom) ? "AllReduce correct"
                                                     : "BROKEN");

  // A peer function that reuses a bit violates the partition invariant and
  // is rejected at construction — you cannot build a wrong AllReduce.
  try {
    (void)collective::recursive_exchange_allreduce(
        "broken", n, mib(16), [](int j, int) { return j ^ 1; });
    std::printf("ERROR: invalid peer function was accepted\n");
  } catch (const InvalidArgument& e) {
    std::printf("invalid peer function rejected as expected:\n  %s\n", e.what());
  }

  // Plan it against the built-ins.
  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(2);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  for (const auto* sched :
       {&custom}) {
    const auto r = planner.plan(*sched);
    std::printf("\n%s: OPT %s (%d reconfigs), static %s, naive BvN %s\n",
                sched->name().c_str(), to_string(r.optimal.total_time()).c_str(),
                r.optimal.num_reconfigurations,
                to_string(r.static_base.total_time()).c_str(),
                to_string(r.naive_bvn.total_time()).c_str());
  }
  const auto swing = collective::swing_allreduce(n, mib(16));
  const auto r_swing = planner.plan(swing);
  std::printf("%s: OPT %s — Swing's ring-local early steps avoid early "
              "reconfigurations\n",
              swing.name().c_str(),
              to_string(r_swing.optimal.total_time()).c_str());

  // Wavelength view: realize the custom collective's first reconfigured
  // step on an AWGR fabric (λ index per source port).
  const auto& m0 = custom.step(custom.num_steps() - 1).matching;
  const auto lambda = photonic::awgr_wavelength_assignment(m0);
  std::printf("\nAWGR wavelength assignment for step %d's matching:\n  ",
              custom.num_steps() - 1);
  for (int j = 0; j < n; ++j) std::printf("p%d:l%d ", j, lambda[static_cast<std::size_t>(j)]);
  std::printf("\n(distinct receivers => contention-free without a central "
              "controller)\n");
  return 0;
}
