// Quickstart: plan a Swing AllReduce on a 16-GPU photonic scale-up domain
// and decide, step by step, when reconfiguring the fabric pays off.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"

int main() {
  using namespace psd;

  // A scale-up domain: 16 GPUs, one 800 Gbps transceiver each, connected by
  // a programmable photonic fabric whose base (fallback) topology is a
  // directed ring.
  const int n = 16;
  core::CostParams params;
  params.alpha = nanoseconds(100);     // per-step startup latency
  params.delta = nanoseconds(100);     // per-hop propagation delay
  params.alpha_r = microseconds(10);   // fabric reconfiguration delay
  params.b = gbps(800);                // transceiver bandwidth

  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  // The collective: bandwidth-optimal Swing AllReduce over a 32 MiB buffer.
  const auto collective = collective::swing_allreduce(n, mib(32));
  std::printf("collective: %s, %d steps, %s per GPU\n",
              collective.name().c_str(), collective.num_steps(),
              to_string(collective.buffer_size()).c_str());

  // Plan: the DP solves the paper's Eq. (7) exactly.
  const auto result = planner.plan(collective);

  std::printf("\nper-step decisions (OPT):\n");
  const auto inst = planner.instance(collective);
  for (int i = 0; i < inst.num_steps(); ++i) {
    const bool matched =
        result.optimal.choice[static_cast<std::size_t>(i)] ==
        core::TopoChoice::kMatched;
    std::printf(
        "  step %2d: m_i=%-8s theta(G,M_i)=%.3f  ell=%d  -> %s\n", i,
        to_string(inst.step(i).volume).c_str(), inst.step(i).theta_base,
        inst.step(i).ell_base, matched ? "RECONFIGURE" : "stay on ring");
  }

  std::printf("\ncompletion time:\n");
  std::printf("  optimized (OPT):     %s\n",
              to_string(result.optimal.total_time()).c_str());
  std::printf("  static ring:         %s   (speedup %.2fx)\n",
              to_string(result.static_base.total_time()).c_str(),
              result.speedup_vs_static());
  std::printf("  naive BvN per-step:  %s   (speedup %.2fx)\n",
              to_string(result.naive_bvn.total_time()).c_str(),
              result.speedup_vs_bvn());
  std::printf("  reconfigurations:    %d of %d steps\n",
              result.optimal.num_reconfigurations, collective.num_steps());
  return 0;
}
