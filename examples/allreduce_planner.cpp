// AllReduce planner CLI: compare algorithms and reconfiguration schedules
// for a configurable scale-up domain.
//
// Usage:
//   allreduce_planner [n] [message_mib] [alpha_r_us]
// Defaults: n=64, 64 MiB, alpha_r=10us — the paper's §3.4 setting.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main(int argc, char** argv) {
  using namespace psd;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const double m_mib = argc > 2 ? std::atof(argv[2]) : 64.0;
  const double ar_us = argc > 3 ? std::atof(argv[3]) : 10.0;
  if (n < 2 || (n & (n - 1)) != 0) {
    std::fprintf(stderr, "n must be a power of two >= 2 (got %d)\n", n);
    return 1;
  }

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(ar_us);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  std::printf("scale-up domain: n=%d GPUs, 800 Gbps each, directed-ring base, "
              "alpha_r=%s\n", n, to_string(params.alpha_r).c_str());
  std::printf("AllReduce buffer: %s per GPU\n\n", to_string(mib(m_mib)).c_str());

  struct Algo {
    const char* name;
    collective::CollectiveSchedule sched;
  };
  std::vector<Algo> algos;
  algos.push_back({"ring", collective::ring_allreduce(n, mib(m_mib))});
  algos.push_back({"recursive-doubling",
                   collective::recursive_doubling_allreduce(n, mib(m_mib))});
  algos.push_back({"halving-doubling",
                   collective::halving_doubling_allreduce(n, mib(m_mib))});
  algos.push_back({"swing", collective::swing_allreduce(n, mib(m_mib))});

  TextTable table;
  table.set_header({"algorithm", "steps", "bytes/GPU", "static", "naive BvN",
                    "OPT", "reconfigs", "speedup vs best"});
  const Algo* winner = nullptr;
  double winner_ns = 0.0;
  for (const auto& a : algos) {
    const auto r = planner.plan(a.sched);
    if (winner == nullptr || r.optimal.total_time().ns() < winner_ns) {
      winner = &a;
      winner_ns = r.optimal.total_time().ns();
    }
    table.add_row({a.name, std::to_string(a.sched.num_steps()),
                   to_string(a.sched.max_bytes_sent_per_node()),
                   to_string(r.static_base.total_time()),
                   to_string(r.naive_bvn.total_time()),
                   to_string(r.optimal.total_time()),
                   std::to_string(r.optimal.num_reconfigurations),
                   fmt_double(r.speedup_vs_best_baseline(), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nbest algorithm for this configuration: %s (%s)\n",
              winner->name, to_string(TimeNs(winner_ns)).c_str());

  // Detailed OPT schedule for the winner.
  const auto r = planner.plan(winner->sched);
  const auto inst = planner.instance(winner->sched);
  std::printf("\nOPT schedule for %s:\n", winner->name);
  TextTable detail;
  detail.set_header({"step", "label", "m_i", "theta", "ell", "decision",
                     "DCT (chosen)"});
  for (int i = 0; i < inst.num_steps(); ++i) {
    const auto choice = r.optimal.choice[static_cast<std::size_t>(i)];
    const bool matched = choice == core::TopoChoice::kMatched;
    const TimeNs dct = params.alpha + inst.propagation_cost(i, choice) +
                       inst.serialization_cost(i, choice);
    detail.add_row({std::to_string(i), winner->sched.step(i).label,
                    to_string(inst.step(i).volume),
                    fmt_double(inst.step(i).theta_base, 3),
                    std::to_string(inst.step(i).ell_base),
                    matched ? "reconfigure" : "ring", to_string(dct)});
  }
  std::fputs(detail.render().c_str(), stdout);
  return 0;
}
