// Mixture-of-Experts training step on a photonic scale-up domain.
//
// An MoE layer's communication per step is: All-to-All (dispatch tokens to
// experts) -> All-to-All (return expert outputs) -> AllReduce (data-parallel
// gradient sync). The paper's framework supports composed collectives
// (§3.3); this example plans the whole composition and shows where the
// fabric should reconfigure, including with a pool of co-prime ring base
// topologies.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/multi_base.hpp"
#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 32;                 // GPUs (= experts) in the domain
  const Bytes tokens = mib(8);      // dispatched activations per GPU
  const Bytes grads = mib(64);      // gradient buffer per GPU

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(5);
  params.b = gbps(800);

  // dispatch + combine + gradient AllReduce, one composed schedule.
  const auto moe_step = collective::alltoall_transpose(n, tokens)
                            .then(collective::alltoall_transpose(n, tokens))
                            .then(collective::swing_allreduce(n, grads));
  std::printf("MoE training step on n=%d GPUs: %s (%d steps total)\n\n", n,
              moe_step.name().c_str(), moe_step.num_steps());

  core::Planner planner(topo::directed_ring(n, gbps(800)), params);
  const auto r = planner.plan(moe_step);

  TextTable table;
  table.set_header({"schedule", "completion", "vs OPT"});
  table.add_row({"OPT (Eq. 7 DP)", to_string(r.optimal.total_time()), "1.00"});
  table.add_row({"static ring", to_string(r.static_base.total_time()),
                 fmt_double(r.speedup_vs_static(), 2)});
  table.add_row({"naive BvN", to_string(r.naive_bvn.total_time()),
                 fmt_double(r.speedup_vs_bvn(), 2)});
  table.add_row({"greedy threshold", to_string(r.greedy.total_time()),
                 fmt_double(r.greedy.total_time() / r.optimal.total_time(), 2)});
  std::fputs(table.render().c_str(), stdout);

  // Decision structure: which phases reconfigure?
  int a2a_matched = 0;
  int ar_matched = 0;
  const int a2a_steps = 2 * (n - 1);
  for (int i = 0; i < moe_step.num_steps(); ++i) {
    if (r.optimal.choice[static_cast<std::size_t>(i)] ==
        core::TopoChoice::kMatched) {
      (i < a2a_steps ? a2a_matched : ar_matched)++;
    }
  }
  std::printf("\nreconfigured steps: %d/%d in the All-to-All phases, %d/%d in "
              "the AllReduce phase\n",
              a2a_matched, a2a_steps, ar_matched,
              moe_step.num_steps() - a2a_steps);

  // §3.3 extension: a pool of co-prime rings as fallback bases.
  const auto ring1 = topo::directed_ring(n, gbps(800), 1);
  const auto ring7 = topo::directed_ring(n, gbps(800), 7);
  const flow::ThetaOracle o1(ring1, gbps(800));
  const flow::ThetaOracle o7(ring7, gbps(800));
  const core::MultiBaseInstance pooled(moe_step, {&o1, &o7}, params);
  const auto pooled_plan = core::optimal_multi_base_plan(pooled);
  std::printf("\nwith base pool {ring stride 1, ring stride 7}: %s "
              "(%.3fx vs single base)\n",
              to_string(pooled_plan.total_time()).c_str(),
              r.optimal.total_time() / pooled_plan.total_time());
  return 0;
}
