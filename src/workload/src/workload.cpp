#include "psd/workload/workload.hpp"

#include <bit>

#include "psd/collective/algorithms.hpp"
#include "psd/util/error.hpp"

namespace psd::workload {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "allreduce";
    case CollectiveKind::kAllGather:
      return "allgather";
    case CollectiveKind::kReduceScatter:
      return "reduce-scatter";
    case CollectiveKind::kAllToAll:
      return "alltoall";
    case CollectiveKind::kBroadcast:
      return "broadcast";
  }
  return "?";
}

namespace {

bool pow2(int n) { return n >= 2 && std::has_single_bit(static_cast<unsigned>(n)); }

}  // namespace

const char* to_string(AllReduceAlgo algo) {
  switch (algo) {
    case AllReduceAlgo::kRing: return "ring";
    case AllReduceAlgo::kRecursiveDoubling: return "rd";
    case AllReduceAlgo::kHalvingDoubling: return "hd";
    case AllReduceAlgo::kSwing: return "swing";
    case AllReduceAlgo::kAuto: return "auto";
  }
  return "?";
}

const char* to_string(AllToAllAlgo algo) {
  switch (algo) {
    case AllToAllAlgo::kTranspose: return "transpose";
    case AllToAllAlgo::kBruck: return "bruck";
    case AllToAllAlgo::kAuto: return "auto";
  }
  return "?";
}

AllReduceAlgo resolve_allreduce_auto(Bytes size, int n, const AutoThresholds& t) {
  PSD_REQUIRE(size.count() > 0.0, "message size must be positive");
  if (!pow2(n)) return AllReduceAlgo::kRing;
  return size.count() <= t.small_message.count() ? AllReduceAlgo::kRecursiveDoubling
                                                 : AllReduceAlgo::kHalvingDoubling;
}

AllToAllAlgo resolve_alltoall_auto(Bytes size, int n, const AutoThresholds& t) {
  PSD_REQUIRE(size.count() > 0.0, "message size must be positive");
  if (!pow2(n)) return AllToAllAlgo::kTranspose;
  return size.count() <= t.small_message.count() ? AllToAllAlgo::kBruck
                                                 : AllToAllAlgo::kTranspose;
}

collective::CollectiveSchedule materialize(const CollectiveRequest& request,
                                           int n, const MaterializeOptions& opts) {
  PSD_REQUIRE(request.size.count() > 0.0, "request size must be positive");
  switch (request.kind) {
    case CollectiveKind::kAllReduce: {
      AllReduceAlgo algo = opts.allreduce;
      if (algo == AllReduceAlgo::kAuto) {
        algo = resolve_allreduce_auto(request.size, n, opts.auto_thresholds);
      }
      switch (algo) {
        case AllReduceAlgo::kRing:
          return collective::ring_allreduce(n, request.size);
        case AllReduceAlgo::kRecursiveDoubling:
          return collective::recursive_doubling_allreduce(n, request.size);
        case AllReduceAlgo::kHalvingDoubling:
          return collective::halving_doubling_allreduce(n, request.size);
        case AllReduceAlgo::kSwing:
          return collective::swing_allreduce(n, request.size);
        case AllReduceAlgo::kAuto:
          break;  // unreachable: resolved above
      }
      break;
    }
    case CollectiveKind::kAllGather:
      if (pow2(n)) return collective::recursive_doubling_allgather(n, request.size);
      return collective::ring_allgather(n, request.size);
    case CollectiveKind::kReduceScatter:
      if (pow2(n)) {
        return collective::recursive_exchange_reduce_scatter(
            "halving-reduce-scatter", n, request.size,
            collective::halving_doubling_peers(n));
      }
      return collective::ring_reduce_scatter(n, request.size);
    case CollectiveKind::kAllToAll: {
      AllToAllAlgo algo = opts.alltoall;
      if (algo == AllToAllAlgo::kAuto) {
        algo = resolve_alltoall_auto(request.size, n, opts.auto_thresholds);
      }
      if (algo == AllToAllAlgo::kBruck) {
        return collective::alltoall_bruck(n, request.size);
      }
      return collective::alltoall_transpose(n, request.size);
    }
    case CollectiveKind::kBroadcast:
      return collective::binomial_broadcast(n, opts.broadcast_root, request.size);
  }
  throw InvalidArgument("unknown collective kind");
}

collective::CollectiveSchedule materialize_sequence(
    const std::vector<CollectiveRequest>& requests, int n,
    const MaterializeOptions& opts) {
  PSD_REQUIRE(!requests.empty(), "request sequence must be non-empty");
  auto out = materialize(requests.front(), n, opts);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    out = out.then(materialize(requests[i], n, opts));
  }
  return out;
}

std::vector<CollectiveRequest> data_parallel_sync(const DataParallelSpec& spec) {
  PSD_REQUIRE(spec.buckets >= 1, "at least one gradient bucket required");
  PSD_REQUIRE(spec.model_gradients.count() > 0.0, "gradient bytes must be positive");
  std::vector<CollectiveRequest> out;
  const Bytes per_bucket = spec.model_gradients / static_cast<double>(spec.buckets);
  for (int b = 0; b < spec.buckets; ++b) {
    out.push_back({CollectiveKind::kAllReduce, per_bucket,
                   "dp-bucket-" + std::to_string(b)});
  }
  return out;
}

std::vector<CollectiveRequest> moe_dispatch_combine(const MoeSpec& spec) {
  PSD_REQUIRE(spec.layers >= 1, "at least one MoE layer required");
  PSD_REQUIRE(spec.tokens_per_gpu.count() > 0.0, "token bytes must be positive");
  std::vector<CollectiveRequest> out;
  for (int l = 0; l < spec.layers; ++l) {
    out.push_back({CollectiveKind::kAllToAll, spec.tokens_per_gpu,
                   "moe-dispatch-" + std::to_string(l)});
    out.push_back({CollectiveKind::kAllToAll, spec.tokens_per_gpu,
                   "moe-combine-" + std::to_string(l)});
  }
  return out;
}

std::vector<CollectiveRequest> tensor_parallel_activations(
    const TensorParallelSpec& spec) {
  PSD_REQUIRE(spec.layers >= 1, "at least one layer required");
  PSD_REQUIRE(spec.activations_per_layer.count() > 0.0,
              "activation bytes must be positive");
  std::vector<CollectiveRequest> out;
  for (int l = 0; l < spec.layers; ++l) {
    out.push_back({CollectiveKind::kAllReduce, spec.activations_per_layer,
                   "tp-attn-" + std::to_string(l)});
    out.push_back({CollectiveKind::kAllReduce, spec.activations_per_layer,
                   "tp-mlp-" + std::to_string(l)});
  }
  return out;
}

std::vector<CollectiveRequest> training_iteration(const TrainingIterationSpec& spec) {
  std::vector<CollectiveRequest> out;
  const bool has_tp = spec.tp.layers > 0 && spec.tp.activations_per_layer.count() > 0;
  if (has_tp) {
    const auto fwd = tensor_parallel_activations(spec.tp);
    out.insert(out.end(), fwd.begin(), fwd.end());
  }
  if (spec.moe.layers > 0 && spec.moe.tokens_per_gpu.count() > 0) {
    const auto moe = moe_dispatch_combine(spec.moe);
    out.insert(out.end(), moe.begin(), moe.end());
  }
  if (has_tp) {  // backward pass mirrors the forward AllReduces
    const auto bwd = tensor_parallel_activations(spec.tp);
    out.insert(out.end(), bwd.begin(), bwd.end());
  }
  if (spec.dp.buckets > 0 && spec.dp.model_gradients.count() > 0) {
    const auto dp = data_parallel_sync(spec.dp);
    out.insert(out.end(), dp.begin(), dp.end());
  }
  PSD_REQUIRE(!out.empty(), "training iteration spec enables no phase");
  return out;
}

Bytes total_bytes(const std::vector<CollectiveRequest>& requests) {
  Bytes total(0.0);
  for (const auto& r : requests) total += r.size;
  return total;
}

}  // namespace psd::workload
