// Synthetic workload generators: the communication phases of distributed
// training expressed as sequences of collective requests, materialized into
// matching-level CollectiveSchedules for the optimizer and simulator.
//
// The paper motivates adaptive fabrics with AI scale-up traffic; since no
// production traces are available (see docs/architecture.md, "workload —
// synthetic traffic"), these generators model the standard structure:
// tensor-parallel activation AllReduces per layer, MoE token
// dispatch/combine All-to-Alls, and bucketed data-parallel gradient
// synchronization.
#pragma once

#include <string>
#include <vector>

#include "psd/collective/schedule.hpp"

namespace psd::workload {

enum class CollectiveKind {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
  kBroadcast,
};

[[nodiscard]] const char* to_string(CollectiveKind kind);

/// One collective to run over the whole scale-up domain.
struct CollectiveRequest {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  Bytes size;       // per-GPU buffer
  std::string tag;  // provenance, e.g. "dp-bucket-2"
};

/// kAuto defers the choice to a selector: the topology-blind small-message
/// threshold below, or core::Planner::select_algorithm's cost sweep when a
/// planner is in the loop (the way caffe2's fbcollective switches RING_FULL
/// vs RING_CHUNKED at 4 KB without consulting a cost model).
enum class AllReduceAlgo { kRing, kRecursiveDoubling, kHalvingDoubling, kSwing, kAuto };
enum class AllToAllAlgo { kTranspose, kBruck, kAuto };

[[nodiscard]] const char* to_string(AllReduceAlgo algo);
[[nodiscard]] const char* to_string(AllToAllAlgo algo);

/// The zero-cost fallback behind kAuto: payloads at or below the threshold
/// resolve without any planning solve (latency-dominated messages don't
/// repay a cost-model sweep, let alone a θ solve).
struct AutoThresholds {
  Bytes small_message{4096.0};  // fbcollective's RING_FULL/RING_CHUNKED line
};

struct MaterializeOptions {
  AllReduceAlgo allreduce = AllReduceAlgo::kHalvingDoubling;
  AllToAllAlgo alltoall = AllToAllAlgo::kTranspose;
  int broadcast_root = 0;
  AutoThresholds auto_thresholds;
};

/// Topology-blind kAuto resolution (the selector-less default): at or below
/// the small-message threshold the latency-lean algorithm wins (fewest
/// rounds — recursive doubling / Bruck on power-of-two n), above it the
/// bandwidth-lean default (halving/doubling / transpose). Non-power-of-two
/// n always resolves to ring / transpose (the only universal algorithms).
/// Planner::select_algorithm overrides this for large payloads with a
/// cost-swept winner; the small-message side is shared by both paths.
[[nodiscard]] AllReduceAlgo resolve_allreduce_auto(Bytes size, int n,
                                                   const AutoThresholds& t = {});
[[nodiscard]] AllToAllAlgo resolve_alltoall_auto(Bytes size, int n,
                                                 const AutoThresholds& t = {});

/// Turns a request into a concrete matching-level schedule for n GPUs.
/// Power-of-two n is required for the recursive algorithms (Bruck, swing,
/// halving/doubling, recursive doubling); ring algorithms accept any n.
[[nodiscard]] collective::CollectiveSchedule materialize(
    const CollectiveRequest& request, int n, const MaterializeOptions& opts = {});

/// Concatenates the materialized schedules of a whole request sequence.
[[nodiscard]] collective::CollectiveSchedule materialize_sequence(
    const std::vector<CollectiveRequest>& requests, int n,
    const MaterializeOptions& opts = {});

// ---- Generators ----------------------------------------------------------

/// Bucketed data-parallel gradient sync: `buckets` AllReduces covering
/// `model_gradients` bytes (equal buckets).
struct DataParallelSpec {
  Bytes model_gradients;
  int buckets = 4;
};
[[nodiscard]] std::vector<CollectiveRequest> data_parallel_sync(
    const DataParallelSpec& spec);

/// MoE layers: one dispatch All-to-All and one combine All-to-All per layer.
struct MoeSpec {
  Bytes tokens_per_gpu;
  int layers = 1;
};
[[nodiscard]] std::vector<CollectiveRequest> moe_dispatch_combine(const MoeSpec& spec);

/// Megatron-style tensor parallelism: two activation AllReduces per layer
/// forward and two backward.
struct TensorParallelSpec {
  Bytes activations_per_layer;
  int layers = 1;
};
[[nodiscard]] std::vector<CollectiveRequest> tensor_parallel_activations(
    const TensorParallelSpec& spec);

/// One full training iteration: TP activations (forward), MoE layers,
/// TP activations (backward), then bucketed DP gradient sync.
struct TrainingIterationSpec {
  TensorParallelSpec tp{Bytes(0.0), 0};
  MoeSpec moe{Bytes(0.0), 0};
  DataParallelSpec dp{Bytes(0.0), 0};
};
[[nodiscard]] std::vector<CollectiveRequest> training_iteration(
    const TrainingIterationSpec& spec);

/// Total bytes requested (per GPU) across a sequence.
[[nodiscard]] Bytes total_bytes(const std::vector<CollectiveRequest>& requests);

}  // namespace psd::workload
