// Synthetic workload generators: the communication phases of distributed
// training expressed as sequences of collective requests, materialized into
// matching-level CollectiveSchedules for the optimizer and simulator.
//
// The paper motivates adaptive fabrics with AI scale-up traffic; since no
// production traces are available (see docs/architecture.md, "workload —
// synthetic traffic"), these generators model the standard structure:
// tensor-parallel activation AllReduces per layer, MoE token
// dispatch/combine All-to-Alls, and bucketed data-parallel gradient
// synchronization.
#pragma once

#include <string>
#include <vector>

#include "psd/collective/schedule.hpp"

namespace psd::workload {

enum class CollectiveKind {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
  kBroadcast,
};

[[nodiscard]] const char* to_string(CollectiveKind kind);

/// One collective to run over the whole scale-up domain.
struct CollectiveRequest {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  Bytes size;       // per-GPU buffer
  std::string tag;  // provenance, e.g. "dp-bucket-2"
};

enum class AllReduceAlgo { kRing, kRecursiveDoubling, kHalvingDoubling, kSwing };
enum class AllToAllAlgo { kTranspose, kBruck };

struct MaterializeOptions {
  AllReduceAlgo allreduce = AllReduceAlgo::kHalvingDoubling;
  AllToAllAlgo alltoall = AllToAllAlgo::kTranspose;
  int broadcast_root = 0;
};

/// Turns a request into a concrete matching-level schedule for n GPUs.
/// Power-of-two n is required for the recursive algorithms (Bruck, swing,
/// halving/doubling, recursive doubling); ring algorithms accept any n.
[[nodiscard]] collective::CollectiveSchedule materialize(
    const CollectiveRequest& request, int n, const MaterializeOptions& opts = {});

/// Concatenates the materialized schedules of a whole request sequence.
[[nodiscard]] collective::CollectiveSchedule materialize_sequence(
    const std::vector<CollectiveRequest>& requests, int n,
    const MaterializeOptions& opts = {});

// ---- Generators ----------------------------------------------------------

/// Bucketed data-parallel gradient sync: `buckets` AllReduces covering
/// `model_gradients` bytes (equal buckets).
struct DataParallelSpec {
  Bytes model_gradients;
  int buckets = 4;
};
[[nodiscard]] std::vector<CollectiveRequest> data_parallel_sync(
    const DataParallelSpec& spec);

/// MoE layers: one dispatch All-to-All and one combine All-to-All per layer.
struct MoeSpec {
  Bytes tokens_per_gpu;
  int layers = 1;
};
[[nodiscard]] std::vector<CollectiveRequest> moe_dispatch_combine(const MoeSpec& spec);

/// Megatron-style tensor parallelism: two activation AllReduces per layer
/// forward and two backward.
struct TensorParallelSpec {
  Bytes activations_per_layer;
  int layers = 1;
};
[[nodiscard]] std::vector<CollectiveRequest> tensor_parallel_activations(
    const TensorParallelSpec& spec);

/// One full training iteration: TP activations (forward), MoE layers,
/// TP activations (backward), then bucketed DP gradient sync.
struct TrainingIterationSpec {
  TensorParallelSpec tp{Bytes(0.0), 0};
  MoeSpec moe{Bytes(0.0), 0};
  DataParallelSpec dp{Bytes(0.0), 0};
};
[[nodiscard]] std::vector<CollectiveRequest> training_iteration(
    const TrainingIterationSpec& spec);

/// Total bytes requested (per GPU) across a sequence.
[[nodiscard]] Bytes total_bytes(const std::vector<CollectiveRequest>& requests);

}  // namespace psd::workload
