#include "psd/core/planner.hpp"

namespace psd::core {

Planner::Planner(topo::Graph base, CostParams params, flow::ThetaOptions theta_opts)
    : base_(std::move(base)), params_(params) {
  oracle_ = std::make_unique<flow::ThetaOracle>(base_, params_.b, theta_opts);
}

void Planner::set_params(const CostParams& params) {
  PSD_REQUIRE(params.b.bytes_per_ns() == params_.b.bytes_per_ns(),
              "bandwidth cannot change: theta is normalized by it "
              "(construct a new Planner instead)");
  params_ = params;
}

PlannerResult Planner::plan(const collective::CollectiveSchedule& schedule,
                            const ModelExtensions& ext) const {
  const ProblemInstance inst(schedule, *oracle_, params_);
  PlannerResult r;
  r.optimal = optimal_plan(inst, ext);
  r.static_base = static_plan(inst, ext);
  r.naive_bvn = bvn_plan(inst, ext);
  r.greedy = greedy_threshold_plan(inst, ext);
  return r;
}

ProblemInstance Planner::instance(
    const collective::CollectiveSchedule& schedule) const {
  return ProblemInstance(schedule, *oracle_, params_);
}

}  // namespace psd::core
