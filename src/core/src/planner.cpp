#include "psd/core/planner.hpp"

#include <exception>
#include <unordered_set>
#include <vector>

#include "psd/util/thread_pool.hpp"

namespace psd::core {

Planner::Planner(topo::Graph base, CostParams params, flow::ThetaOptions theta_opts,
                 PlannerOptions planner_opts)
    : base_(std::move(base)), params_(params), planner_opts_(planner_opts) {
  oracle_ = std::make_unique<flow::ThetaOracle>(base_, params_.b, theta_opts);
}

void Planner::set_params(const CostParams& params) {
  PSD_REQUIRE(params.b.bytes_per_ns() == params_.b.bytes_per_ns(),
              "bandwidth cannot change: theta is normalized by it "
              "(construct a new Planner instead)");
  params_ = params;
}

PlannerResult Planner::plan(const collective::CollectiveSchedule& schedule,
                            const ModelExtensions& ext) const {
  auto& pool = util::ThreadPool::shared();
  const bool parallel = planner_opts_.parallel && pool.size() > 1 &&
                        !util::ThreadPool::on_worker_thread();
  // Prewarming only pays off when the oracle can remember the answers —
  // with the cache disabled it would just compute every θ twice.
  if (parallel && oracle_->options().use_cache) {
    // Prewarm the θ cache: one task per *distinct* step matching plus one
    // for the hop matrix. The oracle computes misses outside its lock with
    // no in-flight dedup, so racing tasks on the same matching would each
    // solve it — dedup up front instead. θ is a pure function of the
    // matching, so the instance build below runs entirely on cache hits.
    const auto& steps = schedule.steps();
    std::vector<const topo::Matching*> distinct;
    distinct.reserve(steps.size());
    std::unordered_set<std::size_t> seen;
    for (const auto& s : steps) {
      if (s.matching.active_pairs() == 0) continue;
      // Hash-based dedup: a collision only costs a redundant solve.
      if (seen.insert(s.matching.hash()).second) {
        distinct.push_back(&s.matching);
      }
    }
    try {
      pool.parallel_for(distinct.size() + 1, [&](std::size_t i) {
        if (i == distinct.size()) {
          (void)oracle_->base_hops();
        } else {
          (void)oracle_->theta(*distinct[i]);
        }
      });
    } catch (const util::JobError& e) {
      // plan() must throw what the serial path throws (e.g. Cancelled from
      // a deadline-bounded oracle); strip the pool's index wrapper.
      e.rethrow_original();
    }
  }
  const ProblemInstance inst(schedule, *oracle_, params_);
  PlannerResult r;
  if (parallel) {
    auto optimal = pool.submit([&] { return optimal_plan(inst, ext); });
    auto static_base = pool.submit([&] { return static_plan(inst, ext); });
    auto naive_bvn = pool.submit([&] { return bvn_plan(inst, ext); });
    // Drain every future even when a strategy throws: the submitted tasks
    // capture `inst` and `ext` by reference, so unwinding before they
    // finish would leave workers running against destroyed locals.
    std::exception_ptr err;
    const auto collect = [&err](auto& fut, ReconfigPlan& out) {
      try {
        out = fut.get();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    };
    try {
      r.greedy = greedy_threshold_plan(inst, ext);
    } catch (...) {
      err = std::current_exception();
    }
    collect(optimal, r.optimal);
    collect(static_base, r.static_base);
    collect(naive_bvn, r.naive_bvn);
    if (err) std::rethrow_exception(err);
  } else {
    r.optimal = optimal_plan(inst, ext);
    r.static_base = static_plan(inst, ext);
    r.naive_bvn = bvn_plan(inst, ext);
    r.greedy = greedy_threshold_plan(inst, ext);
  }
  return r;
}

ProblemInstance Planner::instance(
    const collective::CollectiveSchedule& schedule) const {
  return ProblemInstance(schedule, *oracle_, params_);
}

}  // namespace psd::core
