#include "psd/core/report.hpp"

#include "psd/util/json.hpp"

namespace psd::core {

namespace {

void write_plan(JsonWriter& w, const ReconfigPlan& plan) {
  w.begin_object();
  w.key("choice").begin_array();
  for (const TopoChoice c : plan.choice) {
    w.value(c == TopoChoice::kBase ? "base" : "matched");
  }
  w.end_array();
  w.key("num_reconfigurations").value(plan.num_reconfigurations);
  w.key("breakdown").begin_object();
  w.key("latency_ns").value(plan.breakdown.latency.ns());
  w.key("propagation_ns").value(plan.breakdown.propagation.ns());
  w.key("reconfiguration_ns").value(plan.breakdown.reconfiguration.ns());
  w.key("serialization_ns").value(plan.breakdown.serialization.ns());
  w.key("compute_ns").value(plan.breakdown.compute.ns());
  w.end_object();
  w.key("total_ns").value(plan.total_time().ns());
  w.end_object();
}

}  // namespace

std::string to_json(const ReconfigPlan& plan) {
  JsonWriter w;
  write_plan(w, plan);
  return w.str();
}

std::string to_json(const PlannerResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("optimal");
  write_plan(w, result.optimal);
  w.key("static");
  write_plan(w, result.static_base);
  w.key("naive_bvn");
  write_plan(w, result.naive_bvn);
  w.key("greedy");
  write_plan(w, result.greedy);
  w.key("speedup_vs_static").value(result.speedup_vs_static());
  w.key("speedup_vs_bvn").value(result.speedup_vs_bvn());
  w.key("speedup_vs_best_baseline").value(result.speedup_vs_best_baseline());
  w.end_object();
  return w.str();
}

}  // namespace psd::core
