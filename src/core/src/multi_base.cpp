#include "psd/core/multi_base.hpp"

#include <limits>

#include "psd/topo/shortest_path.hpp"

namespace psd::core {

MultiBaseInstance::MultiBaseInstance(const collective::CollectiveSchedule& schedule,
                                     std::vector<const flow::ThetaOracle*> oracles,
                                     const CostParams& params)
    : oracles_(std::move(oracles)), params_(params) {
  PSD_REQUIRE(!oracles_.empty(), "at least one base topology required");
  for (const auto* o : oracles_) {
    PSD_REQUIRE(o != nullptr, "null oracle");
    PSD_REQUIRE(o->base().num_nodes() == schedule.num_nodes(),
                "base topology node count mismatch");
  }
  PSD_REQUIRE(schedule.num_steps() > 0, "collective must have at least one step");

  std::vector<const std::vector<std::vector<int>>*> hops;
  hops.reserve(oracles_.size());
  for (const auto* o : oracles_) hops.push_back(&o->base_hops());

  for (const auto& s : schedule.steps()) {
    PSD_REQUIRE(s.matching.active_pairs() > 0, "step matching must be non-empty");
    PSD_REQUIRE(s.volume.count() > 0.0, "step volume must be positive");
    volumes_.push_back(s.volume);
    std::vector<double> th;
    std::vector<int> el;
    for (std::size_t b = 0; b < oracles_.size(); ++b) {
      th.push_back(oracles_[b]->theta(s.matching));
      int ell = 0;
      for (const auto& [src, dst] : s.matching.pairs()) {
        const int h = (*hops[b])[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
        PSD_REQUIRE(h != topo::kUnreachable,
                    "matching pair disconnected in a base topology");
        ell = std::max(ell, h);
      }
      el.push_back(ell);
    }
    theta_.push_back(std::move(th));
    ell_.push_back(std::move(el));
  }
}

TimeNs MultiBaseInstance::propagation_cost(int step, int state) const {
  PSD_REQUIRE(step >= 0 && step < num_steps(), "step out of range");
  PSD_REQUIRE(state >= 0 && state <= matched_state(), "state out of range");
  const double hops =
      (state == matched_state())
          ? 1.0
          : ell_[static_cast<std::size_t>(step)][static_cast<std::size_t>(state)];
  return params_.delta * hops;
}

TimeNs MultiBaseInstance::serialization_cost(int step, int state) const {
  PSD_REQUIRE(step >= 0 && step < num_steps(), "step out of range");
  PSD_REQUIRE(state >= 0 && state <= matched_state(), "state out of range");
  const TimeNs ideal = volumes_[static_cast<std::size_t>(step)] / params_.b;
  const double congestion =
      (state == matched_state())
          ? 1.0
          : 1.0 / theta_[static_cast<std::size_t>(step)][static_cast<std::size_t>(state)];
  return ideal * congestion;
}

TimeNs MultiBaseInstance::transition_cost(int prev_state, int cur_state) const {
  PSD_REQUIRE(prev_state >= 0 && prev_state <= matched_state(), "state out of range");
  PSD_REQUIRE(cur_state >= 0 && cur_state <= matched_state(), "state out of range");
  if (prev_state == cur_state && cur_state != matched_state()) return TimeNs(0.0);
  return params_.alpha_r;
}

MultiBasePlan evaluate_multi_base_plan(const MultiBaseInstance& inst,
                                       std::vector<int> states) {
  const int s = inst.num_steps();
  PSD_REQUIRE(static_cast<int>(states.size()) == s, "one state per step required");

  MultiBasePlan plan;
  plan.breakdown.latency = inst.params().alpha * static_cast<double>(s);
  int prev = 0;  // fabric starts in base 0
  for (int i = 0; i < s; ++i) {
    const int cur = states[static_cast<std::size_t>(i)];
    plan.breakdown.propagation += inst.propagation_cost(i, cur);
    plan.breakdown.serialization += inst.serialization_cost(i, cur);
    const TimeNs trans = inst.transition_cost(prev, cur);
    if (trans.ns() > 0.0) ++plan.num_reconfigurations;
    plan.breakdown.reconfiguration += trans;
    prev = cur;
  }
  plan.state = std::move(states);
  return plan;
}

MultiBasePlan optimal_multi_base_plan(const MultiBaseInstance& inst) {
  const int s = inst.num_steps();
  const int num_states = inst.matched_state() + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> dp(static_cast<std::size_t>(num_states), kInf);
  std::vector<std::vector<int>> parent(
      static_cast<std::size_t>(s), std::vector<int>(static_cast<std::size_t>(num_states), -1));

  auto step_cost = [&inst](int i, int state) {
    return inst.propagation_cost(i, state).ns() +
           inst.serialization_cost(i, state).ns();
  };

  for (int c = 0; c < num_states; ++c) {
    dp[static_cast<std::size_t>(c)] =
        inst.transition_cost(0, c).ns() + step_cost(0, c);
    parent[0][static_cast<std::size_t>(c)] = 0;
  }
  for (int i = 1; i < s; ++i) {
    std::vector<double> next(static_cast<std::size_t>(num_states), kInf);
    for (int c = 0; c < num_states; ++c) {
      for (int p = 0; p < num_states; ++p) {
        const double cand = dp[static_cast<std::size_t>(p)] +
                            inst.transition_cost(p, c).ns() + step_cost(i, c);
        if (cand < next[static_cast<std::size_t>(c)]) {
          next[static_cast<std::size_t>(c)] = cand;
          parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] = p;
        }
      }
    }
    dp = std::move(next);
  }

  int best = 0;
  for (int c = 1; c < num_states; ++c) {
    if (dp[static_cast<std::size_t>(c)] < dp[static_cast<std::size_t>(best)]) best = c;
  }
  std::vector<int> states(static_cast<std::size_t>(s));
  for (int i = s - 1; i >= 0; --i) {
    states[static_cast<std::size_t>(i)] = best;
    best = parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(best)];
  }
  return evaluate_multi_base_plan(inst, std::move(states));
}

}  // namespace psd::core
