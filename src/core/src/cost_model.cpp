#include "psd/core/cost_model.hpp"

#include <algorithm>

#include "psd/topo/shortest_path.hpp"

namespace psd::core {

namespace {

std::vector<std::pair<Bytes, topo::Matching>> extract_steps(
    const collective::CollectiveSchedule& schedule) {
  std::vector<std::pair<Bytes, topo::Matching>> raw;
  raw.reserve(static_cast<std::size_t>(schedule.num_steps()));
  for (const auto& s : schedule.steps()) {
    raw.emplace_back(s.volume, s.matching);
  }
  return raw;
}

void validate_params(const CostParams& p) {
  PSD_REQUIRE(p.alpha.ns() >= 0.0, "alpha must be non-negative");
  PSD_REQUIRE(p.delta.ns() >= 0.0, "delta must be non-negative");
  PSD_REQUIRE(p.alpha_r.ns() >= 0.0, "alpha_r must be non-negative");
  PSD_REQUIRE(p.b.bytes_per_ns() > 0.0, "bandwidth must be positive");
}

}  // namespace

ProblemInstance::ProblemInstance(const collective::CollectiveSchedule& schedule,
                                 const flow::ThetaOracle& oracle,
                                 const CostParams& params)
    : params_(params) {
  validate_params(params);
  build(extract_steps(schedule), oracle);
}

ProblemInstance::ProblemInstance(
    const std::vector<std::pair<Bytes, topo::Matching>>& raw_steps,
    const flow::ThetaOracle& oracle, const CostParams& params)
    : params_(params) {
  validate_params(params);
  build(raw_steps, oracle);
}

void ProblemInstance::build(const std::vector<std::pair<Bytes, topo::Matching>>& raw,
                            const flow::ThetaOracle& oracle) {
  const topo::Graph& base = oracle.base();
  PSD_REQUIRE(!raw.empty(), "collective must have at least one step");
  // Shared with every other instance built against this oracle — all-pairs
  // BFS is O(n·(n+E)) and used to dominate repeated instance builds.
  const auto& hops = oracle.base_hops();

  steps_.reserve(raw.size());
  for (const auto& [volume, matching] : raw) {
    PSD_REQUIRE(matching.size() == base.num_nodes(),
                "step matching size does not match the base topology");
    PSD_REQUIRE(matching.active_pairs() > 0, "step matching must be non-empty");
    PSD_REQUIRE(volume.count() > 0.0, "step volume must be positive");

    StepParams sp;
    sp.volume = volume;
    sp.matching = matching;
    sp.theta_base = oracle.theta(matching);
    PSD_ASSERT(sp.theta_base > 0.0, "theta must be positive for routable demand");
    int ell = 0;
    for (const auto& [s, d] : matching.pairs()) {
      const int h = hops[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
      PSD_REQUIRE(h != topo::kUnreachable,
                  "matching pair disconnected in the base topology");
      ell = std::max(ell, h);
    }
    sp.ell_base = ell;
    steps_.push_back(std::move(sp));
  }
}

const StepParams& ProblemInstance::step(int i) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  return steps_[static_cast<std::size_t>(i)];
}

TimeNs ProblemInstance::propagation_cost(int i, TopoChoice c) const {
  const StepParams& sp = step(i);
  const double hops = (c == TopoChoice::kBase) ? sp.ell_base : 1.0;
  return params_.delta * hops;
}

TimeNs ProblemInstance::serialization_cost(int i, TopoChoice c) const {
  const StepParams& sp = step(i);
  const TimeNs ideal = sp.volume / params_.b;  // β·m_i
  const double congestion =
      (c == TopoChoice::kBase) ? 1.0 / sp.theta_base : 1.0;
  return ideal * congestion;
}

TimeNs ProblemInstance::transition_cost(int i, TopoChoice prev, TopoChoice cur,
                                        const ModelExtensions& ext) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  PSD_REQUIRE(i > 0 || prev == TopoChoice::kBase,
              "the fabric starts in the base configuration (x_0 = 1)");

  // Paper rule (Eq. 7): no delay iff both consecutive steps use the base.
  if (prev == TopoChoice::kBase && cur == TopoChoice::kBase) return TimeNs(0.0);

  if (ext.dedup_identical_matchings && i > 0 && prev == TopoChoice::kMatched &&
      cur == TopoChoice::kMatched &&
      step(i).matching == step(i - 1).matching) {
    return TimeNs(0.0);
  }

  if (ext.delay_model != nullptr) {
    PSD_REQUIRE(ext.base_config.has_value(),
                "delay_model extension requires base_config");
    const topo::Matching& from =
        (prev == TopoChoice::kBase) ? *ext.base_config : step(i - 1).matching;
    const topo::Matching& to =
        (cur == TopoChoice::kBase) ? *ext.base_config : step(i).matching;
    return ext.delay_model->delay(from, to);
  }
  return params_.alpha_r;
}

ReconfigPlan evaluate_plan(const ProblemInstance& inst,
                           std::vector<TopoChoice> choice,
                           const ModelExtensions& ext) {
  const int s = inst.num_steps();
  PSD_REQUIRE(static_cast<int>(choice.size()) == s,
              "plan must have one choice per step");
  const bool overlap = !ext.compute_before_step.empty();
  if (overlap) {
    PSD_REQUIRE(static_cast<int>(ext.compute_before_step.size()) == s,
                "compute_before_step must have one entry per step");
  }

  ReconfigPlan plan;
  plan.breakdown.latency = inst.params().alpha * static_cast<double>(s);
  TopoChoice prev = TopoChoice::kBase;
  for (int i = 0; i < s; ++i) {
    const TopoChoice cur = choice[static_cast<std::size_t>(i)];
    plan.breakdown.propagation += inst.propagation_cost(i, cur);
    plan.breakdown.serialization += inst.serialization_cost(i, cur);
    const TimeNs trans = inst.transition_cost(i, prev, cur, ext);
    if (trans.ns() > 0.0) ++plan.num_reconfigurations;
    if (overlap) {
      const TimeNs compute = ext.compute_before_step[static_cast<std::size_t>(i)];
      plan.breakdown.compute += compute;
      plan.breakdown.reconfiguration +=
          TimeNs(std::max(0.0, (trans - compute).ns()));
    } else {
      plan.breakdown.reconfiguration += trans;
    }
    prev = cur;
  }
  plan.choice = std::move(choice);
  return plan;
}

}  // namespace psd::core
