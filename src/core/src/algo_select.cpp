#include "psd/core/algo_select.hpp"

#include <bit>
#include <utility>

namespace psd::core {

namespace {

bool pow2(int n) { return n >= 2 && std::has_single_bit(static_cast<unsigned>(n)); }

/// Materializes one candidate, solves the DP, and prices it pipelined.
AlgoCandidate score_candidate(const Planner& planner,
                              const workload::CollectiveRequest& request,
                              const workload::MaterializeOptions& base_opts,
                              const ModelExtensions& ext,
                              const AlgoSelectOptions& sel, std::string name,
                              workload::AllReduceAlgo ar,
                              workload::AllToAllAlgo aa) {
  workload::MaterializeOptions opts = base_opts;
  opts.allreduce = ar;
  opts.alltoall = aa;
  const auto schedule =
      workload::materialize(request, planner.base().num_nodes(), opts);
  const ProblemInstance inst = planner.instance(schedule);
  AlgoCandidate cand;
  cand.algo = std::move(name);
  cand.allreduce = ar;
  cand.alltoall = aa;
  cand.plan = optimal_plan(inst, ext);
  cand.barrier_dct = cand.plan.total_time();
  const PipelinedCostModel model(inst, ext);
  const auto sweep = model.best_over_chunks(cand.plan.choice, sel.max_chunks);
  cand.pipelined_dct = sweep.completion;
  cand.pipeline_chunks = sweep.chunks;
  return cand;
}

}  // namespace

AlgoSelection select_algorithm(const Planner& planner,
                               const workload::CollectiveRequest& request,
                               const workload::MaterializeOptions& opts,
                               const ModelExtensions& ext,
                               const AlgoSelectOptions& sel) {
  using workload::AllReduceAlgo;
  using workload::AllToAllAlgo;
  using workload::CollectiveKind;
  PSD_REQUIRE(request.kind == CollectiveKind::kAllReduce ||
                  request.kind == CollectiveKind::kAllToAll,
              "algorithm selection applies to allreduce and alltoall only");
  PSD_REQUIRE(sel.max_chunks >= 1, "max_chunks must be >= 1");
  const int n = planner.base().num_nodes();
  const bool allreduce = request.kind == CollectiveKind::kAllReduce;

  AlgoSelection out;
  // Latency-dominated payloads: the fixed threshold decides without a
  // candidate sweep; its pick is still planned once for the caller.
  if (request.size.count() <= opts.auto_thresholds.small_message.count()) {
    out.threshold_fallback = true;
    AllReduceAlgo ar = opts.allreduce;
    AllToAllAlgo aa = opts.alltoall;
    const char* name = nullptr;
    if (allreduce) {
      ar = workload::resolve_allreduce_auto(request.size, n, opts.auto_thresholds);
      name = workload::to_string(ar);
    } else {
      aa = workload::resolve_alltoall_auto(request.size, n, opts.auto_thresholds);
      name = workload::to_string(aa);
    }
    out.chosen = score_candidate(planner, request, opts, ext, sel, name, ar, aa);
    out.candidates.push_back(out.chosen);
    return out;
  }

  // The full sweep, in pinned order so ties are deterministic.
  struct Entry {
    const char* name;
    AllReduceAlgo ar;
    AllToAllAlgo aa;
    bool needs_pow2;
  };
  std::vector<Entry> entries;
  if (allreduce) {
    entries = {
        {"ring", AllReduceAlgo::kRing, opts.alltoall, false},
        {"rd", AllReduceAlgo::kRecursiveDoubling, opts.alltoall, true},
        {"hd", AllReduceAlgo::kHalvingDoubling, opts.alltoall, true},
        {"swing", AllReduceAlgo::kSwing, opts.alltoall, true},
    };
  } else {
    entries = {
        {"transpose", opts.allreduce, AllToAllAlgo::kTranspose, false},
        {"bruck", opts.allreduce, AllToAllAlgo::kBruck, true},
    };
  }

  std::size_t best = 0;
  for (const Entry& e : entries) {
    if (e.needs_pow2 && !pow2(n)) continue;
    out.candidates.push_back(
        score_candidate(planner, request, opts, ext, sel, e.name, e.ar, e.aa));
    const std::size_t k = out.candidates.size() - 1;
    if (out.candidates[k].pipelined_dct < out.candidates[best].pipelined_dct) {
      best = k;
    }
  }
  PSD_ASSERT(!out.candidates.empty(), "no applicable candidate algorithm");
  out.chosen = out.candidates[best];
  return out;
}

}  // namespace psd::core
