#include "psd/core/optimizers.hpp"

#include <array>
#include <limits>

namespace psd::core {

namespace {

/// Step cost excluding the constant α and any compute (those are common to
/// all plans); includes the overlap-adjusted transition charge.
double marginal_cost_ns(const ProblemInstance& inst, int i, TopoChoice prev,
                        TopoChoice cur, const ModelExtensions& ext) {
  double trans = inst.transition_cost(i, prev, cur, ext).ns();
  if (!ext.compute_before_step.empty()) {
    trans = std::max(0.0, trans - ext.compute_before_step[static_cast<std::size_t>(i)].ns());
  }
  return trans + inst.propagation_cost(i, cur).ns() +
         inst.serialization_cost(i, cur).ns();
}

}  // namespace

ReconfigPlan static_plan(const ProblemInstance& inst, const ModelExtensions& ext) {
  return evaluate_plan(
      inst,
      std::vector<TopoChoice>(static_cast<std::size_t>(inst.num_steps()),
                              TopoChoice::kBase),
      ext);
}

ReconfigPlan bvn_plan(const ProblemInstance& inst, const ModelExtensions& ext) {
  return evaluate_plan(
      inst,
      std::vector<TopoChoice>(static_cast<std::size_t>(inst.num_steps()),
                              TopoChoice::kMatched),
      ext);
}

ReconfigPlan optimal_plan(const ProblemInstance& inst, const ModelExtensions& ext) {
  const int s = inst.num_steps();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::array<TopoChoice, 2> kStates{TopoChoice::kBase,
                                              TopoChoice::kMatched};

  // dp[state] after step i; parent pointers for reconstruction.
  std::array<double, 2> dp{kInf, kInf};
  std::vector<std::array<int, 2>> parent(static_cast<std::size_t>(s), {-1, -1});

  for (int c = 0; c < 2; ++c) {
    dp[static_cast<std::size_t>(c)] =
        marginal_cost_ns(inst, 0, TopoChoice::kBase, kStates[static_cast<std::size_t>(c)], ext);
    parent[0][static_cast<std::size_t>(c)] = 0;  // virtual start state: base
  }
  for (int i = 1; i < s; ++i) {
    std::array<double, 2> next{kInf, kInf};
    for (int c = 0; c < 2; ++c) {
      for (int p = 0; p < 2; ++p) {
        const double cand =
            dp[static_cast<std::size_t>(p)] +
            marginal_cost_ns(inst, i, kStates[static_cast<std::size_t>(p)],
                             kStates[static_cast<std::size_t>(c)], ext);
        // Strict '<' ties toward the lower-indexed previous state (base).
        if (cand < next[static_cast<std::size_t>(c)]) {
          next[static_cast<std::size_t>(c)] = cand;
          parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] = p;
        }
      }
    }
    dp = next;
  }

  int best = (dp[0] <= dp[1]) ? 0 : 1;
  std::vector<TopoChoice> choice(static_cast<std::size_t>(s));
  for (int i = s - 1; i >= 0; --i) {
    choice[static_cast<std::size_t>(i)] = kStates[static_cast<std::size_t>(best)];
    best = parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(best)];
  }
  return evaluate_plan(inst, std::move(choice), ext);
}

ReconfigPlan brute_force_plan(const ProblemInstance& inst,
                              const ModelExtensions& ext) {
  const int s = inst.num_steps();
  PSD_REQUIRE(s <= 24, "brute force limited to 24 steps (2^s schedules)");
  ReconfigPlan best;
  double best_ns = std::numeric_limits<double>::infinity();
  for (std::uint32_t bits = 0; bits < (1U << s); ++bits) {
    std::vector<TopoChoice> choice(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
      choice[static_cast<std::size_t>(i)] =
          ((bits >> i) & 1U) ? TopoChoice::kMatched : TopoChoice::kBase;
    }
    ReconfigPlan plan = evaluate_plan(inst, std::move(choice), ext);
    if (plan.total_time().ns() < best_ns) {
      best_ns = plan.total_time().ns();
      best = std::move(plan);
    }
  }
  return best;
}

ReconfigPlan greedy_threshold_plan(const ProblemInstance& inst,
                                   const ModelExtensions& ext) {
  const int s = inst.num_steps();
  std::vector<TopoChoice> choice(static_cast<std::size_t>(s), TopoChoice::kBase);
  for (int i = 0; i < s; ++i) {
    const double gain =
        (inst.propagation_cost(i, TopoChoice::kBase) -
         inst.propagation_cost(i, TopoChoice::kMatched))
            .ns() +
        (inst.serialization_cost(i, TopoChoice::kBase) -
         inst.serialization_cost(i, TopoChoice::kMatched))
            .ns();
    if (gain > inst.params().alpha_r.ns()) {
      choice[static_cast<std::size_t>(i)] = TopoChoice::kMatched;
    }
  }
  return evaluate_plan(inst, std::move(choice), ext);
}

}  // namespace psd::core
