#include "psd/core/multi_port.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/shortest_path.hpp"

namespace psd::core {

namespace {

std::vector<flow::Commodity> union_commodities(const UnionStep& step) {
  std::vector<flow::Commodity> out;
  for (const auto& m : step.matchings) {
    for (const auto& [s, d] : m.pairs()) out.push_back({s, d, 1.0});
  }
  return out;
}

/// θ of an arbitrary commodity set on the oracle's base topology, using the
/// same dispatch ladder as the oracle (ring → exact LP → FPTAS), through
/// the θ-only entry points — union steps never need the routing.
double union_theta(const flow::ThetaOracle& oracle,
                   const std::vector<flow::Commodity>& commodities) {
  const topo::Graph& g = oracle.base();
  if (const auto ring = flow::ring_theta_only(g, commodities, oracle.bandwidth())) {
    return *ring;
  }
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(g.num_edges());
  if (lp_vars <= 700) {
    return flow::exact_concurrent_flow(g, commodities, oracle.bandwidth()).theta;
  }
  return flow::gk_theta_only(g, commodities, oracle.bandwidth(), {});
}

}  // namespace

MultiPortInstance::MultiPortInstance(std::vector<UnionStep> steps,
                                     const flow::ThetaOracle& oracle,
                                     const CostParams& params, int ports)
    : steps_(std::move(steps)), params_(params), ports_(ports) {
  PSD_REQUIRE(ports_ >= 1, "at least one port per GPU required");
  PSD_REQUIRE(!steps_.empty(), "at least one step required");
  const topo::Graph& base = oracle.base();
  const auto& hops = oracle.base_hops();

  for (const auto& step : steps_) {
    PSD_REQUIRE(!step.matchings.empty(), "union step must contain a matching");
    PSD_REQUIRE(static_cast<int>(step.matchings.size()) <= ports_,
                "union has more matchings than ports: not realizable");
    PSD_REQUIRE(step.volume.count() > 0.0, "step volume must be positive");
    int ell = 0;
    int pairs = 0;
    for (const auto& m : step.matchings) {
      PSD_REQUIRE(m.size() == base.num_nodes(), "matching size mismatch");
      pairs += m.active_pairs();
      for (const auto& [s, d] : m.pairs()) {
        const int h = hops[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
        PSD_REQUIRE(h != topo::kUnreachable,
                    "pair disconnected in the base topology");
        ell = std::max(ell, h);
      }
    }
    PSD_REQUIRE(pairs > 0, "union step is empty");
    ell_.push_back(ell);
    theta_.push_back(union_theta(oracle, union_commodities(step)));
  }
}

const UnionStep& MultiPortInstance::step(int i) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  return steps_[static_cast<std::size_t>(i)];
}

double MultiPortInstance::theta_base(int i) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  return theta_[static_cast<std::size_t>(i)];
}

TimeNs MultiPortInstance::propagation_cost(int i, TopoChoice c) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  const double hops =
      (c == TopoChoice::kBase) ? ell_[static_cast<std::size_t>(i)] : 1.0;
  return params_.delta * hops;
}

TimeNs MultiPortInstance::serialization_cost(int i, TopoChoice c) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  const TimeNs ideal = steps_[static_cast<std::size_t>(i)].volume / params_.b;
  const double congestion =
      (c == TopoChoice::kBase) ? 1.0 / theta_[static_cast<std::size_t>(i)] : 1.0;
  return ideal * congestion;
}

TimeNs MultiPortInstance::transition_cost(int i, TopoChoice prev,
                                          TopoChoice cur) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  PSD_REQUIRE(i > 0 || prev == TopoChoice::kBase,
              "the fabric starts in the base configuration");
  if (prev == TopoChoice::kBase && cur == TopoChoice::kBase) return TimeNs(0.0);
  return params_.alpha_r;
}

MultiPortPlan evaluate_multi_port_plan(const MultiPortInstance& inst,
                                       std::vector<TopoChoice> choice) {
  const int s = inst.num_steps();
  PSD_REQUIRE(static_cast<int>(choice.size()) == s, "one choice per step required");
  MultiPortPlan plan;
  plan.breakdown.latency = inst.params().alpha * static_cast<double>(s);
  TopoChoice prev = TopoChoice::kBase;
  for (int i = 0; i < s; ++i) {
    const TopoChoice cur = choice[static_cast<std::size_t>(i)];
    plan.breakdown.propagation += inst.propagation_cost(i, cur);
    plan.breakdown.serialization += inst.serialization_cost(i, cur);
    const TimeNs trans = inst.transition_cost(i, prev, cur);
    if (trans.ns() > 0.0) ++plan.num_reconfigurations;
    plan.breakdown.reconfiguration += trans;
    prev = cur;
  }
  plan.choice = std::move(choice);
  return plan;
}

MultiPortPlan optimal_multi_port_plan(const MultiPortInstance& inst) {
  const int s = inst.num_steps();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::array<TopoChoice, 2> kStates{TopoChoice::kBase,
                                              TopoChoice::kMatched};
  auto step_cost = [&inst](int i, TopoChoice prev, TopoChoice cur) {
    return inst.transition_cost(i, prev, cur).ns() +
           inst.propagation_cost(i, cur).ns() +
           inst.serialization_cost(i, cur).ns();
  };

  std::array<double, 2> dp{kInf, kInf};
  std::vector<std::array<int, 2>> parent(static_cast<std::size_t>(s), {-1, -1});
  for (int c = 0; c < 2; ++c) {
    dp[static_cast<std::size_t>(c)] =
        step_cost(0, TopoChoice::kBase, kStates[static_cast<std::size_t>(c)]);
    parent[0][static_cast<std::size_t>(c)] = 0;
  }
  for (int i = 1; i < s; ++i) {
    std::array<double, 2> next{kInf, kInf};
    for (int c = 0; c < 2; ++c) {
      for (int p = 0; p < 2; ++p) {
        const double cand = dp[static_cast<std::size_t>(p)] +
                            step_cost(i, kStates[static_cast<std::size_t>(p)],
                                      kStates[static_cast<std::size_t>(c)]);
        if (cand < next[static_cast<std::size_t>(c)]) {
          next[static_cast<std::size_t>(c)] = cand;
          parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] = p;
        }
      }
    }
    dp = next;
  }
  int best = (dp[0] <= dp[1]) ? 0 : 1;
  std::vector<TopoChoice> choice(static_cast<std::size_t>(s));
  for (int i = s - 1; i >= 0; --i) {
    choice[static_cast<std::size_t>(i)] = kStates[static_cast<std::size_t>(best)];
    best = parent[static_cast<std::size_t>(i)][static_cast<std::size_t>(best)];
  }
  return evaluate_multi_port_plan(inst, std::move(choice));
}

MultiPortPlan static_multi_port_plan(const MultiPortInstance& inst) {
  return evaluate_multi_port_plan(
      inst, std::vector<TopoChoice>(static_cast<std::size_t>(inst.num_steps()),
                                    TopoChoice::kBase));
}

MultiPortPlan bvn_multi_port_plan(const MultiPortInstance& inst) {
  return evaluate_multi_port_plan(
      inst, std::vector<TopoChoice>(static_cast<std::size_t>(inst.num_steps()),
                                    TopoChoice::kMatched));
}

std::vector<UnionStep> mirrored_alltoall_steps(int n, Bytes buffer) {
  PSD_REQUIRE(n >= 2, "at least 2 nodes required");
  PSD_REQUIRE(buffer.count() > 0.0, "buffer must be positive");
  std::vector<UnionStep> out;
  const Bytes block = buffer / static_cast<double>(n);
  for (int i = 1; i <= (n - 1) / 2; ++i) {
    UnionStep step;
    step.matchings = {topo::Matching::rotation(n, i),
                      topo::Matching::rotation(n, n - i)};
    step.volume = block;
    out.push_back(std::move(step));
  }
  if (n % 2 == 0) {
    UnionStep step;
    step.matchings = {topo::Matching::rotation(n, n / 2)};
    step.volume = block;
    out.push_back(std::move(step));
  }
  return out;
}

std::vector<UnionStep> as_union_steps(const collective::CollectiveSchedule& schedule) {
  std::vector<UnionStep> out;
  out.reserve(static_cast<std::size_t>(schedule.num_steps()));
  for (const auto& s : schedule.steps()) {
    out.push_back(UnionStep{{s.matching}, s.volume});
  }
  return out;
}

}  // namespace psd::core
