#include "psd/core/pipelined_cost.hpp"

#include <algorithm>

namespace psd::core {

PipelinedCostModel::PipelinedCostModel(const ProblemInstance& inst,
                                       ModelExtensions ext)
    : inst_(&inst), ext_(std::move(ext)) {
  if (!ext_.compute_before_step.empty()) {
    PSD_REQUIRE(static_cast<int>(ext_.compute_before_step.size()) ==
                    inst.num_steps(),
                "compute_before_step must have one entry per step");
  }
}

TimeNs PipelinedCostModel::completion(const std::vector<TopoChoice>& choice,
                                      int chunks) const {
  const ProblemInstance& inst = *inst_;
  const int s = inst.num_steps();
  PSD_REQUIRE(static_cast<int>(choice.size()) == s,
              "plan must have one choice per step");
  PSD_REQUIRE(chunks >= 1, "chunk count must be >= 1");
  const std::size_t cn = static_cast<std::size_t>(chunks);
  const bool overlap = !ext_.compute_before_step.empty();
  const TimeNs alpha = inst.params().alpha;

  // The simulator's chunk recurrence (FlowLevelSimulator::run_pipelined),
  // term for term: send(i,c) = max(port-free, data-dep, barrier-gate) + α +
  // ser/C; recv(i,c) = send(i,c) + δ·ℓ_i. Completion is the last step's
  // last arrival — monotone because chunk C−1's data dependency pins it.
  std::vector<TimeNs> prev_send(cn, TimeNs(0.0));
  std::vector<TimeNs> prev_recv(cn, TimeNs(0.0));
  std::vector<TimeNs> send(cn, TimeNs(0.0));
  std::vector<TimeNs> recv(cn, TimeNs(0.0));

  TopoChoice prev = TopoChoice::kBase;
  for (int i = 0; i < s; ++i) {
    const TopoChoice cur = choice[static_cast<std::size_t>(i)];
    const TimeNs prev_end = prev_recv[cn - 1];

    const TimeNs trans = inst.transition_cost(i, prev, cur, ext_);
    const TimeNs compute =
        overlap ? ext_.compute_before_step[static_cast<std::size_t>(i)]
                : TimeNs(0.0);
    const TimeNs pre = TimeNs(std::max(compute.ns(), trans.ns()));
    const bool barriered = pre.ns() > 0.0;
    const TimeNs gate = barriered ? prev_end + pre : TimeNs(0.0);

    const TimeNs ser =
        inst.serialization_cost(i, cur) / static_cast<double>(chunks);
    const TimeNs lag = inst.propagation_cost(i, cur);

    for (int c = 0; c < chunks; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      TimeNs start = (c > 0) ? send[ci - 1] : prev_send[cn - 1];
      start = std::max(start, prev_recv[ci]);
      start = std::max(start, gate);
      send[ci] = start + alpha + ser;
      recv[ci] = send[ci] + lag;
    }

    prev_send.swap(send);
    prev_recv.swap(recv);
    prev = cur;
  }
  return prev_recv[cn - 1];
}

PipelinedCostModel::ChunkSweep PipelinedCostModel::best_over_chunks(
    const std::vector<TopoChoice>& choice, int max_chunks) const {
  PSD_REQUIRE(max_chunks >= 1, "max_chunks must be >= 1");
  ChunkSweep sweep;
  sweep.barrier = completion(choice, 1);
  sweep.chunks = 1;
  sweep.completion = sweep.barrier;
  for (int c = 2; c <= max_chunks; c *= 2) {
    const TimeNs t = completion(choice, c);
    if (t < sweep.completion) {
      sweep.completion = t;
      sweep.chunks = c;
    }
  }
  return sweep;
}

}  // namespace psd::core
