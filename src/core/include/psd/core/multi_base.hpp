// Multi-base-topology extension (paper §3.3): instead of one base topology
// G, the fabric may fall back to any member of a fixed pool {G_0 … G_{k−1}}
// (e.g. co-prime rings). The DP generalizes to k+1 states per step — the k
// bases plus "matched" — staying in the same base is free, every other
// transition pays α_r. The fabric starts in base 0.
#pragma once

#include <vector>

#include "psd/core/cost_model.hpp"

namespace psd::core {

class MultiBaseInstance {
 public:
  /// `oracles` hold the candidate base topologies (all same node count);
  /// they must outlive the instance.
  MultiBaseInstance(const collective::CollectiveSchedule& schedule,
                    std::vector<const flow::ThetaOracle*> oracles,
                    const CostParams& params);

  [[nodiscard]] int num_steps() const { return static_cast<int>(volumes_.size()); }
  [[nodiscard]] int num_bases() const { return static_cast<int>(oracles_.size()); }
  /// States 0..k−1 are bases; state k means "matched to M_i".
  [[nodiscard]] int matched_state() const { return num_bases(); }
  [[nodiscard]] const CostParams& params() const { return params_; }

  [[nodiscard]] TimeNs propagation_cost(int step, int state) const;
  [[nodiscard]] TimeNs serialization_cost(int step, int state) const;
  /// α_r unless prev == cur and both are base states.
  [[nodiscard]] TimeNs transition_cost(int prev_state, int cur_state) const;

 private:
  std::vector<Bytes> volumes_;
  std::vector<std::vector<double>> theta_;  // [step][base]
  std::vector<std::vector<int>> ell_;       // [step][base]
  std::vector<const flow::ThetaOracle*> oracles_;
  CostParams params_;
};

struct MultiBasePlan {
  std::vector<int> state;  // one per step: base index, or matched_state()
  PlanBreakdown breakdown;
  int num_reconfigurations = 0;

  [[nodiscard]] TimeNs total_time() const { return breakdown.total(); }
};

/// Evaluates an explicit state sequence.
[[nodiscard]] MultiBasePlan evaluate_multi_base_plan(const MultiBaseInstance& inst,
                                                     std::vector<int> states);

/// Exact optimum over the pool by DP, O(s·(k+1)²).
[[nodiscard]] MultiBasePlan optimal_multi_base_plan(const MultiBaseInstance& inst);

}  // namespace psd::core
