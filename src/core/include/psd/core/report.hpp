// JSON serialization of plans and planner results, for plotting pipelines
// and regression tracking of bench outputs.
#pragma once

#include <string>

#include "psd/core/planner.hpp"

namespace psd::core {

/// {"choice": ["base"|"matched", ...], "breakdown": {...}, "total_ns": ...}
[[nodiscard]] std::string to_json(const ReconfigPlan& plan);

/// {"optimal": {...}, "static": {...}, "naive_bvn": {...}, "greedy": {...},
///  "speedup_vs_static": ..., "speedup_vs_bvn": ...}
[[nodiscard]] std::string to_json(const PlannerResult& result);

}  // namespace psd::core
