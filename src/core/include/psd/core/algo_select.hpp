// Size-adaptive algorithm selection: the planning-side resolution of
// workload::AllReduceAlgo::kAuto / AllToAllAlgo::kAuto.
//
// Different collective algorithms trade steps against per-step volume (ring:
// 2(n−1) steps of m/n; halving/doubling: 2·log n steps of geometric volume;
// Bruck: log n steps of m/2), so the winner depends on message size, node
// count, and — on an adaptive fabric — on how well each algorithm's
// matchings ride the base topology versus paying α_r to match. The selector
// materializes every applicable candidate, solves the Eq. (7) DP for each,
// prices the optimal plan under chunk-pipelined execution
// (PipelinedCostModel::best_over_chunks, C = 1 included so the score never
// exceeds the barrier cost), and returns the cheapest.
//
// Small messages skip all of that: at or below
// MaterializeOptions::auto_thresholds.small_message the topology-blind
// resolve_*_auto fallback decides in O(1) — the fbcollective pattern of
// switching ring variants at a fixed byte threshold — because
// latency-dominated payloads do not repay a θ solve per candidate. The
// fallback's pick is still planned (one solve) so callers get a full plan
// either way.
#pragma once

#include <string>
#include <vector>

#include "psd/core/pipelined_cost.hpp"
#include "psd/core/planner.hpp"
#include "psd/workload/workload.hpp"

namespace psd::core {

struct AlgoSelectOptions {
  int max_chunks = 64;  // pipelining sweep ceiling (powers of two)
};

/// One scored candidate: the algorithm, its DP-optimal barrier plan, and the
/// pipelined price that ranked it.
struct AlgoCandidate {
  std::string algo;            // "ring", "rd", "hd", "swing" / "transpose", "bruck"
  // The resolved enums (only the one matching the request kind is
  // meaningful) so callers can re-materialize the winner directly.
  workload::AllReduceAlgo allreduce = workload::AllReduceAlgo::kHalvingDoubling;
  workload::AllToAllAlgo alltoall = workload::AllToAllAlgo::kTranspose;
  ReconfigPlan plan;           // Eq. (7) DP optimum for this algorithm
  TimeNs barrier_dct;          // plan.total_time()
  TimeNs pipelined_dct;        // best over chunk counts (≤ barrier_dct)
  int pipeline_chunks = 1;     // argmin chunk count
};

struct AlgoSelection {
  AlgoCandidate chosen;
  // Every candidate scored, in the deterministic sweep order (ring, rd, hd,
  // swing / transpose, bruck). Holds only `chosen` on the threshold-fallback
  // path.
  std::vector<AlgoCandidate> candidates;
  bool threshold_fallback = false;  // small-message O(1) path taken
};

/// Resolves `request` (kAllReduce or kAllToAll; other kinds are rejected)
/// against `planner`'s base topology and cost parameters. Ignores the
/// allreduce/alltoall fields of `opts` — selection is the point — but honors
/// its thresholds and broadcast root. Ties keep the earlier candidate.
[[nodiscard]] AlgoSelection select_algorithm(
    const Planner& planner, const workload::CollectiveRequest& request,
    const workload::MaterializeOptions& opts = {}, const ModelExtensions& ext = {},
    const AlgoSelectOptions& sel = {});

}  // namespace psd::core
