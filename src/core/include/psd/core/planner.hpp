// High-level facade: given a base topology and cost parameters, plan a
// collective and compare the optimized schedule against the static and
// naive-BvN baselines — the exact comparison behind the paper's Figure 1
// and Figure 2.
#pragma once

#include <memory>

#include "psd/core/optimizers.hpp"

namespace psd::core {

struct PlannerResult {
  ReconfigPlan optimal;     // DP optimum of Eq. (7)
  ReconfigPlan static_base; // never reconfigure
  ReconfigPlan naive_bvn;   // reconfigure every step
  ReconfigPlan greedy;      // myopic threshold heuristic

  /// Completion-time ratios (≥ 1 by DP optimality).
  [[nodiscard]] double speedup_vs_static() const {
    return static_base.total_time() / optimal.total_time();
  }
  [[nodiscard]] double speedup_vs_bvn() const {
    return naive_bvn.total_time() / optimal.total_time();
  }
  /// Versus the better of the two baselines (Figure 2's comparison).
  [[nodiscard]] double speedup_vs_best_baseline() const {
    return std::min(static_base.total_time(), naive_bvn.total_time()) /
           optimal.total_time();
  }
};

struct PlannerOptions {
  // Prewarm the θ cache and run the four strategies on the shared
  // util::ThreadPool. The strategies are independent pure functions of the
  // problem instance and θ is a pure function of each matching, so the
  // result is identical to the serial path — this is an execution
  // strategy, not an algorithm change.
  bool parallel = true;
};

class Planner {
 public:
  /// Owns a copy of the base topology; the θ cache persists across plan()
  /// calls, so parameter sweeps over the same collective are cheap. Multi-
  /// tenant sweeps can set theta_opts.shared_cache to pool θ results across
  /// planners (see psd/sweep/shared_theta_cache.hpp); by default each
  /// planner's oracle memoizes privately.
  Planner(topo::Graph base, CostParams params, flow::ThetaOptions theta_opts = {},
          PlannerOptions planner_opts = {});

  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  [[nodiscard]] const topo::Graph& base() const { return base_; }
  [[nodiscard]] const CostParams& params() const { return params_; }
  [[nodiscard]] const flow::ThetaOracle& oracle() const { return *oracle_; }

  /// Updates cost parameters (the θ cache survives; bandwidth must stay
  /// fixed because θ is normalized by it).
  void set_params(const CostParams& params);

  /// Plans `schedule` and evaluates all baselines. With
  /// PlannerOptions::parallel, θ values for the steps are computed
  /// concurrently over the oracle's thread-safe cache and the four
  /// strategies run concurrently; output is identical to the serial path.
  [[nodiscard]] PlannerResult plan(const collective::CollectiveSchedule& schedule,
                                   const ModelExtensions& ext = {}) const;

  /// Builds just the problem instance (for custom optimizers).
  [[nodiscard]] ProblemInstance instance(
      const collective::CollectiveSchedule& schedule) const;

 private:
  topo::Graph base_;
  CostParams params_;
  PlannerOptions planner_opts_;
  std::unique_ptr<flow::ThetaOracle> oracle_;
};

}  // namespace psd::core
