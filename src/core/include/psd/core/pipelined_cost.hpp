// Analytic pricing of chunk-pipelined execution (the sim's pipeline mode).
//
// Barrier-mode Eq. (4) charges every step end-to-end: α + δ·ℓ_i + β·m_i/θ_i,
// summed. A chunk-pipelined executor splits each step's per-pair payload
// into C chunks and lets step i+1 start transmitting chunk c as soon as
// (a) its transceiver is free, (b) chunk c of step i has arrived (the data
// dependency — step i+1 forwards what step i delivered), and (c) no
// reconfiguration separates the steps (the fabric cannot retime while
// chunks are in flight, so any charged α_r — or blocking compute — is a
// hard barrier on the previous step's last arrival).
//
// This model evaluates the identical max-plus recurrence the simulator
// executes (FlowLevelSimulator with SimConfig::pipeline), from
// ProblemInstance data alone — the calibration tests assert the two agree
// to floating-point noise. At chunks == 1 it reproduces the barrier
// objective of evaluate_plan exactly: every chunk-0 data dependency is the
// previous step's last arrival.
//
// The tradeoff it prices: pipelining pays α per chunk round (C·α per step)
// but hides serialization and propagation behind the previous step wherever
// no reconfiguration intervenes — so it wins at large payloads on
// reconfiguration-free plans and loses at small ones, which is exactly the
// signal the algorithm selector (algo_select.hpp) needs.
#pragma once

#include <vector>

#include "psd/core/cost_model.hpp"

namespace psd::core {

class PipelinedCostModel {
 public:
  /// Borrows `inst` (must outlive the model). `ext` is honored exactly as
  /// evaluate_plan honors it: transitions via transition_cost (dedup, delay
  /// model) and per-step compute via compute_before_step.
  explicit PipelinedCostModel(const ProblemInstance& inst,
                              ModelExtensions ext = {});

  /// Completion time of `choice` executed with C = `chunks` pipeline chunks.
  /// chunks == 1 equals evaluate_plan(inst, choice, ext).total_time() up to
  /// floating-point association.
  [[nodiscard]] TimeNs completion(const std::vector<TopoChoice>& choice,
                                  int chunks) const;

  struct ChunkSweep {
    int chunks = 1;        // argmin chunk count
    TimeNs completion;     // min over the sweep (≤ barrier: C = 1 included)
    TimeNs barrier;        // completion at C = 1 (the barrier schedule)
  };

  /// Sweeps C over powers of two (1, 2, 4, … ≤ max_chunks) and returns the
  /// best. C = 1 is always swept, so `completion ≤ barrier` holds by
  /// construction — pipelining is adopted only where it helps. Ties keep
  /// the smaller chunk count (fewer α rounds at equal predicted time).
  [[nodiscard]] ChunkSweep best_over_chunks(const std::vector<TopoChoice>& choice,
                                            int max_chunks = 64) const;

 private:
  const ProblemInstance* inst_;
  ModelExtensions ext_;
};

}  // namespace psd::core
