// Multi-ported collectives (paper §4 future work): each GPU has `ports`
// transceivers, so a step's communication pattern is a *union of matchings*
// rather than a single permutation — e.g. the mirrored ring collectives of
// Sack & Gropp that the paper's §2 cites, which run a clockwise and a
// counter-clockwise permutation simultaneously.
//
// Semantics:
//   - base choice: all union commodities share the base topology; the
//     congestion factor is the concurrent flow of the union demand, and
//     β stays 1/b because DCT = m / (b·θ) with each pair demanding rate b.
//   - matched choice: realizable iff the union has at most `ports`
//     matchings (one circuit plane per transceiver); θ = 1, ℓ = 1.
//   - reconfiguration: Eq. (7)'s z-rule, unchanged.
//
// The DP over {base, matched} carries over verbatim; only the per-step
// quantities change.
#pragma once

#include "psd/core/cost_model.hpp"

namespace psd::core {

/// One multi-port step: every matching in the union moves `volume` bytes
/// per communicating pair, all simultaneously.
struct UnionStep {
  std::vector<topo::Matching> matchings;
  Bytes volume;
};

class MultiPortInstance {
 public:
  /// `ports` is the transceiver count per GPU; every step's union must have
  /// between 1 and `ports` matchings. The oracle's base topology should
  /// offer matching aggregate capacity (e.g. a union of `ports` co-prime
  /// rings), but any strongly-connected base is accepted.
  MultiPortInstance(std::vector<UnionStep> steps, const flow::ThetaOracle& oracle,
                    const CostParams& params, int ports);

  [[nodiscard]] int num_steps() const { return static_cast<int>(steps_.size()); }
  [[nodiscard]] int ports() const { return ports_; }
  [[nodiscard]] const CostParams& params() const { return params_; }
  [[nodiscard]] const UnionStep& step(int i) const;
  [[nodiscard]] double theta_base(int i) const;

  [[nodiscard]] TimeNs propagation_cost(int i, TopoChoice c) const;
  [[nodiscard]] TimeNs serialization_cost(int i, TopoChoice c) const;
  /// Eq. (7) z-rule with constant α_r.
  [[nodiscard]] TimeNs transition_cost(int i, TopoChoice prev, TopoChoice cur) const;

 private:
  std::vector<UnionStep> steps_;
  std::vector<double> theta_;  // θ(G, union demand) per step
  std::vector<int> ell_;       // max pair hops over the union per step
  CostParams params_;
  int ports_;
};

struct MultiPortPlan {
  std::vector<TopoChoice> choice;
  PlanBreakdown breakdown;
  int num_reconfigurations = 0;

  [[nodiscard]] TimeNs total_time() const { return breakdown.total(); }
};

[[nodiscard]] MultiPortPlan evaluate_multi_port_plan(const MultiPortInstance& inst,
                                                     std::vector<TopoChoice> choice);

/// Exact DP optimum over the two fabric states.
[[nodiscard]] MultiPortPlan optimal_multi_port_plan(const MultiPortInstance& inst);

/// Baselines.
[[nodiscard]] MultiPortPlan static_multi_port_plan(const MultiPortInstance& inst);
[[nodiscard]] MultiPortPlan bvn_multi_port_plan(const MultiPortInstance& inst);

/// Pairs the transpose All-to-All's rotations into two-port union steps
/// (rotation i together with rotation n−i), halving the step count — the
/// "mirrored" construction for dual-ported domains. Requires ports >= 2.
[[nodiscard]] std::vector<UnionStep> mirrored_alltoall_steps(int n, Bytes buffer);

/// Splits any single-port schedule into union steps of one matching each
/// (the degenerate multi-port form, for comparisons).
[[nodiscard]] std::vector<UnionStep> as_union_steps(
    const collective::CollectiveSchedule& schedule);

}  // namespace psd::core
