// The α–β–δ cost model grounded in maximum concurrent flow (paper §3.2).
//
// The demand completion time of step i (Eq. 3) is
//
//     DCT(m_i·M_i) = α  +  δ·ℓ_i  +  β·m_i·(1/θ(G, M_i))
//                    ───    ─────     ────────────────────
//                  latency  propagation  bandwidth·congestion
//
// where β = 1/b, ℓ_i is the hop length of the longest routed path of the
// step (1 when the fabric is matched to M_i), and θ is the maximum
// concurrent flow of M_i on the current topology (1 when matched).
//
// ProblemInstance precomputes (m_i, θ_i, ℓ_i, M_i) per step against a base
// topology so optimizers can evaluate any reconfiguration schedule in O(s).
#pragma once

#include <optional>
#include <vector>

#include "psd/collective/schedule.hpp"
#include "psd/flow/theta.hpp"
#include "psd/photonic/reconfig_delay.hpp"
#include "psd/topo/graph.hpp"

namespace psd::core {

/// Model parameters (paper §3.2/§3.4 notation).
struct CostParams {
  TimeNs alpha;    // fixed per-step startup latency α
  TimeNs delta;    // per-hop propagation delay δ
  TimeNs alpha_r;  // reconfiguration delay α_r (constant model)
  Bandwidth b;     // per-transceiver bandwidth (β = 1/b)
};

/// Per-step precomputed quantities against the base topology G.
struct StepParams {
  Bytes volume;       // m_i
  double theta_base;  // θ(G, M_i)
  int ell_base;       // ℓ(G, M_i): max hop count among the step's pairs
  topo::Matching matching;  // M_i (kept for delay models / dedup)
};

/// Per-step topology decision: the paper's x_i (kBase ⇔ x_i = 1).
enum class TopoChoice : std::uint8_t { kBase, kMatched };

/// Extensions beyond the paper's Eq. (7) (all off by default).
struct ModelExtensions {
  // Skip α_r for matched→matched transitions whose matchings are identical.
  bool dedup_identical_matchings = false;
  // Price transitions with a port-count-aware delay model instead of the
  // constant α_r. Requires base_config (the permutation realizing G) so
  // base↔matched transitions are well defined.
  const photonic::ReconfigDelayModel* delay_model = nullptr;
  std::optional<topo::Matching> base_config;
  // Per-step compute time available to hide reconfiguration behind
  // (research agenda: "overlapping reconfiguration with computation").
  // compute[i] runs before step i's communication; the effective
  // reconfiguration penalty becomes max(0, reconf_delay − compute[i]).
  std::vector<TimeNs> compute_before_step;
};

/// Additive breakdown of a plan's completion time (Eq. 4 / Eq. 7 objective).
struct PlanBreakdown {
  TimeNs latency;        // s·α
  TimeNs propagation;    // δ·Σ ℓ
  TimeNs reconfiguration;
  TimeNs serialization;  // β·Σ m_i/θ_i
  TimeNs compute;        // Σ compute_before_step (overlap extension only)

  [[nodiscard]] TimeNs total() const {
    return latency + propagation + reconfiguration + serialization + compute;
  }
};

/// A reconfiguration schedule plus its predicted cost.
struct ReconfigPlan {
  std::vector<TopoChoice> choice;  // one per step
  PlanBreakdown breakdown;
  int num_reconfigurations = 0;

  [[nodiscard]] TimeNs total_time() const { return breakdown.total(); }
};

class ProblemInstance {
 public:
  /// Precomputes θ and ℓ for every step of `schedule` against the oracle's
  /// base topology. All step matchings must be non-empty with positive
  /// volume. The oracle memoizes θ, so rebuilding instances for the same
  /// collective at different message sizes or cost parameters is cheap.
  ProblemInstance(const collective::CollectiveSchedule& schedule,
                  const flow::ThetaOracle& oracle, const CostParams& params);

  /// Builds from raw steps (volume, matching) — for custom collectives.
  ProblemInstance(const std::vector<std::pair<Bytes, topo::Matching>>& raw_steps,
                  const flow::ThetaOracle& oracle, const CostParams& params);

  [[nodiscard]] int num_steps() const { return static_cast<int>(steps_.size()); }
  [[nodiscard]] const StepParams& step(int i) const;
  [[nodiscard]] const std::vector<StepParams>& steps() const { return steps_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// DCT components excluding α for step i under the given choice.
  [[nodiscard]] TimeNs propagation_cost(int i, TopoChoice c) const;
  [[nodiscard]] TimeNs serialization_cost(int i, TopoChoice c) const;

  /// Reconfiguration delay charged *before* step i (0-indexed) given the
  /// previous and current choice, honoring extensions. The fabric starts in
  /// the base state (x_0 = 1), so prev for i = 0 is kBase.
  [[nodiscard]] TimeNs transition_cost(int i, TopoChoice prev, TopoChoice cur,
                                       const ModelExtensions& ext) const;

 private:
  void build(const std::vector<std::pair<Bytes, topo::Matching>>& raw,
             const flow::ThetaOracle& oracle);

  std::vector<StepParams> steps_;
  CostParams params_;
};

/// Evaluates a full plan (the Eq. 7 objective) for the given choices.
[[nodiscard]] ReconfigPlan evaluate_plan(const ProblemInstance& inst,
                                         std::vector<TopoChoice> choice,
                                         const ModelExtensions& ext = {});

}  // namespace psd::core
