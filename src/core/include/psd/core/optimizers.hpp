// Reconfiguration-schedule optimizers for the paper's 0–1 ILP (Eq. 7).
//
// The ILP's sequential structure (x_i and z_i couple only adjacent steps)
// admits an exact dynamic program over two states per step — polynomial
// time, per the paper's observation. Baselines: the static schedule (never
// reconfigure), the naive BvN schedule (reconfigure every step to match the
// pattern), a brute-force enumerator (the test oracle for DP optimality) and
// the research agenda's myopic threshold heuristic.
#pragma once

#include "psd/core/cost_model.hpp"

namespace psd::core {

/// Never reconfigure: x_i = 1 for all steps (the static base topology).
[[nodiscard]] ReconfigPlan static_plan(const ProblemInstance& inst,
                                       const ModelExtensions& ext = {});

/// Reconfigure every step to match M_i: x_i = 0 for all steps (the paper's
/// "BvN schedule" baseline — what demand-aware circuit scheduling would do).
[[nodiscard]] ReconfigPlan bvn_plan(const ProblemInstance& inst,
                                    const ModelExtensions& ext = {});

/// Exact optimum of Eq. (7) by dynamic programming over the two fabric
/// states, O(s) time. Ties break toward the base topology.
[[nodiscard]] ReconfigPlan optimal_plan(const ProblemInstance& inst,
                                        const ModelExtensions& ext = {});

/// Exhaustive search over all 2^s schedules; requires s <= 24. Exists to
/// certify optimal_plan in tests.
[[nodiscard]] ReconfigPlan brute_force_plan(const ProblemInstance& inst,
                                            const ModelExtensions& ext = {});

/// Myopic threshold heuristic (research agenda): reconfigure for step i iff
/// the step's standalone gain δ·(ℓ_i−1) + β·m_i·(1/θ_i−1) exceeds α_r.
/// Ignores transition coupling (e.g. the return-to-base charge), so it can
/// be arbitrarily suboptimal in the transitional regime — quantified in
/// bench/ablation_heuristic_quality.
[[nodiscard]] ReconfigPlan greedy_threshold_plan(const ProblemInstance& inst,
                                                 const ModelExtensions& ext = {});

}  // namespace psd::core
