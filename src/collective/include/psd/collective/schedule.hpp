// Collective communication schedules as sequences of matchings.
//
// The paper models a collective as a sequence ⟨M_1 … M_s⟩ of matchings with
// per-step data volumes ⟨m_1 … m_s⟩ (§3.2). We additionally annotate each
// step with chunk-level transfers so schedules can be *executed* on symbolic
// state and their collective semantics verified (AllReduce really reduces,
// All-to-All really transposes) — the temporal/data-dependency structure the
// paper stresses is what distinguishes collectives from static traffic
// matrices.
#pragma once

#include <string>
#include <vector>

#include "psd/collective/chunk_list.hpp"
#include "psd/topo/matching.hpp"
#include "psd/util/units.hpp"

namespace psd::collective {

/// How chunk indices in Transfer::chunks are interpreted.
enum class ChunkSpace {
  // Chunk c is the c-th segment of the (logically shared) vector; reductions
  // combine contributions segment-wise. Used by AllReduce-family schedules.
  kSegments,
  // Chunk id encodes an (owner, destination) block: id = owner*n + dest,
  // each of size buffer/n. Used by All-to-All-family schedules.
  kBlocks,
};

/// One chunk-level data movement within a step. The (src, dst) pair must be
/// present in the step's matching, and a step may carry at most one transfer
/// per pair.
struct Transfer {
  int src = -1;
  int dst = -1;
  ChunkList chunks;
  bool reduce = false;  // true: receiver accumulates; false: receiver replaces
};

/// One synchronous communication step: all pairs of `matching` exchange
/// `volume` bytes simultaneously (the paper's m_i · M_i).
struct Step {
  topo::Matching matching;
  Bytes volume;                     // bytes per communicating pair
  std::vector<Transfer> transfers;  // optional chunk-level annotation
  std::string label;

  /// Widest per-pair transfer of the step, in chunks (0 if un-annotated):
  /// the step's own finest pipelining granularity — a transfer moving k
  /// chunks can be progressed per-chunk without splitting below the
  /// schedule's chunk size.
  [[nodiscard]] int max_transfer_chunks() const;
};

class CollectiveSchedule {
 public:
  CollectiveSchedule(std::string name, int n, Bytes buffer, int num_chunks,
                     ChunkSpace space);

  /// Appends a step; validates matching size, volume sign, and that each
  /// transfer's endpoints appear in the matching with consistent byte count
  /// (|chunks| · chunk_size == volume for annotated steps). At most one
  /// transfer per (src, dst) pair — duplicates are rejected.
  void add_step(Step step);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] Bytes buffer_size() const { return buffer_; }
  [[nodiscard]] int num_chunks() const { return num_chunks_; }
  [[nodiscard]] ChunkSpace chunk_space() const { return space_; }
  [[nodiscard]] Bytes chunk_size() const;
  [[nodiscard]] int num_steps() const { return static_cast<int>(steps_.size()); }
  [[nodiscard]] const Step& step(int i) const;
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }

  /// True if every step is *completely* annotated: each active (src, dst)
  /// pair of the step's matching carries a transfer. A step annotating only
  /// some pairs does not count — executing it would silently under-deliver.
  [[nodiscard]] bool fully_annotated() const;

  /// Total bytes a single node sends across all steps (max over nodes) — the
  /// bandwidth-optimality yardstick (AllReduce lower bound: 2(n−1)/n · M).
  [[nodiscard]] Bytes max_bytes_sent_per_node() const;

  /// The chunk count a pipelined executor can sensibly split step payloads
  /// into: the widest per-pair transfer across all annotated steps (a
  /// schedule whose steps each move a single chunk per pair — e.g. ring
  /// allreduce — is already chunk-granular and reports 1). Un-annotated
  /// schedules fall back to num_chunks(). Always >= 1.
  [[nodiscard]] int natural_pipeline_chunks() const;

  /// Aggregate demand matrix M = Σ m_i · M_i in bytes (paper Eq. 1).
  [[nodiscard]] psd::Matrix aggregate_demand() const;

  /// Concatenates `tail` after this schedule (e.g. AllReduce then
  /// All-to-All, which the paper's framework explicitly supports). Requires
  /// equal n; chunk annotations are kept only if both agree on chunk layout,
  /// otherwise they are dropped (matchings and volumes always preserved).
  [[nodiscard]] CollectiveSchedule then(const CollectiveSchedule& tail) const;

 private:
  std::string name_;
  int n_;
  Bytes buffer_;
  int num_chunks_;
  ChunkSpace space_;
  std::vector<Step> steps_;
};

}  // namespace psd::collective
