// Symbolic executors that run a CollectiveSchedule's chunk-annotated
// transfers and verify collective semantics.
//
// ChunkExecutor tracks, for every (node, chunk), the *set of contributions*
// included (a bitmask over source nodes). A reduce transfer unions masks and
// flags double counting (overlapping masks would double-add in a real
// reduction); a replace transfer overwrites. AllReduce is correct iff every
// mask ends full. This catches both missing and duplicated contributions —
// strictly stronger than comparing floating-point sums.
//
// BlockExecutor tracks block placement for routing-only collectives
// (All-to-All): node j starts holding blocks (j, *) and must end holding all
// blocks (*, j).
#pragma once

#include <cstdint>
#include <vector>

#include "psd/collective/schedule.hpp"

namespace psd::collective {

/// Initial ownership for ChunkExecutor.
enum class InitMode {
  // Every node holds a partial contribution {j} for every chunk — the start
  // state of AllReduce / reduce-scatter.
  kAllReduce,
  // Node j holds the complete chunk j and nothing else — the start state of
  // allgather (post-reduce-scatter).
  kAllGather,
  // Only `root` holds complete data (every chunk) — the start state of
  // broadcast.
  kBroadcast,
};

class ChunkExecutor {
 public:
  /// Prepares initial state for `schedule` (must use ChunkSpace::kSegments
  /// and be fully annotated) and executes all steps. Steps are synchronous:
  /// every transfer reads the sender's state from the start of the step.
  ChunkExecutor(const CollectiveSchedule& schedule, InitMode mode, int root = 0);

  /// Gather-phase initial state with explicit ownership: node owners[c]
  /// starts holding the complete chunk c (e.g. the ring reduce-scatter
  /// leaves chunk c at node (c−1) mod n). Executes all steps.
  ChunkExecutor(const CollectiveSchedule& schedule, const std::vector<int>& owners);

  /// True if some reduce transfer unioned overlapping masks (a real
  /// reduction would have double-counted).
  [[nodiscard]] bool double_counted() const { return double_counted_; }

  /// Contribution mask of (node, chunk) as a bit-per-source vector.
  [[nodiscard]] bool has_contribution(int node, int chunk, int source) const;
  [[nodiscard]] bool mask_full(int node, int chunk) const;
  [[nodiscard]] bool mask_empty(int node, int chunk) const;

  /// Every node holds every chunk fully reduced, with no double counting.
  [[nodiscard]] bool verify_allreduce() const;

  /// Node owner(chunk) holds that chunk fully reduced; `owners[c]` gives the
  /// expected owner of chunk c.
  [[nodiscard]] bool verify_reduce_scatter(const std::vector<int>& owners) const;

  /// Every node holds every chunk complete (allgather / broadcast end state).
  [[nodiscard]] bool verify_all_complete() const;

 private:
  void init_shape(const CollectiveSchedule& schedule);
  void set_bit(int node, int chunk, int source);
  void set_full(int node, int chunk);
  void run(const CollectiveSchedule& schedule);

  [[nodiscard]] std::size_t idx(int node, int chunk) const {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(chunks_) +
            static_cast<std::size_t>(chunk)) *
           words_;
  }

  int n_ = 0;
  int chunks_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> mask_;  // [node][chunk][word]
  bool double_counted_ = false;
};

class BlockExecutor {
 public:
  /// Executes a ChunkSpace::kBlocks schedule (must be fully annotated).
  explicit BlockExecutor(const CollectiveSchedule& schedule);

  [[nodiscard]] bool holds(int node, int chunk) const;

  /// Every node j ends holding all blocks (i, j), i = 0..n−1.
  [[nodiscard]] bool verify_alltoall() const;

 private:
  int n_ = 0;
  std::vector<std::vector<bool>> held_;  // held_[node][chunk]
};

/// Convenience one-shot checks.
[[nodiscard]] bool is_valid_allreduce(const CollectiveSchedule& schedule);
[[nodiscard]] bool is_valid_alltoall(const CollectiveSchedule& schedule);

}  // namespace psd::collective
