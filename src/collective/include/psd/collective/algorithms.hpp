// The collective algorithm zoo evaluated by the paper.
//
// Every builder returns a fully chunk-annotated CollectiveSchedule whose
// semantics can be machine-verified by psd::collective::ChunkExecutor /
// BlockExecutor. Volumes follow the standard cost analyses:
//
//   ring AllReduce          2(n−1) steps of M/n        (bandwidth-optimal)
//   halving/doubling [30]   2·log2(n) steps, M/2^(s+1) then doubling
//   Swing [32]              same volumes, ring-neighbour peers
//   recursive doubling      log2(n) steps of M         (latency-optimal)
//   All-to-All (transpose)  n−1 rotation steps of M/n
//   binomial broadcast      ceil(log2 n) steps of M
#pragma once

#include "psd/collective/recursive_exchange.hpp"
#include "psd/collective/schedule.hpp"

namespace psd::collective {

/// Ring reduce-scatter: n−1 steps; at step s node j sends chunk (j−s) mod n
/// to node j+1 for reduction. Node j ends owning chunk (j+1) mod n.
[[nodiscard]] CollectiveSchedule ring_reduce_scatter(int n, Bytes buffer);

/// Ring allgather: n−1 steps; at step s node j sends chunk (j+1−s) mod n to
/// node j+1. Assumes ring-reduce-scatter ownership (node j owns (j+1) mod n).
[[nodiscard]] CollectiveSchedule ring_allgather(int n, Bytes buffer);

/// Ring AllReduce = ring reduce-scatter + ring allgather; 2(n−1) steps.
[[nodiscard]] CollectiveSchedule ring_allreduce(int n, Bytes buffer);

/// Rabenseifner recursive halving/doubling AllReduce [30] (n = 2^q).
[[nodiscard]] CollectiveSchedule halving_doubling_allreduce(int n, Bytes buffer);

/// Swing AllReduce [32] (n = 2^q).
[[nodiscard]] CollectiveSchedule swing_allreduce(int n, Bytes buffer);

/// Plain recursive doubling AllReduce: log2(n) full-vector exchanges
/// (latency-optimal, not bandwidth-optimal; n = 2^q).
[[nodiscard]] CollectiveSchedule recursive_doubling_allreduce(int n, Bytes buffer);

/// All-to-All personalized exchange (transpose): step i ∈ [1, n−1] uses the
/// rotation j → (j+i) mod n, moving block (j, j+i) of size M/n. The
/// self-block (j, j) never leaves the node.
[[nodiscard]] CollectiveSchedule alltoall_transpose(int n, Bytes buffer);

/// Bruck All-to-All (n = 2^q): log2(n) rotation steps by 2^k; step k
/// forwards every held block whose remaining rotation distance has bit k
/// set (≈ n/2 blocks, possibly relayed). Total bytes per node
/// log2(n)/2 · M versus the transpose's (n−1)/n · M — fewer, larger steps
/// trade bandwidth for latency, which changes the reconfiguration calculus.
[[nodiscard]] CollectiveSchedule alltoall_bruck(int n, Bytes buffer);

/// Binomial-tree broadcast from `root`: ceil(log2 n) steps of partial
/// matchings, each transferring the full buffer.
[[nodiscard]] CollectiveSchedule binomial_broadcast(int n, int root, Bytes buffer);

/// Allgather by recursive doubling (n = 2^q): log2(n) steps, volumes
/// M/n · 2^s, peers j XOR 2^s.
[[nodiscard]] CollectiveSchedule recursive_doubling_allgather(int n, Bytes buffer);

/// Bruck allgather: works for ANY n in ceil(log2 n) rotation steps. At step
/// k node j ships its current gathered window (min(2^k, n−2^k) chunks) to
/// (j − 2^k) mod n; after the last (possibly partial) step everyone holds
/// everything.
[[nodiscard]] CollectiveSchedule bruck_allgather(int n, Bytes buffer);

/// Binomial-tree reduce to `root`: ceil(log2 n) steps of partial matchings,
/// each transferring the full buffer with reduction; the mirror image of
/// binomial_broadcast.
[[nodiscard]] CollectiveSchedule binomial_reduce(int n, int root, Bytes buffer);

/// Binomial scatter from `root` (n = 2^q): step with span s moves s chunks
/// from each subtree root to its child subtree; node j ends holding chunk
/// (j − root) mod n of the root's buffer.
[[nodiscard]] CollectiveSchedule binomial_scatter(int n, int root, Bytes buffer);

/// Binomial gather to `root` (n = 2^q): the exact reverse of scatter.
[[nodiscard]] CollectiveSchedule binomial_gather(int n, int root, Bytes buffer);

/// Dissemination barrier: ceil(log2 n) rounds; round k sends a flag of
/// `flag_bytes` to (j + 2^k) mod n. After the last round every node has
/// (transitively) heard from every other — verified by knowledge masks.
/// Works for any n.
[[nodiscard]] CollectiveSchedule dissemination_barrier(int n, Bytes flag_bytes);

}  // namespace psd::collective
