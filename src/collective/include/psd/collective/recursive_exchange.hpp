// Generic builder for recursive-exchange AllReduce algorithms.
//
// A large family of bandwidth-optimal AllReduce algorithms — Rabenseifner's
// recursive halving/doubling [30] and Swing [32] among them — share one
// skeleton: log2(n) reduce-scatter steps in which partners exchange half of
// their current responsibility set, followed by log2(n) mirrored allgather
// steps. They differ only in the *peer function* p(j, s).
//
// Given any involutive peer function, this builder derives the chunk
// responsibility sets by backward recursion
//     A(j, log n) = {j},   A(j, s) = A(j, s+1) ∪ A(p(j,s), s+1),
// and verifies the partition invariant (the two halves are disjoint and
// |A(j, s)| = 2^(log n − s)). A peer function that fails the invariant does
// not implement a correct AllReduce and is rejected — this check doubles as
// a machine-checkable correctness proof for Swing's peer formula.
#pragma once

#include <functional>

#include "psd/collective/schedule.hpp"

namespace psd::collective {

/// Peer of node `j` at reduce-scatter step `s` (s = 0 .. log2(n)-1).
using PeerFn = std::function<int(int j, int s)>;

/// Builds the full AllReduce (reduce-scatter + mirrored allgather) schedule
/// for n a power of two and per-node buffer `buffer`. Throws InvalidArgument
/// if n is not a power of two, the peer function is not an involution, or
/// the partition invariant fails.
[[nodiscard]] CollectiveSchedule recursive_exchange_allreduce(
    std::string name, int n, Bytes buffer, const PeerFn& peer);

/// Reduce-scatter phase only: node j ends owning the fully reduced chunk
/// set A(j, log n) = {j}.
[[nodiscard]] CollectiveSchedule recursive_exchange_reduce_scatter(
    std::string name, int n, Bytes buffer, const PeerFn& peer);

// ---- Standard peer functions -------------------------------------------

/// Rabenseifner recursive halving/doubling: p(j, s) = j XOR 2^(log2(n)-1-s)
/// (largest distance first).
[[nodiscard]] PeerFn halving_doubling_peers(int n);

/// Swing (De Sensi et al., NSDI'24): p(j, s) = (j + (−1)^j · ρ_s) mod n with
/// ρ_s = (1 − (−2)^(s+1)) / 3, i.e. ring distances 1, 1, 3, 5, 11, 21, …
/// chosen so successive steps use nearby ring neighbours.
[[nodiscard]] PeerFn swing_peers(int n);

/// The Swing distance ρ_s (signed); exposed for tests and docs.
[[nodiscard]] long long swing_rho(int s);

}  // namespace psd::collective
