// Interval-coded chunk sets for schedule transfers.
//
// The chunk sets moved by real collective builders are almost always
// contiguous mod-n windows (ring/binomial) or unions of a handful of runs
// (swing/halving-doubling responsibility sets), so storing them as explicit
// per-chunk int vectors made schedule generation allocation-bound
// (ROADMAP: BM_CollectiveGeneration/1024 ≈ 11 ms). ChunkList stores the set
// as a sorted run-length list of (start, len) intervals with a two-run
// inline buffer, so the common one-window transfer is allocation-free and
// set algebra (union/intersection, the recursive-exchange partition
// invariant) runs in O(runs) instead of O(chunks).
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace psd::collective {

/// A sorted set of non-negative chunk indices, run-length encoded as
/// maximal half-open runs [start, start+len). Invariants: runs are sorted,
/// non-empty, non-overlapping and non-adjacent (always maximally coalesced),
/// so two ChunkLists hold the same set iff their runs are identical.
class ChunkList {
 public:
  struct Interval {
    int start = 0;
    int len = 0;
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  ChunkList() = default;
  /// Builds from explicit chunk ids in any order; duplicates are rejected
  /// (a transfer moving the same chunk twice is a schedule bug).
  ChunkList(std::initializer_list<int> chunks);

  ChunkList(const ChunkList&) = default;
  ChunkList& operator=(const ChunkList&) = default;
  // Moves leave the source empty: the default would keep the source's run
  // count while its spill buffer is gone, making data() dangle.
  ChunkList(ChunkList&& other) noexcept { *this = std::move(other); }
  ChunkList& operator=(ChunkList&& other) noexcept {
    if (this != &other) {
      for (int i = 0; i < kInline; ++i) inline_[i] = other.inline_[i];
      spill_ = std::move(other.spill_);
      spill_offset_ = other.spill_offset_;
      runs_ = other.runs_;
      total_ = other.total_;
      other.clear();
    }
    return *this;
  }

  /// The singleton set {chunk}.
  [[nodiscard]] static ChunkList single(int chunk);
  /// The contiguous run [start, start+len); len must be >= 1.
  [[nodiscard]] static ChunkList range(int start, int len);
  /// The mod-n window {(start + i) mod n : i < len} as one or two runs;
  /// requires 0 <= start < n and 1 <= len <= n.
  [[nodiscard]] static ChunkList wrapped_range(int start, int len, int n);
  /// Builds from explicit chunk ids in any order; duplicates are rejected.
  [[nodiscard]] static ChunkList from_unsorted(std::vector<int> chunks);
  /// The set {(c + offset) mod n : c ∈ base}; base must lie within [0, n).
  /// O(runs) — rotation maps runs to runs (at most one splits at the wrap
  /// point). This is what makes translation-symmetric schedule builders
  /// cheap: every node's chunk set is a rotation of one base set.
  [[nodiscard]] static ChunkList rotated(const ChunkList& base, int offset, int n);
  /// One rotation of `base` per entry of `offsets`, all sharing a single
  /// backing run buffer (copy-on-write). Builders that hand a whole family
  /// of rotated sets to a schedule (one per node) get one allocation per
  /// family instead of one per set.
  [[nodiscard]] static std::vector<ChunkList> rotated_all(
      const ChunkList& base, std::span<const int> offsets, int n);

  /// Appends the run [start, start+len); must begin strictly after the
  /// current last chunk (coalesces when adjacent). Build-in-order helper.
  void append_range(int start, int len);
  void append(int chunk) { append_range(chunk, 1); }
  void clear();

  /// Number of chunks in the set (not the number of runs).
  [[nodiscard]] int size() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] int num_intervals() const { return runs_; }
  [[nodiscard]] std::span<const Interval> intervals() const {
    return {data(), static_cast<std::size_t>(runs_)};
  }
  /// Smallest / largest chunk id; the set must be non-empty.
  [[nodiscard]] int first() const;
  [[nodiscard]] int last() const;

  [[nodiscard]] bool contains(int chunk) const;

  [[nodiscard]] ChunkList union_with(const ChunkList& other) const;
  [[nodiscard]] ChunkList intersect(const ChunkList& other) const;

  /// Explicit densification escape hatch (ascending order).
  [[nodiscard]] std::vector<int> to_vector() const;

  /// Forward iteration over individual chunk ids in ascending order, so
  /// `for (int c : list)` keeps working for per-chunk consumers.
  class const_iterator {
   public:
    using value_type = int;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const Interval* run, int offset) : run_(run), offset_(offset) {}

    int operator*() const { return run_->start + offset_; }
    const_iterator& operator++() {
      if (++offset_ == run_->len) {
        ++run_;
        offset_ = 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) = default;

   private:
    const Interval* run_ = nullptr;
    int offset_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {data(), 0}; }
  [[nodiscard]] const_iterator end() const { return {data() + runs_, 0}; }

  friend bool operator==(const ChunkList& a, const ChunkList& b) {
    if (a.runs_ != b.runs_ || a.total_ != b.total_) return false;
    const Interval* pa = a.data();
    const Interval* pb = b.data();
    for (int i = 0; i < a.runs_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }

 private:
  // Most transfers are one window (possibly wrapped mod n): keep up to two
  // runs inline so building a schedule never allocates per transfer.
  static constexpr int kInline = 2;

  [[nodiscard]] const Interval* data() const {
    return runs_ <= kInline ? inline_ : spill_->data() + spill_offset_;
  }

  /// Trusted append: caller guarantees ordering (internal set algebra).
  /// Coalesces with the last run when adjacent, like append_range.
  void push_run(int start, int len);
  /// Makes the spill buffer safe to mutate: uniquely owned, offset 0, and
  /// exactly runs_ long (arena slices and shared buffers get copied out).
  void ensure_owned_spill();

  Interval inline_[kInline] = {};
  // Holds the runs [spill_offset_, spill_offset_ + runs_) once
  // runs_ > kInline. Shared copy-on-write: copying a ChunkList into a
  // Transfer is O(1), so schedule builders can hand one responsibility set
  // to many steps without re-materializing it, and rotated_all() packs a
  // whole family of sets into one buffer via the offset.
  std::shared_ptr<std::vector<Interval>> spill_;
  int spill_offset_ = 0;
  int runs_ = 0;
  int total_ = 0;
};

}  // namespace psd::collective
