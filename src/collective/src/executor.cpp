#include "psd/collective/executor.hpp"

#include <algorithm>

#include "psd/util/error.hpp"

namespace psd::collective {

namespace {

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

}  // namespace

void ChunkExecutor::init_shape(const CollectiveSchedule& schedule) {
  PSD_REQUIRE(schedule.chunk_space() == ChunkSpace::kSegments,
              "ChunkExecutor requires a segment chunk space");
  PSD_REQUIRE(schedule.fully_annotated(),
              "ChunkExecutor requires chunk-annotated steps");
  n_ = schedule.num_nodes();
  chunks_ = schedule.num_chunks();
  words_ = static_cast<std::size_t>((n_ + 63) / 64);
  mask_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(chunks_) * words_, 0);
}

void ChunkExecutor::set_bit(int node, int chunk, int source) {
  mask_[idx(node, chunk) + static_cast<std::size_t>(source / 64)] |=
      std::uint64_t{1} << (source % 64);
}

void ChunkExecutor::set_full(int node, int chunk) {
  for (std::size_t w = 0; w < words_; ++w) mask_[idx(node, chunk) + w] = kAllOnes;
  // Clear padding bits beyond n_.
  const int spare = static_cast<int>(words_) * 64 - n_;
  if (spare > 0) {
    mask_[idx(node, chunk) + words_ - 1] >>= spare;
  }
}

ChunkExecutor::ChunkExecutor(const CollectiveSchedule& schedule, InitMode mode,
                             int root) {
  init_shape(schedule);
  PSD_REQUIRE(root >= 0 && root < n_, "root out of range");

  switch (mode) {
    case InitMode::kAllReduce:
      for (int j = 0; j < n_; ++j) {
        for (int c = 0; c < chunks_; ++c) set_bit(j, c, j);
      }
      break;
    case InitMode::kAllGather:
      PSD_REQUIRE(chunks_ == n_, "allgather init requires one chunk per node");
      for (int j = 0; j < n_; ++j) set_full(j, j);
      break;
    case InitMode::kBroadcast:
      // The root starts with the complete buffer, i.e. *every* chunk —
      // seeding only chunk 0 made multi-chunk broadcast schedules
      // unverifiable (the other chunks could never become full anywhere).
      for (int c = 0; c < chunks_; ++c) set_full(root, c);
      break;
  }
  run(schedule);
}

ChunkExecutor::ChunkExecutor(const CollectiveSchedule& schedule,
                             const std::vector<int>& owners) {
  init_shape(schedule);
  PSD_REQUIRE(static_cast<int>(owners.size()) == chunks_,
              "owners must list one node per chunk");
  for (int c = 0; c < chunks_; ++c) {
    const int owner = owners[static_cast<std::size_t>(c)];
    PSD_REQUIRE(owner >= 0 && owner < n_, "owner out of range");
    set_full(owner, c);
  }
  run(schedule);
}

void ChunkExecutor::run(const CollectiveSchedule& schedule) {
  std::vector<std::uint64_t> snapshot;
  for (const Step& step : schedule.steps()) {
    snapshot = mask_;  // synchronous step: reads see start-of-step state
    for (const Transfer& t : step.transfers) {
      for (const ChunkList::Interval& iv : t.chunks.intervals()) {
        // Chunks of a run are contiguous in the mask, so both offsets just
        // advance by words_ per chunk.
        std::size_t src_off = idx(t.src, iv.start);
        std::size_t dst_off = idx(t.dst, iv.start);
        for (int c = 0; c < iv.len; ++c, src_off += words_, dst_off += words_) {
          for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t incoming = snapshot[src_off + w];
            if (t.reduce) {
              if ((snapshot[dst_off + w] & incoming) != 0) double_counted_ = true;
              mask_[dst_off + w] = snapshot[dst_off + w] | incoming;
            } else {
              mask_[dst_off + w] = incoming;
            }
          }
        }
      }
    }
  }
}

bool ChunkExecutor::has_contribution(int node, int chunk, int source) const {
  PSD_REQUIRE(node >= 0 && node < n_ && chunk >= 0 && chunk < chunks_ &&
                  source >= 0 && source < n_,
              "index out of range");
  return (mask_[idx(node, chunk) + static_cast<std::size_t>(source / 64)] >>
          (source % 64)) &
         1U;
}

bool ChunkExecutor::mask_full(int node, int chunk) const {
  PSD_REQUIRE(node >= 0 && node < n_ && chunk >= 0 && chunk < chunks_,
              "index out of range");
  for (int s = 0; s < n_; ++s) {
    if (!has_contribution(node, chunk, s)) return false;
  }
  return true;
}

bool ChunkExecutor::mask_empty(int node, int chunk) const {
  PSD_REQUIRE(node >= 0 && node < n_ && chunk >= 0 && chunk < chunks_,
              "index out of range");
  const std::size_t off = idx(node, chunk);
  return std::all_of(mask_.begin() + static_cast<std::ptrdiff_t>(off),
                     mask_.begin() + static_cast<std::ptrdiff_t>(off + words_),
                     [](std::uint64_t w) { return w == 0; });
}

bool ChunkExecutor::verify_allreduce() const {
  if (double_counted_) return false;
  for (int j = 0; j < n_; ++j) {
    for (int c = 0; c < chunks_; ++c) {
      if (!mask_full(j, c)) return false;
    }
  }
  return true;
}

bool ChunkExecutor::verify_reduce_scatter(const std::vector<int>& owners) const {
  if (double_counted_) return false;
  PSD_REQUIRE(static_cast<int>(owners.size()) == chunks_,
              "owners must list one node per chunk");
  for (int c = 0; c < chunks_; ++c) {
    const int owner = owners[static_cast<std::size_t>(c)];
    PSD_REQUIRE(owner >= 0 && owner < n_, "owner out of range");
    if (!mask_full(owner, c)) return false;
  }
  return true;
}

bool ChunkExecutor::verify_all_complete() const {
  for (int j = 0; j < n_; ++j) {
    for (int c = 0; c < chunks_; ++c) {
      if (!mask_full(j, c)) return false;
    }
  }
  return true;
}

BlockExecutor::BlockExecutor(const CollectiveSchedule& schedule) {
  PSD_REQUIRE(schedule.chunk_space() == ChunkSpace::kBlocks,
              "BlockExecutor requires a block chunk space");
  PSD_REQUIRE(schedule.fully_annotated(),
              "BlockExecutor requires chunk-annotated steps");
  n_ = schedule.num_nodes();
  held_.assign(static_cast<std::size_t>(n_),
               std::vector<bool>(static_cast<std::size_t>(n_ * n_), false));
  for (int j = 0; j < n_; ++j) {
    for (int d = 0; d < n_; ++d) {
      held_[static_cast<std::size_t>(j)][static_cast<std::size_t>(j * n_ + d)] = true;
    }
  }
  std::vector<std::vector<bool>> snapshot;
  for (const Step& step : schedule.steps()) {
    snapshot = held_;
    for (const Transfer& t : step.transfers) {
      PSD_REQUIRE(!t.reduce, "block collectives do not reduce");
      for (const ChunkList::Interval& iv : t.chunks.intervals()) {
        for (int c = iv.start; c < iv.start + iv.len; ++c) {
          PSD_REQUIRE(snapshot[static_cast<std::size_t>(t.src)][static_cast<std::size_t>(c)],
                      "node forwarded a block it does not hold");
          held_[static_cast<std::size_t>(t.dst)][static_cast<std::size_t>(c)] = true;
        }
      }
    }
  }
}

bool BlockExecutor::holds(int node, int chunk) const {
  PSD_REQUIRE(node >= 0 && node < n_ && chunk >= 0 && chunk < n_ * n_,
              "index out of range");
  return held_[static_cast<std::size_t>(node)][static_cast<std::size_t>(chunk)];
}

bool BlockExecutor::verify_alltoall() const {
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i < n_; ++i) {
      if (!holds(j, i * n_ + j)) return false;
    }
  }
  return true;
}

bool is_valid_allreduce(const CollectiveSchedule& schedule) {
  const ChunkExecutor exec(schedule, InitMode::kAllReduce);
  return exec.verify_allreduce();
}

bool is_valid_alltoall(const CollectiveSchedule& schedule) {
  const BlockExecutor exec(schedule);
  return exec.verify_alltoall();
}

}  // namespace psd::collective
