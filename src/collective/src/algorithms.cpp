#include "psd/collective/algorithms.hpp"

#include <bit>
#include <vector>

#include "psd/util/error.hpp"

namespace psd::collective {

namespace {

int mod_n(int v, int n) { return ((v % n) + n) % n; }

void append_ring_phase(CollectiveSchedule& out, int n, bool reduce_phase) {
  // Reduce-scatter: at step s node j sends chunk (j−s) mod n, reducing.
  // Allgather:      at step s node j sends chunk (j+1−s) mod n, replacing.
  const auto rot1 = topo::Matching::rotation(n, 1);  // same for every step
  for (int s = 0; s < n - 1; ++s) {
    Step step;
    step.label = (reduce_phase ? "rs-step-" : "ag-step-") + std::to_string(s);
    step.matching = rot1;
    step.volume = out.chunk_size();
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      Transfer t;
      t.src = j;
      t.dst = (j + 1) % n;
      t.reduce = reduce_phase;
      t.chunks = ChunkList::single(reduce_phase ? mod_n(j - s, n) : mod_n(j + 1 - s, n));
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
}

}  // namespace

CollectiveSchedule ring_reduce_scatter(int n, Bytes buffer) {
  CollectiveSchedule out("ring-reduce-scatter", n, buffer, n, ChunkSpace::kSegments);
  append_ring_phase(out, n, /*reduce_phase=*/true);
  return out;
}

CollectiveSchedule ring_allgather(int n, Bytes buffer) {
  CollectiveSchedule out("ring-allgather", n, buffer, n, ChunkSpace::kSegments);
  append_ring_phase(out, n, /*reduce_phase=*/false);
  return out;
}

CollectiveSchedule ring_allreduce(int n, Bytes buffer) {
  CollectiveSchedule out("ring-allreduce", n, buffer, n, ChunkSpace::kSegments);
  append_ring_phase(out, n, /*reduce_phase=*/true);
  append_ring_phase(out, n, /*reduce_phase=*/false);
  return out;
}

CollectiveSchedule halving_doubling_allreduce(int n, Bytes buffer) {
  return recursive_exchange_allreduce("halving-doubling-allreduce", n, buffer,
                                      halving_doubling_peers(n));
}

CollectiveSchedule swing_allreduce(int n, Bytes buffer) {
  return recursive_exchange_allreduce("swing-allreduce", n, buffer,
                                      swing_peers(n));
}

CollectiveSchedule recursive_doubling_allreduce(int n, Bytes buffer) {
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "recursive doubling requires n to be a power of two");
  const int q = std::countr_zero(static_cast<unsigned>(n));
  // A single chunk: the whole vector is exchanged every step.
  CollectiveSchedule out("recursive-doubling-allreduce", n, buffer, 1,
                         ChunkSpace::kSegments);
  for (int s = 0; s < q; ++s) {
    Step step;
    step.label = "rd-step-" + std::to_string(s);
    step.matching = topo::Matching(n);
    step.volume = buffer;
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = j ^ (1 << s);
      if (step.matching.dst_of(j) == -1) {
        step.matching.set(j, w);
        step.matching.set(w, j);
      }
      Transfer t;
      t.src = j;
      t.dst = w;
      t.reduce = true;
      t.chunks = ChunkList::single(0);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule alltoall_transpose(int n, Bytes buffer) {
  CollectiveSchedule out("alltoall-transpose", n, buffer, n * n,
                         ChunkSpace::kBlocks);
  for (int i = 1; i < n; ++i) {
    Step step;
    step.label = "rotation-" + std::to_string(i);
    step.matching = topo::Matching::rotation(n, i);
    step.volume = out.chunk_size();
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int d = (j + i) % n;
      Transfer t;
      t.src = j;
      t.dst = d;
      t.reduce = false;
      t.chunks = ChunkList::single(j * n + d);  // block originating at j, destined to d
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule alltoall_bruck(int n, Bytes buffer) {
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "Bruck all-to-all requires n to be a power of two");
  const int q = std::countr_zero(static_cast<unsigned>(n));
  CollectiveSchedule out("alltoall-bruck", n, buffer, n * n, ChunkSpace::kBlocks);

  // Block (s, d) must travel rotation distance r = (d−s) mod n; at step k it
  // sits at node (d − f) mod n with f = r with bits < k cleared, and moves
  // by 2^k iff bit k of r is set. Each node forwards exactly n/2 blocks per
  // step (every distance r with bit k set contributes one block per node).
  for (int k = 0; k < q; ++k) {
    Step step;
    step.label = "bruck-step-" + std::to_string(k);
    step.matching = topo::Matching::rotation(n, 1 << k);
    step.volume = out.chunk_size() * (n / 2.0);
    step.transfers.reserve(static_cast<std::size_t>(n));
    std::vector<int> block_ids;  // scattered block ids: densify, then encode
    block_ids.reserve(static_cast<std::size_t>(n / 2));
    for (int v = 0; v < n; ++v) {
      Transfer t;
      t.src = v;
      t.dst = (v + (1 << k)) % n;
      t.reduce = false;
      block_ids.clear();
      for (int r = 1; r < n; ++r) {
        if ((r >> k) & 1) {
          const int f = r & ~((1 << k) - 1);
          const int d = (v + f) % n;
          const int s = ((d - r) % n + n) % n;
          block_ids.push_back(s * n + d);
        }
      }
      t.chunks = ChunkList::from_unsorted(block_ids);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule binomial_broadcast(int n, int root, Bytes buffer) {
  PSD_REQUIRE(root >= 0 && root < n, "broadcast root out of range");
  CollectiveSchedule out("binomial-broadcast", n, buffer, 1, ChunkSpace::kSegments);
  // Relative ranks: r = (j - root) mod n; rank 0 is the root. At step s,
  // ranks < 2^s send to rank + 2^s (when it exists).
  for (int span = 1; span < n; span <<= 1) {
    Step step;
    step.label = "bcast-span-" + std::to_string(span);
    step.matching = topo::Matching(n);
    step.volume = buffer;
    for (int r = 0; r < span && r + span < n; ++r) {
      const int src = mod_n(root + r, n);
      const int dst = mod_n(root + r + span, n);
      step.matching.set(src, dst);
      Transfer t;
      t.src = src;
      t.dst = dst;
      t.reduce = false;
      t.chunks = ChunkList::single(0);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule bruck_allgather(int n, Bytes buffer) {
  PSD_REQUIRE(n >= 2, "allgather requires at least 2 nodes");
  CollectiveSchedule out("bruck-allgather", n, buffer, n, ChunkSpace::kSegments);
  // After step k, node j holds chunks {j, j+1, ..., j + 2^(k+1) − 1} mod n
  // (clipped to n). Step k sends the current window to (j − 2^k) mod n.
  for (int span = 1; span < n; span <<= 1) {
    const int cnt = std::min(span, n - span);
    Step step;
    step.label = "bruck-ag-span-" + std::to_string(span);
    step.matching = topo::Matching::rotation(n, -span);
    step.volume = out.chunk_size() * static_cast<double>(cnt);
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      Transfer t;
      t.src = j;
      t.dst = mod_n(j - span, n);
      t.reduce = false;
      t.chunks = ChunkList::wrapped_range(j, cnt, n);  // window {j, ..., j+cnt−1} mod n
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule binomial_reduce(int n, int root, Bytes buffer) {
  PSD_REQUIRE(root >= 0 && root < n, "reduce root out of range");
  CollectiveSchedule out("binomial-reduce", n, buffer, 1, ChunkSpace::kSegments);
  // Mirror of broadcast: spans shrink; relative rank r in [span, 2·span)
  // sends its partial reduction to r − span.
  int top = 1;
  while (top < n) top <<= 1;
  for (int span = top >> 1; span >= 1; span >>= 1) {
    Step step;
    step.label = "reduce-span-" + std::to_string(span);
    step.matching = topo::Matching(n);
    step.volume = buffer;
    for (int r = span; r < 2 * span && r < n; ++r) {
      const int src = mod_n(root + r, n);
      const int dst = mod_n(root + r - span, n);
      step.matching.set(src, dst);
      Transfer t;
      t.src = src;
      t.dst = dst;
      t.reduce = true;
      t.chunks = ChunkList::single(0);
      step.transfers.push_back(std::move(t));
    }
    if (step.matching.active_pairs() > 0) out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule binomial_scatter(int n, int root, Bytes buffer) {
  PSD_REQUIRE(root >= 0 && root < n, "scatter root out of range");
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "binomial scatter requires n to be a power of two");
  CollectiveSchedule out("binomial-scatter", n, buffer, n, ChunkSpace::kSegments);
  // At the step with span s, relative rank r (a multiple of 2s) forwards
  // the chunk block [r+s, r+2s) to relative rank r+s.
  for (int span = n / 2; span >= 1; span >>= 1) {
    Step step;
    step.label = "scatter-span-" + std::to_string(span);
    step.matching = topo::Matching(n);
    step.volume = out.chunk_size() * static_cast<double>(span);
    for (int r = 0; r < n; r += 2 * span) {
      const int src = mod_n(root + r, n);
      const int dst = mod_n(root + r + span, n);
      step.matching.set(src, dst);
      Transfer t;
      t.src = src;
      t.dst = dst;
      t.reduce = false;
      t.chunks = ChunkList::range(r + span, span);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule binomial_gather(int n, int root, Bytes buffer) {
  PSD_REQUIRE(root >= 0 && root < n, "gather root out of range");
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "binomial gather requires n to be a power of two");
  CollectiveSchedule out("binomial-gather", n, buffer, n, ChunkSpace::kSegments);
  // Exact reverse of scatter: spans grow; relative rank r+s returns the
  // block [r+s, r+2s) to relative rank r.
  for (int span = 1; span < n; span <<= 1) {
    Step step;
    step.label = "gather-span-" + std::to_string(span);
    step.matching = topo::Matching(n);
    step.volume = out.chunk_size() * static_cast<double>(span);
    for (int r = 0; r < n; r += 2 * span) {
      const int src = mod_n(root + r + span, n);
      const int dst = mod_n(root + r, n);
      step.matching.set(src, dst);
      Transfer t;
      t.src = src;
      t.dst = dst;
      t.reduce = false;
      t.chunks = ChunkList::range(r + span, span);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule dissemination_barrier(int n, Bytes flag_bytes) {
  PSD_REQUIRE(n >= 2, "barrier requires at least 2 nodes");
  CollectiveSchedule out("dissemination-barrier", n, flag_bytes, 1,
                         ChunkSpace::kSegments);
  // Round k: node j signals (j + 2^k) mod n, forwarding everything it has
  // heard so far. Knowledge is idempotent, so the executor's double-count
  // flag is expected to fire; verify with verify_all_complete().
  for (int span = 1; span < n; span <<= 1) {
    Step step;
    step.label = "barrier-round-" + std::to_string(span);
    step.matching = topo::Matching::rotation(n, span);
    step.volume = flag_bytes;
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      Transfer t;
      t.src = j;
      t.dst = (j + span) % n;
      t.reduce = true;  // OR-combine knowledge masks
      t.chunks = ChunkList::single(0);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

CollectiveSchedule recursive_doubling_allgather(int n, Bytes buffer) {
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "recursive doubling requires n to be a power of two");
  const int q = std::countr_zero(static_cast<unsigned>(n));
  CollectiveSchedule out("recursive-doubling-allgather", n, buffer, n,
                         ChunkSpace::kSegments);
  for (int s = 0; s < q; ++s) {
    Step step;
    step.label = "ag-step-" + std::to_string(s);
    step.matching = topo::Matching(n);
    step.volume = out.chunk_size() * static_cast<double>(1 << s);
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = j ^ (1 << s);
      if (step.matching.dst_of(j) == -1) {
        step.matching.set(j, w);
        step.matching.set(w, j);
      }
      Transfer t;
      t.src = j;
      t.dst = w;
      t.reduce = false;
      // Node j currently holds the 2^s chunks of its aligned group.
      t.chunks = ChunkList::range((j >> s) << s, 1 << s);
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
  return out;
}

}  // namespace psd::collective
