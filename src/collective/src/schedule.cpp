#include "psd/collective/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "psd/util/error.hpp"

namespace psd::collective {

CollectiveSchedule::CollectiveSchedule(std::string name, int n, Bytes buffer,
                                       int num_chunks, ChunkSpace space)
    : name_(std::move(name)), n_(n), buffer_(buffer), num_chunks_(num_chunks),
      space_(space) {
  PSD_REQUIRE(n >= 2, "collective requires at least 2 nodes");
  PSD_REQUIRE(buffer.count() > 0.0, "buffer size must be positive");
  PSD_REQUIRE(num_chunks >= 1, "num_chunks must be >= 1");
  if (space == ChunkSpace::kBlocks) {
    PSD_REQUIRE(num_chunks == n * n, "block chunk space requires n*n chunks");
  }
}

Bytes CollectiveSchedule::chunk_size() const {
  if (space_ == ChunkSpace::kBlocks) {
    // Each node's buffer holds n blocks (one per destination).
    return buffer_ / static_cast<double>(n_);
  }
  return buffer_ / static_cast<double>(num_chunks_);
}

void CollectiveSchedule::add_step(Step step) {
  PSD_REQUIRE(step.matching.size() == n_, "step matching size mismatch");
  PSD_REQUIRE(step.volume.count() >= 0.0, "step volume must be non-negative");
  const double cs = chunk_size().count();
  for (const Transfer& t : step.transfers) {
    PSD_REQUIRE(step.matching.dst_of(t.src) == t.dst,
                "transfer endpoints must appear in the step matching");
    PSD_REQUIRE(!t.chunks.empty(), "transfer must move at least one chunk");
    for (int c : t.chunks) {
      PSD_REQUIRE(c >= 0 && c < num_chunks_, "chunk index out of range");
    }
    const double bytes = static_cast<double>(t.chunks.size()) * cs;
    PSD_REQUIRE(std::fabs(bytes - step.volume.count()) <=
                    1e-6 * std::max(1.0, step.volume.count()),
                "annotated transfer bytes must equal the step volume");
  }
  steps_.push_back(std::move(step));
}

const Step& CollectiveSchedule::step(int i) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  return steps_[static_cast<std::size_t>(i)];
}

bool CollectiveSchedule::fully_annotated() const {
  return std::all_of(steps_.begin(), steps_.end(), [](const Step& s) {
    return !s.transfers.empty() || s.matching.active_pairs() == 0;
  });
}

Bytes CollectiveSchedule::max_bytes_sent_per_node() const {
  std::vector<double> sent(static_cast<std::size_t>(n_), 0.0);
  for (const Step& s : steps_) {
    for (const auto& [src, dst] : s.matching.pairs()) {
      (void)dst;
      sent[static_cast<std::size_t>(src)] += s.volume.count();
    }
  }
  return Bytes(*std::max_element(sent.begin(), sent.end()));
}

psd::Matrix CollectiveSchedule::aggregate_demand() const {
  psd::Matrix agg(static_cast<std::size_t>(n_), static_cast<std::size_t>(n_));
  for (const Step& s : steps_) {
    for (const auto& [src, dst] : s.matching.pairs()) {
      agg(static_cast<std::size_t>(src), static_cast<std::size_t>(dst)) +=
          s.volume.count();
    }
  }
  return agg;
}

CollectiveSchedule CollectiveSchedule::then(const CollectiveSchedule& tail) const {
  PSD_REQUIRE(tail.n_ == n_, "composed collectives must have equal node count");
  const bool keep_chunks = tail.space_ == space_ &&
                           tail.num_chunks_ == num_chunks_ &&
                           tail.buffer_.count() == buffer_.count();
  CollectiveSchedule out(name_ + "+" + tail.name_, n_, buffer_, num_chunks_, space_);
  for (const Step& s : steps_) out.add_step(s);
  for (Step s : tail.steps_) {
    if (!keep_chunks) s.transfers.clear();
    out.add_step(std::move(s));
  }
  return out;
}

}  // namespace psd::collective
