#include "psd/collective/schedule.hpp"

#include <algorithm>
#include <cstdint>

#include "psd/util/error.hpp"

namespace psd::collective {

namespace {

// Epoch-stamped scratch for duplicate-transfer detection in add_step: one
// slot per source node, valid when the stamp matches the current epoch.
// Thread-local so concurrent schedule builds don't share it, and reused
// across calls so the hot generation path never allocates here.
thread_local std::vector<std::uint32_t> t_src_stamp;
thread_local std::uint32_t t_src_epoch = 0;

}  // namespace

CollectiveSchedule::CollectiveSchedule(std::string name, int n, Bytes buffer,
                                       int num_chunks, ChunkSpace space)
    : name_(std::move(name)), n_(n), buffer_(buffer), num_chunks_(num_chunks),
      space_(space) {
  PSD_REQUIRE(n >= 2, "collective requires at least 2 nodes");
  PSD_REQUIRE(buffer.count() > 0.0, "buffer size must be positive");
  PSD_REQUIRE(num_chunks >= 1, "num_chunks must be >= 1");
  if (space == ChunkSpace::kBlocks) {
    PSD_REQUIRE(num_chunks == n * n, "block chunk space requires n*n chunks");
  }
}

Bytes CollectiveSchedule::chunk_size() const {
  if (space_ == ChunkSpace::kBlocks) {
    // Each node's buffer holds n blocks (one per destination).
    return buffer_ / static_cast<double>(n_);
  }
  return buffer_ / static_cast<double>(num_chunks_);
}

void CollectiveSchedule::add_step(Step step) {
  PSD_REQUIRE(step.matching.size() == n_, "step matching size mismatch");
  PSD_REQUIRE(step.volume.count() >= 0.0, "step volume must be non-negative");
  const Bytes cs = chunk_size();
  if (!step.transfers.empty()) {
    if (static_cast<int>(t_src_stamp.size()) < n_) {
      t_src_stamp.assign(static_cast<std::size_t>(n_), 0);
      t_src_epoch = 0;
    }
    if (++t_src_epoch == 0) {  // epoch wrapped: stale stamps could collide
      std::fill(t_src_stamp.begin(), t_src_stamp.end(), 0);
      t_src_epoch = 1;
    }
    for (const Transfer& t : step.transfers) {
      PSD_REQUIRE(step.matching.dst_of(t.src) == t.dst,
                  "transfer endpoints must appear in the step matching");
      PSD_REQUIRE(!t.chunks.empty(), "transfer must move at least one chunk");
      // ChunkList runs are sorted, so range-checking the extremes covers
      // every chunk without densifying.
      PSD_REQUIRE(t.chunks.first() >= 0 && t.chunks.last() < num_chunks_,
                  "chunk index out of range");
      PSD_REQUIRE(t_src_stamp[static_cast<std::size_t>(t.src)] != t_src_epoch,
                  "duplicate transfer for a (src, dst) pair within one step");
      t_src_stamp[static_cast<std::size_t>(t.src)] = t_src_epoch;
      PSD_REQUIRE(approx_equal(cs * static_cast<double>(t.chunks.size()),
                               step.volume, 1e-6),
                  "annotated transfer bytes must equal the step volume");
    }
  }
  steps_.push_back(std::move(step));
}

int Step::max_transfer_chunks() const {
  int widest = 0;
  for (const Transfer& t : transfers) widest = std::max(widest, t.chunks.size());
  return widest;
}

int CollectiveSchedule::natural_pipeline_chunks() const {
  bool annotated = false;
  int widest = 0;
  for (const Step& s : steps_) {
    if (s.transfers.empty()) continue;
    annotated = true;
    widest = std::max(widest, s.max_transfer_chunks());
  }
  if (!annotated) return std::max(1, num_chunks_);
  return std::max(1, widest);
}

const Step& CollectiveSchedule::step(int i) const {
  PSD_REQUIRE(i >= 0 && i < num_steps(), "step index out of range");
  return steps_[static_cast<std::size_t>(i)];
}

bool CollectiveSchedule::fully_annotated() const {
  // add_step guarantees each transfer targets a distinct active pair, so a
  // step covers its matching iff the counts agree (a step with any active
  // pair left un-annotated would silently under-deliver in the executor).
  return std::all_of(steps_.begin(), steps_.end(), [](const Step& s) {
    return static_cast<int>(s.transfers.size()) == s.matching.active_pairs();
  });
}

Bytes CollectiveSchedule::max_bytes_sent_per_node() const {
  std::vector<double> sent(static_cast<std::size_t>(n_), 0.0);
  for (const Step& s : steps_) {
    for (const auto& [src, dst] : s.matching.pairs()) {
      (void)dst;
      sent[static_cast<std::size_t>(src)] += s.volume.count();
    }
  }
  return Bytes(*std::max_element(sent.begin(), sent.end()));
}

psd::Matrix CollectiveSchedule::aggregate_demand() const {
  psd::Matrix agg(static_cast<std::size_t>(n_), static_cast<std::size_t>(n_));
  for (const Step& s : steps_) {
    for (const auto& [src, dst] : s.matching.pairs()) {
      agg(static_cast<std::size_t>(src), static_cast<std::size_t>(dst)) +=
          s.volume.count();
    }
  }
  return agg;
}

CollectiveSchedule CollectiveSchedule::then(const CollectiveSchedule& tail) const {
  PSD_REQUIRE(tail.n_ == n_, "composed collectives must have equal node count");
  // Buffer sizes built from the same logical volume through differing
  // arithmetic (e.g. summed bucket sizes vs one division) differ in the last
  // ulps; exact == here would silently drop valid annotations.
  const bool keep_chunks = tail.space_ == space_ &&
                           tail.num_chunks_ == num_chunks_ &&
                           approx_equal(tail.buffer_, buffer_);
  CollectiveSchedule out(name_ + "+" + tail.name_, n_, buffer_, num_chunks_, space_);
  for (const Step& s : steps_) out.add_step(s);
  for (Step s : tail.steps_) {
    if (!keep_chunks) s.transfers.clear();
    out.add_step(std::move(s));
  }
  return out;
}

}  // namespace psd::collective
