#include "psd/collective/recursive_exchange.hpp"

#include <bit>
#include <string>
#include <vector>

#include "psd/util/error.hpp"

namespace psd::collective {

namespace {

int log2_exact(int n) {
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "recursive-exchange algorithms require n to be a power of two");
  return std::countr_zero(static_cast<unsigned>(n));
}

/// Peer function evaluated once per (step, node) into a flat table, with a
/// symmetry bit the set recursion exploits. Calling the std::function
/// 2·q·n times per build was measurable; validating it is O(q·n) anyway.
struct PeerTable {
  int n = 0;
  int q = 0;
  std::vector<int> w;  // w[s*n + j] = peer of j at step s
  // True iff p(j+2, s) == p(j, s) + 2 (mod n) for all j, s. Swing's
  // p(j, s) = j + (−1)^j ρ_s has it; it makes every responsibility set a
  // rotation of one of two base sets (even / odd nodes).
  bool translation_symmetric = true;

  [[nodiscard]] int peer(int j, int s) const {
    return w[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
  }
};

PeerTable build_peer_table(int n, const PeerFn& peer) {
  PeerTable t;
  t.n = n;
  t.q = log2_exact(n);
  t.w.resize(static_cast<std::size_t>(t.q) * static_cast<std::size_t>(n));
  for (int s = 0; s < t.q; ++s) {
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      PSD_REQUIRE(w >= 0 && w < n, "peer function out of range");
      PSD_REQUIRE(w != j, "peer function must not map a node to itself");
      t.w[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)] = w;
    }
  }
  for (int s = 0; s < t.q; ++s) {
    for (int j = 0; j < n; ++j) {
      PSD_REQUIRE(t.peer(t.peer(j, s), s) == j,
                  "peer function must be an involution");
      if (t.peer((j + 2) % n, s) != (t.peer(j, s) + 2) % n) {
        t.translation_symmetric = false;
      }
    }
  }
  return t;
}

/// Responsibility sets A(j, s) for all j and s, as interval-coded chunk
/// sets. sets[s][j] = A(j, s); sets has log n + 1 levels. Level 0 (the full
/// set) is only ever needed for the coverage check, so it is validated but
/// not returned.
///
/// Generic path: backward recursion A(j, s) = A(j, s+1) ∪ A(p(j,s), s+1)
/// with the partition invariant checked at every union. Symmetric path
/// (translation-symmetric peers): only A(0, s) and A(1, s) are recursed —
/// A(2k+δ, s) = A(δ, s) + 2k (mod n) — and all other sets are O(runs)
/// rotations. Both paths produce identical sets; the symmetric one skips
/// n−2 of the n unions per level.
std::vector<std::vector<ChunkList>> responsibility_sets(const PeerTable& pt) {
  const int n = pt.n;
  const int q = pt.q;
  std::vector<std::vector<ChunkList>> sets(
      static_cast<std::size_t>(q) + 1,
      std::vector<ChunkList>(static_cast<std::size_t>(n)));
  for (int j = 0; j < n; ++j) {
    sets[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)] =
        ChunkList::single(j);
  }

  const auto check_partition = [](const ChunkList& merged, const ChunkList& mine,
                                  const ChunkList& theirs, int s) {
    PSD_REQUIRE(merged.size() == mine.size() + theirs.size(),
                "peer function violates the partition invariant: the "
                "responsibility sets of step-" + std::to_string(s) +
                " partners overlap");
  };

  if (pt.translation_symmetric) {
    // base[δ] tracks A(δ, s) for δ ∈ {0, 1} down the recursion. The other
    // n−2 sets per level are rotations; the partition invariant for them
    // follows from the base unions because rotation preserves disjointness.
    ChunkList base[2] = {ChunkList::single(0), ChunkList::single(1)};
    for (int s = q - 1; s >= 0; --s) {
      ChunkList next[2];
      for (int d = 0; d < 2; ++d) {
        const int w = pt.peer(d, s);
        // A(w, s+1) = A(w mod 2, s+1) rotated by the even part of w.
        const ChunkList theirs = ChunkList::rotated(base[w % 2], w - w % 2, n);
        next[d] = base[d].union_with(theirs);
        check_partition(next[d], base[d], theirs, s);
      }
      base[0] = std::move(next[0]);
      base[1] = std::move(next[1]);
      if (s == 0) break;  // level 0 is only checked, never materialized
      auto& level = sets[static_cast<std::size_t>(s)];
      for (int d = 0; d < 2; ++d) {
        // Rotations of a periodic set repeat: if base + p == base (mod n),
        // nodes whose offsets agree mod p share one set. Swing's sets have
        // period 2^(s+1), so only p/2 distinct sets exist per parity — the
        // rest are O(1) COW copies. A period must divide n (a power of
        // two), so probing powers of two finds it.
        int period = n;
        for (int c = 2; c < n; c <<= 1) {
          if (ChunkList::rotated(base[d], c, n) == base[d]) {
            period = c;
            break;
          }
        }
        std::vector<int> offsets(static_cast<std::size_t>(period / 2));
        for (int k = 0; k < period / 2; ++k) {
          offsets[static_cast<std::size_t>(k)] = 2 * k;
        }
        // A(2k+δ, s) = A(δ, s) + 2k (mod n): one arena-packed rotation
        // family per parity, fanned out to node order by offset mod p.
        const auto family = ChunkList::rotated_all(base[d], offsets, n);
        for (int k = 0; k < n / 2; ++k) {
          level[static_cast<std::size_t>(2 * k + d)] =
              family[static_cast<std::size_t>((2 * k) % period / 2)];
        }
      }
    }
    for (int d = 0; d < 2; ++d) {
      PSD_REQUIRE(base[d].size() == n,
                  "peer function does not cover all chunks in log2(n) steps");
    }
    return sets;
  }

  for (int s = q - 1; s >= 0; --s) {
    auto& level = sets[static_cast<std::size_t>(s)];
    const auto& prev = sets[static_cast<std::size_t>(s) + 1];
    for (int j = 0; j < n; ++j) {
      const int w = pt.peer(j, s);
      const ChunkList& mine = prev[static_cast<std::size_t>(j)];
      const ChunkList& theirs = prev[static_cast<std::size_t>(w)];
      ChunkList merged = mine.union_with(theirs);
      check_partition(merged, mine, theirs, s);
      level[static_cast<std::size_t>(j)] = std::move(merged);
    }
  }
  for (int j = 0; j < n; ++j) {
    PSD_REQUIRE(sets[0][static_cast<std::size_t>(j)].size() == n,
                "peer function does not cover all chunks in log2(n) steps");
  }
  return sets;
}

/// Emits the reduce-scatter steps into `out`. Transfers share the
/// responsibility sets' interval storage (ChunkList copies are COW).
void emit_reduce_scatter(CollectiveSchedule& out, int n, Bytes buffer,
                         const PeerTable& pt,
                         const std::vector<std::vector<ChunkList>>& sets) {
  const int q = pt.q;
  const Bytes chunk = buffer / static_cast<double>(n);
  for (int s = 0; s < q; ++s) {
    Step step;
    step.label = "rs-step-" + std::to_string(s);
    step.matching = topo::Matching(n);
    step.volume = chunk * static_cast<double>(n >> (s + 1));
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = pt.peer(j, s);
      step.matching.set(j, w);  // involution: both directions get set
      Transfer t;
      t.src = j;
      t.dst = w;
      t.reduce = true;
      t.chunks = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(w)];
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
}

/// Emits the mirrored allgather steps into `out`.
void emit_allgather(CollectiveSchedule& out, int n, Bytes buffer,
                    const PeerTable& pt,
                    const std::vector<std::vector<ChunkList>>& sets) {
  const int q = pt.q;
  const Bytes chunk = buffer / static_cast<double>(n);
  // At allgather step t, node j exchanges with its reduce-scatter partner of
  // step q-1-t and hands over everything gathered so far: exactly
  // A(j, q-t) from the responsibility recursion.
  for (int t = 0; t < q; ++t) {
    const int s = q - 1 - t;
    Step step;
    step.label = "ag-step-" + std::to_string(t);
    step.matching = topo::Matching(n);
    step.volume = chunk * static_cast<double>(1 << t);
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = pt.peer(j, s);
      step.matching.set(j, w);
      Transfer t2;
      t2.src = j;
      t2.dst = w;
      t2.reduce = false;
      t2.chunks = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(j)];
      step.transfers.push_back(std::move(t2));
    }
    out.add_step(std::move(step));
  }
}

}  // namespace

CollectiveSchedule recursive_exchange_allreduce(std::string name, int n,
                                                Bytes buffer, const PeerFn& peer) {
  const PeerTable pt = build_peer_table(n, peer);
  const auto sets = responsibility_sets(pt);
  CollectiveSchedule out(std::move(name), n, buffer, n, ChunkSpace::kSegments);
  emit_reduce_scatter(out, n, buffer, pt, sets);
  emit_allgather(out, n, buffer, pt, sets);
  return out;
}

CollectiveSchedule recursive_exchange_reduce_scatter(std::string name, int n,
                                                     Bytes buffer,
                                                     const PeerFn& peer) {
  const PeerTable pt = build_peer_table(n, peer);
  const auto sets = responsibility_sets(pt);
  CollectiveSchedule out(std::move(name), n, buffer, n, ChunkSpace::kSegments);
  emit_reduce_scatter(out, n, buffer, pt, sets);
  return out;
}

PeerFn halving_doubling_peers(int n) {
  const int q = log2_exact(n);
  return [q](int j, int s) { return j ^ (1 << (q - 1 - s)); };
}

long long swing_rho(int s) {
  PSD_REQUIRE(s >= 0 && s < 62, "swing step out of range");
  // ρ_s = (1 − (−2)^(s+1)) / 3: 1, -1, 3, -5, 11, -21, 43, ...
  long long pow = 1;
  for (int i = 0; i <= s; ++i) pow *= -2;
  return (1 - pow) / 3;
}

PeerFn swing_peers(int n) {
  const int q = log2_exact(n);
  // ρ_s only depends on the step; precompute once instead of re-deriving it
  // on each of the 2·q·n peer() calls a schedule build makes.
  std::vector<long long> rho(static_cast<std::size_t>(q));
  for (int s = 0; s < q; ++s) rho[static_cast<std::size_t>(s)] = swing_rho(s);
  return [n, rho = std::move(rho)](int j, int s) {
    const long long r = s < static_cast<int>(rho.size())
                            ? rho[static_cast<std::size_t>(s)]
                            : swing_rho(s);
    const long long sign = (j % 2 == 0) ? 1 : -1;
    long long w = (j + sign * r) % n;
    if (w < 0) w += n;
    return static_cast<int>(w);
  };
}

}  // namespace psd::collective
