#include "psd/collective/recursive_exchange.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "psd/util/error.hpp"

namespace psd::collective {

namespace {

int log2_exact(int n) {
  PSD_REQUIRE(n >= 2 && std::has_single_bit(static_cast<unsigned>(n)),
              "recursive-exchange algorithms require n to be a power of two");
  return std::countr_zero(static_cast<unsigned>(n));
}

/// Responsibility sets A(j, s) for all j and s, as sorted chunk vectors.
/// sets[s][j] = A(j, s); sets has log n + 1 levels.
std::vector<std::vector<std::vector<int>>> responsibility_sets(int n,
                                                               const PeerFn& peer) {
  const int q = log2_exact(n);
  // Validate the peer function: range and involution at every step.
  for (int s = 0; s < q; ++s) {
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      PSD_REQUIRE(w >= 0 && w < n, "peer function out of range");
      PSD_REQUIRE(w != j, "peer function must not map a node to itself");
      PSD_REQUIRE(peer(w, s) == j, "peer function must be an involution");
    }
  }

  std::vector<std::vector<std::vector<int>>> sets(
      static_cast<std::size_t>(q) + 1,
      std::vector<std::vector<int>>(static_cast<std::size_t>(n)));
  for (int j = 0; j < n; ++j) {
    sets[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)] = {j};
  }
  for (int s = q - 1; s >= 0; --s) {
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      const auto& mine = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(j)];
      const auto& theirs = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(w)];
      std::vector<int> merged;
      merged.reserve(mine.size() + theirs.size());
      std::merge(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged));
      // Partition invariant: the two halves must be disjoint.
      PSD_REQUIRE(std::adjacent_find(merged.begin(), merged.end()) == merged.end(),
                  "peer function violates the partition invariant: the "
                  "responsibility sets of step-" + std::to_string(s) +
                  " partners overlap");
      sets[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)] = std::move(merged);
    }
  }
  // A(j, 0) must be the full chunk set.
  for (int j = 0; j < n; ++j) {
    PSD_REQUIRE(static_cast<int>(sets[0][static_cast<std::size_t>(j)].size()) == n,
                "peer function does not cover all chunks in log2(n) steps");
  }
  return sets;
}

/// Emits the reduce-scatter steps into `out`.
void emit_reduce_scatter(CollectiveSchedule& out, int n, Bytes buffer,
                         const PeerFn& peer,
                         const std::vector<std::vector<std::vector<int>>>& sets) {
  const int q = log2_exact(n);
  const Bytes chunk = buffer / static_cast<double>(n);
  for (int s = 0; s < q; ++s) {
    Step step;
    step.label = "rs-step-" + std::to_string(s);
    step.matching = topo::Matching(n);
    step.volume = chunk * static_cast<double>(n >> (s + 1));
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      step.matching.set(j, w);  // involution: both directions get set
      Transfer t;
      t.src = j;
      t.dst = w;
      t.reduce = true;
      t.chunks = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(w)];
      step.transfers.push_back(std::move(t));
    }
    out.add_step(std::move(step));
  }
}

/// Emits the mirrored allgather steps into `out`.
void emit_allgather(CollectiveSchedule& out, int n, Bytes buffer,
                    const PeerFn& peer,
                    const std::vector<std::vector<std::vector<int>>>& sets) {
  const int q = log2_exact(n);
  const Bytes chunk = buffer / static_cast<double>(n);
  // At allgather step t, node j exchanges with its reduce-scatter partner of
  // step q-1-t and hands over everything gathered so far: exactly
  // A(j, q-t) from the responsibility recursion.
  for (int t = 0; t < q; ++t) {
    const int s = q - 1 - t;
    Step step;
    step.label = "ag-step-" + std::to_string(t);
    step.matching = topo::Matching(n);
    step.volume = chunk * static_cast<double>(1 << t);
    step.transfers.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      step.matching.set(j, w);
      Transfer t2;
      t2.src = j;
      t2.dst = w;
      t2.reduce = false;
      t2.chunks = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(j)];
      step.transfers.push_back(std::move(t2));
    }
    out.add_step(std::move(step));
  }
}

}  // namespace

CollectiveSchedule recursive_exchange_allreduce(std::string name, int n,
                                                Bytes buffer, const PeerFn& peer) {
  const auto sets = responsibility_sets(n, peer);
  CollectiveSchedule out(std::move(name), n, buffer, n, ChunkSpace::kSegments);
  emit_reduce_scatter(out, n, buffer, peer, sets);
  emit_allgather(out, n, buffer, peer, sets);
  return out;
}

CollectiveSchedule recursive_exchange_reduce_scatter(std::string name, int n,
                                                     Bytes buffer,
                                                     const PeerFn& peer) {
  const auto sets = responsibility_sets(n, peer);
  CollectiveSchedule out(std::move(name), n, buffer, n, ChunkSpace::kSegments);
  emit_reduce_scatter(out, n, buffer, peer, sets);
  return out;
}

PeerFn halving_doubling_peers(int n) {
  const int q = log2_exact(n);
  return [q](int j, int s) { return j ^ (1 << (q - 1 - s)); };
}

long long swing_rho(int s) {
  PSD_REQUIRE(s >= 0 && s < 62, "swing step out of range");
  // ρ_s = (1 − (−2)^(s+1)) / 3: 1, -1, 3, -5, 11, -21, 43, ...
  long long pow = 1;
  for (int i = 0; i <= s; ++i) pow *= -2;
  return (1 - pow) / 3;
}

PeerFn swing_peers(int n) {
  const int q = log2_exact(n);
  // ρ_s only depends on the step; precompute once instead of re-deriving it
  // on each of the 2·q·n peer() calls a schedule build makes.
  std::vector<long long> rho(static_cast<std::size_t>(q));
  for (int s = 0; s < q; ++s) rho[static_cast<std::size_t>(s)] = swing_rho(s);
  return [n, rho = std::move(rho)](int j, int s) {
    const long long r = s < static_cast<int>(rho.size())
                            ? rho[static_cast<std::size_t>(s)]
                            : swing_rho(s);
    const long long sign = (j % 2 == 0) ? 1 : -1;
    long long w = (j + sign * r) % n;
    if (w < 0) w += n;
    return static_cast<int>(w);
  };
}

}  // namespace psd::collective
