#include "psd/collective/chunk_list.hpp"

#include <algorithm>

#include "psd/util/error.hpp"

namespace psd::collective {

ChunkList::ChunkList(std::initializer_list<int> chunks)
    : ChunkList(from_unsorted(std::vector<int>(chunks))) {}

ChunkList ChunkList::single(int chunk) {
  ChunkList out;
  out.append_range(chunk, 1);
  return out;
}

ChunkList ChunkList::range(int start, int len) {
  ChunkList out;
  out.append_range(start, len);
  return out;
}

ChunkList ChunkList::wrapped_range(int start, int len, int n) {
  PSD_REQUIRE(n >= 1 && start >= 0 && start < n, "wrapped_range start out of range");
  PSD_REQUIRE(len >= 1 && len <= n, "wrapped_range length must be in [1, n]");
  ChunkList out;
  if (start + len <= n) {
    out.append_range(start, len);
  } else {
    out.append_range(0, start + len - n);  // wrapped tail [0, start+len−n)
    out.append_range(start, n - start);    // head [start, n)
  }
  return out;
}

ChunkList ChunkList::from_unsorted(std::vector<int> chunks) {
  std::sort(chunks.begin(), chunks.end());
  PSD_REQUIRE(std::adjacent_find(chunks.begin(), chunks.end()) == chunks.end(),
              "chunk list must not contain duplicates");
  PSD_REQUIRE(chunks.empty() || chunks.front() >= 0,
              "chunk ids must be non-negative");
  ChunkList out;
  std::size_t i = 0;
  while (i < chunks.size()) {
    std::size_t j = i + 1;
    while (j < chunks.size() && chunks[j] == chunks[j - 1] + 1) ++j;
    out.push_run(chunks[i], static_cast<int>(j - i));
    i = j;
  }
  return out;
}

namespace {

/// Appends the runs of `runs` rotated by o ∈ [0, n) to `out`, coalescing
/// only within the appended slice. Runs with start + o >= n wrap to the
/// front of [0, n); the run right before the wrap boundary may straddle it
/// and split in two. Everything keeps its relative order within the
/// wrapped / unwrapped groups, and the wrapped group (all values < o)
/// precedes the unwrapped one (all values >= o).
void write_rotated_runs(std::span<const ChunkList::Interval> runs, int o, int n,
                        std::vector<ChunkList::Interval>& out) {
  const std::size_t slice_begin = out.size();
  const auto push = [&](int start, int len) {
    if (out.size() > slice_begin) {
      ChunkList::Interval& back = out.back();
      if (back.start + back.len == start) {
        back.len += len;
        return;
      }
    }
    out.push_back({start, len});
  };
  const auto wrap = std::partition_point(
      runs.begin(), runs.end(),
      [&](const ChunkList::Interval& iv) { return iv.start + o < n; });
  if (wrap != runs.begin()) {
    const ChunkList::Interval& straddle = *(wrap - 1);
    if (straddle.start + straddle.len + o > n) {
      push(0, straddle.start + straddle.len + o - n);
    }
  }
  for (auto it = wrap; it != runs.end(); ++it) {
    push(it->start + o - n, it->len);
  }
  for (auto it = runs.begin(); it != wrap; ++it) {
    const int end = std::min(it->start + it->len + o, n);
    if (end > it->start + o) push(it->start + o, end - (it->start + o));
  }
}

}  // namespace

ChunkList ChunkList::rotated(const ChunkList& base, int offset, int n) {
  PSD_REQUIRE(n >= 1, "rotation modulus must be positive");
  PSD_REQUIRE(base.empty() || (base.first() >= 0 && base.last() < n),
              "base chunk ids must lie in [0, n)");
  const int o = ((offset % n) + n) % n;
  if (o == 0) return base;  // COW: shares the spill buffer
  std::vector<Interval> runs;
  runs.reserve(static_cast<std::size_t>(base.num_intervals()) + 1);
  write_rotated_runs(base.intervals(), o, n, runs);
  ChunkList out;
  out.runs_ = static_cast<int>(runs.size());
  out.total_ = base.total_;
  if (out.runs_ <= kInline) {
    std::copy(runs.begin(), runs.end(), out.inline_);
  } else {
    out.spill_ = std::make_shared<std::vector<Interval>>(std::move(runs));
  }
  return out;
}

std::vector<ChunkList> ChunkList::rotated_all(const ChunkList& base,
                                              std::span<const int> offsets, int n) {
  PSD_REQUIRE(n >= 1, "rotation modulus must be positive");
  PSD_REQUIRE(base.empty() || (base.first() >= 0 && base.last() < n),
              "base chunk ids must lie in [0, n)");
  const std::span<const Interval> base_runs = base.intervals();
  auto arena = std::make_shared<std::vector<Interval>>();
  arena->reserve(offsets.size() * (base_runs.size() + 1));
  std::vector<ChunkList> out(offsets.size());
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    const int o = ((offsets[k] % n) + n) % n;
    const std::size_t begin = arena->size();
    write_rotated_runs(base_runs, o, n, *arena);
    const int count = static_cast<int>(arena->size() - begin);
    ChunkList& cl = out[k];
    cl.total_ = base.total_;
    cl.runs_ = count;
    if (count <= kInline) {  // small slices go inline; free the arena space
      std::copy(arena->begin() + static_cast<std::ptrdiff_t>(begin), arena->end(),
                cl.inline_);
      arena->resize(begin);
    } else {
      cl.spill_ = arena;
      cl.spill_offset_ = static_cast<int>(begin);
    }
  }
  return out;
}

void ChunkList::ensure_owned_spill() {
  if (!spill_) {
    spill_ = std::make_shared<std::vector<Interval>>();
    return;
  }
  if (spill_.use_count() == 1 && spill_offset_ == 0 &&
      static_cast<int>(spill_->size()) == runs_) {
    return;
  }
  spill_ = std::make_shared<std::vector<Interval>>(data(), data() + runs_);
  spill_offset_ = 0;
}

void ChunkList::push_run(int start, int len) {
  if (runs_ > kInline) ensure_owned_spill();  // about to mutate the back run
  if (runs_ > 0) {
    Interval& back = runs_ <= kInline ? inline_[runs_ - 1] : spill_->back();
    if (start == back.start + back.len) {  // adjacent: coalesce
      back.len += len;
      total_ += len;
      return;
    }
  }
  if (runs_ < kInline) {
    inline_[runs_] = {start, len};
  } else {
    if (runs_ == kInline) {  // spill transition: move the inline runs out
      spill_ = std::make_shared<std::vector<Interval>>(inline_, inline_ + kInline);
      spill_offset_ = 0;
    }
    spill_->push_back({start, len});
  }
  ++runs_;
  total_ += len;
}

void ChunkList::append_range(int start, int len) {
  PSD_REQUIRE(start >= 0 && len >= 1, "chunk run must be non-negative and non-empty");
  if (runs_ > 0) {
    const Interval& back = data()[runs_ - 1];
    PSD_REQUIRE(start >= back.start + back.len,
                "chunk runs must be appended in ascending order");
  }
  push_run(start, len);
}

void ChunkList::clear() {
  spill_.reset();
  spill_offset_ = 0;
  runs_ = 0;
  total_ = 0;
}

int ChunkList::first() const {
  PSD_REQUIRE(runs_ > 0, "first() on an empty chunk list");
  return data()[0].start;
}

int ChunkList::last() const {
  PSD_REQUIRE(runs_ > 0, "last() on an empty chunk list");
  const Interval& back = data()[runs_ - 1];
  return back.start + back.len - 1;
}

bool ChunkList::contains(int chunk) const {
  const std::span<const Interval> runs = intervals();
  // First run starting strictly after `chunk`; the candidate is its
  // predecessor.
  auto it = std::upper_bound(runs.begin(), runs.end(), chunk,
                             [](int c, const Interval& iv) { return c < iv.start; });
  if (it == runs.begin()) return false;
  --it;
  return chunk < it->start + it->len;
}

ChunkList ChunkList::union_with(const ChunkList& other) const {
  ChunkList out;
  const std::span<const Interval> a = intervals();
  const std::span<const Interval> b = other.intervals();
  std::size_t i = 0;
  std::size_t j = 0;
  // Sweep both run lists in start order, growing one pending run that
  // absorbs everything overlapping or adjacent to it.
  int cur_start = 0;
  int cur_end = -1;  // exclusive; empty when cur_end < cur_start
  bool open = false;
  auto feed = [&](const Interval& iv) {
    if (open && iv.start <= cur_end) {
      cur_end = std::max(cur_end, iv.start + iv.len);
    } else {
      if (open) out.append_range(cur_start, cur_end - cur_start);
      cur_start = iv.start;
      cur_end = iv.start + iv.len;
      open = true;
    }
  };
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].start <= b[j].start)) {
      feed(a[i++]);
    } else {
      feed(b[j++]);
    }
  }
  if (open) out.append_range(cur_start, cur_end - cur_start);
  return out;
}

ChunkList ChunkList::intersect(const ChunkList& other) const {
  ChunkList out;
  const std::span<const Interval> a = intervals();
  const std::span<const Interval> b = other.intervals();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int lo = std::max(a[i].start, b[j].start);
    const int hi = std::min(a[i].start + a[i].len, b[j].start + b[j].len);
    if (lo < hi) out.append_range(lo, hi - lo);
    // Advance whichever run ends first.
    if (a[i].start + a[i].len < b[j].start + b[j].len) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<int> ChunkList::to_vector() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(total_));
  for (const Interval& iv : intervals()) {
    for (int c = iv.start; c < iv.start + iv.len; ++c) out.push_back(c);
  }
  return out;
}

}  // namespace psd::collective
