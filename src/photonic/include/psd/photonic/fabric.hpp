// The programmable photonic interconnect of §3.1, modeled as a circuit-
// switch state machine: n ports, each attached to one GPU transceiver of
// bandwidth b; at any instant the fabric realizes a matching of ports
// (direct optical paths); reconfiguring to a new matching costs a delay
// given by a pluggable ReconfigDelayModel.
//
// This is the hardware substitution for a physical OCS (see
// docs/architecture.md, "photonic — the fabric model"): the theory consumes
// only connectivity and delay, both of which are exact here.
#pragma once

#include <memory>

#include "psd/photonic/reconfig_delay.hpp"
#include "psd/topo/graph.hpp"

namespace psd::photonic {

struct Transceiver {
  Bandwidth bandwidth;
};

struct FabricStats {
  long long reconfigurations = 0;
  TimeNs total_reconfig_time;
};

class Fabric {
 public:
  /// Creates a fabric with `num_ports` ports of bandwidth `port_bw` each,
  /// starting in the given configuration.
  Fabric(int num_ports, Bandwidth port_bw,
         std::unique_ptr<ReconfigDelayModel> delay_model,
         topo::Matching initial_config);

  Fabric(const Fabric& other);
  Fabric& operator=(const Fabric& other);
  Fabric(Fabric&&) noexcept = default;
  Fabric& operator=(Fabric&&) noexcept = default;
  ~Fabric() = default;

  [[nodiscard]] int num_ports() const { return num_ports_; }
  [[nodiscard]] Bandwidth port_bandwidth() const { return port_bw_; }
  [[nodiscard]] const topo::Matching& configuration() const { return config_; }

  /// Delay the next reconfiguration to `target` would incur (no state change).
  [[nodiscard]] TimeNs peek_delay(const topo::Matching& target) const;

  /// Switches to `target`, returning the incurred delay and updating stats.
  TimeNs reconfigure(const topo::Matching& target);

  /// The topology currently realized: one directed edge per circuit, at full
  /// port bandwidth.
  [[nodiscard]] topo::Graph current_topology() const;

  [[nodiscard]] const FabricStats& stats() const { return stats_; }

 private:
  int num_ports_;
  Bandwidth port_bw_;
  std::unique_ptr<ReconfigDelayModel> delay_model_;
  topo::Matching config_;
  FabricStats stats_;
};

/// AWGR-style wavelength-switched fabric helper (§3.1's controller-free
/// alternative): input port i reaches output port j by emitting wavelength
/// (j − i) mod n. Returns the per-port wavelength index for a configuration
/// (-1 for idle ports). Any matching is realizable contention-free because
/// output ports are distinct.
[[nodiscard]] std::vector<int> awgr_wavelength_assignment(const topo::Matching& config);

}  // namespace psd::photonic
