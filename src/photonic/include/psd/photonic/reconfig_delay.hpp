// Reconfiguration-delay models for programmable photonic fabrics.
//
// The paper assumes a constant delay α_r but notes (§3.1, §4) that real
// technologies often scale with the number of ports involved; both models
// are provided as strategies so the optimizer and simulator can price
// transitions accurately.
#pragma once

#include <memory>

#include "psd/topo/matching.hpp"
#include "psd/util/units.hpp"

namespace psd::photonic {

class ReconfigDelayModel {
 public:
  virtual ~ReconfigDelayModel() = default;

  /// Delay to move the fabric from configuration `from` to `to`.
  [[nodiscard]] virtual TimeNs delay(const topo::Matching& from,
                                     const topo::Matching& to) const = 0;

  [[nodiscard]] virtual std::unique_ptr<ReconfigDelayModel> clone() const = 0;
};

/// The paper's model: every reconfiguration costs α_r, except the identity
/// transition (from == to) which is free.
class ConstantDelayModel final : public ReconfigDelayModel {
 public:
  explicit ConstantDelayModel(TimeNs alpha_r);
  [[nodiscard]] TimeNs delay(const topo::Matching& from,
                             const topo::Matching& to) const override;
  [[nodiscard]] std::unique_ptr<ReconfigDelayModel> clone() const override;

 private:
  TimeNs alpha_r_;
};

/// Port-count-dependent delay: fixed + per_port · (#ports whose connection
/// changes). Captures MEMS/MZI-style switches where each moved circuit is
/// re-established individually (research-agenda extension).
class PerPortDelayModel final : public ReconfigDelayModel {
 public:
  PerPortDelayModel(TimeNs fixed, TimeNs per_port);
  [[nodiscard]] TimeNs delay(const topo::Matching& from,
                             const topo::Matching& to) const override;
  [[nodiscard]] std::unique_ptr<ReconfigDelayModel> clone() const override;

 private:
  TimeNs fixed_;
  TimeNs per_port_;
};

}  // namespace psd::photonic
