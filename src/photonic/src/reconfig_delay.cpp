#include "psd/photonic/reconfig_delay.hpp"

#include "psd/util/error.hpp"

namespace psd::photonic {

ConstantDelayModel::ConstantDelayModel(TimeNs alpha_r) : alpha_r_(alpha_r) {
  PSD_REQUIRE(alpha_r.ns() >= 0.0, "reconfiguration delay must be non-negative");
}

TimeNs ConstantDelayModel::delay(const topo::Matching& from,
                                 const topo::Matching& to) const {
  return (from == to) ? TimeNs(0.0) : alpha_r_;
}

std::unique_ptr<ReconfigDelayModel> ConstantDelayModel::clone() const {
  return std::make_unique<ConstantDelayModel>(*this);
}

PerPortDelayModel::PerPortDelayModel(TimeNs fixed, TimeNs per_port)
    : fixed_(fixed), per_port_(per_port) {
  PSD_REQUIRE(fixed.ns() >= 0.0 && per_port.ns() >= 0.0,
              "delays must be non-negative");
}

TimeNs PerPortDelayModel::delay(const topo::Matching& from,
                                const topo::Matching& to) const {
  const int changed = to.ports_changed_from(from);
  if (changed == 0) return TimeNs(0.0);
  return fixed_ + per_port_ * static_cast<double>(changed);
}

std::unique_ptr<ReconfigDelayModel> PerPortDelayModel::clone() const {
  return std::make_unique<PerPortDelayModel>(*this);
}

}  // namespace psd::photonic
