#include "psd/photonic/fabric.hpp"

#include "psd/topo/builders.hpp"
#include "psd/util/error.hpp"

namespace psd::photonic {

Fabric::Fabric(int num_ports, Bandwidth port_bw,
               std::unique_ptr<ReconfigDelayModel> delay_model,
               topo::Matching initial_config)
    : num_ports_(num_ports), port_bw_(port_bw),
      delay_model_(std::move(delay_model)), config_(std::move(initial_config)) {
  PSD_REQUIRE(num_ports_ >= 2, "fabric needs at least 2 ports");
  PSD_REQUIRE(port_bw_.bytes_per_ns() > 0.0, "port bandwidth must be positive");
  PSD_REQUIRE(delay_model_ != nullptr, "delay model required");
  PSD_REQUIRE(config_.size() == num_ports_, "configuration size mismatch");
}

Fabric::Fabric(const Fabric& other)
    : num_ports_(other.num_ports_), port_bw_(other.port_bw_),
      delay_model_(other.delay_model_->clone()), config_(other.config_),
      stats_(other.stats_) {}

Fabric& Fabric::operator=(const Fabric& other) {
  if (this != &other) {
    num_ports_ = other.num_ports_;
    port_bw_ = other.port_bw_;
    delay_model_ = other.delay_model_->clone();
    config_ = other.config_;
    stats_ = other.stats_;
  }
  return *this;
}

TimeNs Fabric::peek_delay(const topo::Matching& target) const {
  PSD_REQUIRE(target.size() == num_ports_, "configuration size mismatch");
  return delay_model_->delay(config_, target);
}

TimeNs Fabric::reconfigure(const topo::Matching& target) {
  const TimeNs d = peek_delay(target);
  if (!(target == config_)) {
    ++stats_.reconfigurations;
    stats_.total_reconfig_time += d;
    config_ = target;
  }
  return d;
}

topo::Graph Fabric::current_topology() const {
  return topo::matched_topology(config_, port_bw_);
}

std::vector<int> awgr_wavelength_assignment(const topo::Matching& config) {
  const int n = config.size();
  std::vector<int> lambda(static_cast<std::size_t>(n), -1);
  for (const auto& [src, dst] : config.pairs()) {
    lambda[static_cast<std::size_t>(src)] = ((dst - src) % n + n) % n;
  }
  return lambda;
}

}  // namespace psd::photonic
