#include "psd/sweep/shared_theta_cache.hpp"

#include "psd/topo/matching.hpp"

namespace psd::sweep {

namespace {

// Combine the context fingerprint with the destination hash the per-oracle
// cache already uses; the multiply-rotate keeps (fp, dst) pairs that swap
// bits from colliding trivially. One definition serves Key and KeyView —
// transparent lookups require the two to hash identically.
std::size_t hash_key(std::uint64_t context_fp,
                     const std::vector<int>& destinations) noexcept {
  std::size_t h = topo::hash_destinations(destinations);
  h ^= static_cast<std::size_t>(context_fp) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  return h;
}

}  // namespace

std::size_t SharedThetaCache::KeyHash::operator()(const Key& k) const noexcept {
  return hash_key(k.context_fp, k.destinations);
}

std::size_t SharedThetaCache::KeyHash::operator()(const KeyView& k) const noexcept {
  return hash_key(k.context_fp, *k.destinations);
}

SharedThetaCache::SharedThetaCache(SharedThetaCacheOptions opts)
    : cache_(opts.capacity, opts.shards) {}

std::optional<double> SharedThetaCache::lookup(
    std::uint64_t context_fp, const std::vector<int>& destinations) {
  // Heterogeneous probe: the view borrows the caller's destination vector,
  // so a lookup — hit or miss — performs no allocation. Only a miss's
  // insert() (which must own the key anyway) copies.
  return cache_.lookup(KeyView{context_fp, &destinations});
}

double SharedThetaCache::insert(std::uint64_t context_fp,
                                const std::vector<int>& destinations,
                                double theta) {
  return cache_.insert(Key{context_fp, destinations}, theta);
}

std::shared_ptr<SharedThetaCache> make_shared_theta_cache(
    SharedThetaCacheOptions opts) {
  return std::make_shared<SharedThetaCache>(opts);
}

}  // namespace psd::sweep
