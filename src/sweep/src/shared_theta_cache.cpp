#include "psd/sweep/shared_theta_cache.hpp"

#include "psd/topo/matching.hpp"

namespace psd::sweep {

std::size_t SharedThetaCache::KeyHash::operator()(const Key& k) const noexcept {
  // Combine the context fingerprint with the destination hash the
  // per-oracle cache already uses; the multiply-rotate keeps (fp, dst)
  // pairs that swap bits from colliding trivially.
  std::size_t h = topo::hash_destinations(k.destinations);
  h ^= static_cast<std::size_t>(k.context_fp) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  return h;
}

SharedThetaCache::SharedThetaCache(SharedThetaCacheOptions opts)
    : cache_(opts.capacity, opts.shards) {}

std::optional<double> SharedThetaCache::lookup(
    std::uint64_t context_fp, const std::vector<int>& destinations) {
  // The temporary key copies the destination vector; callers are on the θ
  // miss/solve path or a hit that just avoided an exact solve, so this
  // allocation is noise. (A heterogeneous-lookup variant could remove it if
  // a profile ever says otherwise.)
  return cache_.lookup(Key{context_fp, destinations});
}

double SharedThetaCache::insert(std::uint64_t context_fp,
                                const std::vector<int>& destinations,
                                double theta) {
  return cache_.insert(Key{context_fp, destinations}, theta);
}

std::shared_ptr<SharedThetaCache> make_shared_theta_cache(
    SharedThetaCacheOptions opts) {
  return std::make_shared<SharedThetaCache>(opts);
}

}  // namespace psd::sweep
