#include "psd/sweep/shared_theta_cache.hpp"

#include "psd/topo/delta.hpp"
#include "psd/topo/matching.hpp"

namespace psd::sweep {

namespace {

// Combine the two precomputed digests. The multiply-rotate keeps (fp, dst)
// pairs that swap bits from colliding trivially. One definition serves Key
// and KeyView — transparent lookups require the two to hash identically.
// O(1): the destination vector was digested once when the key was built.
std::size_t hash_key(std::uint64_t context_fp, std::uint64_t dest_hash) noexcept {
  std::size_t h = static_cast<std::size_t>(dest_hash);
  h ^= static_cast<std::size_t>(context_fp) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  return h;
}

}  // namespace

std::size_t SharedThetaCache::KeyHash::operator()(const Key& k) const noexcept {
  return hash_key(k.context_fp, k.dest_hash);
}

std::size_t SharedThetaCache::KeyHash::operator()(const KeyView& k) const noexcept {
  return hash_key(k.context_fp, k.dest_hash);
}

SharedThetaCache::SharedThetaCache(SharedThetaCacheOptions opts)
    : cache_(opts.capacity, opts.shards) {}

std::optional<double> SharedThetaCache::lookup(
    std::uint64_t context_fp, const std::vector<int>& destinations) {
  // Heterogeneous probe: the view borrows the caller's destination vector,
  // so a lookup — hit or miss — performs no allocation, and the vector is
  // FNV-walked exactly once (here), not once per internal hash.
  const auto entry = cache_.lookup(
      KeyView{context_fp, topo::hash_destinations(destinations), &destinations});
  if (!entry) return std::nullopt;
  return entry->theta;
}

double SharedThetaCache::insert(std::uint64_t context_fp,
                                const std::vector<int>& destinations,
                                double theta) {
  return cache_
      .insert(Key{context_fp, topo::hash_destinations(destinations), destinations},
              CacheEntry{theta, nullptr})
      .theta;
}

double SharedThetaCache::insert_with_support(
    std::uint64_t context_fp, const std::vector<int>& destinations, double theta,
    const std::vector<std::uint64_t>& support) {
  return cache_
      .insert(Key{context_fp, topo::hash_destinations(destinations), destinations},
              CacheEntry{theta,
                         std::make_shared<const std::vector<std::uint64_t>>(
                             support)})
      .theta;
}

SharedThetaCache::CarryStats SharedThetaCache::carry_across_delta(
    std::uint64_t old_context_fp, std::uint64_t new_context_fp,
    const std::vector<std::uint64_t>& touched, bool relaxing) {
  CarryStats stats;
  // Collect first, insert after: for_each holds shard locks, and the
  // survivor inserts hash to arbitrary shards (new_context_fp changes the
  // shard), so inserting from inside the visit could self-deadlock.
  std::vector<Key> keys;
  std::vector<CacheEntry> entries;
  cache_.for_each([&](const Key& k, const CacheEntry& e) {
    if (k.context_fp != old_context_fp) return;
    ++stats.examined;
    // Survival is exact only for restricting deltas with recorded,
    // untouched support (see flow/theta_cache.hpp).
    if (relaxing || e.support == nullptr ||
        topo::pair_codes_intersect(*e.support, touched)) {
      ++stats.invalidated;
      return;
    }
    ++stats.survived;
    keys.push_back(Key{new_context_fp, k.dest_hash, k.destinations});
    entries.push_back(e);  // aliases the support vector, no deep copy
  });
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cache_.insert(std::move(keys[i]), std::move(entries[i]));
  }
  return stats;
}

std::shared_ptr<SharedThetaCache> make_shared_theta_cache(
    SharedThetaCacheOptions opts) {
  return std::make_shared<SharedThetaCache>(opts);
}

}  // namespace psd::sweep
