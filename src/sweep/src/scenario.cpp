#include "psd/sweep/scenario.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <set>

#include "psd/topo/builders.hpp"
#include "psd/util/error.hpp"

namespace psd::sweep {

namespace {

using workload::AllReduceAlgo;
using workload::AllToAllAlgo;
using workload::CollectiveKind;

bool pow2(int n) { return n >= 2 && std::has_single_bit(static_cast<unsigned>(n)); }

/// Largest divisor of n that is <= sqrt(n) — the torus row count. 1 when n
/// is prime (which scenario_valid rejects).
int near_square_rows(int n) {
  int best = 1;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) best = d;
  }
  return best;
}

std::string fmt_bytes_exact(Bytes b) {
  const double v = b.count();
  char buf[40];
  if (v == std::floor(v) && v >= 0 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDirectedRing: return "ring";
    case TopologyKind::kBidirectionalRing: return "bidir-ring";
    case TopologyKind::kTorus2D: return "torus";
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kFullMesh: return "mesh";
  }
  return "?";
}

std::optional<TopologyKind> topology_from_string(std::string_view s) {
  if (s == "ring") return TopologyKind::kDirectedRing;
  if (s == "bidir-ring") return TopologyKind::kBidirectionalRing;
  if (s == "torus") return TopologyKind::kTorus2D;
  if (s == "hypercube") return TopologyKind::kHypercube;
  if (s == "mesh") return TopologyKind::kFullMesh;
  return std::nullopt;
}

std::string to_string(const TopologySpec& spec) {
  std::string out = to_string(spec.kind);
  if (spec.kind == TopologyKind::kTorus2D && spec.rows > 0) {
    out += std::to_string(spec.rows) + "x" + std::to_string(spec.cols);
  }
  return out;
}

std::optional<TopologySpec> topology_spec_from_string(std::string_view s) {
  if (const auto kind = topology_from_string(s)) return TopologySpec(*kind);
  // torus<rows>x<cols>: both sides explicit integers >= 2, nothing else.
  constexpr std::string_view prefix = "torus";
  if (!s.starts_with(prefix)) return std::nullopt;
  std::string_view shape = s.substr(prefix.size());
  const auto x = shape.find('x');
  if (x == std::string_view::npos) return std::nullopt;
  const std::string_view rows_s = shape.substr(0, x);
  const std::string_view cols_s = shape.substr(x + 1);
  int rows = 0;
  int cols = 0;
  auto parse_side = [](std::string_view v, int& out) {
    const auto [end, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    return ec == std::errc{} && end == v.data() + v.size();
  };
  if (!parse_side(rows_s, rows) || !parse_side(cols_s, cols)) return std::nullopt;
  if (rows < 2 || cols < 2) return std::nullopt;
  return TopologySpec(TopologyKind::kTorus2D, rows, cols);
}

std::string to_string(const CollectiveSpec& spec) {
  std::string out = workload::to_string(spec.kind);
  if (spec.kind == CollectiveKind::kAllReduce) {
    out += ':';
    out += workload::to_string(spec.allreduce);
  } else if (spec.kind == CollectiveKind::kAllToAll) {
    out += ':';
    out += workload::to_string(spec.alltoall);
  }
  return out;
}

std::optional<CollectiveSpec> collective_from_string(std::string_view s) {
  std::string_view kind = s;
  std::string_view algo;
  if (const auto colon = s.find(':'); colon != std::string_view::npos) {
    kind = s.substr(0, colon);
    algo = s.substr(colon + 1);
  }
  CollectiveSpec spec;
  if (kind == "allreduce") {
    spec.kind = CollectiveKind::kAllReduce;
    if (algo.empty() || algo == "hd") spec.allreduce = AllReduceAlgo::kHalvingDoubling;
    else if (algo == "ring") spec.allreduce = AllReduceAlgo::kRing;
    else if (algo == "rd") spec.allreduce = AllReduceAlgo::kRecursiveDoubling;
    else if (algo == "swing") spec.allreduce = AllReduceAlgo::kSwing;
    else if (algo == "auto") spec.allreduce = AllReduceAlgo::kAuto;
    else return std::nullopt;
    return spec;
  }
  if (kind == "alltoall") {
    spec.kind = CollectiveKind::kAllToAll;
    if (algo.empty() || algo == "transpose") spec.alltoall = AllToAllAlgo::kTranspose;
    else if (algo == "bruck") spec.alltoall = AllToAllAlgo::kBruck;
    else if (algo == "auto") spec.alltoall = AllToAllAlgo::kAuto;
    else return std::nullopt;
    return spec;
  }
  if (!algo.empty()) return std::nullopt;
  if (kind == "allgather") spec.kind = CollectiveKind::kAllGather;
  else if (kind == "reduce-scatter") spec.kind = CollectiveKind::kReduceScatter;
  else if (kind == "broadcast") spec.kind = CollectiveKind::kBroadcast;
  else return std::nullopt;
  return spec;
}

std::string to_string(const ExtensionSpec& spec) {
  return spec.dedup_identical_matchings ? "dedup" : "none";
}

std::optional<ExtensionSpec> extension_from_string(std::string_view s) {
  if (s == "none") return ExtensionSpec{};
  if (s == "dedup") return ExtensionSpec{.dedup_identical_matchings = true};
  return std::nullopt;
}

std::string Scenario::id() const {
  std::string out = to_string(topology);
  out += "/n" + std::to_string(nodes);
  out += "/" + to_string(collective);
  out += "/" + fmt_bytes_exact(message) + "B";
  out += "/c" + std::to_string(cost_index);
  if (!(extensions == ExtensionSpec{})) {
    out += "/x" + to_string(extensions);
  }
  if (churn.drops > 0) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "/k%d/f%.6g/s%llu", churn.drops, churn.droop,
                  static_cast<unsigned long long>(churn.seed));
    out += buf;
  }
  return out;
}

bool scenario_valid(const TopologySpec& topology, int nodes,
                    const CollectiveSpec& collective) {
  if (nodes < 2) return false;
  switch (topology.kind) {
    case TopologyKind::kHypercube:
      if (!pow2(nodes)) return false;
      break;
    case TopologyKind::kTorus2D:
      if (topology.rows > 0) {
        // Explicit shape: only the matching node count materializes.
        if (nodes != topology.rows * topology.cols) return false;
      } else if (near_square_rows(nodes) < 2) {
        return false;
      }
      break;
    default:
      break;
  }
  // kAuto is valid at any node count: the selector resolves non-power-of-two
  // domains to the universal algorithms (ring / transpose) by construction.
  const bool needs_pow2 =
      (collective.kind == CollectiveKind::kAllReduce &&
       collective.allreduce != AllReduceAlgo::kRing &&
       collective.allreduce != AllReduceAlgo::kAuto) ||
      (collective.kind == CollectiveKind::kAllToAll &&
       collective.alltoall == AllToAllAlgo::kBruck);
  return !needs_pow2 || pow2(nodes);
}

std::vector<Scenario> expand(const ScenarioGrid& grid, std::size_t* skipped) {
  PSD_REQUIRE(!grid.topologies.empty(), "grid needs at least one topology");
  PSD_REQUIRE(!grid.node_counts.empty(), "grid needs at least one node count");
  PSD_REQUIRE(!grid.collectives.empty(), "grid needs at least one collective");
  PSD_REQUIRE(!grid.message_sizes.empty(), "grid needs at least one message size");
  PSD_REQUIRE(!grid.cost_params.empty(), "grid needs at least one cost point");
  // Empty extension/churn axes behave as the plain-model, no-churn defaults
  // so pre-existing grids expand to the same scenario list (and ids) they
  // always did.
  const std::vector<ExtensionSpec> extensions =
      grid.extensions.empty() ? std::vector<ExtensionSpec>{ExtensionSpec{}}
                              : grid.extensions;
  const std::vector<int> drop_counts =
      grid.drop_counts.empty() ? std::vector<int>{0} : grid.drop_counts;
  const std::vector<double> droops =
      grid.droops.empty() ? std::vector<double>{1.0} : grid.droops;
  const std::vector<std::uint64_t> seeds =
      grid.seeds.empty() ? std::vector<std::uint64_t>{1} : grid.seeds;
  std::size_t skip_count = 0;
  std::vector<Scenario> out;
  for (const auto topology : grid.topologies) {
    for (const int n : grid.node_counts) {
      for (const auto& coll : grid.collectives) {
        if (!scenario_valid(topology, n, coll)) {
          skip_count += grid.message_sizes.size() * grid.cost_params.size();
          continue;
        }
        for (const auto size : grid.message_sizes) {
          for (std::size_t c = 0; c < grid.cost_params.size(); ++c) {
            for (const auto& ext : extensions) {
              for (const int drops : drop_counts) {
                if (drops == 0) {
                  // No churn: one scenario regardless of droop/seed values —
                  // they only parameterize faults that never happen.
                  out.push_back(Scenario{topology, n, coll, size,
                                         grid.cost_params[c],
                                         static_cast<int>(c), ext, ChurnSpec{}});
                  continue;
                }
                for (const double droop : droops) {
                  for (const std::uint64_t seed : seeds) {
                    out.push_back(Scenario{topology, n, coll, size,
                                           grid.cost_params[c],
                                           static_cast<int>(c), ext,
                                           ChurnSpec{drops, droop, seed}});
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return out;
}

topo::Graph build_topology(const TopologySpec& spec, int nodes,
                           Bandwidth link_bw) {
  switch (spec.kind) {
    case TopologyKind::kDirectedRing:
      return topo::directed_ring(nodes, link_bw);
    case TopologyKind::kBidirectionalRing:
      return topo::bidirectional_ring(nodes, link_bw);
    case TopologyKind::kTorus2D: {
      if (spec.rows > 0) {
        PSD_REQUIRE(nodes == spec.rows * spec.cols,
                    "torus shape does not match the node count");
        return topo::torus_2d(spec.rows, spec.cols, link_bw);
      }
      const int rows = near_square_rows(nodes);
      return topo::torus_2d(rows, nodes / rows, link_bw);
    }
    case TopologyKind::kHypercube:
      return topo::hypercube(std::countr_zero(static_cast<unsigned>(nodes)),
                             link_bw);
    case TopologyKind::kFullMesh:
      return topo::full_mesh(nodes, link_bw);
  }
  throw InvalidArgument("unknown topology kind");
}

// ---- Grid-spec parsing ---------------------------------------------------

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_list(std::string_view s) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const auto comma = s.find(',');
    out.push_back(trim(s.substr(0, comma)));
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

[[noreturn]] void spec_error(int line, const std::string& what) {
  throw InvalidArgument("grid spec line " + std::to_string(line) + ": " + what);
}

double parse_number(std::string_view s, int line) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    spec_error(line, "expected a number, got '" + std::string(s) + "'");
  }
  return v;
}

int parse_int(std::string_view s, int line) {
  int v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    spec_error(line, "expected an integer, got '" + std::string(s) + "'");
  }
  return v;
}

/// "4MiB", "64KiB", "1GiB", "512B", the short binary forms "4K"/"1M"/"1G",
/// or a plain number of bytes.
Bytes parse_size(std::string_view s, int line) {
  double scale = 1.0;
  if (s.size() > 3 && s.substr(s.size() - 3) == "KiB") {
    scale = 1024.0;
    s.remove_suffix(3);
  } else if (s.size() > 3 && s.substr(s.size() - 3) == "MiB") {
    scale = 1024.0 * 1024.0;
    s.remove_suffix(3);
  } else if (s.size() > 3 && s.substr(s.size() - 3) == "GiB") {
    scale = 1024.0 * 1024.0 * 1024.0;
    s.remove_suffix(3);
  } else if (s.size() > 1 && s.back() == 'K') {
    scale = 1024.0;
    s.remove_suffix(1);
  } else if (s.size() > 1 && s.back() == 'M') {
    scale = 1024.0 * 1024.0;
    s.remove_suffix(1);
  } else if (s.size() > 1 && s.back() == 'G') {
    scale = 1024.0 * 1024.0 * 1024.0;
    s.remove_suffix(1);
  } else if (s.size() > 1 && s.back() == 'B') {
    s.remove_suffix(1);
  }
  const double v = parse_number(trim(s), line);
  if (v <= 0.0) spec_error(line, "message size must be positive");
  return Bytes(v * scale);
}

/// A size axis value: a single size, or a log-spaced range "lo..hi" that
/// expands to lo·4^k for k = 0, 1, … while below hi, with hi itself
/// appended when the geometric ladder does not land on it exactly —
/// "4K..1G" yields the ten decade points 4 KiB, 16 KiB, …, 256 MiB, 1 GiB.
void append_sizes(std::string_view s, int line, std::vector<Bytes>& out) {
  const auto dots = s.find("..");
  if (dots == std::string_view::npos) {
    out.push_back(parse_size(s, line));
    return;
  }
  const Bytes lo = parse_size(trim(s.substr(0, dots)), line);
  const Bytes hi = parse_size(trim(s.substr(dots + 2)), line);
  if (hi.count() < lo.count()) {
    spec_error(line, "size range upper bound below lower bound");
  }
  double v = lo.count();
  while (v < hi.count() * (1.0 - 1e-9)) {
    out.push_back(Bytes(v));
    v *= 4.0;
  }
  out.push_back(hi);
}

}  // namespace

ScenarioGrid parse_grid_spec(std::string_view text) {
  ScenarioGrid grid;
  std::vector<double> alpha_r_ns = {10000.0};  // 10 us, the paper's slow OCS
  double alpha_ns = 100.0;
  double delta_ns = 100.0;
  double bandwidth_gbps = 800.0;

  int line_no = 0;
  std::set<std::string, std::less<>> seen_keys;
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      spec_error(line_no, "expected 'key = value[, value...]'");
    }
    const auto key = trim(line.substr(0, eq));
    // One line per key: silently accumulating a repeated axis would emit
    // duplicate scenario ids, and "overriding" would silently ignore the
    // earlier line — neither is ever what the author meant.
    if (!seen_keys.emplace(key).second) {
      spec_error(line_no, "duplicate key '" + std::string(key) +
                              "' (each key may appear once)");
    }
    const auto values = split_list(trim(line.substr(eq + 1)));
    if (values.empty() || values.front().empty()) {
      spec_error(line_no, "empty value list for '" + std::string(key) + "'");
    }
    if (key == "topology") {
      for (const auto v : values) {
        const auto t = topology_spec_from_string(v);
        if (!t) {
          spec_error(line_no,
                     "unknown topology '" + std::string(v) +
                         "' (expected ring, bidir-ring, torus, torus<R>x<C> "
                         "with both sides >= 2, hypercube, or mesh)");
        }
        grid.topologies.push_back(*t);
      }
    } else if (key == "nodes") {
      for (const auto v : values) {
        const int n = parse_int(v, line_no);
        if (n < 2) spec_error(line_no, "node count must be >= 2");
        grid.node_counts.push_back(n);
      }
    } else if (key == "collective") {
      for (const auto v : values) {
        const auto c = collective_from_string(v);
        if (!c) spec_error(line_no, "unknown collective '" + std::string(v) + "'");
        grid.collectives.push_back(*c);
      }
    } else if (key == "size") {
      for (const auto v : values) append_sizes(v, line_no, grid.message_sizes);
    } else if (key == "extensions") {
      for (const auto v : values) {
        const auto e = extension_from_string(v);
        if (!e) {
          spec_error(line_no, "unknown extension '" + std::string(v) +
                                  "' (expected none or dedup)");
        }
        grid.extensions.push_back(*e);
      }
    } else if (key == "alpha_r_ns") {
      alpha_r_ns.clear();
      for (const auto v : values) {
        const double r = parse_number(v, line_no);
        if (r < 0.0) spec_error(line_no, "alpha_r_ns must be non-negative");
        alpha_r_ns.push_back(r);
      }
    } else if (key == "drops") {
      for (const auto v : values) {
        const int d = parse_int(v, line_no);
        if (d < 0) spec_error(line_no, "drops must be non-negative");
        grid.drop_counts.push_back(d);
      }
    } else if (key == "droop") {
      for (const auto v : values) {
        const double f = parse_number(v, line_no);
        if (f <= 0.0 || f > 1.0) {
          spec_error(line_no, "droop must be in (0, 1] (1 = cut the link)");
        }
        grid.droops.push_back(f);
      }
    } else if (key == "seed") {
      for (const auto v : values) {
        const int s = parse_int(v, line_no);
        if (s < 0) spec_error(line_no, "seed must be non-negative");
        grid.seeds.push_back(static_cast<std::uint64_t>(s));
      }
    } else if (key == "alpha_ns" || key == "delta_ns" || key == "bandwidth_gbps") {
      // Scalars, not axes: a value list here would silently drop all but
      // the first entry, so reject it outright.
      if (values.size() != 1) {
        spec_error(line_no, "'" + std::string(key) +
                                "' takes a single value, not a list");
      }
      const double v = parse_number(values.front(), line_no);
      if (key == "bandwidth_gbps") {
        if (v <= 0.0) spec_error(line_no, "bandwidth must be positive");
        bandwidth_gbps = v;
      } else {
        if (v < 0.0) {
          spec_error(line_no, "'" + std::string(key) + "' must be non-negative");
        }
        (key == "alpha_ns" ? alpha_ns : delta_ns) = v;
      }
    } else {
      spec_error(line_no, "unknown key '" + std::string(key) + "'");
    }
  }
  if (grid.topologies.empty()) throw InvalidArgument("grid spec: missing 'topology'");
  if (grid.node_counts.empty()) throw InvalidArgument("grid spec: missing 'nodes'");
  if (grid.collectives.empty()) throw InvalidArgument("grid spec: missing 'collective'");
  if (grid.message_sizes.empty()) throw InvalidArgument("grid spec: missing 'size'");
  if ((!grid.droops.empty() || !grid.seeds.empty()) && grid.drop_counts.empty()) {
    throw InvalidArgument(
        "grid spec: 'droop'/'seed' only make sense with a 'drops' axis");
  }
  for (const double r : alpha_r_ns) {
    core::CostParams p;
    p.alpha = TimeNs(alpha_ns);
    p.delta = TimeNs(delta_ns);
    p.alpha_r = TimeNs(r);
    p.b = gbps(bandwidth_gbps);
    grid.cost_params.push_back(p);
  }
  return grid;
}

}  // namespace psd::sweep
