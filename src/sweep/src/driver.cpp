#include "psd/sweep/driver.hpp"

#include <cmath>
#include <cstdio>

#include "psd/core/algo_select.hpp"
#include "psd/core/pipelined_cost.hpp"
#include "psd/util/json.hpp"
#include "psd/util/table.hpp"
#include "psd/util/thread_pool.hpp"

namespace psd::sweep {

namespace {

/// "%.17g": round-trip exact for doubles and identical to JsonWriter's
/// rendering, so the CSV and JSON artifacts agree on every number.
std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct JobResult {
  SweepRow row;
  util::ShardedLruStats oracle_stats;  // private θ-cache counters
};

/// Error rows carry default-zero plans, whose speedup ratios are 0/0; the
/// artifacts must stay valid JSON/CSV, so those render as 0 instead of nan.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

JobResult run_one_checked(const Scenario& sc,
                          const flow::ThetaOptions& theta_opts) {
  JobResult out;
  out.row.scenario = sc;
  // Planner-internal parallelism off: sweep jobs already saturate the pool
  // (nested submission would collapse inline anyway), and a single-threaded
  // plan keeps the private oracle counters a pure function of the scenario.
  core::Planner planner(build_topology(sc.topology, sc.nodes, sc.params.b),
                        sc.params, theta_opts,
                        core::PlannerOptions{.parallel = false});
  const workload::CollectiveRequest request{sc.collective.kind, sc.message,
                                            sc.id()};
  core::ModelExtensions ext;
  ext.dedup_identical_matchings = sc.extensions.dedup_identical_matchings;
  workload::MaterializeOptions mat;
  mat.allreduce = sc.collective.allreduce;
  mat.alltoall = sc.collective.alltoall;
  const bool wants_auto =
      (sc.collective.kind == workload::CollectiveKind::kAllReduce &&
       mat.allreduce == workload::AllReduceAlgo::kAuto) ||
      (sc.collective.kind == workload::CollectiveKind::kAllToAll &&
       mat.alltoall == workload::AllToAllAlgo::kAuto);
  if (wants_auto) {
    // Size-adaptive selection: the winner's resolved enums feed the normal
    // materialize → plan path so baselines are computed for it too.
    const auto sel = core::select_algorithm(planner, request, mat, ext);
    out.row.chosen_algo = sel.chosen.algo;
    mat.allreduce = sel.chosen.allreduce;
    mat.alltoall = sel.chosen.alltoall;
  }
  const auto schedule = workload::materialize(request, sc.nodes, mat);
  out.row.steps = schedule.num_steps();
  out.row.result = planner.plan(schedule, ext);
  // Pipelined-vs-barrier pricing of the optimal plan (θ values are cache
  // hits at this point, so this is O(steps · chunks) arithmetic).
  const core::ProblemInstance inst = planner.instance(schedule);
  const core::PipelinedCostModel pipelined(inst, ext);
  const auto chunk_sweep = pipelined.best_over_chunks(out.row.result.optimal.choice);
  out.row.pipelined = chunk_sweep.completion;
  out.row.pipeline_chunks = chunk_sweep.chunks;
  if (sc.churn.drops > 0) {
    // Churn rides on a private oracle (never the sweep's shared cache):
    // shared-cache counters depend on scenario interleaving, and the churn
    // metrics must be a pure function of the scenario (see SweepRow).
    std::vector<topo::Matching> matchings;
    matchings.reserve(static_cast<std::size_t>(schedule.num_steps()));
    for (int s = 0; s < schedule.num_steps(); ++s) {
      matchings.push_back(schedule.step(s).matching);
    }
    sim::ChurnConfig cc;
    cc.drops = sc.churn.drops;
    cc.droop = sc.churn.droop;
    cc.seed = sc.churn.seed;
    cc.scenario_key = sc.id();
    cc.gk_epsilon = theta_opts.epsilon;
    cc.exact_var_limit = theta_opts.exact_var_limit;
    sim::ChurnEngine engine(build_topology(sc.topology, sc.nodes, sc.params.b),
                            std::move(matchings), sc.params.b, cc);
    out.row.churn = engine.run();
  }
  const auto& oracle = planner.oracle();
  out.oracle_stats.hits = oracle.cache_hits();
  out.oracle_stats.entries = oracle.cache_size();
  out.oracle_stats.evictions = oracle.cache_evictions();
  // Every private-cache miss inserts exactly once.
  out.oracle_stats.insertions = out.oracle_stats.entries + out.oracle_stats.evictions;
  out.oracle_stats.misses = out.oracle_stats.insertions;
  out.oracle_stats.lock_contentions = oracle.cache_lock_contentions();
  return out;
}

/// One sweep job, exception-contained: a scenario whose plan throws yields
/// an error row instead of aborting the whole sweep (the pool would wrap
/// the escape in a JobError and lose every other scenario's work).
JobResult run_one(const Scenario& sc, const flow::ThetaOptions& theta_opts) {
  try {
    return run_one_checked(sc, theta_opts);
  } catch (const std::exception& e) {
    JobResult out;
    out.row.scenario = sc;
    out.row.error = e.what();
    return out;
  }
}

}  // namespace

const char* to_string(CacheMode mode) {
  return mode == CacheMode::kShared ? "shared" : "per-planner";
}

SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& options) {
  flow::ThetaOptions theta_opts = options.theta;
  if (options.shared_cache) theta_opts.shared_cache = options.shared_cache;
  // The effective shared cache, whichever field it arrived through:
  // options.shared_cache wins, but a SharedThetaCache passed directly via
  // options.theta.shared_cache is honored too (a custom
  // SharedThetaCacheBase implementation still runs shared — the report
  // marks the mode but cannot read counters it doesn't know about).
  std::shared_ptr<SharedThetaCache> shared = options.shared_cache;
  if (!shared && theta_opts.shared_cache) {
    shared = std::dynamic_pointer_cast<SharedThetaCache>(theta_opts.shared_cache);
  }
  const bool shared_mode = theta_opts.shared_cache != nullptr;

  // Snapshot the shared cache so a reused cache reports this sweep's delta,
  // not its lifetime totals.
  util::ShardedLruStats before;
  if (shared) before = shared->stats();

  std::vector<JobResult> jobs(scenarios.size());
  const auto run_job = [&](std::size_t i) {
    jobs[i] = run_one(scenarios[i], theta_opts);
  };
  if (!options.parallel) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) run_job(i);
  } else if (options.threads > 0) {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(scenarios.size(), run_job);
  } else {
    util::ThreadPool::shared().parallel_for(scenarios.size(), run_job);
  }

  SweepReport report;
  report.rows.reserve(jobs.size());
  for (auto& job : jobs) {
    report.rows.push_back(std::move(job.row));
    if (!shared_mode) {
      report.cache.hits += job.oracle_stats.hits;
      report.cache.misses += job.oracle_stats.misses;
      report.cache.insertions += job.oracle_stats.insertions;
      report.cache.evictions += job.oracle_stats.evictions;
      report.cache.entries += job.oracle_stats.entries;
      report.cache.lock_contentions += job.oracle_stats.lock_contentions;
    }
  }
  if (shared_mode) report.cache_mode = CacheMode::kShared;
  if (shared) {
    const auto after = shared->stats();
    report.cache.hits = after.hits - before.hits;
    report.cache.misses = after.misses - before.misses;
    report.cache.insertions = after.insertions - before.insertions;
    report.cache.evictions = after.evictions - before.evictions;
    report.cache.entries = after.entries;
    report.cache.lock_contentions = after.lock_contentions - before.lock_contentions;
  }
  return report;
}

SweepReport run_sweep(const ScenarioGrid& grid, const SweepOptions& options) {
  std::size_t skipped = 0;
  const auto scenarios = expand(grid, &skipped);
  auto report = run_sweep(scenarios, options);
  report.skipped = skipped;
  return report;
}

std::string to_json(const SweepReport& report, bool include_cache_stats) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("psd-sweep-report-v1");
  w.key("scenarios").value(static_cast<std::int64_t>(report.rows.size()));
  w.key("skipped").value(static_cast<std::int64_t>(report.skipped));
  w.key("rows").begin_array();
  for (const auto& row : report.rows) {
    const auto& sc = row.scenario;
    const auto& r = row.result;
    w.begin_object();
    w.key("id").value(sc.id());
    w.key("topology").value(to_string(sc.topology));
    w.key("nodes").value(sc.nodes);
    w.key("collective").value(to_string(sc.collective));
    w.key("message_bytes").value(sc.message.count());
    w.key("alpha_ns").value(sc.params.alpha.ns());
    w.key("delta_ns").value(sc.params.delta.ns());
    w.key("alpha_r_ns").value(sc.params.alpha_r.ns());
    w.key("bandwidth_gbps").value(sc.params.b.gbps());
    w.key("steps").value(row.steps);
    w.key("optimal_ns").value(r.optimal.total_time().ns());
    w.key("static_ns").value(r.static_base.total_time().ns());
    w.key("naive_bvn_ns").value(r.naive_bvn.total_time().ns());
    w.key("greedy_ns").value(r.greedy.total_time().ns());
    w.key("reconfigurations").value(r.optimal.num_reconfigurations);
    w.key("speedup_vs_static").value(finite_or_zero(r.speedup_vs_static()));
    w.key("speedup_vs_bvn").value(finite_or_zero(r.speedup_vs_bvn()));
    w.key("speedup_vs_best").value(finite_or_zero(r.speedup_vs_best_baseline()));
    if (!row.error) {
      // JSON-only (CSV schema frozen): the pipelined pricing of the optimal
      // plan, plus — for kAuto scenarios — which algorithm the selector
      // resolved.
      w.key("pipelined_ns").value(row.pipelined.ns());
      w.key("pipeline_chunks").value(row.pipeline_chunks);
      if (!row.chosen_algo.empty()) {
        w.key("chosen_algo").value(row.chosen_algo);
      }
    }
    if (row.error) {
      // JSON-only, like churn: the CSV schema stays frozen (error rows
      // carry default-zero numbers there).
      w.key("error").value(*row.error);
    }
    if (row.churn) {
      // JSON-only: the CSV schema stays frozen (its header is pinned by
      // tools/check_sweep_report.py and the docs' worked example).
      const auto& c = *row.churn;
      w.key("churn").begin_object();
      w.key("drops").value(sc.churn.drops);
      w.key("droop").value(sc.churn.droop);
      w.key("seed").value(static_cast<std::int64_t>(sc.churn.seed));
      w.key("events").value(static_cast<std::int64_t>(c.events.size()));
      w.key("theta_healthy").value(c.theta_healthy);
      w.key("theta_min").value(c.theta_min);
      w.key("degradation_depth").value(c.degradation_depth());
      w.key("worst_recovery_ns").value(c.worst_recovery_ns);
      w.key("fully_recovered").value(c.fully_recovered);
      w.key("replan_solves")
          .value(static_cast<std::int64_t>(c.total_replan_solves));
      w.key("gk_path_pushes")
          .value(static_cast<std::int64_t>(c.total_gk_path_pushes));
      w.key("gk_sssp_searches")
          .value(static_cast<std::int64_t>(c.total_gk_sssp_searches));
      w.key("cache_kept").value(static_cast<std::int64_t>(c.total_cache_kept));
      w.key("cache_erased")
          .value(static_cast<std::int64_t>(c.total_cache_erased));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  if (include_cache_stats) {
    w.key("cache").begin_object();
    w.key("mode").value(to_string(report.cache_mode));
    w.key("hits").value(static_cast<std::int64_t>(report.cache.hits));
    w.key("misses").value(static_cast<std::int64_t>(report.cache.misses));
    w.key("insertions").value(static_cast<std::int64_t>(report.cache.insertions));
    w.key("evictions").value(static_cast<std::int64_t>(report.cache.evictions));
    w.key("entries").value(static_cast<std::int64_t>(report.cache.entries));
    w.key("lock_contentions")
        .value(static_cast<std::int64_t>(report.cache.lock_contentions));
    w.key("hit_rate").value(report.cache.hit_rate());
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string to_csv(const SweepReport& report) {
  TextTable t;
  t.set_header({"id", "topology", "nodes", "collective", "message_bytes",
                "alpha_ns", "delta_ns", "alpha_r_ns", "bandwidth_gbps", "steps",
                "optimal_ns", "static_ns", "naive_bvn_ns", "greedy_ns",
                "reconfigurations", "speedup_vs_static", "speedup_vs_bvn",
                "speedup_vs_best"});
  for (const auto& row : report.rows) {
    const auto& sc = row.scenario;
    const auto& r = row.result;
    t.add_row({sc.id(), to_string(sc.topology), std::to_string(sc.nodes),
               to_string(sc.collective), fmt17(sc.message.count()),
               fmt17(sc.params.alpha.ns()), fmt17(sc.params.delta.ns()),
               fmt17(sc.params.alpha_r.ns()), fmt17(sc.params.b.gbps()),
               std::to_string(row.steps), fmt17(r.optimal.total_time().ns()),
               fmt17(r.static_base.total_time().ns()),
               fmt17(r.naive_bvn.total_time().ns()),
               fmt17(r.greedy.total_time().ns()),
               std::to_string(r.optimal.num_reconfigurations),
               fmt17(finite_or_zero(r.speedup_vs_static())),
               fmt17(finite_or_zero(r.speedup_vs_bvn())),
               fmt17(finite_or_zero(r.speedup_vs_best_baseline()))});
  }
  return t.render_csv();
}

std::string to_table(const SweepReport& report) {
  TextTable t;
  t.set_header({"scenario", "steps", "optimal", "static", "naive-bvn", "greedy",
                "vs-static", "vs-bvn", "reconf"});
  for (const auto& row : report.rows) {
    const auto& r = row.result;
    if (row.error) {
      t.add_row({row.scenario.id(), "-", "FAILED: " + *row.error, "-", "-",
                 "-", "-", "-", "-"});
      continue;
    }
    t.add_row({row.scenario.id(), std::to_string(row.steps),
               psd::to_string(r.optimal.total_time()),
               psd::to_string(r.static_base.total_time()),
               psd::to_string(r.naive_bvn.total_time()),
               psd::to_string(r.greedy.total_time()),
               fmt_speedup(r.speedup_vs_static()), fmt_speedup(r.speedup_vs_bvn()),
               std::to_string(r.optimal.num_reconfigurations)});
  }
  return t.render();
}

}  // namespace psd::sweep
