// The cross-planner θ memo for multi-tenant sweeps.
//
// A scenario sweep instantiates one Planner (and so one ThetaOracle) per
// (topology, workload, algorithm, cost) point, but the θ values those
// planners need overlap heavily: every scenario on the same topology asks
// about the same step matchings regardless of message size or
// reconfiguration delay, and collectives share rotation patterns across
// algorithms. SharedThetaCache is one sharded-mutex LRU — keyed by
// (topo::graph_fingerprint, destination vector) — that every oracle in the
// fleet plugs into via flow::ThetaOptions::shared_cache, so each distinct
// (graph, matching) pair is solved once per sweep instead of once per
// tenant.
//
// Isolation: the oracle-provided context fingerprint (graph fingerprint
// mixed with b_ref and θ solver options — see flow/theta_cache.hpp) is part
// of the key, so two topologies — or two oracles with different reference
// bandwidths or accuracy settings — never share entries even when their
// matchings' destination vectors are identical. Thread safety and eviction
// semantics are those of util::ShardedLruCache (per-shard LRU,
// first-writer-wins inserts).
//
// Hashing: the destination vector is FNV-hashed exactly once per call and
// the resulting 64-bit digest travels inside the key. The sharded map hashes
// a key twice per probe (shard selection, then the shard's unordered_map);
// with the digest precomputed both are O(1) mixes instead of O(n) vector
// scans — the earlier design paid the FNV walk twice per lookup.
//
// Churn: insert_with_support() stores each θ's routed support (sorted
// topo::edge_pair_codes) beside the value; carry_across_delta() copies the
// entries provably unaffected by a topology delta to the post-delta context
// fingerprint (see flow/theta_cache.hpp for the exactness argument), leaving
// the originals for oracles still on the pre-delta graph.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "psd/flow/theta_cache.hpp"
#include "psd/util/sharded_lru.hpp"

namespace psd::sweep {

struct SharedThetaCacheOptions {
  // Total entries across all shards; LRU-evicted per shard beyond this.
  std::size_t capacity = 1 << 16;
  // Rounded up to a power of two. One or two per expected worker thread is
  // plenty: θ solves dwarf the critical section.
  std::size_t shards = 16;
};

class SharedThetaCache final : public flow::SharedThetaCacheBase {
 public:
  explicit SharedThetaCache(SharedThetaCacheOptions opts = {});

  [[nodiscard]] std::optional<double> lookup(
      std::uint64_t context_fp, const std::vector<int>& destinations) override;

  double insert(std::uint64_t context_fp, const std::vector<int>& destinations,
                double theta) override;

  double insert_with_support(
      std::uint64_t context_fp, const std::vector<int>& destinations,
      double theta, const std::vector<std::uint64_t>& support) override;

  CarryStats carry_across_delta(std::uint64_t old_context_fp,
                                std::uint64_t new_context_fp,
                                const std::vector<std::uint64_t>& touched,
                                bool relaxing) override;

  /// Aggregated hit/miss/eviction/contention counters (see ShardedLruStats).
  [[nodiscard]] util::ShardedLruStats stats() const { return cache_.stats(); }
  [[nodiscard]] std::size_t num_shards() const { return cache_.num_shards(); }

 private:
  struct Key {
    std::uint64_t context_fp = 0;
    // topo::hash_destinations(destinations), computed once at key build;
    // every downstream hash is then an O(1) mix of two digests.
    std::uint64_t dest_hash = 0;
    std::vector<int> destinations;
  };
  /// Borrowed-destination view of a Key: what lookup() probes with, so a
  /// cache hit (the steady state of a warm sweep) allocates nothing. The
  /// transparent hash/eq below make Key and KeyView interchangeable in the
  /// shard map.
  struct KeyView {
    std::uint64_t context_fp = 0;
    std::uint64_t dest_hash = 0;
    const std::vector<int>* destinations = nullptr;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const noexcept;
    std::size_t operator()(const KeyView& k) const noexcept;
  };
  // Digest equality first: it rejects nearly every non-match without
  // touching the vectors, and hash-equal non-identical vectors are the
  // astronomically rare case the full compare exists for.
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept {
      return a.context_fp == b.context_fp && a.dest_hash == b.dest_hash &&
             a.destinations == b.destinations;
    }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return a.context_fp == b.context_fp && a.dest_hash == b.dest_hash &&
             *a.destinations == b.destinations;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept {
      return (*this)(b, a);
    }
  };

  /// θ plus (when recorded via insert_with_support) its routed support.
  /// The support is shared-ptr'd so carrying an entry across a delta
  /// aliases the edge list instead of copying it.
  struct CacheEntry {
    double theta = 0.0;
    std::shared_ptr<const std::vector<std::uint64_t>> support;
  };

  util::ShardedLruCache<Key, CacheEntry, KeyHash, KeyEq> cache_;
};

/// Convenience: a fresh shared cache as the shared_ptr ThetaOptions wants.
[[nodiscard]] std::shared_ptr<SharedThetaCache> make_shared_theta_cache(
    SharedThetaCacheOptions opts = {});

}  // namespace psd::sweep
