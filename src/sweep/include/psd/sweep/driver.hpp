// The multi-tenant sweep driver: expands a scenario grid into independent
// plan jobs, runs them across a thread pool, and aggregates the planner's
// Figure 1/2 comparisons into one report.
//
// Each job is self-contained — it builds its scenario's topology,
// materializes the workload, constructs a Planner and plans — so jobs
// parallelize across scenarios with no shared mutable state except the
// optional cross-planner θ cache (whose inserts are first-writer-wins over
// a pure function, so results cannot depend on interleaving). Results land
// in pre-assigned slots indexed by expansion order; the report's rows are
// therefore byte-identical between serial and parallel execution, which
// tests assert and downstream diffing relies on.
//
// Report serialization: to_csv() is the deterministic artifact (rows only);
// to_json() adds the cache counters, whose values under a *shared* cache
// legitimately depend on thread interleaving (racing misses both solve) —
// pass include_cache_stats=false when byte-comparing JSON across runs. See
// docs/sweep.md for both schemas.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "psd/core/planner.hpp"
#include "psd/sim/churn.hpp"
#include "psd/sweep/scenario.hpp"
#include "psd/sweep/shared_theta_cache.hpp"

namespace psd::sweep {

struct SweepOptions {
  // Run scenarios concurrently. With threads == 0 the process-wide
  // util::ThreadPool::shared() is used; a positive count spins up a
  // dedicated pool of that size for this sweep.
  bool parallel = true;
  unsigned threads = 0;
  // Per-oracle θ options for every scenario's planner. The shared_cache
  // field below overrides theta.shared_cache when set.
  flow::ThetaOptions theta;
  // Cross-planner θ memo; null means every planner keeps a private cache.
  std::shared_ptr<SharedThetaCache> shared_cache;
};

/// One planned scenario. Churn scenarios (scenario.churn.drops > 0)
/// additionally carry the fault-injection report: the engine runs on a
/// *private* support-tracking oracle seeded purely by the scenario id, so
/// every churn metric is deterministic regardless of thread count or
/// shared-cache interleaving (the serial==parallel row pins rely on it).
struct SweepRow {
  Scenario scenario;
  int steps = 0;
  core::PlannerResult result;
  // The algorithm the size-adaptive selector resolved, for kAuto scenarios
  // only ("ring", "rd", …); empty when the scenario pinned its algorithm.
  std::string chosen_algo;
  // Chunk-pipelined pricing of the optimal plan (core::PipelinedCostModel):
  // completion at the best chunk count, never above the barrier-mode
  // optimal_ns because a single chunk is always swept. JSON-only fields —
  // the CSV schema stays frozen.
  TimeNs pipelined;
  int pipeline_chunks = 1;
  std::optional<sim::ChurnReport> churn;
  // Set when this scenario's plan (or churn run) threw: the row's numbers
  // are then default-zero and only the id/axes are meaningful. One broken
  // scenario no longer aborts the whole sweep — the error is recorded
  // per row (JSON "error" field; the frozen CSV schema carries zeros) and
  // every other row is planned normally.
  std::optional<std::string> error;
};

/// Where the report's cache counters came from.
enum class CacheMode { kPerPlanner, kShared };

[[nodiscard]] const char* to_string(CacheMode mode);

struct SweepReport {
  std::vector<SweepRow> rows;   // expansion order
  std::size_t skipped = 0;      // invalid grid combinations (grid runs only)
  CacheMode cache_mode = CacheMode::kPerPlanner;
  // Aggregated θ-cache counters: the shared cache's stats, or the sum of
  // every planner's private-cache counters. Deterministic for per-planner
  // runs; interleaving-dependent for shared parallel runs (see file
  // comment). When a shared cache is reused across sweeps, the monotonic
  // counters (hits/misses/insertions/evictions/contentions) are this
  // sweep's delta, while `entries` is a gauge: the cache's point-in-time
  // resident count, including earlier sweeps' entries.
  util::ShardedLruStats cache;
};

/// Plans every scenario. Rows come back in input order regardless of
/// execution order or thread count.
[[nodiscard]] SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                                    const SweepOptions& options = {});

/// expand() + run_sweep(), recording the skipped-combination count.
[[nodiscard]] SweepReport run_sweep(const ScenarioGrid& grid,
                                    const SweepOptions& options = {});

/// docs/sweep.md JSON schema ("psd-sweep-report-v1"). With
/// include_cache_stats the "cache" object is appended; without it the
/// output is byte-identical across serial/parallel runs of the same grid.
[[nodiscard]] std::string to_json(const SweepReport& report,
                                  bool include_cache_stats = true);

/// docs/sweep.md CSV schema: header + one row per scenario, rows only —
/// always byte-identical across serial/parallel runs of the same grid.
[[nodiscard]] std::string to_csv(const SweepReport& report);

/// Human-readable column-aligned table of the report rows (for CLIs).
[[nodiscard]] std::string to_table(const SweepReport& report);

}  // namespace psd::sweep
