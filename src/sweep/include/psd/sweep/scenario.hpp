// Scenario grids: the design-space axes a multi-tenant sweep evaluates.
//
// A Scenario is one fully-specified planning problem — (topology builder,
// node count, collective + algorithm, message size, cost parameters) — and a
// ScenarioGrid is the cross product of per-axis value lists, expanded in a
// fixed nesting order so every run of the same grid numbers its scenarios
// identically (the determinism the sweep report depends on).
//
// Grids can be built programmatically or parsed from the line-oriented spec
// format documented in docs/sweep.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "psd/core/cost_model.hpp"
#include "psd/workload/workload.hpp"

namespace psd::sweep {

/// The topology builders a sweep can instantiate (see topo/builders.hpp).
enum class TopologyKind {
  kDirectedRing,       // directed_ring(n)
  kBidirectionalRing,  // bidirectional_ring(n)
  kTorus2D,            // torus_2d(rows, cols), rows x cols = n
  kHypercube,          // hypercube(log2 n); n must be a power of two
  kFullMesh,           // full_mesh(n)
};

[[nodiscard]] const char* to_string(TopologyKind kind);
/// Parses the spec-file names: ring, bidir-ring, torus, hypercube, mesh.
[[nodiscard]] std::optional<TopologyKind> topology_from_string(std::string_view s);

/// A topology axis value: the builder kind plus, for the torus, an optional
/// explicit rows × cols shape. Default shape (rows == 0) factors n
/// near-square as before; an explicit shape opens rectangular tori
/// (`torus4x8`) and only matches node counts equal to rows·cols.
/// Implicitly constructible from TopologyKind so kind-only grids read (and
/// compile) unchanged.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kDirectedRing;
  int rows = 0;  // kTorus2D only; 0 = auto near-square factorization
  int cols = 0;

  TopologySpec() = default;
  TopologySpec(TopologyKind k) : kind(k) {}  // NOLINT: implicit by design
  TopologySpec(TopologyKind k, int r, int c) : kind(k), rows(r), cols(c) {}

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// "ring", "torus", "torus4x8", ... (the spec-file syntax).
[[nodiscard]] std::string to_string(const TopologySpec& spec);
/// Parses to_string's format: a plain kind name, or torus<rows>x<cols> with
/// both sides >= 2. Rejects malformed shapes ("torus4x", "torus0x8", ...).
[[nodiscard]] std::optional<TopologySpec> topology_spec_from_string(
    std::string_view s);

/// A collective together with the algorithm materializing it. The algorithm
/// fields only apply to their own kind (allreduce / alltoall); other kinds
/// use workload::materialize's built-in choice. kAuto defers the choice to
/// the size-adaptive selector (core/algo_select.hpp) at planning time — the
/// sweep row then records which algorithm won as `chosen_algo`.
struct CollectiveSpec {
  workload::CollectiveKind kind = workload::CollectiveKind::kAllReduce;
  workload::AllReduceAlgo allreduce = workload::AllReduceAlgo::kHalvingDoubling;
  workload::AllToAllAlgo alltoall = workload::AllToAllAlgo::kTranspose;
};

/// "allreduce:swing", "allreduce:auto", "alltoall:bruck", "allgather", ...
[[nodiscard]] std::string to_string(const CollectiveSpec& spec);
/// Parses to_string's format; the ":algo" suffix is optional and only valid
/// for allreduce (ring, rd, hd, swing, auto) and alltoall (transpose,
/// bruck, auto).
[[nodiscard]] std::optional<CollectiveSpec> collective_from_string(
    std::string_view s);

/// Per-scenario core::ModelExtensions toggles — an explicit sweep axis, so
/// one grid can A/B the paper's plain Eq. (7) against the extended model on
/// otherwise identical scenarios.
struct ExtensionSpec {
  bool dedup_identical_matchings = false;

  friend bool operator==(const ExtensionSpec&, const ExtensionSpec&) = default;
};

/// "none" or "dedup" (the spec-file syntax).
[[nodiscard]] std::string to_string(const ExtensionSpec& spec);
[[nodiscard]] std::optional<ExtensionSpec> extension_from_string(
    std::string_view s);

/// The failure axes of a scenario: how many link faults the churn driver
/// injects, how hard each one droops the link (1.0 = cut it outright), and
/// the seed of the deterministic fault-sampling stream. drops == 0 — the
/// default — means no churn: the scenario plans once on the pristine
/// topology exactly as before.
struct ChurnSpec {
  int drops = 0;
  double droop = 1.0;
  std::uint64_t seed = 1;

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// One point of the sweep's design space.
struct Scenario {
  TopologySpec topology;
  int nodes = 0;
  CollectiveSpec collective;
  Bytes message;
  core::CostParams params;
  int cost_index = 0;  // which ScenarioGrid::cost_params entry
  ExtensionSpec extensions;
  ChurnSpec churn;

  /// Deterministic label, e.g. "ring/n16/allreduce:swing/4194304B/c0";
  /// non-default extensions append "/x<spec>" (e.g. "/xdedup") and churn
  /// scenarios "/k<drops>/f<droop>/s<seed>". Extension-free, churn-free
  /// scenarios keep their historical ids.
  [[nodiscard]] std::string id() const;
};

/// Per-axis value lists; expand() takes their cross product. The extension
/// axis and the churn axes (drop_counts × droops × seeds) may be left empty
/// — they then behave as {none} / {0} / {1.0} / {1}, i.e. the plain model
/// with no churn, and existing grids expand unchanged.
struct ScenarioGrid {
  std::vector<TopologySpec> topologies;
  std::vector<int> node_counts;
  std::vector<CollectiveSpec> collectives;
  std::vector<Bytes> message_sizes;
  std::vector<core::CostParams> cost_params;
  std::vector<ExtensionSpec> extensions;
  std::vector<int> drop_counts;
  std::vector<double> droops;
  std::vector<std::uint64_t> seeds;
};

/// True if the combination can be materialized and planned: n >= 2 always;
/// hypercube and the recursive algorithms (recursive doubling, halving/
/// doubling, swing, bruck alltoall) need power-of-two n; the torus needs a
/// factorization with both sides >= 2, and an explicit rows × cols shape
/// only matches n == rows·cols.
[[nodiscard]] bool scenario_valid(const TopologySpec& topology, int nodes,
                                  const CollectiveSpec& collective);

/// Cross product in fixed nesting order — topology (outermost), nodes,
/// collective, message size, cost params, extensions, churn (innermost) —
/// skipping invalid combinations (counted into *skipped when non-null).
/// Deterministic: the i-th scenario of a grid is the same in every process
/// and every run.
[[nodiscard]] std::vector<Scenario> expand(const ScenarioGrid& grid,
                                           std::size_t* skipped = nullptr);

/// Builds the scenario's base topology (bandwidth = params.b per link).
[[nodiscard]] topo::Graph build_topology(const TopologySpec& spec, int nodes,
                                         Bandwidth link_bw);

/// Parses the docs/sweep.md grid-spec format: `key = v1, v2, ...` lines,
/// '#' comments. Throws InvalidArgument naming the offending line on any
/// unknown key, unparsable value, or missing required axis.
[[nodiscard]] ScenarioGrid parse_grid_spec(std::string_view text);

}  // namespace psd::sweep
