#include "psd/topo/delta.hpp"

#include <algorithm>

namespace psd::topo {

DeltaResult apply_delta(Graph& g, const TopologyDelta& delta) {
  DeltaResult res;
  for (const DeltaOp& op : delta.ops) {
    PSD_REQUIRE(g.valid_node(op.src) && g.valid_node(op.dst),
                "delta op endpoint out of range");
    const EdgeId e = g.find_edge(op.src, op.dst);
    switch (op.kind) {
      case DeltaOpKind::kAddEdge:
        PSD_REQUIRE(e < 0, "delta adds an edge that already exists");
        (void)g.add_edge(op.src, op.dst, op.capacity);
        res.relaxing = true;
        ++res.edges_added;
        break;
      case DeltaOpKind::kRemoveEdge:
        PSD_REQUIRE(e >= 0, "delta removes a missing edge");
        (void)g.remove_edge(e);
        ++res.edges_removed;
        break;
      case DeltaOpKind::kSetCapacity: {
        PSD_REQUIRE(e >= 0, "delta rescales a missing edge");
        if (op.capacity.bytes_per_ns() > g.edge(e).capacity.bytes_per_ns()) {
          res.relaxing = true;
        }
        g.set_capacity(e, op.capacity);
        ++res.capacity_changes;
        break;
      }
      case DeltaOpKind::kScaleCapacity: {
        PSD_REQUIRE(e >= 0, "delta rescales a missing edge");
        PSD_REQUIRE(op.factor > 0.0, "capacity scale factor must be positive");
        if (op.factor > 1.0) res.relaxing = true;
        g.set_capacity(e, Bandwidth(g.edge(e).capacity.bytes_per_ns() *
                                    op.factor));
        ++res.capacity_changes;
        break;
      }
    }
    res.touched.push_back(edge_pair_code(op.src, op.dst));
  }
  std::sort(res.touched.begin(), res.touched.end());
  res.touched.erase(std::unique(res.touched.begin(), res.touched.end()),
                    res.touched.end());
  res.epoch = g.epoch();
  return res;
}

bool pair_codes_intersect(const std::vector<std::uint64_t>& a,
                          const std::vector<std::uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}

}  // namespace psd::topo
