#include "psd/topo/builders.hpp"

#include <numeric>

namespace psd::topo {

namespace {

int gcd_int(int a, int b) { return std::gcd(a, b); }

}  // namespace

Graph directed_ring(int n, Bandwidth link_bw, int stride) {
  PSD_REQUIRE(n >= 2, "ring requires at least 2 nodes");
  const int s = ((stride % n) + n) % n;
  PSD_REQUIRE(s != 0, "ring stride must not be 0 mod n");
  PSD_REQUIRE(gcd_int(s, n) == 1, "ring stride must be coprime with n");
  Graph g(n);
  for (int j = 0; j < n; ++j) g.add_edge(j, (j + s) % n, link_bw);
  return g;
}

Graph bidirectional_ring(int n, Bandwidth link_bw) {
  PSD_REQUIRE(n >= 2, "ring requires at least 2 nodes");
  Graph g(n);
  for (int j = 0; j < n; ++j) {
    g.add_edge(j, (j + 1) % n, link_bw);
    g.add_edge((j + 1) % n, j, link_bw);
  }
  return g;
}

Graph coprime_ring_union(int n, Bandwidth link_bw, const std::vector<int>& strides) {
  PSD_REQUIRE(!strides.empty(), "at least one stride required");
  Graph g(n);
  for (int stride : strides) {
    const int s = ((stride % n) + n) % n;
    PSD_REQUIRE(s != 0, "ring stride must not be 0 mod n");
    PSD_REQUIRE(gcd_int(s, n) == 1, "ring stride must be coprime with n");
    for (int j = 0; j < n; ++j) g.add_edge(j, (j + s) % n, link_bw);
  }
  return g;
}

Graph torus_2d(int rows, int cols, Bandwidth link_bw) {
  PSD_REQUIRE(rows >= 2 && cols >= 2, "torus requires both dimensions >= 2");
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int right = id(r, (c + 1) % cols);
      const int down = id((r + 1) % rows, c);
      g.add_edge(id(r, c), right, link_bw);
      g.add_edge(right, id(r, c), link_bw);
      g.add_edge(id(r, c), down, link_bw);
      g.add_edge(down, id(r, c), link_bw);
    }
  }
  return g;
}

Graph hypercube(int dim, Bandwidth link_bw) {
  PSD_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension must be in [1, 20]");
  const int n = 1 << dim;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const int u = v ^ (1 << b);
      if (v < u) {
        g.add_edge(v, u, link_bw);
        g.add_edge(u, v, link_bw);
      }
    }
  }
  return g;
}

Graph full_mesh(int n, Bandwidth link_bw) {
  PSD_REQUIRE(n >= 2, "mesh requires at least 2 nodes");
  Graph g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b) g.add_edge(a, b, link_bw);
    }
  }
  return g;
}

Graph matched_topology(const Matching& m, Bandwidth link_bw) {
  Graph g(m.size());
  for (const auto& [s, d] : m.pairs()) g.add_edge(s, d, link_bw);
  return g;
}

bool is_directed_ring(const Graph& g, std::vector<int>* order) {
  const int n = g.num_nodes();
  if (n < 2 || g.num_edges() != n) return false;
  for (NodeId v = 0; v < n; ++v) {
    if (g.out_degree(v) != 1 || g.in_degree(v) != 1) return false;
  }
  // Walk the unique out-edges from node 0; must return to 0 after n hops.
  std::vector<int> pos(static_cast<std::size_t>(n), -1);
  NodeId cur = 0;
  for (int i = 0; i < n; ++i) {
    if (pos[static_cast<std::size_t>(cur)] != -1) return false;  // early cycle
    pos[static_cast<std::size_t>(cur)] = i;
    cur = g.edge(g.out_edges(cur).front()).dst;
  }
  if (cur != 0) return false;
  if (order != nullptr) *order = std::move(pos);
  return true;
}

}  // namespace psd::topo
