#include "psd/topo/properties.hpp"

#include <algorithm>

#include "psd/topo/shortest_path.hpp"

namespace psd::topo {

bool is_strongly_connected(const Graph& g) {
  const int n = g.num_nodes();
  if (n <= 1) return true;
  const auto from0 = bfs_hops(g, 0);
  if (std::any_of(from0.begin(), from0.end(),
                  [](int d) { return d == kUnreachable; })) {
    return false;
  }
  // Reverse reachability: every node must reach node 0.
  for (NodeId v = 1; v < n; ++v) {
    const auto d = bfs_hops(g, v);
    if (d[0] == kUnreachable) return false;
  }
  return true;
}

int diameter(const Graph& g) {
  PSD_REQUIRE(g.num_nodes() >= 1, "diameter of empty graph undefined");
  int dia = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = bfs_hops(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == v) continue;
      PSD_REQUIRE(d[static_cast<std::size_t>(u)] != kUnreachable,
                  "graph must be strongly connected");
      dia = std::max(dia, d[static_cast<std::size_t>(u)]);
    }
  }
  return dia;
}

int max_pair_hops(const Graph& g, const Matching& m) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  int worst = 0;
  for (const auto& [s, d] : m.pairs()) {
    const auto hops = bfs_hops(g, s);
    PSD_REQUIRE(hops[static_cast<std::size_t>(d)] != kUnreachable,
                "matching pair is disconnected in the topology");
    worst = std::max(worst, hops[static_cast<std::size_t>(d)]);
  }
  return worst;
}

long long total_pair_hops(const Graph& g, const Matching& m) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  long long total = 0;
  for (const auto& [s, d] : m.pairs()) {
    const auto hops = bfs_hops(g, s);
    PSD_REQUIRE(hops[static_cast<std::size_t>(d)] != kUnreachable,
                "matching pair is disconnected in the topology");
    total += hops[static_cast<std::size_t>(d)];
  }
  return total;
}

bool matches_topology(const Graph& g, const Matching& m) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  for (const auto& [s, d] : m.pairs()) {
    if (g.find_edge(s, d) < 0) return false;
  }
  return true;
}

std::uint64_t graph_fingerprint(const Graph& g) { return g.fingerprint(); }

}  // namespace psd::topo
