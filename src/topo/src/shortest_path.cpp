#include "psd/topo/shortest_path.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace psd::topo {

std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  PSD_REQUIRE(g.valid_node(src), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) out.push_back(bfs_hops(g, v));
  return out;
}

DijkstraResult dijkstra(const Graph& g, NodeId src,
                        const std::vector<double>& edge_length, NodeId stop_at) {
  PSD_REQUIRE(g.valid_node(src), "dijkstra source out of range");
  PSD_REQUIRE(edge_length.size() == static_cast<std::size_t>(g.num_edges()),
              "edge_length must have one entry per edge");
  constexpr double inf = std::numeric_limits<double>::infinity();

  DijkstraResult res;
  res.dist.assign(static_cast<std::size_t>(g.num_nodes()), inf);
  res.parent_edge.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  res.dist[static_cast<std::size_t>(src)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > res.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    // Settled nodes and the parent chain leading to them are final, so an
    // early stop returns the same dist/path for stop_at as a full run.
    if (u == stop_at) break;
    for (EdgeId e : g.out_edges(u)) {
      const double len = edge_length[static_cast<std::size_t>(e)];
      PSD_ASSERT(len >= 0.0 || std::isinf(len), "edge lengths must be non-negative");
      if (std::isinf(len)) continue;
      const NodeId v = g.edge(e).dst;
      const double nd = d + len;
      if (nd < res.dist[static_cast<std::size_t>(v)]) {
        res.dist[static_cast<std::size_t>(v)] = nd;
        res.parent_edge[static_cast<std::size_t>(v)] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return res;
}

std::vector<EdgeId> extract_path(const Graph& g, const DijkstraResult& res,
                                 NodeId src, NodeId dst) {
  PSD_REQUIRE(g.valid_node(src) && g.valid_node(dst), "node out of range");
  std::vector<EdgeId> path;
  if (std::isinf(res.dist[static_cast<std::size_t>(dst)])) return path;
  NodeId cur = dst;
  while (cur != src) {
    const EdgeId e = res.parent_edge[static_cast<std::size_t>(cur)];
    if (e < 0) return {};  // no path recorded
    path.push_back(e);
    cur = g.edge(e).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace psd::topo
