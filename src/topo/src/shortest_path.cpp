#include "psd/topo/shortest_path.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>

namespace psd::topo {



std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  PSD_REQUIRE(g.valid_node(src), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) out.push_back(bfs_hops(g, v));
  return out;
}

DijkstraResult dijkstra(const Graph& g, NodeId src,
                        const std::vector<double>& edge_length, NodeId stop_at) {
  PSD_REQUIRE(g.valid_node(src), "dijkstra source out of range");
  PSD_REQUIRE(edge_length.size() == static_cast<std::size_t>(g.num_edges()),
              "edge_length must have one entry per edge");
  constexpr double inf = std::numeric_limits<double>::infinity();

  DijkstraResult res;
  res.dist.assign(static_cast<std::size_t>(g.num_nodes()), inf);
  res.parent_edge.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  res.dist[static_cast<std::size_t>(src)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > res.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    // Settled nodes and the parent chain leading to them are final, so an
    // early stop returns the same dist/path for stop_at as a full run.
    if (u == stop_at) break;
    for (EdgeId e : g.out_edges(u)) {
      const double len = edge_length[static_cast<std::size_t>(e)];
      PSD_ASSERT(len >= 0.0 || std::isinf(len), "edge lengths must be non-negative");
      if (std::isinf(len)) continue;
      const NodeId v = g.edge(e).dst;
      const double nd = d + len;
      if (nd < res.dist[static_cast<std::size_t>(v)]) {
        res.dist[static_cast<std::size_t>(v)] = nd;
        res.parent_edge[static_cast<std::size_t>(v)] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return res;
}

void CsrAdjacency::build(const Graph& g) {
  const int V = g.num_nodes();
  head.assign(static_cast<std::size_t>(V) + 1, 0);
  to.resize(static_cast<std::size_t>(g.num_edges()));
  eid.resize(static_cast<std::size_t>(g.num_edges()));
  arc_of_edge.resize(static_cast<std::size_t>(g.num_edges()));
  std::size_t at = 0;
  for (NodeId v = 0; v < V; ++v) {
    head[static_cast<std::size_t>(v)] = static_cast<int>(at);
    // Arcs in out_edges order: the relaxation order (and therefore every
    // tie-break) of a CSR loop matches a loop over g.out_edges exactly.
    for (EdgeId e : g.out_edges(v)) {
      to[at] = g.edge(e).dst;
      eid[at] = e;
      arc_of_edge[static_cast<std::size_t>(e)] = static_cast<int>(at);
      ++at;
    }
  }
  head[static_cast<std::size_t>(V)] = static_cast<int>(at);
}

// Parents are deliberately left stale: they are only read for settled
// nodes (extract_path), and any settled node other than the source was
// written by the relaxation that discovered it this epoch.
void BucketQueueSssp::touch(std::size_t v) {
  if (stamp_[v] != epoch_) {
    stamp_[v] = epoch_;
    dist_[v] = std::numeric_limits<std::int32_t>::max();
    settled_dist_[v] = kUnsettled;
  }
}

void BucketQueueSssp::run(const CsrAdjacency& csr, NodeId src,
                          const std::vector<double>& arc_length, double quantum,
                          std::int32_t radius_quanta,
                          std::span<const NodeId> targets,
                          const double* potential) {
  const auto n = static_cast<std::size_t>(csr.num_nodes());
  PSD_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n,
              "bucket SSSP source out of range");
  PSD_REQUIRE(arc_length.size() == static_cast<std::size_t>(csr.num_arcs()),
              "arc_length must have one entry per arc");
  PSD_REQUIRE(quantum > 0.0, "quantum must be positive");
  PSD_REQUIRE(radius_quanta >= 0 && radius_quanta <= kMaxRadius,
              "bucket SSSP radius too fine for its quantum");
  if (dist_.size() != n) {
    dist_.assign(n, 0);
    settled_dist_.assign(n, 0);
    parent_edge_.assign(n, -1);
    parent_node_.assign(n, -1);
    stamp_.assign(n, 0);
    epoch_ = 0;
  }
  ++epoch_;
  if (epoch_ == 0) {  // wrapped (engines are long-lived): avoid stale stamps
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  const auto nbuckets = static_cast<std::size_t>(radius_quanta) + 1;
  if (bucket_head_.size() < nbuckets) bucket_head_.resize(nbuckets, -1);
  const std::size_t nwords = (nbuckets + 63) / 64;
  if (occupied_.size() < nwords) occupied_.resize(nwords, 0);
  // Entries live in one contiguous pool (node + intrusive next index);
  // bucket_head_ holds the head entry of each bucket. Compared to one
  // vector per bucket this keeps every insertion and pop on the same few
  // cache lines regardless of how distances scatter across buckets.
  pool_node_.clear();
  pool_next_.clear();

  const double inv_q = 1.0 / quantum;
  const double radius_d = static_cast<double>(radius_quanta);
  const bool has_targets = !targets.empty();
  std::size_t targets_left = targets.size();

  const auto push_entry = [&](NodeId v, std::int32_t b) {
    const auto bi = static_cast<std::size_t>(b);
    pool_node_.push_back(v);
    pool_next_.push_back(bucket_head_[bi]);
    bucket_head_[bi] = static_cast<std::int32_t>(pool_node_.size()) - 1;
    occupied_[bi >> 6] |= 1ull << (bi & 63);
  };

  touch(static_cast<std::size_t>(src));
  dist_[static_cast<std::size_t>(src)] = 0;
  push_entry(src, 0);

  std::int32_t cur = 0;
  while (cur <= radius_quanta && (!has_targets || targets_left > 0)) {
    // Jump to the next occupied bucket via the occupancy bitmask.
    std::size_t w = static_cast<std::size_t>(cur) >> 6;
    std::uint64_t word =
        occupied_[w] & (~0ull << (static_cast<std::size_t>(cur) & 63));
    while (word == 0) {
      if (++w >= nwords) { cur = radius_quanta + 1; break; }
      word = occupied_[w];
    }
    if (cur > radius_quanta) break;
    cur = static_cast<std::int32_t>((w << 6) +
                                    static_cast<std::size_t>(std::countr_zero(word)));
    if (cur > radius_quanta) break;

    // Pop entries until the bucket drains; entries appended mid-scan (via
    // zero-quantum arcs) reuse the same head and are picked up here too.
    // The occupancy bit is cleared only on a full drain — an early target
    // stop leaves it set so the end-of-run sweep resets the head.
    const auto ci = static_cast<std::size_t>(cur);
    for (;;) {
      const std::int32_t ei = bucket_head_[ci];
      if (ei < 0) {
        occupied_[ci >> 6] &= ~(1ull << (ci & 63));
        break;
      }
      bucket_head_[ci] = pool_next_[static_cast<std::size_t>(ei)];
      const NodeId u = pool_node_[static_cast<std::size_t>(ei)];
      const auto ui = static_cast<std::size_t>(u);
      if (settled_dist_[ui] != kUnsettled || dist_[ui] != cur) continue;  // stale
      settled_dist_[ui] = cur;
      if (has_targets) {
        for (const NodeId t : targets) {
          if (t == u && targets_left > 0) --targets_left;
        }
        if (targets_left == 0) break;
      }
      const int arc_end = csr.head[ui + 1];
      if (potential == nullptr) {
        for (int a = csr.head[ui]; a < arc_end; ++a) {
          const auto ai = static_cast<std::size_t>(a);
          const double wd = arc_length[ai] * inv_q;  // +inf deletes the arc
          if (!(wd <= radius_d)) continue;
          const std::int32_t nd = cur + static_cast<std::int32_t>(wd);
          if (nd > radius_quanta) continue;
          const auto vi = static_cast<std::size_t>(csr.to[ai]);
          touch(vi);
          // A settled node's final distance is ≤ cur ≤ nd, so this compare
          // alone also rejects re-relaxing settled nodes.
          if (nd < dist_[vi]) {
            dist_[vi] = nd;
            parent_edge_[vi] = csr.eid[ai];
            parent_node_[vi] = u;
            push_entry(csr.to[ai], nd);
          }
        }
      } else {
        for (int a = csr.head[ui]; a < arc_end; ++a) {
          const auto ai = static_cast<std::size_t>(a);
          const auto vi = static_cast<std::size_t>(csr.to[ai]);
          // Reduced length under the potential (clamped: feasibility holds
          // in exact arithmetic, floating-point drift can leave a tiny
          // negative).
          const double len =
              std::max(0.0, arc_length[ai] + potential[ui] - potential[vi]);
          const double wd = len * inv_q;  // +inf deletes the arc
          if (!(wd <= radius_d)) continue;
          const std::int32_t nd = cur + static_cast<std::int32_t>(wd);
          if (nd > radius_quanta) continue;
          touch(vi);
          if (nd < dist_[vi]) {
            dist_[vi] = nd;
            parent_edge_[vi] = csr.eid[ai];
            parent_node_[vi] = u;
            push_entry(csr.to[ai], nd);
          }
        }
      }
    }
  }
  stop_bucket_ = std::min(cur, radius_quanta + 1);

  // Early stop (targets settled) and radius pruning can leave populated
  // buckets behind; reset their heads so the next run starts clean (pool
  // entries are recycled wholesale by the clear() above).
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t word = occupied_[w];
    while (word != 0) {
      const auto b = (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      bucket_head_[b] = -1;
      word &= word - 1;
    }
    occupied_[w] = 0;
  }
}

void BucketQueueSssp::extract_path(NodeId src, NodeId v,
                                   std::vector<EdgeId>& out) const {
  out.clear();
  if (quantized_dist(v) == kUnsettled) return;
  for (NodeId cur = v; cur != src;) {
    const auto ci = static_cast<std::size_t>(cur);
    const EdgeId e = parent_edge_[ci];
    if (e < 0) { out.clear(); return; }  // src unreachable (disjoint settle)
    out.push_back(e);
    cur = parent_node_[ci];
  }
  std::reverse(out.begin(), out.end());
}

DijkstraResult bucket_sssp(const Graph& g, NodeId src,
                           const std::vector<double>& edge_length,
                           double quantum, double radius, NodeId stop_at) {
  PSD_REQUIRE(g.valid_node(src), "bucket_sssp source out of range");
  PSD_REQUIRE(edge_length.size() == static_cast<std::size_t>(g.num_edges()),
              "edge_length must have one entry per edge");
  PSD_REQUIRE(quantum > 0.0, "quantum must be positive");
  CsrAdjacency csr;
  csr.build(g);
  std::vector<double> arc_length(edge_length.size());
  for (std::size_t e = 0; e < edge_length.size(); ++e) {
    PSD_ASSERT(edge_length[e] >= 0.0 || std::isinf(edge_length[e]),
               "edge lengths must be non-negative");
    arc_length[static_cast<std::size_t>(csr.arc_of_edge[e])] = edge_length[e];
  }
  // Bound the bucket range: the farthest reachable quantized distance is at
  // most (V-1) times the largest finite arc weight.
  double max_w = 0.0;
  for (const double l : arc_length) {
    if (std::isfinite(l)) max_w = std::max(max_w, std::floor(l / quantum));
  }
  double bound = max_w * static_cast<double>(std::max(g.num_nodes() - 1, 1));
  if (std::isfinite(radius)) bound = std::min(bound, std::floor(radius / quantum));
  PSD_REQUIRE(bound <= static_cast<double>(BucketQueueSssp::kMaxRadius),
              "quantum too fine for this graph/radius (would need too many "
              "buckets); use a coarser quantum");
  BucketQueueSssp engine;
  const NodeId target = (stop_at >= 0 && g.valid_node(stop_at)) ? stop_at : -1;
  engine.run(csr, src, arc_length, quantum, static_cast<std::int32_t>(bound),
             target >= 0 ? std::span<const NodeId>(&target, 1)
                         : std::span<const NodeId>{});
  DijkstraResult res;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  res.dist.assign(n, std::numeric_limits<double>::infinity());
  res.parent_edge.assign(n, -1);
  std::vector<EdgeId> path;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::int32_t qd = engine.quantized_dist(v);
    if (qd == BucketQueueSssp::kUnsettled) continue;
    res.dist[static_cast<std::size_t>(v)] = quantum * static_cast<double>(qd);
    engine.extract_path(src, v, path);
    if (!path.empty()) {
      res.parent_edge[static_cast<std::size_t>(v)] = path.back();
    }
  }
  return res;
}

std::vector<EdgeId> extract_path(const Graph& g, const DijkstraResult& res,
                                 NodeId src, NodeId dst) {
  PSD_REQUIRE(g.valid_node(src) && g.valid_node(dst), "node out of range");
  std::vector<EdgeId> path;
  if (std::isinf(res.dist[static_cast<std::size_t>(dst)])) return path;
  NodeId cur = dst;
  while (cur != src) {
    const EdgeId e = res.parent_edge[static_cast<std::size_t>(cur)];
    if (e < 0) return {};  // no path recorded
    path.push_back(e);
    cur = g.edge(e).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace psd::topo
