#include "psd/topo/graph.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "psd/util/rng.hpp"

namespace psd::topo {

std::uint64_t Graph::edge_hash(const Edge& e) {
  std::uint64_t h = fnv1a_mix64(
      kFnvOffset, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.src)));
  h = fnv1a_mix64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.dst)));
  // Bit pattern, not value: capacities are compared exactly by θ, so the
  // key must distinguish exactly what the solver distinguishes.
  h = fnv1a_mix64(h, std::bit_cast<std::uint64_t>(e.capacity.bytes_per_ns()));
  // FNV's xor-multiply is too linear for a *summed* multiset digest: a
  // capacity-bit flip shared by every edge shifts each term by ±2^bit, and
  // the shifts cancel whenever half the edges carry the bit — a ~27% class
  // of collisions on uniform-capacity graphs. A full avalanche finalizer
  // decorrelates the terms so the sum inherits per-edge diffusion.
  return splitmix64(h);
}

EdgeId Graph::add_edge(NodeId src, NodeId dst, Bandwidth capacity) {
  PSD_REQUIRE(valid_node(src), "edge source out of range");
  PSD_REQUIRE(valid_node(dst), "edge destination out of range");
  PSD_REQUIRE(src != dst, "self-loop edges are not allowed");
  PSD_REQUIRE(capacity.bytes_per_ns() > 0.0, "edge capacity must be positive");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{src, dst, capacity});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  edge_hash_sum_ += edge_hash(edges_.back());
  ++epoch_;
  return id;
}

void Graph::set_capacity(EdgeId e, Bandwidth capacity) {
  PSD_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  PSD_REQUIRE(capacity.bytes_per_ns() > 0.0, "edge capacity must be positive");
  Edge& edge = edges_[static_cast<std::size_t>(e)];
  edge_hash_sum_ -= edge_hash(edge);
  edge.capacity = capacity;
  edge_hash_sum_ += edge_hash(edge);
  ++epoch_;
}

EdgeId Graph::remove_edge(EdgeId e) {
  PSD_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  const auto drop_id = [](std::vector<EdgeId>& ids, EdgeId id) {
    const auto it = std::find(ids.begin(), ids.end(), id);
    PSD_ASSERT(it != ids.end(), "adjacency list missing its edge id");
    ids.erase(it);
  };
  const auto rename_id = [](std::vector<EdgeId>& ids, EdgeId from, EdgeId to) {
    const auto it = std::find(ids.begin(), ids.end(), from);
    PSD_ASSERT(it != ids.end(), "adjacency list missing its edge id");
    *it = to;
  };

  const Edge removed = edges_[static_cast<std::size_t>(e)];
  edge_hash_sum_ -= edge_hash(removed);
  drop_id(out_[static_cast<std::size_t>(removed.src)], e);
  drop_id(in_[static_cast<std::size_t>(removed.dst)], e);

  const EdgeId last = num_edges() - 1;
  EdgeId moved = -1;
  if (e != last) {
    // Swap-and-pop keeps ids dense: the former last edge takes over slot e,
    // and its adjacency entries are renamed accordingly.
    const Edge& tail = edges_[static_cast<std::size_t>(last)];
    rename_id(out_[static_cast<std::size_t>(tail.src)], last, e);
    rename_id(in_[static_cast<std::size_t>(tail.dst)], last, e);
    edges_[static_cast<std::size_t>(e)] = tail;
    moved = last;
  }
  edges_.pop_back();
  ++epoch_;
  return moved;
}

int Graph::max_out_degree() const {
  int d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, out_degree(v));
  return d;
}

EdgeId Graph::find_edge(NodeId src, NodeId dst) const {
  PSD_REQUIRE(valid_node(src) && valid_node(dst), "node id out of range");
  for (EdgeId e : out_edges(src)) {
    if (edge(e).dst == dst) return e;
  }
  return -1;
}

bool Graph::uniform_capacity() const {
  if (edges_.empty()) return true;
  const double c0 = edges_.front().capacity.bytes_per_ns();
  return std::all_of(edges_.begin(), edges_.end(), [c0](const Edge& e) {
    return e.capacity.bytes_per_ns() == c0;
  });
}

Bandwidth Graph::total_capacity() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.capacity.bytes_per_ns();
  return Bandwidth(s);
}

std::string Graph::to_string() const {
  std::string out = "Graph(n=" + std::to_string(num_nodes()) +
                    ", m=" + std::to_string(num_edges()) + ")\n";
  char buf[128];
  for (const Edge& e : edges_) {
    std::snprintf(buf, sizeof(buf), "  %d -> %d  @ %s\n", e.src, e.dst,
                  psd::to_string(e.capacity).c_str());
    out += buf;
  }
  return out;
}

}  // namespace psd::topo
