#include "psd/topo/graph.hpp"

#include <algorithm>
#include <cstdio>

namespace psd::topo {

EdgeId Graph::add_edge(NodeId src, NodeId dst, Bandwidth capacity) {
  PSD_REQUIRE(valid_node(src), "edge source out of range");
  PSD_REQUIRE(valid_node(dst), "edge destination out of range");
  PSD_REQUIRE(src != dst, "self-loop edges are not allowed");
  PSD_REQUIRE(capacity.bytes_per_ns() > 0.0, "edge capacity must be positive");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{src, dst, capacity});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

int Graph::max_out_degree() const {
  int d = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) d = std::max(d, out_degree(v));
  return d;
}

EdgeId Graph::find_edge(NodeId src, NodeId dst) const {
  PSD_REQUIRE(valid_node(src) && valid_node(dst), "node id out of range");
  for (EdgeId e : out_edges(src)) {
    if (edge(e).dst == dst) return e;
  }
  return -1;
}

bool Graph::uniform_capacity() const {
  if (edges_.empty()) return true;
  const double c0 = edges_.front().capacity.bytes_per_ns();
  return std::all_of(edges_.begin(), edges_.end(), [c0](const Edge& e) {
    return e.capacity.bytes_per_ns() == c0;
  });
}

Bandwidth Graph::total_capacity() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.capacity.bytes_per_ns();
  return Bandwidth(s);
}

std::string Graph::to_string() const {
  std::string out = "Graph(n=" + std::to_string(num_nodes()) +
                    ", m=" + std::to_string(num_edges()) + ")\n";
  char buf[128];
  for (const Edge& e : edges_) {
    std::snprintf(buf, sizeof(buf), "  %d -> %d  @ %s\n", e.src, e.dst,
                  psd::to_string(e.capacity).c_str());
    out += buf;
  }
  return out;
}

}  // namespace psd::topo
