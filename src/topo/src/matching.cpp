#include "psd/topo/matching.hpp"

#include <cmath>
#include <cstdint>

#include "psd/util/error.hpp"

namespace psd::topo {

std::size_t hash_destinations(const std::vector<int>& dst) {
  // FNV-1a over the bytes of each destination; 64-bit offset basis / prime.
  std::size_t h = 14695981039346656037ULL;
  for (int d : dst) {
    const auto v = static_cast<std::uint32_t>(d);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

Matching::Matching(int n) {
  PSD_REQUIRE(n >= 0, "matching size must be non-negative");
  dst_.assign(static_cast<std::size_t>(n), -1);
  src_.assign(static_cast<std::size_t>(n), -1);
}

Matching Matching::rotation(int n, int k) {
  PSD_REQUIRE(n > 0, "rotation requires n > 0");
  Matching m(n);
  const int kk = ((k % n) + n) % n;
  if (kk == 0) return m;  // empty: self-traffic carries no bytes
  for (int j = 0; j < n; ++j) m.set(j, (j + kk) % n);
  return m;
}

Matching Matching::from_pairs(int n, const std::vector<std::pair<int, int>>& pairs) {
  Matching m(n);
  for (const auto& [s, d] : pairs) m.set(s, d);
  return m;
}

Matching Matching::from_destinations(std::vector<int> dst) {
  Matching m(static_cast<int>(dst.size()));
  for (int j = 0; j < static_cast<int>(dst.size()); ++j) {
    if (dst[static_cast<std::size_t>(j)] >= 0) {
      m.set(j, dst[static_cast<std::size_t>(j)]);
    }
  }
  return m;
}

Matching Matching::from_matrix(const psd::Matrix& mat) {
  PSD_REQUIRE(mat.rows() == mat.cols(), "matrix must be square");
  PSD_REQUIRE(mat.is_sub_permutation(), "matrix must be a 0/1 sub-permutation");
  const int n = static_cast<int>(mat.rows());
  Matching m(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (mat(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) > 0.5) {
        m.set(r, c);
      }
    }
  }
  return m;
}

void Matching::set(int src, int dst) {
  const int n = size();
  PSD_REQUIRE(src >= 0 && src < n, "source out of range");
  PSD_REQUIRE(dst >= 0 && dst < n, "destination out of range");
  PSD_REQUIRE(src != dst, "a node cannot send to itself");
  PSD_REQUIRE(dst_[static_cast<std::size_t>(src)] == -1, "source already matched");
  PSD_REQUIRE(src_[static_cast<std::size_t>(dst)] == -1, "destination already matched");
  dst_[static_cast<std::size_t>(src)] = dst;
  src_[static_cast<std::size_t>(dst)] = src;
}

int Matching::dst_of(int src) const {
  PSD_REQUIRE(src >= 0 && src < size(), "source out of range");
  return dst_[static_cast<std::size_t>(src)];
}

int Matching::src_of(int dst) const {
  PSD_REQUIRE(dst >= 0 && dst < size(), "destination out of range");
  return src_[static_cast<std::size_t>(dst)];
}

int Matching::active_pairs() const {
  int c = 0;
  for (int d : dst_) c += (d >= 0) ? 1 : 0;
  return c;
}

bool Matching::is_full() const { return active_pairs() == size(); }

bool Matching::is_involution() const {
  for (int j = 0; j < size(); ++j) {
    const int d = dst_[static_cast<std::size_t>(j)];
    if (d >= 0 && dst_[static_cast<std::size_t>(d)] != j) return false;
  }
  return true;
}

std::vector<std::pair<int, int>> Matching::pairs() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(active_pairs()));
  for (int j = 0; j < size(); ++j) {
    const int d = dst_[static_cast<std::size_t>(j)];
    if (d >= 0) out.emplace_back(j, d);
  }
  return out;
}

psd::Matrix Matching::to_matrix() const {
  const auto n = static_cast<std::size_t>(size());
  psd::Matrix m(n, n);
  for (const auto& [s, d] : pairs()) {
    m(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) = 1.0;
  }
  return m;
}

int Matching::ports_changed_from(const Matching& other) const {
  PSD_REQUIRE(size() == other.size(), "matchings must have equal size");
  int changed = 0;
  for (int j = 0; j < size(); ++j) {
    if (dst_[static_cast<std::size_t>(j)] != other.dst_[static_cast<std::size_t>(j)]) ++changed;
    if (src_[static_cast<std::size_t>(j)] != other.src_[static_cast<std::size_t>(j)]) ++changed;
  }
  return changed;
}

}  // namespace psd::topo
