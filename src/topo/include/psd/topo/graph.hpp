// Capacitated directed graph: the model of a (possibly reconfigured) photonic
// topology inside a scale-up domain. Nodes are GPU endpoints (transceiver
// ports); edges are unidirectional optical circuits with a capacity.
//
// Graphs are mutable under churn: set_capacity models droop/degradation and
// remove_edge models a link cut (swap-and-pop, so edge ids stay dense and
// every E-indexed consumer remains valid — the id of the moved edge is
// reported to the caller). Every mutation bumps an epoch counter and
// incrementally maintains the multiset fingerprint graph_fingerprint() is
// built from, so identity checks after a delta are O(1) instead of O(E).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psd/util/error.hpp"
#include "psd/util/units.hpp"

namespace psd::topo {

using NodeId = int;
using EdgeId = int;

struct Edge {
  NodeId src = -1;
  NodeId dst = -1;
  Bandwidth capacity;
};

/// Byte-wise FNV-1a mix of `v` into `h` — the hashing primitive behind
/// graph_fingerprint, shared so fingerprint extensions (e.g. the θ-oracle's
/// context fingerprint) stay on the same scheme.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix64(std::uint64_t h,
                                                  std::uint64_t v) {
  constexpr std::uint64_t kPrime = 0x100000001B3ull;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xFFu;
    h *= kPrime;
  }
  return h;
}

class Graph {
 public:
  Graph() = default;

  /// Creates a graph over `n` nodes with no edges.
  explicit Graph(int n) : out_(checked_node_count(n)), in_(out_.size()) {}

  [[nodiscard]] int num_nodes() const { return static_cast<int>(out_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds a directed edge src -> dst with the given capacity; returns its id.
  EdgeId add_edge(NodeId src, NodeId dst, Bandwidth capacity);

  /// Replaces edge `e`'s capacity (must stay positive — a dead link is
  /// remove_edge's job; a zero capacity would poison every solver dual).
  void set_capacity(EdgeId e, Bandwidth capacity);

  /// Removes edge `e` by swap-and-pop: the last edge takes over id `e`, so
  /// ids stay dense in [0, num_edges()). Returns the *former* id of the
  /// edge that moved into slot `e` (== old num_edges() - 1), or -1 when `e`
  /// was the last edge and nothing moved. Callers holding edge ids must
  /// apply that renumbering (or re-resolve via find_edge).
  EdgeId remove_edge(EdgeId e);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    PSD_ASSERT(e >= 0 && e < num_edges(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving `v` / entering `v`.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const {
    PSD_ASSERT(valid_node(v), "node id out of range");
    return out_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const {
    PSD_ASSERT(valid_node(v), "node id out of range");
    return in_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] int out_degree(NodeId v) const {
    return static_cast<int>(out_edges(v).size());
  }
  [[nodiscard]] int in_degree(NodeId v) const {
    return static_cast<int>(in_edges(v).size());
  }

  /// Maximum out-degree over all nodes (0 for an empty graph).
  [[nodiscard]] int max_out_degree() const;

  /// Returns the edge id of some edge src -> dst, or -1 if absent.
  [[nodiscard]] EdgeId find_edge(NodeId src, NodeId dst) const;

  /// True if every edge has the same capacity (vacuously true if no edges).
  [[nodiscard]] bool uniform_capacity() const;

  /// Sum of all edge capacities.
  [[nodiscard]] Bandwidth total_capacity() const;

  /// Number of mutations (add/remove/set_capacity) applied so far. Consumers
  /// caching graph-derived state compare epochs to detect staleness.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Identity fingerprint, maintained incrementally (O(1) per mutation): the
  /// node count FNV-mixed with the *sum* (mod 2^64) of the per-edge hashes
  /// over (src, dst, capacity bit pattern). The sum is commutative — equal
  /// edge multisets collide regardless of insertion order, which is what
  /// keeps the fingerprint stable across remove_edge's renumbering — and,
  /// unlike an XOR fold, duplicate parallel edges do not cancel. θ depends
  /// only on the edge multiset, so a collision of reordered builds costs
  /// nothing; distinct multisets are distinguished modulo 64-bit hash luck.
  [[nodiscard]] std::uint64_t fingerprint() const {
    return fnv1a_mix64(fnv1a_mix64(kFnvOffset, static_cast<std::uint64_t>(
                                                   num_nodes())),
                       edge_hash_sum_);
  }

  [[nodiscard]] bool valid_node(NodeId v) const {
    return v >= 0 && v < num_nodes();
  }

  /// Human-readable edge list for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

  static std::size_t checked_node_count(int n) {
    PSD_REQUIRE(n >= 0, "node count must be non-negative");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] static std::uint64_t edge_hash(const Edge& e);

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::uint64_t edge_hash_sum_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace psd::topo
