// Capacitated directed graph: the model of a (possibly reconfigured) photonic
// topology inside a scale-up domain. Nodes are GPU endpoints (transceiver
// ports); edges are unidirectional optical circuits with a capacity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "psd/util/error.hpp"
#include "psd/util/units.hpp"

namespace psd::topo {

using NodeId = int;
using EdgeId = int;

struct Edge {
  NodeId src = -1;
  NodeId dst = -1;
  Bandwidth capacity;
};

class Graph {
 public:
  Graph() = default;

  /// Creates a graph over `n` nodes with no edges.
  explicit Graph(int n) : out_(checked_node_count(n)), in_(out_.size()) {}

  [[nodiscard]] int num_nodes() const { return static_cast<int>(out_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds a directed edge src -> dst with the given capacity; returns its id.
  EdgeId add_edge(NodeId src, NodeId dst, Bandwidth capacity);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    PSD_ASSERT(e >= 0 && e < num_edges(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving `v` / entering `v`.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const {
    PSD_ASSERT(valid_node(v), "node id out of range");
    return out_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const {
    PSD_ASSERT(valid_node(v), "node id out of range");
    return in_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] int out_degree(NodeId v) const {
    return static_cast<int>(out_edges(v).size());
  }
  [[nodiscard]] int in_degree(NodeId v) const {
    return static_cast<int>(in_edges(v).size());
  }

  /// Maximum out-degree over all nodes (0 for an empty graph).
  [[nodiscard]] int max_out_degree() const;

  /// Returns the edge id of some edge src -> dst, or -1 if absent.
  [[nodiscard]] EdgeId find_edge(NodeId src, NodeId dst) const;

  /// True if every edge has the same capacity (vacuously true if no edges).
  [[nodiscard]] bool uniform_capacity() const;

  /// Sum of all edge capacities.
  [[nodiscard]] Bandwidth total_capacity() const;

  [[nodiscard]] bool valid_node(NodeId v) const {
    return v >= 0 && v < num_nodes();
  }

  /// Human-readable edge list for debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  static std::size_t checked_node_count(int n) {
    PSD_REQUIRE(n >= 0, "node count must be non-negative");
    return static_cast<std::size_t>(n);
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace psd::topo
