// A (partial) matching over n endpoints: each node sends to at most one node
// and receives from at most one node. Matchings are the atoms of the paper's
// framework — a collective step's communication pattern M_i, a permutation in
// a BvN decomposition, and a realizable circuit configuration of a
// single-transceiver photonic fabric are all matchings.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "psd/util/matrix.hpp"

namespace psd::topo {

/// FNV-1a over a destination vector. Shared by Matching::hash() and the
/// θ-oracle's memo table so both agree on the key function.
[[nodiscard]] std::size_t hash_destinations(const std::vector<int>& dst);

class Matching {
 public:
  Matching() = default;

  /// Creates an empty matching over `n` endpoints (nobody sends).
  explicit Matching(int n);

  /// The rotation sigma(j) = (j + k) mod n; k must not be ≡ 0 unless k == 0
  /// (k == 0 yields the empty matching — self traffic is meaningless).
  static Matching rotation(int n, int k);

  /// Builds from explicit (src, dst) pairs.
  static Matching from_pairs(int n, const std::vector<std::pair<int, int>>& pairs);

  /// Builds from a destination vector: dst[j] is where j sends, or -1.
  static Matching from_destinations(std::vector<int> dst);

  /// Builds from a 0/1 sub-permutation matrix.
  static Matching from_matrix(const psd::Matrix& m);

  /// Adds the pair src -> dst; src must not already send, dst must not
  /// already receive, and src != dst.
  void set(int src, int dst);

  /// Number of endpoints n.
  [[nodiscard]] int size() const { return static_cast<int>(dst_.size()); }

  /// Destination of `src`, or -1 if `src` is idle in this matching.
  [[nodiscard]] int dst_of(int src) const;

  /// Source sending to `dst`, or -1 if `dst` receives nothing.
  [[nodiscard]] int src_of(int dst) const;

  /// Number of (src, dst) pairs present.
  [[nodiscard]] int active_pairs() const;

  /// True if every endpoint sends (a full permutation).
  [[nodiscard]] bool is_full() const;

  /// True if the matching is its own inverse (pairwise exchanges only).
  [[nodiscard]] bool is_involution() const;

  /// All (src, dst) pairs, ordered by src.
  [[nodiscard]] std::vector<std::pair<int, int>> pairs() const;

  /// The n x n 0/1 matrix representation.
  [[nodiscard]] psd::Matrix to_matrix() const;

  /// Number of endpoints whose connection differs between this and `other`
  /// (counting both send and receive sides). Drives port-count-dependent
  /// reconfiguration-delay models.
  [[nodiscard]] int ports_changed_from(const Matching& other) const;

  /// The full destination vector (dst_of for every endpoint, -1 = idle).
  /// This is the canonical identity of a matching: equality, hash() and the
  /// θ-oracle cache key are all defined over it. Returned by reference so
  /// lookups stay allocation-free.
  [[nodiscard]] const std::vector<int>& destinations() const { return dst_; }

  /// Hash consistent with operator== (FNV-1a over destinations()).
  [[nodiscard]] std::size_t hash() const { return hash_destinations(dst_); }

  friend bool operator==(const Matching& a, const Matching& b) {
    return a.dst_ == b.dst_;
  }

 private:
  std::vector<int> dst_;  // dst_[j] = destination of j, or -1
  std::vector<int> src_;  // src_[k] = source sending to k, or -1
};

}  // namespace psd::topo
