// Shortest-path utilities over capacitated digraphs: unweighted BFS hop
// counts (propagation-delay path lengths ℓ_i use hops) and Dijkstra with
// arbitrary non-negative edge lengths (used by the Garg–Könemann concurrent
// flow solver, where lengths are dual weights).
#pragma once

#include <limits>
#include <vector>

#include "psd/topo/graph.hpp"

namespace psd::topo {

inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distance from `src` to every node (kUnreachable if none).
[[nodiscard]] std::vector<int> bfs_hops(const Graph& g, NodeId src);

/// All-pairs hop distances; result[u][v] is the hop count u -> v.
[[nodiscard]] std::vector<std::vector<int>> all_pairs_hops(const Graph& g);

/// Result of a single-source Dijkstra run.
struct DijkstraResult {
  std::vector<double> dist;      // dist[v]; +inf if unreachable
  std::vector<EdgeId> parent_edge;  // edge used to reach v, or -1
};

/// Dijkstra from `src` with per-edge lengths `edge_length` (size num_edges,
/// all >= 0). Infinite lengths (std::numeric_limits<double>::infinity())
/// effectively delete edges. If `stop_at` is a valid node, the search stops
/// once that node is settled: dist[stop_at] and the parent chain from it
/// are final (and identical to a full run), other nodes may be unsettled —
/// use it for single-destination queries on large graphs. (Garg–Könemann
/// has its own allocation-free engine with the same early stop.)
[[nodiscard]] DijkstraResult dijkstra(const Graph& g, NodeId src,
                                      const std::vector<double>& edge_length,
                                      NodeId stop_at = -1);

/// Reconstructs the edge path src -> dst from a Dijkstra result; empty if
/// dst is unreachable (or dst == src).
[[nodiscard]] std::vector<EdgeId> extract_path(const Graph& g,
                                               const DijkstraResult& res,
                                               NodeId src, NodeId dst);

}  // namespace psd::topo
