// Shortest-path utilities over capacitated digraphs: unweighted BFS hop
// counts (propagation-delay path lengths ℓ_i use hops), Dijkstra with
// arbitrary non-negative edge lengths, and a Dial-style bucket-queue SSSP
// over ε-quantized lengths (both used by the Garg–Könemann concurrent flow
// solver, where lengths are multiplicative dual weights).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "psd/topo/graph.hpp"

namespace psd::topo {

inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distance from `src` to every node (kUnreachable if none).
[[nodiscard]] std::vector<int> bfs_hops(const Graph& g, NodeId src);

/// All-pairs hop distances; result[u][v] is the hop count u -> v.
[[nodiscard]] std::vector<std::vector<int>> all_pairs_hops(const Graph& g);

/// Result of a single-source Dijkstra run.
struct DijkstraResult {
  std::vector<double> dist;      // dist[v]; +inf if unreachable
  std::vector<EdgeId> parent_edge;  // edge used to reach v, or -1
};

/// Dijkstra from `src` with per-edge lengths `edge_length` (size num_edges,
/// all >= 0). Infinite lengths (std::numeric_limits<double>::infinity())
/// effectively delete edges. If `stop_at` is a valid node, the search stops
/// once that node is settled: dist[stop_at] and the parent chain from it
/// are final (and identical to a full run), other nodes may be unsettled —
/// use it for single-destination queries on large graphs. (Garg–Könemann
/// has its own allocation-free engine with the same early stop.)
[[nodiscard]] DijkstraResult dijkstra(const Graph& g, NodeId src,
                                      const std::vector<double>& edge_length,
                                      NodeId stop_at = -1);

/// Reconstructs the edge path src -> dst from a Dijkstra result; empty if
/// dst is unreachable (or dst == src).
[[nodiscard]] std::vector<EdgeId> extract_path(const Graph& g,
                                               const DijkstraResult& res,
                                               NodeId src, NodeId dst);

/// Flat CSR copy of a graph's out-adjacency. Search loops that run tens of
/// thousands of times per solve (the Garg–Könemann push loop) pay for the
/// Graph's vector-of-vectors adjacency and Edge-struct hops in memory
/// traffic; this is the contiguous alternative. Arcs are stored in
/// out_edges order, so a relaxation loop over the CSR visits neighbours in
/// exactly the order a loop over Graph::out_edges would — tie-breaks match.
struct CsrAdjacency {
  std::vector<int> head;        // size V+1; arcs of v are [head[v], head[v+1])
  std::vector<NodeId> to;       // neighbour of the arc
  std::vector<EdgeId> eid;      // underlying edge id
  std::vector<int> arc_of_edge; // inverse of eid (each edge appears once)

  void build(const Graph& g);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(head.size()) - 1; }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(to.size()); }
};

/// Dial-style bucket-queue single-source shortest path over quantized
/// lengths: every arc length is floored to an integer number of quanta and
/// distances are settled bucket-by-bucket in one monotone sweep — no heap,
/// integer comparisons only, and nodes farther than a radius are never
/// explored.
///
/// Guarantees (q = quantum, d(v) = true shortest distance):
///   - quantized distances are exact SSSP over the floored weights, so
///     q·dist(v) ≤ d(v) — never an overestimate;
///   - the recorded parent chain is a real path whose true length is at
///     most q·(dist(v) + hops), i.e. within (hops)·q of d(v);
///   - a node is settled iff its quantized distance is ≤ the radius.
///
/// The Garg–Könemann phase schedule picks q = ε·threshold/V, making every
/// returned path an (1+ε)-approximate shortest path at threshold scale —
/// exactly the accuracy Fleischer's analysis budgets for.
///
/// Scratch buffers (buckets, stamps) persist across run() calls, so a
/// long-lived engine performs no allocations once warmed up.
class BucketQueueSssp {
 public:
  static constexpr std::int32_t kUnsettled = -1;

  /// Largest accepted radius_quanta. Buckets are directly indexed by
  /// quantized distance, so the radius bounds the engine's memory; callers
  /// whose quantum/radius combination cannot fit (V/ε beyond this) must
  /// use a coarser quantum or a different engine — the Garg–Könemann phase
  /// schedule falls back to its binary-heap engine in that regime.
  static constexpr std::int32_t kMaxRadius = (1 << 22) - 1;

  /// Runs SSSP from `src`. `arc_length` is indexed in *arc* order (parallel
  /// to csr.to, see CsrAdjacency; use csr.arc_of_edge to convert); entries
  /// may be +infinity (edge deleted). `radius_quanta` bounds the search:
  /// nodes whose quantized distance exceeds it stay unsettled. When
  /// `targets` is non-empty the sweep additionally stops as soon as every
  /// target is settled or provably beyond the radius.
  ///
  /// `potential`, when non-null, is a *feasible potential* of size V
  /// (π(v) ≤ π(u) + length(u,v) for every arc, e.g. the distance field of
  /// an earlier search over shorter-or-equal lengths): arcs are searched
  /// under reduced lengths length(u,v) + π(u) − π(v), so distances,
  /// radius_quanta, and quantized_dist() are all in *reduced* units
  /// (true distance to v = π(v) + quantum·dist when π(src) == 0). A
  /// warm-started re-search then explores only the region whose distances
  /// actually grew. Note the Garg–Könemann phase schedule does NOT use
  /// this: measured counterproductive there, because round-robin pushes
  /// grow duals everywhere between one source group's consecutive
  /// searches (see docs/performance.md). The hook is kept — and
  /// property-tested — for access patterns that re-search hot sources
  /// frequently. Negative reduced lengths from floating-point drift are
  /// clamped to zero.
  void run(const CsrAdjacency& csr, NodeId src,
           const std::vector<double>& arc_length, double quantum,
           std::int32_t radius_quanta, std::span<const NodeId> targets = {},
           const double* potential = nullptr);

  /// Quantized distance of v (multiply by quantum for length units), or
  /// kUnsettled if v was not settled within the radius.
  [[nodiscard]] std::int32_t quantized_dist(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return stamp_[vi] == epoch_ ? settled_dist_[vi] : kUnsettled;
  }

  /// The bucket index where the last run() stopped sweeping. Every
  /// unsettled node's quantized distance is provably ≥ this — the
  /// certificate callers need to advance lower bounds (potentials) for
  /// nodes the early stop never reached.
  [[nodiscard]] std::int32_t last_sweep_bucket() const { return stop_bucket_; }

  /// Appends the edge path src -> v to `out` (cleared first). Empty if v is
  /// unsettled or v == src.
  void extract_path(NodeId src, NodeId v, std::vector<EdgeId>& out) const;

 private:
  void touch(std::size_t v);

  std::vector<std::int32_t> dist_;          // tentative, valid when stamped
  std::vector<std::int32_t> settled_dist_;  // final, kUnsettled until popped
  std::vector<EdgeId> parent_edge_;
  std::vector<NodeId> parent_node_;
  std::vector<unsigned> stamp_;
  unsigned epoch_ = 0;
  std::int32_t stop_bucket_ = 0;
  // Buckets as intrusive lists over one contiguous entry pool: bucket b's
  // entries are pool indices chained through pool_next_ from
  // bucket_head_[b]. Lazy deletion (a node may appear in several buckets;
  // stale entries are skipped at pop time).
  std::vector<std::int32_t> bucket_head_;
  std::vector<NodeId> pool_node_;
  std::vector<std::int32_t> pool_next_;
  std::vector<std::uint64_t> occupied_;  // bitmask over bucket indices
};

/// Graph-level convenience wrapper (tests, offline consumers): quantized
/// bucket SSSP from `src` in DijkstraResult form. dist[v] is the quantized
/// distance scaled back to length units (so dist[v] ≤ true distance ≤
/// dist[v] + hops·quantum), +inf for nodes beyond `radius` or unreachable.
/// With a valid `stop_at` the sweep ends once that node settles. The
/// Garg–Könemann solver uses the allocation-free engine above directly.
[[nodiscard]] DijkstraResult bucket_sssp(
    const Graph& g, NodeId src, const std::vector<double>& edge_length,
    double quantum,
    double radius = std::numeric_limits<double>::infinity(),
    NodeId stop_at = -1);

}  // namespace psd::topo
