// First-class topology deltas: the churn vocabulary of an adaptive photonic
// scale-up domain. Links appear (a circuit is provisioned), disappear (a cut
// or a reconfiguration away), and degrade (optical droop), and consumers —
// θ caches, warm-restarted solvers, the churn simulator — need to reason
// about *what* changed, not just that something did.
//
// apply_delta() mutates a Graph in place and returns:
//   - the graph's new epoch,
//   - the "touched set": the (src, dst) pair codes of every edge an op
//     modified. Pair codes, not edge ids, because remove_edge renumbers ids
//     (swap-and-pop) while the endpoint pair is stable — it is the identity
//     flow supports are recorded under (see flow/theta_cache.hpp).
//   - whether the delta was *relaxing* (added an edge or raised a capacity).
//     A purely restricting delta cannot raise θ, so a cached θ whose routed
//     support avoids every touched edge remains both feasible and optimal —
//     that is the survival rule edge-level cache invalidation implements. A
//     relaxing delta can raise θ for *any* matching (new shortcuts), so
//     consumers must invalidate conservatively.
#pragma once

#include <cstdint>
#include <vector>

#include "psd/topo/graph.hpp"

namespace psd::topo {

/// Stable identity of a directed edge across id renumbering: (src, dst)
/// packed into one word. Self-loops are forbidden, so codes are unique per
/// directed pair; parallel src->dst edges share a code (they are
/// invalidated together, which is conservative and safe).
[[nodiscard]] constexpr std::uint64_t edge_pair_code(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

enum class DeltaOpKind : std::uint8_t {
  kAddEdge,        // add src -> dst with `capacity`
  kRemoveEdge,     // cut src -> dst (must exist)
  kSetCapacity,    // set src -> dst capacity to `capacity`
  kScaleCapacity,  // multiply src -> dst capacity by `factor` (droop/repair)
};

struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kSetCapacity;
  NodeId src = -1;
  NodeId dst = -1;
  Bandwidth capacity;   // kAddEdge / kSetCapacity
  double factor = 1.0;  // kScaleCapacity; must be positive
};

/// An ordered batch of edge-level changes. Builder methods return *this so
/// deltas compose fluently: TopologyDelta{}.remove_edge(2, 3).scale(...).
struct TopologyDelta {
  std::vector<DeltaOp> ops;

  TopologyDelta& add_edge(NodeId src, NodeId dst, Bandwidth capacity) {
    ops.push_back({DeltaOpKind::kAddEdge, src, dst, capacity, 1.0});
    return *this;
  }
  TopologyDelta& remove_edge(NodeId src, NodeId dst) {
    ops.push_back({DeltaOpKind::kRemoveEdge, src, dst, Bandwidth{}, 1.0});
    return *this;
  }
  TopologyDelta& set_capacity(NodeId src, NodeId dst, Bandwidth capacity) {
    ops.push_back({DeltaOpKind::kSetCapacity, src, dst, capacity, 1.0});
    return *this;
  }
  TopologyDelta& scale_capacity(NodeId src, NodeId dst, double factor) {
    ops.push_back({DeltaOpKind::kScaleCapacity, src, dst, Bandwidth{}, factor});
    return *this;
  }

  [[nodiscard]] bool empty() const { return ops.empty(); }
};

/// What apply_delta did, in the terms cache invalidation consumes.
struct DeltaResult {
  std::uint64_t epoch = 0;  // graph epoch after the delta
  // Sorted, de-duplicated edge_pair_codes of every modified edge.
  std::vector<std::uint64_t> touched;
  // True when any op could *raise* θ (edge added, capacity increased):
  // support-avoiding cache entries then no longer prove optimality and
  // consumers must invalidate conservatively. Restricting deltas (cuts,
  // droop) leave support-avoiding entries exactly valid.
  bool relaxing = false;
  int edges_added = 0;
  int edges_removed = 0;
  int capacity_changes = 0;
};

/// Applies `delta`'s ops in order. Ops address edges by (src, dst): each op
/// except kAddEdge requires the edge to exist (InvalidArgument otherwise);
/// kScaleCapacity requires factor > 0; kAddEdge requires no existing
/// src -> dst edge (parallel circuits are modeled as capacity, not
/// duplicate edges — use kSetCapacity/kScaleCapacity to widen a link).
[[nodiscard]] DeltaResult apply_delta(Graph& g, const TopologyDelta& delta);

/// True if two sorted pair-code sets intersect — the cache-survival test
/// "does this entry's routed support touch any modified edge?". O(|a|+|b|).
[[nodiscard]] bool pair_codes_intersect(const std::vector<std::uint64_t>& a,
                                        const std::vector<std::uint64_t>& b);

}  // namespace psd::topo
