// Structural properties of topologies: connectivity, diameter, the
// path-length statistics ℓ_i the cost model consumes, and the identity
// fingerprint shared caches key graphs by.
#pragma once

#include <cstdint>

#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::topo {

/// True if every node can reach every other node.
[[nodiscard]] bool is_strongly_connected(const Graph& g);

/// Longest shortest-path hop count over all ordered pairs; throws
/// InvalidArgument if the graph is not strongly connected.
[[nodiscard]] int diameter(const Graph& g);

/// ℓ(G, M): the maximum shortest-path hop count over the communicating pairs
/// of `m` — the paper's per-step path length ℓ_i when staying on the base
/// topology. Returns 0 for an empty matching. Throws if some pair is
/// disconnected.
[[nodiscard]] int max_pair_hops(const Graph& g, const Matching& m);

/// Sum over pairs (j, k) of the shortest-path hop count j -> k; the
/// denominator of the hop-capacity throughput proxy.
[[nodiscard]] long long total_pair_hops(const Graph& g, const Matching& m);

/// True if every pair of `m` has a direct edge in `g` (so θ(G, M) = 1 with
/// full per-link bandwidth and ℓ = 1).
[[nodiscard]] bool matches_topology(const Graph& g, const Matching& m);

/// Identity fingerprint of a graph: the node count FNV-mixed with the
/// commutative multiset hash of every edge's (src, dst, capacity bit
/// pattern). θ is a pure function of (graph, matching), so this is the graph
/// half of a cross-planner θ-cache key. Equal edge multisets always collide
/// (θ only sees the multiset, so that is free sharing, never a wrong θ);
/// isomorphic graphs built over different node labels need not. The value is
/// maintained incrementally by Graph's mutators, so this call is O(1) — see
/// Graph::fingerprint(). (fnv1a_mix64, the underlying primitive, now lives
/// in graph.hpp next to the maintained sum.)
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);

}  // namespace psd::topo
