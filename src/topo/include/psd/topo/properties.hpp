// Structural properties of topologies: connectivity, diameter, the
// path-length statistics ℓ_i the cost model consumes, and the identity
// fingerprint shared caches key graphs by.
#pragma once

#include <cstdint>

#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::topo {

/// True if every node can reach every other node.
[[nodiscard]] bool is_strongly_connected(const Graph& g);

/// Longest shortest-path hop count over all ordered pairs; throws
/// InvalidArgument if the graph is not strongly connected.
[[nodiscard]] int diameter(const Graph& g);

/// ℓ(G, M): the maximum shortest-path hop count over the communicating pairs
/// of `m` — the paper's per-step path length ℓ_i when staying on the base
/// topology. Returns 0 for an empty matching. Throws if some pair is
/// disconnected.
[[nodiscard]] int max_pair_hops(const Graph& g, const Matching& m);

/// Sum over pairs (j, k) of the shortest-path hop count j -> k; the
/// denominator of the hop-capacity throughput proxy.
[[nodiscard]] long long total_pair_hops(const Graph& g, const Matching& m);

/// True if every pair of `m` has a direct edge in `g` (so θ(G, M) = 1 with
/// full per-link bandwidth and ℓ = 1).
[[nodiscard]] bool matches_topology(const Graph& g, const Matching& m);

/// Byte-wise FNV-1a mix of `v` into `h` — the hashing primitive behind
/// graph_fingerprint, shared so fingerprint extensions (e.g. the θ-oracle's
/// context fingerprint) stay on the same scheme.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix64(std::uint64_t h,
                                                  std::uint64_t v) {
  constexpr std::uint64_t kPrime = 0x100000001B3ull;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xFFu;
    h *= kPrime;
  }
  return h;
}

/// Order-sensitive identity fingerprint of a graph: FNV-1a over the node
/// count and every edge's (src, dst, capacity bit pattern) in edge-id order.
/// θ is a pure function of (graph, matching), so this is the graph half of a
/// cross-planner θ-cache key. Equal graphs (same nodes, same edges in the
/// same insertion order, same capacities) always collide; isomorphic graphs
/// built differently need not — a conservative distinction that costs a
/// duplicate cache entry, never a wrong θ. O(E).
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);

}  // namespace psd::topo
