// Standard scale-up topologies.
//
// With a single transceiver per GPU, any realizable circuit configuration is
// a permutation of ports (paper §3.1); the directed ring is the canonical
// base topology G. Higher-degree builders (bidirectional ring, torus,
// hypercube, ring unions) model multi-transceiver GPUs, for which the paper
// notes the framework is "especially valuable".
#pragma once

#include <vector>

#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::topo {

/// Directed (unidirectional) ring j -> (j+stride) mod n. `stride` must be
/// coprime with n so the ring visits every node.
[[nodiscard]] Graph directed_ring(int n, Bandwidth link_bw, int stride = 1);

/// Bidirectional ring: edges j -> j±1, each with capacity `link_bw`.
[[nodiscard]] Graph bidirectional_ring(int n, Bandwidth link_bw);

/// Union of directed rings with the given strides (each coprime with n).
/// Models a multi-transceiver GPU using one transceiver per ring (§3.3's
/// "multiple co-prime rings as base topologies").
[[nodiscard]] Graph coprime_ring_union(int n, Bandwidth link_bw,
                                       const std::vector<int>& strides);

/// 2-D torus with `rows` x `cols` nodes and bidirectional links along both
/// dimensions. Node (r, c) has id r*cols + c.
[[nodiscard]] Graph torus_2d(int rows, int cols, Bandwidth link_bw);

/// d-dimensional hypercube over 2^dim nodes; bidirectional links.
[[nodiscard]] Graph hypercube(int dim, Bandwidth link_bw);

/// Complete digraph: every ordered pair connected directly.
[[nodiscard]] Graph full_mesh(int n, Bandwidth link_bw);

/// The topology realizing a circuit configuration: one directed edge per
/// (src, dst) pair in the matching, each with full transceiver bandwidth.
[[nodiscard]] Graph matched_topology(const Matching& m, Bandwidth link_bw);

/// True if `g` is a single directed cycle visiting all nodes with each node
/// having out-degree and in-degree exactly 1. If so and `order` is non-null,
/// fills order[v] = position of v along the cycle starting from node 0.
[[nodiscard]] bool is_directed_ring(const Graph& g, std::vector<int>* order = nullptr);

}  // namespace psd::topo
