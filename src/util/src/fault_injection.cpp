#include "psd/util/fault_injection.hpp"

#include <algorithm>
#include <cstdlib>

#include "psd/util/error.hpp"
#include "psd/util/rng.hpp"

namespace psd::util {

void FaultInjector::reset(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lk(mu_);
  seed_ = seed;
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  total_fires_.store(0, std::memory_order_relaxed);
}

void FaultInjector::arm(std::string_view site, FaultSite config) {
  PSD_REQUIRE(!site.empty(), "fault site name must not be empty");
  PSD_REQUIRE(config.probability >= 0.0 && config.probability <= 1.0,
              "fault probability must be in [0, 1]");
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& s = it->second;
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.config = config;
  s.armed = true;
  s.hit_count = 0;
}

void FaultInjector::disarm(std::string_view site) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

bool FaultInjector::fire(std::string_view site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  SiteState& s = it->second;
  const std::uint64_t hit = ++s.hit_count;  // 1-based draw index
  if (hit <= s.config.after) return false;
  if (s.fire_count >= s.config.budget) return false;
  if (s.config.probability < 1.0) {
    // The draw for hit k is a pure function of (seed, site, k): replaying
    // the drill replays the schedule no matter how threads interleave.
    Rng rng(derive_stream_seed(seed_, site, hit));
    if (rng.next_double() >= s.config.probability) return false;
  }
  ++s.fire_count;
  s.fired_hits.push_back(hit);
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::chrono::milliseconds FaultInjector::fire_delay(std::string_view site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) {
    return std::chrono::milliseconds{0};
  }
  std::chrono::milliseconds delay{0};
  {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto it = sites_.find(site);
    if (it != sites_.end() && it->second.armed) delay = it->second.config.delay;
  }
  return fire(site) ? delay : std::chrono::milliseconds{0};
}

std::uint64_t FaultInjector::fires(std::string_view site) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fire_count;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::vector<std::string> FaultInjector::event_log() const {
  std::vector<std::string> log;
  const std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, s] : sites_) {  // map: already sorted by site
    std::vector<std::uint64_t> hits = s.fired_hits;
    std::sort(hits.begin(), hits.end());
    for (const std::uint64_t h : hits) {
      log.push_back(name + "#" + std::to_string(h));
    }
  }
  return log;
}

void FaultInjector::arm_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      throw InvalidArgument("fault spec has an empty site entry");
    }
    const std::size_t colon = entry.find(':');
    const std::string_view name =
        colon == std::string_view::npos ? entry : entry.substr(0, colon);
    if (name.empty()) throw InvalidArgument("fault spec site name is empty");
    FaultSite cfg;
    if (colon != std::string_view::npos) {
      std::string_view kvs = entry.substr(colon + 1);
      std::size_t kpos = 0;
      while (kpos <= kvs.size()) {
        std::size_t kend = kvs.find(',', kpos);
        if (kend == std::string_view::npos) kend = kvs.size();
        const std::string_view kv = kvs.substr(kpos, kend - kpos);
        kpos = kend + 1;
        if (kv.empty()) {
          if (kend == kvs.size()) break;
          throw InvalidArgument("fault spec has an empty key=value");
        }
        const std::size_t eq = kv.find('=');
        if (eq == std::string_view::npos) {
          throw InvalidArgument("fault spec expects key=value, got \"" +
                                std::string(kv) + "\"");
        }
        const std::string_view key = kv.substr(0, eq);
        const std::string val(kv.substr(eq + 1));
        char* endp = nullptr;
        const double x = std::strtod(val.c_str(), &endp);
        if (endp == val.c_str() || *endp != '\0' || x < 0.0) {
          throw InvalidArgument("fault spec value for \"" + std::string(key) +
                                "\" must be a non-negative number");
        }
        if (key == "p") {
          if (x > 1.0) throw InvalidArgument("fault spec p must be <= 1");
          cfg.probability = x;
        } else if (key == "after") {
          cfg.after = static_cast<std::uint64_t>(x);
        } else if (key == "budget") {
          cfg.budget = static_cast<std::uint64_t>(x);
        } else if (key == "delay_ms") {
          cfg.delay = std::chrono::milliseconds(static_cast<long>(x));
        } else {
          throw InvalidArgument("unknown fault spec key \"" +
                                std::string(key) + "\"");
        }
        if (kend == kvs.size()) break;
      }
    }
    arm(name, cfg);
    if (end == spec.size()) break;
  }
}

}  // namespace psd::util
