#include "psd/util/rng.hpp"

#include <numeric>

#include "psd/util/error.hpp"

namespace psd {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64 sequence step: advances `state` and returns the next value.
std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t root, std::string_view name,
                                 std::uint64_t index) {
  // FNV-1a over the stream name, then two splitmix rounds folding in the
  // root and the index. Each stage is a bijection-or-hash of well-mixed
  // words, so nearby (root, index) keys land on unrelated streams.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return splitmix64(splitmix64(root ^ h) + index);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  PSD_REQUIRE(n > 0, "next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int Rng::uniform_int(int lo, int hi) {
  PSD_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

std::vector<int> Rng::permutation(int n) {
  PSD_REQUIRE(n >= 0, "permutation size must be non-negative");
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  shuffle(p);
  return p;
}

}  // namespace psd
