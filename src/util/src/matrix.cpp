#include "psd/util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psd {

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  PSD_REQUIRE(r > 0, "matrix must have at least one row");
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    PSD_REQUIRE(row.size() == c, "all rows must have equal length");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

double Matrix::row_sum(std::size_t r) const {
  PSD_REQUIRE(r < rows_, "row index out of range");
  const double* p = data_.data() + r * cols_;
  double s = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) s += p[c];
  return s;
}

double Matrix::col_sum(std::size_t c) const {
  PSD_REQUIRE(c < cols_, "column index out of range");
  const double* p = data_.data() + c;
  double s = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) s += p[r * cols_];
  return s;
}

double Matrix::total() const {
  const double* p = data_.data();
  const std::size_t sz = data_.size();
  double s = 0.0;
  for (std::size_t i = 0; i < sz; ++i) s += p[i];
  return s;
}

double Matrix::max_abs() const {
  const double* p = data_.data();
  const std::size_t sz = data_.size();
  double m = 0.0;
  for (std::size_t i = 0; i < sz; ++i) {
    const double a = std::fabs(p[i]);
    m = a > m ? a : m;
  }
  return m;
}

bool Matrix::is_nonnegative(double tol) const {
  return std::all_of(data_.begin(), data_.end(),
                     [tol](double v) { return v >= -tol; });
}

bool Matrix::is_doubly_stochastic_scaled(double target, double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (std::fabs(row_sum(i) - target) > tol) return false;
    if (std::fabs(col_sum(i) - target) > tol) return false;
  }
  return true;
}

bool Matrix::is_sub_permutation(double tol) const {
  if (rows_ != cols_) return false;
  std::vector<int> col_used(cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    int ones_in_row = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = (*this)(r, c);
      if (std::fabs(v) <= tol) continue;
      if (std::fabs(v - 1.0) > tol) return false;
      if (++ones_in_row > 1) return false;
      if (++col_used[c] > 1) return false;
    }
  }
  return true;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  PSD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double* a = data_.data();
  const double* b = other.data_.data();
  const std::size_t sz = data_.size();
  for (std::size_t i = 0; i < sz; ++i) a[i] += b[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  PSD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double* a = data_.data();
  const double* b = other.data_.data();
  const std::size_t sz = data_.size();
  for (std::size_t i = 0; i < sz; ++i) a[i] -= b[i];
  return *this;
}

Matrix& Matrix::operator*=(double k) {
  double* a = data_.data();
  const std::size_t sz = data_.size();
  for (std::size_t i = 0; i < sz; ++i) a[i] *= k;
  return *this;
}

double Matrix::max_diff(const Matrix& a, const Matrix& b) {
  PSD_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  const double* pa = a.data_.data();
  const double* pb = b.data_.data();
  const std::size_t sz = a.data_.size();
  double m = 0.0;
  for (std::size_t i = 0; i < sz; ++i) {
    const double d = std::fabs(pa[i] - pb[i]);
    m = d > m ? d : m;
  }
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%*.*f ", precision + 4, precision,
                    (*this)(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace psd
