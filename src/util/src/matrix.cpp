#include "psd/util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psd {

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  PSD_REQUIRE(r > 0, "matrix must have at least one row");
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    PSD_REQUIRE(row.size() == c, "all rows must have equal length");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

double Matrix::row_sum(std::size_t r) const {
  PSD_REQUIRE(r < rows_, "row index out of range");
  double s = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c];
  return s;
}

double Matrix::col_sum(std::size_t c) const {
  PSD_REQUIRE(c < cols_, "column index out of range");
  double s = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) s += data_[r * cols_ + c];
  return s;
}

double Matrix::total() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::is_nonnegative(double tol) const {
  return std::all_of(data_.begin(), data_.end(),
                     [tol](double v) { return v >= -tol; });
}

bool Matrix::is_doubly_stochastic_scaled(double target, double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (std::fabs(row_sum(i) - target) > tol) return false;
    if (std::fabs(col_sum(i) - target) > tol) return false;
  }
  return true;
}

bool Matrix::is_sub_permutation(double tol) const {
  if (rows_ != cols_) return false;
  std::vector<int> col_used(cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    int ones_in_row = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = (*this)(r, c);
      if (std::fabs(v) <= tol) continue;
      if (std::fabs(v - 1.0) > tol) return false;
      if (++ones_in_row > 1) return false;
      if (++col_used[c] > 1) return false;
    }
  }
  return true;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  PSD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  PSD_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

double Matrix::max_diff(const Matrix& a, const Matrix& b) {
  PSD_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%*.*f ", precision + 4, precision,
                    (*this)(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace psd
