#include "psd/util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace psd {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::string out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_speedup(double v) {
  char buf[64];
  if (v < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  } else if (v < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace psd
