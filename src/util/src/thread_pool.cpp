#include "psd/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace psd::util {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// What a failing fn(i) threw, as parallel_for reports it: a JobError
/// naming the index and carrying the original exception (an existing
/// JobError passes through untouched so nesting never stacks wrappers).
std::exception_ptr wrap_job_error(std::size_t i) {
  const std::exception_ptr original = std::current_exception();
  try {
    std::rethrow_exception(original);
  } catch (const JobError&) {
    return original;
  } catch (const std::exception& e) {
    return std::make_exception_ptr(JobError(i, original, e.what()));
  } catch (...) {
    return std::make_exception_ptr(
        JobError(i, original, "unknown exception type"));
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || on_worker_thread() || size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        std::rethrow_exception(wrap_job_error(i));
      }
    }
    return;
  }

  // Shared cursor; workers and the calling thread claim indices until done.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto batch = std::make_shared<Batch>();

  auto run_chunk = [batch, n, &fn] {
    for (;;) {
      const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(batch->error_mutex);
        if (!batch->error) batch->error = wrap_job_error(i);
      }
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lk(batch->done_mutex);
        batch->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(n - 1, size());
  for (std::size_t h = 0; h < helpers; ++h) {
    // Workers share fn by reference; the barrier below keeps it alive.
    enqueue(run_chunk);
  }
  run_chunk();  // calling thread participates

  {
    std::unique_lock<std::mutex> lk(batch->done_mutex);
    batch->done_cv.wait(lk, [&] {
      return batch->done.load(std::memory_order_acquire) == n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace psd::util
