#include "psd/util/line_buffer.hpp"

namespace psd::util {

void LineBuffer::append(const char* data, std::size_t n) {
  if (n == 0) return;
  if (discarding_) {
    // Mid-discard: only the terminating newline matters; everything before
    // it is the oversized line's tail and is never buffered.
    std::size_t i = 0;
    while (i < n && data[i] != '\n') ++i;
    if (i == n) return;  // still no terminator
    discarding_ = false;
    overlong_pending_ = true;
    ++overlong_;
    data += i + 1;
    n -= i + 1;
    if (n == 0) return;
  }
  buf_.append(data, n);
  // Enforce the cap eagerly so a terminator-free flood cannot grow the
  // buffer without bound: if the unconsumed tail holds no newline and
  // already exceeds the cap, it can only be an oversized line's prefix.
  if (max_line_bytes_ != 0 && buffered() > max_line_bytes_ &&
      buf_.find('\n', start_) == std::string::npos) {
    buf_.clear();
    start_ = 0;
    discarding_ = true;
  }
}

LineBuffer::Event LineBuffer::next(std::string* line) {
  if (overlong_pending_) {
    overlong_pending_ = false;
    return Event::kOverlong;
  }
  const std::size_t nl = buf_.find('\n', start_);
  if (nl == std::string::npos) {
    compact();
    return Event::kNone;
  }
  std::size_t end = nl;
  if (end > start_ && buf_[end - 1] == '\r') --end;
  const std::size_t len = end - start_;
  if (max_line_bytes_ != 0 && len > max_line_bytes_) {
    start_ = nl + 1;
    ++overlong_;
    return Event::kOverlong;
  }
  line->assign(buf_, start_, len);
  start_ = nl + 1;
  return Event::kLine;
}

void LineBuffer::compact() {
  if (start_ == 0) return;
  buf_.erase(0, start_);
  start_ = 0;
}

}  // namespace psd::util
