#include "psd/util/json.hpp"

#include <cmath>
#include <cstdio>

namespace psd {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  PSD_REQUIRE(!stack_.empty(), "writer misuse: unbalanced containers");
  const Ctx ctx = stack_.back();
  PSD_REQUIRE(ctx != Ctx::kObjectKey,
              "a key is required before a value inside an object");
  if (need_comma_) out_ += ',';
  if (ctx == Ctx::kObjectValue) {
    stack_.back() = Ctx::kObjectKey;  // next item must be a key
    need_comma_ = true;
  } else if (ctx == Ctx::kArray) {
    need_comma_ = true;
  } else {  // top level: single value only
    PSD_REQUIRE(out_.empty(), "only one top-level value allowed");
    need_comma_ = false;
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PSD_REQUIRE(!stack_.empty() && stack_.back() == Ctx::kObjectKey,
              "key() is only valid inside an object");
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  stack_.back() = Ctx::kObjectValue;
  return *this;
}

void JsonWriter::push(char open, Ctx ctx) {
  before_value();
  out_ += open;
  stack_.push_back(ctx);
  need_comma_ = false;
}

void JsonWriter::pop(char close, Ctx expect_a, Ctx expect_b) {
  PSD_REQUIRE(stack_.size() > 1, "no open container to close");
  const Ctx ctx = stack_.back();
  PSD_REQUIRE(ctx == expect_a || ctx == expect_b, "mismatched container close");
  stack_.pop_back();
  out_ += close;
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  push('{', Ctx::kObjectKey);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  pop('}', Ctx::kObjectKey, Ctx::kObjectKey);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  push('[', Ctx::kArray);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  pop(']', Ctx::kArray, Ctx::kArray);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  PSD_REQUIRE(stack_.size() == 1, "unclosed containers remain");
  return out_;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonParseError("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonParseError("JSON value is not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonParseError("JSON value is not a string");
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonParseError("JSON value is not an array");
  return *arr_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw JsonParseError("JSON value is not an object");
  return *obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent JSON parser over a string_view. Depth-limited so a
/// hostile "[[[[..." request line cannot overflow the daemon's stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                           ": unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      // Duplicate keys: last one wins (the common lenient choice).
      obj.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // The protocol is machine-generated ASCII; the writer only emits
          // \u00XX for control characters, which is all we accept back.
          if (code > 0x7F) fail("\\u escape beyond ASCII is unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      fail("number out of range");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace psd
