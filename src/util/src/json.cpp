#include "psd/util/json.hpp"

#include <cmath>
#include <cstdio>

namespace psd {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  PSD_REQUIRE(!stack_.empty(), "writer misuse: unbalanced containers");
  const Ctx ctx = stack_.back();
  PSD_REQUIRE(ctx != Ctx::kObjectKey,
              "a key is required before a value inside an object");
  if (need_comma_) out_ += ',';
  if (ctx == Ctx::kObjectValue) {
    stack_.back() = Ctx::kObjectKey;  // next item must be a key
    need_comma_ = true;
  } else if (ctx == Ctx::kArray) {
    need_comma_ = true;
  } else {  // top level: single value only
    PSD_REQUIRE(out_.empty(), "only one top-level value allowed");
    need_comma_ = false;
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  PSD_REQUIRE(!stack_.empty() && stack_.back() == Ctx::kObjectKey,
              "key() is only valid inside an object");
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  stack_.back() = Ctx::kObjectValue;
  return *this;
}

void JsonWriter::push(char open, Ctx ctx) {
  before_value();
  out_ += open;
  stack_.push_back(ctx);
  need_comma_ = false;
}

void JsonWriter::pop(char close, Ctx expect_a, Ctx expect_b) {
  PSD_REQUIRE(stack_.size() > 1, "no open container to close");
  const Ctx ctx = stack_.back();
  PSD_REQUIRE(ctx == expect_a || ctx == expect_b, "mismatched container close");
  stack_.pop_back();
  out_ += close;
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  push('{', Ctx::kObjectKey);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  pop('}', Ctx::kObjectKey, Ctx::kObjectKey);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  push('[', Ctx::kArray);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  pop(']', Ctx::kArray, Ctx::kArray);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  PSD_REQUIRE(stack_.size() == 1, "unclosed containers remain");
  return out_;
}

}  // namespace psd
