#include "psd/util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace psd {

namespace {

/// Renders `value` with up to 3 significant decimals, trimming zeros.
std::string trim_number(double value) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3f", value);
  std::string s(buf.data());
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string to_string(TimeNs t) {
  const double ns = t.ns();
  const double mag = std::fabs(ns);
  if (mag < 1e3) return trim_number(ns) + " ns";
  if (mag < 1e6) return trim_number(ns / 1e3) + " us";
  if (mag < 1e9) return trim_number(ns / 1e6) + " ms";
  return trim_number(ns / 1e9) + " s";
}

std::string to_string(Bytes b) {
  const double v = b.count();
  const double mag = std::fabs(v);
  constexpr double ki = 1024.0;
  if (mag < ki) return trim_number(v) + " B";
  if (mag < ki * ki) return trim_number(v / ki) + " KiB";
  if (mag < ki * ki * ki) return trim_number(v / (ki * ki)) + " MiB";
  return trim_number(v / (ki * ki * ki)) + " GiB";
}

std::string to_string(Bandwidth bw) { return trim_number(bw.gbps()) + " Gbps"; }

}  // namespace psd
