#include "psd/util/error.hpp"

#include <cstdio>

namespace psd::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "psd: internal invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg.c_str());
  std::abort();
}

}  // namespace psd::detail
