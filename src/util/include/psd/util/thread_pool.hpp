// A small fixed-size worker pool for the solver hot paths: batched Dijkstra
// recomputes in Garg–Könemann, the planner's four strategies, and θ-cache
// prewarming all fan out through it.
//
// Design constraints, in order:
//   1. Determinism — callers must produce bitwise-identical results whether
//      work runs on the pool or inline. The pool therefore only *executes*
//      independent tasks; it never reorders observable side effects.
//   2. No nested blocking — a task that itself calls parallel_for() or
//      submit() from a worker thread runs that work inline (tracked by a
//      thread_local flag), so the pool cannot deadlock on itself.
//   3. Exceptions propagate — submit() returns a std::future; parallel_for()
//      rethrows the first failing task's exception wrapped in a JobError
//      that names the failing index (callers that must preserve the
//      original type — e.g. solver loops pinned identical to their serial
//      path — call JobError::rethrow_original()).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "psd/util/error.hpp"

namespace psd::util {

/// A parallel_for task failed. Carries the failing job's index — the
/// identity a fleet-level caller needs to report *which* scenario/request
/// died — and the original exception for callers whose contract is "the
/// parallel path throws exactly what the serial path throws".
class JobError : public Error {
 public:
  JobError(std::size_t job_index, std::exception_ptr original,
           const std::string& what)
      : Error("parallel job " + std::to_string(job_index) + " failed: " + what),
        job_index_(job_index),
        original_(std::move(original)) {}

  [[nodiscard]] std::size_t job_index() const { return job_index_; }
  [[nodiscard]] const std::exception_ptr& original() const { return original_; }
  [[noreturn]] void rethrow_original() const {
    std::rethrow_exception(original_);
  }

 private:
  std::size_t job_index_;
  std::exception_ptr original_;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks, then joins the workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True in code currently executing on one of this process's pool workers
  /// (any pool). Used to collapse nested parallelism to inline execution.
  [[nodiscard]] static bool on_worker_thread();

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use. Solver code paths share it so a sweep does not oversubscribe the
  /// machine with per-call pools.
  [[nodiscard]] static ThreadPool& shared();

  /// Schedules `fn` and returns its future. Called from a worker thread,
  /// runs inline instead (the future is already satisfied on return).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable targets and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    if (on_worker_thread() || workers_.empty()) {
      (*task)();
      return fut;
    }
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for every i in [0, n), distributing across the workers and
  /// blocking until all complete. The calling thread participates. Tasks
  /// must be independent: the iteration order is unspecified. The first
  /// exception thrown by any fn(i) is rethrown as a JobError naming the
  /// failing index (serial and parallel execution agree on this — an
  /// inline run wraps identically). From a worker thread (or a
  /// single-worker pool) everything runs inline in index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace psd::util
