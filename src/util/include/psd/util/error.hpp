// Error handling primitives for the psd library.
//
// Contract violations at public API boundaries throw psd::Error (callers can
// recover or report); internal invariants use PSD_ASSERT, which terminates
// with a diagnostic (a broken internal invariant is not recoverable).
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace psd {

/// Base exception for all errors raised by the psd library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a numeric routine fails to converge or a model is infeasible.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Raised by a cooperative-cancellation poll point when its token was
/// cancelled or its deadline passed (see util/cancellation.hpp). The solve
/// unwinds with no partial results published; rerunning it uncancelled
/// produces the bit-exact undisturbed answer.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace psd

/// Check a documented precondition of a public API; throws InvalidArgument.
#define PSD_REQUIRE(cond, msg)                      \
  do {                                              \
    if (!(cond)) {                                  \
      throw ::psd::InvalidArgument(                 \
          std::string("precondition failed: ") +    \
          (msg) + " [" #cond "]");                  \
    }                                               \
  } while (false)

/// Check an internal invariant; aborts with a diagnostic if violated.
#define PSD_ASSERT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::psd::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                  \
  } while (false)
