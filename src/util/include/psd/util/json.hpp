// Minimal JSON support: a streaming writer for exporting plans, traces and
// bench results, and a small strict parser for the planning daemon's
// JSON-lines request protocol (see psd/serve/protocol.hpp). The parser
// covers the full JSON grammar except \uXXXX escapes outside the Basic
// Latin range (requests are machine-generated ASCII); it rejects trailing
// garbage, so one parse consumes exactly one protocol line.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "psd/util/error.hpp"

namespace psd {

/// Streaming JSON builder with automatic comma/nesting management.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("opt");
///   w.key("steps").begin_array();
///   w.value(1).value(2);
///   w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object, directly before a value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document; throws if containers remain open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Ctx : std::uint8_t { kObjectKey, kObjectValue, kArray, kTop };

  void before_value();
  void push(char open, Ctx ctx);
  void pop(char close, Ctx expect_a, Ctx expect_b);

  std::string out_;
  std::vector<Ctx> stack_{Ctx::kTop};
  bool need_comma_ = false;
};

/// Escapes a string for embedding in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Raised by parse_json on malformed input; the message carries a byte
/// offset so protocol errors point at the offending character.
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// A parsed JSON document. Objects keep their members in a sorted map —
/// the protocol layer looks fields up by name, so source order is
/// irrelevant — and numbers are stored as double (the protocol's integers
/// are all well within the 2^53 exact range).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(Array a)
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit JsonValue(Object o)
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonParseError on kind mismatch so protocol
  /// code can funnel "field has the wrong type" into one error path.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by name, or nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // shared_ptr keeps JsonValue complete at declaration time (a by-value
  // Array member would recurse) and makes copies cheap.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses exactly one JSON document from `text` (surrounding whitespace
/// allowed, anything else after the value rejected). Throws JsonParseError
/// with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace psd
