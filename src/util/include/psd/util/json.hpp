// Minimal JSON writer for exporting plans, traces and bench results to
// downstream tooling (plotting, dashboards). Write-only by design: the
// library never needs to parse JSON, so no parser is shipped.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "psd/util/error.hpp"

namespace psd {

/// Streaming JSON builder with automatic comma/nesting management.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("opt");
///   w.key("steps").begin_array();
///   w.value(1).value(2);
///   w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object, directly before a value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Finished document; throws if containers remain open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Ctx : std::uint8_t { kObjectKey, kObjectValue, kArray, kTop };

  void before_value();
  void push(char open, Ctx ctx);
  void pop(char close, Ctx expect_a, Ctx expect_b);

  std::string out_;
  std::vector<Ctx> stack_{Ctx::kTop};
  bool need_comma_ = false;
};

/// Escapes a string for embedding in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace psd
