// Cooperative cancellation for long-running solves.
//
// A CancellationToken is owned by whoever can decide to abandon work — the
// planning daemon's per-request state, a test — and observed by the solver
// hot loops (Garg–Könemann's push loop polls it between augmentations; see
// flow::GargKonemannOptions::cancel). Cancellation is cooperative and
// exception-based: a poll that observes the cancel flag (or an expired
// deadline) throws psd::Cancelled, unwinding the solve without leaving
// partial results anywhere observable — the θ cache layers only insert on a
// completed solve, so a cancelled request replayed later recomputes the
// bit-exact uncancelled answer (pinned by tests).
//
// Thread safety: cancel()/set_deadline_after() and the poll side may race
// freely (all state is atomic). The deadline is stored as a steady-clock
// nanosecond stamp so polls cost one atomic load plus, only when a deadline
// is armed, one clock read.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "psd/util/error.hpp"

namespace psd::util {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation; sticky until reset().
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) an absolute deadline `budget` from now. A
  /// non-positive budget cancels immediately.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline_ns_.store(now_ns() + budget.count(), std::memory_order_relaxed);
  }

  /// Disarms the deadline and clears the cancel flag (token reuse across
  /// requests in a pooled worker).
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// True once cancel() was called or an armed deadline has passed.
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    return dl != kNoDeadline && now_ns() >= dl;
  }

  /// Poll point for solver loops: throws psd::Cancelled when cancelled.
  void check(const char* what) const {
    if (cancelled()) throw Cancelled(what);
  }

  /// Remaining budget of the armed deadline; zero when expired, a huge
  /// value when no deadline is armed.
  [[nodiscard]] std::chrono::nanoseconds remaining() const {
    const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl == kNoDeadline) return std::chrono::nanoseconds::max();
    const std::int64_t left = dl - now_ns();
    return std::chrono::nanoseconds(left > 0 ? left : 0);
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace psd::util
