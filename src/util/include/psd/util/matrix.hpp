// Dense row-major matrix of doubles, sized for scale-up domains (n <= a few
// thousand). Used for demand matrices, permutation matrices and BvN inputs.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "psd/util/error.hpp"

namespace psd {

class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a square n x n matrix, zero-initialized.
  static Matrix square(std::size_t n) { return Matrix(n, n); }

  /// Creates the n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Builds from nested initializer lists; all rows must be equal length.
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // Bounds checks are debug-only: operator() sits on the hot paths of the
  // BvN and LP solvers, and release builds must compile it down to one fma.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
#ifndef NDEBUG
    PSD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
#endif
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
#ifndef NDEBUG
    PSD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
#endif
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage (rows() * cols() doubles).
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Contiguous view of row `r` — the allocation-free way to walk a row.
  [[nodiscard]] std::span<double> row(std::size_t r) {
#ifndef NDEBUG
    PSD_ASSERT(r < rows_, "row index out of range");
#endif
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
#ifndef NDEBUG
    PSD_ASSERT(r < rows_, "row index out of range");
#endif
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double row_sum(std::size_t r) const;
  [[nodiscard]] double col_sum(std::size_t c) const;
  [[nodiscard]] double total() const;
  [[nodiscard]] double max_abs() const;

  /// True if every entry is >= -tol.
  [[nodiscard]] bool is_nonnegative(double tol = 1e-12) const;

  /// True if all row sums and column sums equal `target` within tol.
  [[nodiscard]] bool is_doubly_stochastic_scaled(double target, double tol = 1e-9) const;

  /// True if the matrix is a 0/1 (sub-)permutation matrix: at most one 1 per
  /// row and per column, all other entries 0 (within tol).
  [[nodiscard]] bool is_sub_permutation(double tol = 1e-12) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double k);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double k) { return a *= k; }
  friend Matrix operator*(double k, Matrix a) { return a *= k; }

  /// Max |a - b| over all entries; matrices must be the same shape.
  [[nodiscard]] static double max_diff(const Matrix& a, const Matrix& b);

  /// Multi-line debug rendering.
  [[nodiscard]] std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace psd
