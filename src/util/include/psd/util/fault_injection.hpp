// Deterministic, seeded fault injection for robustness drills.
//
// Production code declares *named injection sites* at the places where the
// world can go wrong — a socket read, a journal append, a worker dispatch —
// and asks the injector whether this particular visit should fail:
//
//   if (fault != nullptr && fault->fire("journal.append.torn")) { ... }
//
// A site that was never armed costs one relaxed atomic load; the daemon
// ships with every site disarmed. Drills arm sites with a trigger policy:
//
//   probability  — each hit fires independently with this chance
//   after        — the first `after` hits never fire (deterministic "fail
//                  the Nth operation" triggers: after = N-1, budget = 1)
//   budget       — at most this many fires, ever (one-shot: budget = 1)
//   delay        — sites used via fire_delay() stall this long when fired
//
// Determinism is the point: the decision for hit k of site s is a pure
// function of (seed, s, k) via psd::derive_stream_seed — independent of
// thread interleaving, wall-clock time, or what other sites drew before.
// Re-running a drill with the same seed and the same per-site hit sequence
// replays the exact same fault schedule, and event_log() returns the fired
// (site, hit) pairs sorted, so two runs of a deterministic drill produce
// byte-identical logs. See docs/fault_injection.md for the site registry
// and how to write a drill.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace psd::util {

/// Trigger policy for one armed site.
struct FaultSite {
  // Chance each eligible hit fires; 1.0 = always.
  double probability = 1.0;
  // Hits to let pass before firing becomes possible (0 = immediately).
  std::uint64_t after = 0;
  // Cap on total fires; UINT64_MAX = unbounded, 1 = one-shot.
  std::uint64_t budget = UINT64_MAX;
  // How long fire_delay() reports when the site fires (slow-path drills).
  std::chrono::milliseconds delay{0};
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

  /// Reseeds the stream family. Existing per-site hit counters reset: the
  /// injector behaves as if freshly constructed (drill replay).
  void reset(std::uint64_t seed);

  /// Arms (or re-arms) a named site. Re-arming resets its hit counter.
  void arm(std::string_view site, FaultSite config);

  /// Disarms one site (its history is kept for event_log/fires).
  void disarm(std::string_view site);

  /// Arms sites from a spec string:
  ///   site[:key=value[,key=value...]][;site...]
  /// keys: p (probability), after, budget, delay_ms. A bare site name arms
  /// probability 1. Throws psd::InvalidArgument on malformed specs.
  void arm_spec(std::string_view spec);

  /// The hot call: records a hit on `site` and returns true when the
  /// trigger policy says this hit fails. Disarmed/unknown sites never fire
  /// and skip all bookkeeping (one relaxed load).
  [[nodiscard]] bool fire(std::string_view site);

  /// fire(), reported as the armed delay (zero when the site did not
  /// fire). For "slow" sites: the caller sleeps for the returned duration.
  [[nodiscard]] std::chrono::milliseconds fire_delay(std::string_view site);

  /// Total fires across all sites since construction/reset().
  [[nodiscard]] std::uint64_t fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  /// Fires of one site (0 when never armed).
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;
  /// Hits of one site, fired or not (0 when never armed).
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;

  /// Every fired (site, hit) pair as "site#hit", sorted by site then hit —
  /// deterministic for a deterministic drill regardless of which thread
  /// recorded which fire. The drill-replay artifact.
  [[nodiscard]] std::vector<std::string> event_log() const;

 private:
  struct SiteState {
    FaultSite config;
    bool armed = false;
    std::uint64_t hit_count = 0;   // hits while armed (draw index)
    std::uint64_t fire_count = 0;  // subset of hits that fired
    std::vector<std::uint64_t> fired_hits;  // 1-based hit numbers that fired
  };

  std::uint64_t seed_ = 0;
  // Fast disarmed path: sites_ is only consulted when at least one site is
  // armed. (A drill arms everything up front, so the flag is effectively
  // constant while traffic flows.)
  std::atomic<std::uint64_t> armed_count_{0};
  std::atomic<std::uint64_t> total_fires_{0};
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

}  // namespace psd::util
