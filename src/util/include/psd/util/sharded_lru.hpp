// A sharded, mutex-per-shard, capacity-bounded LRU map — the concurrency
// substrate for caches shared by many threads (the cross-planner θ cache of
// multi-tenant sweeps is the motivating user).
//
// The single-mutex LRU inside ThetaOracle is the right shape for one oracle
// serving one planner; a cache shared by a whole sweep fleet serializes every
// lookup through that one lock. Sharding by key hash keeps the same
// per-shard design (intrusive LRU list over map nodes, no allocation on
// hits) while letting disjoint keys proceed in parallel; the LRU bound and
// the hit/miss/eviction counters are maintained per shard and aggregated on
// demand.
//
// Semantics:
//   - lookup() returns the cached value and refreshes recency, or nullopt
//     (counted as a miss).
//   - insert() is first-writer-wins: when two threads race to insert the
//     same key, the second caller gets the already-cached value back. Values
//     must therefore be pure functions of their key — exactly the θ(G, M)
//     contract.
//   - Eviction is least-recently-used *within a shard*; total capacity is
//     divided evenly across shards, so a pathological key distribution can
//     evict earlier than a global LRU would. Caches of pure functions only
//     pay a recompute for that, never a wrong answer.
//
// Thread safety: all methods may be called concurrently. Stats aggregation
// locks shards one at a time, so a concurrently-updated aggregate is a
// point-in-time-per-shard snapshot, not an atomic cut — fine for
// observability, which is all it is for.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "psd/util/error.hpp"

namespace psd::util {

/// Aggregated counters over all shards of a ShardedLruCache.
struct ShardedLruStats {
  std::size_t hits = 0;
  std::size_t misses = 0;       // lookups that found nothing
  std::size_t insertions = 0;   // entries actually added (losers of races excluded)
  std::size_t evictions = 0;    // entries dropped by the per-shard LRU bound
  std::size_t entries = 0;      // current resident entries
  std::size_t lock_contentions = 0;  // times a caller found a shard lock held

  [[nodiscard]] double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is divided evenly across shards (rounded up, at least 1
  /// per shard), so the effective total bound is per-shard-capacity x
  /// shards — up to shards - 1 entries above `capacity`. `num_shards` is
  /// rounded up to a power of two.
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 16)
      : hash_() {
    PSD_REQUIRE(capacity >= 1, "cache capacity must be at least 1");
    PSD_REQUIRE(num_shards >= 1, "cache needs at least one shard");
    const std::size_t shards = std::bit_ceil(num_shards);
    shards_.reserve(shards);
    const std::size_t per_shard = (capacity + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Cached value for `key` (refreshing its recency), or nullopt. Accepts
  /// any key-like type when Hash and Eq are transparent (declare
  /// `is_transparent` and overload for the view type) — a lookup then
  /// builds no temporary Key, which is what lets the sweep's shared θ cache
  /// probe with a borrowed destination vector instead of copying it.
  template <typename K = Key>
  [[nodiscard]] std::optional<Value> lookup(const K& key) {
    Shard& sh = shard_for(key);
    const auto lk = lock_shard(sh);
    if (const auto it = sh.map.find(key); it != sh.map.end()) {
      ++sh.hits;
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second.second);
      return it->second.first;
    }
    ++sh.misses;
    return std::nullopt;
  }

  /// Inserts `key -> value`, evicting the shard's LRU tail when full.
  /// Returns the canonical cached value: on an insert race the first
  /// writer's value wins and is returned to every caller.
  Value insert(const Key& key, Value value) {
    Shard& sh = shard_for(key);
    const auto lk = lock_shard(sh);
    const auto [it, inserted] =
        sh.map.emplace(key, std::make_pair(std::move(value), sh.lru.end()));
    if (!inserted) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second.second);
      return it->second.first;
    }
    ++sh.insertions;
    sh.lru.push_front(&it->first);
    it->second.second = sh.lru.begin();
    if (sh.map.size() > sh.capacity) {
      // Locate first, erase by iterator: erase-by-key would pass a
      // reference aliasing the key of the node being destroyed.
      const auto victim = sh.map.find(*sh.lru.back());
      PSD_ASSERT(victim != sh.map.end(), "LRU tail missing from shard map");
      sh.map.erase(victim);
      sh.lru.pop_back();
      ++sh.evictions;
    }
    return it->second.first;
  }

  /// Removes every entry for which `pred(key, value)` returns true; returns
  /// the number removed. Shards are processed one at a time under their own
  /// lock, so concurrent lookups of unaffected keys proceed; removals are
  /// not counted as evictions (they are invalidations, not capacity
  /// pressure — callers keep their own counters).
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t erased = 0;
    for (const auto& shp : shards_) {
      Shard& sh = *shp;
      const auto lk = lock_shard(sh);
      for (auto it = sh.map.begin(); it != sh.map.end();) {
        if (pred(it->first, it->second.first)) {
          sh.lru.erase(it->second.second);
          it = sh.map.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Visits every resident entry as `fn(key, value)` without refreshing
  /// recency. Shard-by-shard snapshot (see class comment); `fn` must not
  /// call back into the cache (the shard lock is held).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& shp : shards_) {
      const std::lock_guard<std::mutex> lk(shp->mutex);
      for (const auto& [key, value] : shp->map) fn(key, value.first);
    }
  }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Total resident entries (sums shard sizes; see class comment on
  /// concurrent snapshots).
  [[nodiscard]] std::size_t size() const { return stats().entries; }

  [[nodiscard]] ShardedLruStats stats() const {
    ShardedLruStats agg;
    for (const auto& sh : shards_) {
      const std::lock_guard<std::mutex> lk(sh->mutex);
      agg.hits += sh->hits;
      agg.misses += sh->misses;
      agg.insertions += sh->insertions;
      agg.evictions += sh->evictions;
      agg.entries += sh->map.size();
    }
    agg.lock_contentions = contentions_.load(std::memory_order_relaxed);
    return agg;
  }

 private:
  // Same single-ownership layout as ThetaOracle's LRU: the map owns each key
  // (unordered_map nodes have stable addresses) and the list holds pointers
  // back, so hits and splices never allocate.
  using LruList = std::list<const Key*>;

  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    std::mutex mutex;
    LruList lru;  // front() = most recently used
    std::unordered_map<Key, std::pair<Value, typename LruList::iterator>, Hash,
                       Eq>
        map;
    std::size_t capacity;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };

  /// Acquires the shard lock, counting contention when it was already held.
  [[nodiscard]] std::unique_lock<std::mutex> lock_shard(Shard& sh) {
    std::unique_lock<std::mutex> lk(sh.mutex, std::try_to_lock);
    if (!lk.owns_lock()) {
      contentions_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
    }
    return lk;
  }

  template <typename K>
  [[nodiscard]] Shard& shard_for(const K& key) {
    // Spread the hash before masking: unordered_map inside the shard uses
    // the same hash, so shard selection must not just strip its low bits.
    // Transparent hashes must agree between Key and its view types, or a
    // view lookup would probe the wrong shard.
    std::size_t h = hash_(key);
    h ^= h >> 17;
    h *= 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    return *shards_[h & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::size_t> contentions_{0};
  Hash hash_;
};

}  // namespace psd::util
