// Strong unit types used throughout the library (Core Guidelines I.4).
//
// Internal canonical units:
//   time      — nanoseconds      (TimeNs)
//   data      — bytes            (Bytes)
//   bandwidth — bytes per nanosecond (Bandwidth); 800 Gbps == 100 B/ns.
//
// All three are thin wrappers over double with explicit constructors and the
// arithmetic that is physically meaningful (Bytes / Bandwidth -> TimeNs,
// Bandwidth * TimeNs -> Bytes, ...). Mixing units without a conversion is a
// compile error.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace psd {

/// A duration in nanoseconds.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(double ns) : ns_(ns) {}

  [[nodiscard]] constexpr double ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double ms() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return ns_ / 1e9; }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs& operator+=(TimeNs other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr TimeNs& operator*=(double k) {
    ns_ *= k;
    return *this;
  }

  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return TimeNs(a.ns_ + b.ns_); }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return TimeNs(a.ns_ - b.ns_); }
  friend constexpr TimeNs operator*(TimeNs a, double k) { return TimeNs(a.ns_ * k); }
  friend constexpr TimeNs operator*(double k, TimeNs a) { return TimeNs(a.ns_ * k); }
  friend constexpr double operator/(TimeNs a, TimeNs b) { return a.ns_ / b.ns_; }
  friend constexpr TimeNs operator/(TimeNs a, double k) { return TimeNs(a.ns_ / k); }

 private:
  double ns_ = 0.0;
};

/// A data volume in bytes.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double b) : b_(b) {}

  [[nodiscard]] constexpr double count() const { return b_; }
  [[nodiscard]] constexpr double kib() const { return b_ / 1024.0; }
  [[nodiscard]] constexpr double mib() const { return b_ / (1024.0 * 1024.0); }
  [[nodiscard]] constexpr double gib() const { return b_ / (1024.0 * 1024.0 * 1024.0); }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    b_ += other.b_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.b_ + b.b_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.b_ - b.b_); }
  friend constexpr Bytes operator*(Bytes a, double k) { return Bytes(a.b_ * k); }
  friend constexpr Bytes operator*(double k, Bytes a) { return Bytes(a.b_ * k); }
  friend constexpr Bytes operator/(Bytes a, double k) { return Bytes(a.b_ / k); }
  friend constexpr double operator/(Bytes a, Bytes b) { return a.b_ / b.b_; }

 private:
  double b_ = 0.0;
};

/// A bandwidth in bytes per nanosecond (== GB/s).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_ns) : bpn_(bytes_per_ns) {}

  [[nodiscard]] constexpr double bytes_per_ns() const { return bpn_; }
  [[nodiscard]] constexpr double gbps() const { return bpn_ * 8.0; }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth(a.bpn_ * k); }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth(a.bpn_ * k); }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth(a.bpn_ / k); }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bpn_ / b.bpn_; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth(a.bpn_ + b.bpn_); }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth(a.bpn_ - b.bpn_); }

 private:
  double bpn_ = 0.0;
};

/// Relative-tolerance equality for byte counts. Byte volumes are routinely
/// derived through differing floating-point arithmetic (buffer/n*k vs
/// chunk_size*k), so exact == on count() is almost always a bug; compare
/// with this instead. The tolerance is relative to the larger magnitude,
/// with an absolute floor of `rel_tol` near zero.
[[nodiscard]] constexpr bool approx_equal(Bytes a, Bytes b, double rel_tol = 1e-9) {
  const double diff = a.count() > b.count() ? a.count() - b.count()
                                            : b.count() - a.count();
  const double mag_a = a.count() < 0.0 ? -a.count() : a.count();
  const double mag_b = b.count() < 0.0 ? -b.count() : b.count();
  const double scale = mag_a > mag_b ? mag_a : mag_b;
  return diff <= rel_tol * (scale > 1.0 ? scale : 1.0);
}

/// Transmission time of `data` over a link of bandwidth `bw`.
constexpr TimeNs operator/(Bytes data, Bandwidth bw) {
  return TimeNs(data.count() / bw.bytes_per_ns());
}

/// Data transferred at `bw` for duration `t`.
constexpr Bytes operator*(Bandwidth bw, TimeNs t) {
  return Bytes(bw.bytes_per_ns() * t.ns());
}
constexpr Bytes operator*(TimeNs t, Bandwidth bw) { return bw * t; }

// ---- Named constructors -----------------------------------------------

constexpr TimeNs nanoseconds(double v) { return TimeNs(v); }
constexpr TimeNs microseconds(double v) { return TimeNs(v * 1e3); }
constexpr TimeNs milliseconds(double v) { return TimeNs(v * 1e6); }
constexpr TimeNs seconds(double v) { return TimeNs(v * 1e9); }

constexpr Bytes bytes(double v) { return Bytes(v); }
constexpr Bytes kib(double v) { return Bytes(v * 1024.0); }
constexpr Bytes mib(double v) { return Bytes(v * 1024.0 * 1024.0); }
constexpr Bytes gib(double v) { return Bytes(v * 1024.0 * 1024.0 * 1024.0); }

constexpr Bandwidth gbps(double v) { return Bandwidth(v / 8.0); }
constexpr Bandwidth bytes_per_ns(double v) { return Bandwidth(v); }

/// Human-readable rendering, e.g. "1.5 us", "100 ns", "2.5 ms".
[[nodiscard]] std::string to_string(TimeNs t);
/// Human-readable rendering, e.g. "64 KiB", "1 GiB".
[[nodiscard]] std::string to_string(Bytes b);
/// Human-readable rendering, e.g. "800 Gbps".
[[nodiscard]] std::string to_string(Bandwidth bw);

}  // namespace psd
