// Incremental newline-delimited framing for byte-stream transports.
//
// A LineBuffer accumulates whatever chunks a socket read produces —
// half a line, three lines and a fragment, one byte at a time — and
// hands back exactly the complete lines, with the trailing '\n' (and an
// optional '\r' before it) stripped. Lines longer than the configured
// cap are not buffered without bound: the oversized prefix is dropped,
// the buffer keeps discarding until the terminating newline, and the
// event is surfaced as kOverlong so a protocol layer can answer
// INVALID_REQUEST and stay in sync with the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace psd::util {

class LineBuffer {
 public:
  /// What next() extracted: nothing yet (need more bytes), one complete
  /// line, or the terminating newline of a line that blew the cap.
  enum class Event : std::uint8_t { kNone, kLine, kOverlong };

  /// `max_line_bytes` caps a single line's payload (terminator excluded);
  /// 0 means unlimited.
  explicit LineBuffer(std::size_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// Buffers `n` more stream bytes.
  void append(const char* data, std::size_t n);
  void append(std::string_view chunk) { append(chunk.data(), chunk.size()); }

  /// Extracts the next framing event. kLine fills `*line` (terminator
  /// stripped); kOverlong reports one dropped oversized line and leaves
  /// `*line` untouched; kNone means the buffered bytes hold no complete
  /// line yet. Call in a loop until kNone.
  Event next(std::string* line);

  /// Bytes buffered but not yet returned (excludes discarded overlong
  /// prefixes).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - start_; }

  /// Total oversized lines dropped over the buffer's lifetime.
  [[nodiscard]] std::uint64_t overlong_lines() const { return overlong_; }

  /// True while mid-discard: an oversized line's terminator has not
  /// arrived yet.
  [[nodiscard]] bool discarding() const { return discarding_; }

 private:
  void compact();

  std::size_t max_line_bytes_;
  std::string buf_;
  std::size_t start_ = 0;     // consumed prefix of buf_
  bool discarding_ = false;   // dropping an overlong line's tail
  bool overlong_pending_ = false;  // a finished discard not yet reported
  std::uint64_t overlong_ = 0;
};

}  // namespace psd::util
