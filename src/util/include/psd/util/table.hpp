// Aligned-text table and CSV rendering for bench binaries. Every figure
// bench prints a human-readable heatmap table followed by a machine-readable
// CSV block, so plots can be regenerated without re-running.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace psd {

/// Accumulates rows of string cells and renders them column-aligned.
class TextTable {
 public:
  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; rows may have differing lengths.
  void add_row(std::vector<std::string> row);

  /// Renders with columns padded to their widest cell, two-space separated.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (no quoting; cells must not contain commas).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `decimals` fractional digits.
[[nodiscard]] std::string fmt_double(double v, int decimals = 2);

/// Formats a speedup value compactly: "1.00", "12.3", "480".
[[nodiscard]] std::string fmt_speedup(double v);

}  // namespace psd
