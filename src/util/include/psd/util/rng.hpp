// Deterministic, fast PRNG (xoshiro256**) for reproducible tests, property
// sweeps and workload synthesis. Not cryptographic.
#pragma once

#include <cstdint>
#include <vector>

namespace psd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

 private:
  std::uint64_t s_[4];
};

}  // namespace psd
