// Deterministic, fast PRNG (xoshiro256**) for reproducible tests, property
// sweeps and workload synthesis. Not cryptographic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace psd {

/// splitmix64 finalizer: one well-mixed 64-bit value from another. The
/// standard seed-derivation primitive (also what Rng's constructor uses to
/// expand its seed), exposed for keyed stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic seed for a named sub-stream of `root`: mixes the root
/// seed, an FNV-1a hash of `name`, and `index`. Fault-injection and other
/// sampled schedules key their streams by (scenario id, event index) so
/// every draw is a pure function of the key — independent of thread count,
/// execution order, or how many other streams were consumed first.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t root,
                                               std::string_view name,
                                               std::uint64_t index);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

 private:
  std::uint64_t s_[4];
};

}  // namespace psd
