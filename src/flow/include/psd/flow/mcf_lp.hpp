// Exact maximum concurrent flow via the edge-based LP formulation:
//
//   max θ
//   s.t.  Σ_out f_{k,e} − Σ_in f_{k,e} = θ·d_k·[v = src_k] − θ·d_k·[v = dst_k]
//         Σ_k f_{k,e} ≤ c_e                                    for every edge
//         f, θ ≥ 0
//
// solved with the in-repo simplex. Exponential in nothing, but the dense
// tableau limits practical size to ~12-16 nodes; the ThetaOracle uses this
// for small instances and cross-validation, and Garg–Könemann beyond.
#pragma once

#include "psd/flow/commodity.hpp"

namespace psd::flow {

/// Exact θ and per-commodity edge flows. Throws NumericalError if the
/// simplex fails (iteration limit), InvalidArgument on malformed input.
/// An empty commodity list yields theta = +infinity with no flows.
[[nodiscard]] ConcurrentFlowResult exact_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref);

/// Convenience overload: commodities from a matching.
[[nodiscard]] ConcurrentFlowResult exact_concurrent_flow(const topo::Graph& g,
                                                         const topo::Matching& m,
                                                         Bandwidth b_ref);

}  // namespace psd::flow
