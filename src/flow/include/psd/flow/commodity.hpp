// Commodity formulation of a collective step's demand: each communicating
// pair (src, dst) of the matching M_i is one commodity demanding the full
// transceiver rate b. The maximum concurrent flow θ(G, M_i) is the largest
// common fraction of all demands that can be routed simultaneously within
// link capacities (Shahrokhi & Matula 1990), the paper's congestion factor.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::flow {

struct Commodity {
  topo::NodeId src = -1;
  topo::NodeId dst = -1;
  double demand = 1.0;  // in units of the reference bandwidth b
};

/// Builds one unit-demand commodity per active pair of `m`.
[[nodiscard]] std::vector<Commodity> commodities_from_matching(const topo::Matching& m);

/// Per-edge capacities normalized to the reference bandwidth `b_ref`
/// (capacity 1.0 == one transceiver's worth of bandwidth).
[[nodiscard]] std::vector<double> normalized_capacities(const topo::Graph& g,
                                                        Bandwidth b_ref);

/// Sparse per-commodity edge flows in CSR form: only the (edge, rate) pairs
/// a commodity actually routes are stored, commodity-major. Replaces the
/// former dense K×E matrix whose zero-fill was an O(n²) allocation on every
/// solver call. Rates are in demand units, scaled so the solution is
/// feasible and commodity k ships theta * demand_k.
class FlowAssignment {
 public:
  FlowAssignment() = default;

  /// Clears the assignment and records the edge count of the graph it is
  /// built against. `commodity_hint` / `entry_hint` pre-size the arrays.
  void reset(int num_edges, std::size_t commodity_hint = 0,
             std::size_t entry_hint = 0);

  /// Opens the next commodity; subsequent push() calls append to it.
  void begin_commodity();

  /// Appends (edge, rate) to the current commodity (begin_commodity() must
  /// have been called). The same edge may be pushed repeatedly (e.g. once
  /// per FPTAS path push); call merge_duplicates() once building is done.
  void push(topo::EdgeId e, double rate) {
    edges_.push_back(e);
    rates_.push_back(rate);
    ++offsets_.back();
    loads_built_ = false;
  }

  /// Coalesces duplicate edges within each commodity, summing rates in
  /// first-seen order (bitwise-equal to accumulating into a dense row).
  void merge_duplicates();

  /// Same coalescing contract as merge_duplicates() but over a standalone
  /// (edge, rate) entry list, in place — for builders that accumulate raw
  /// pushes before assembling a FlowAssignment (Garg–Könemann compacts its
  /// per-commodity buffers with this mid-solve). `slot_scratch` must have
  /// one SIZE_MAX-initialized entry per edge; it is restored on return.
  static void coalesce_entries(
      std::vector<std::pair<topo::EdgeId, double>>& entries,
      std::vector<std::size_t>& slot_scratch);

  /// Multiplies every rate by `factor`.
  void scale(double factor);

  [[nodiscard]] std::size_t num_commodities() const {
    return offsets_.size() - 1;
  }
  [[nodiscard]] int num_edges() const { return num_edges_; }
  [[nodiscard]] std::size_t num_entries() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return num_commodities() == 0; }

  /// Edges / rates of commodity k (parallel spans).
  [[nodiscard]] std::span<const topo::EdgeId> edges(std::size_t k) const;
  [[nodiscard]] std::span<const double> rates(std::size_t k) const;

  /// Flow of commodity k on edge e; O(|entries of k|).
  [[nodiscard]] double at(std::size_t k, topo::EdgeId e) const;

  /// Aggregated per-edge load Σ_k flow[k][e]. Built lazily in
  /// O(entries + E) on first call and cached; builders that already know the
  /// loads (the ring closed form) populate the cache for free. Not
  /// thread-safe: confine a FlowAssignment to one thread or copy it.
  [[nodiscard]] const std::vector<double>& edge_loads() const;

  /// Dense K×E representation, bitwise-equal to the pre-sparse solvers'
  /// output. For golden tests and slow consumers only — allocating this is
  /// exactly the O(K·E) cost the sparse form exists to avoid.
  [[nodiscard]] std::vector<std::vector<double>> densify() const;

  /// Hands the precomputed aggregate to the load cache (builder use).
  void set_edge_loads(std::vector<double> loads);

 private:
  std::vector<std::size_t> offsets_{0};  // commodity k: [offsets_[k], offsets_[k+1])
  std::vector<topo::EdgeId> edges_;
  std::vector<double> rates_;
  int num_edges_ = 0;
  mutable std::vector<double> loads_;
  mutable bool loads_built_ = false;
};

/// The result of a concurrent-flow computation.
struct ConcurrentFlowResult {
  double theta = 0.0;   // achieved concurrent-flow fraction
  FlowAssignment flow;  // sparse per-commodity edge flows
};

}  // namespace psd::flow
