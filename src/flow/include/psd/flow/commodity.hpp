// Commodity formulation of a collective step's demand: each communicating
// pair (src, dst) of the matching M_i is one commodity demanding the full
// transceiver rate b. The maximum concurrent flow θ(G, M_i) is the largest
// common fraction of all demands that can be routed simultaneously within
// link capacities (Shahrokhi & Matula 1990), the paper's congestion factor.
#pragma once

#include <vector>

#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::flow {

struct Commodity {
  topo::NodeId src = -1;
  topo::NodeId dst = -1;
  double demand = 1.0;  // in units of the reference bandwidth b
};

/// Builds one unit-demand commodity per active pair of `m`.
[[nodiscard]] std::vector<Commodity> commodities_from_matching(const topo::Matching& m);

/// Per-edge capacities normalized to the reference bandwidth `b_ref`
/// (capacity 1.0 == one transceiver's worth of bandwidth).
[[nodiscard]] std::vector<double> normalized_capacities(const topo::Graph& g,
                                                        Bandwidth b_ref);

/// The result of a concurrent-flow computation.
struct ConcurrentFlowResult {
  double theta = 0.0;  // achieved concurrent-flow fraction
  // flow[k][e]: flow of commodity k on edge e, in demand units, scaled so the
  // solution is feasible and each commodity k ships theta * demand_k.
  std::vector<std::vector<double>> flow;
};

}  // namespace psd::flow
