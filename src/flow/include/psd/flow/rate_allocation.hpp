// Rate allocation policies for the flow-level simulator.
//
// ConcurrentFlowAllocation gives every commodity rate θ·demand (all flows of
// a step finish together — the allocation the paper's cost model assumes).
// MaxMinFairAllocation runs progressive filling over fixed shortest paths,
// the classic TCP-approximation used by flow-level simulators; it lets the
// simulator quantify how much a fairness-based transport deviates from the
// model's optimal allocation.
#pragma once

#include <vector>

#include "psd/flow/commodity.hpp"

namespace psd::flow {

/// Rates (in units of b_ref) and routes for a set of commodities.
struct RateAllocation {
  std::vector<double> rate;                         // per commodity
  std::vector<std::vector<topo::EdgeId>> path;      // per commodity (may be empty
                                                    // for multipath allocations)
};

/// θ-proportional allocation: rate_k = θ·demand_k. Multipath; no single path
/// is reported.
[[nodiscard]] RateAllocation concurrent_flow_allocation(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref, double epsilon = 0.05);

/// Max–min fair allocation over hop-shortest single paths via progressive
/// filling: all unfrozen flows grow at equal rate; flows crossing a
/// saturated edge freeze. Throws if a commodity is disconnected.
[[nodiscard]] RateAllocation max_min_fair_allocation(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref);

}  // namespace psd::flow
