// ThetaOracle: the congestion factor θ(G, M_i) of the paper's cost model
// (Eq. 3), with automatic solver dispatch and memoization.
//
// Dispatch: empty matching → +inf (no traffic); directed ring → exact closed
// form (O(n + k)); small instance → exact simplex LP; otherwise →
// Garg–Könemann FPTAS. θ lookups take the θ-only solver paths
// (ring_theta_only / gk_theta_only), which never materialize per-commodity
// flows — flow routing is only built when concurrent_flow() is called.
// Results are cached per matching: collective algorithms reuse the same
// patterns across steps and across bench sweeps.
//
// The memo table is keyed by the matching's destination vector under
// topo::hash_destinations — a cache hit performs no heap allocation — and is
// LRU-bounded so long bench sweeps cannot grow it without limit.
//
// Thread safety: theta() may be called concurrently from any number of
// threads (the parallel planner and the GK batch path do). The cache is
// guarded by a mutex; θ computation itself runs outside the lock, so
// concurrent misses solve in parallel. cache_lock_contentions() counts how
// often a thread found the lock held — observability for tuning parallel
// sweeps. concurrent_flow() is stateless apart from the shared base graph
// and needs no locking.
//
// Multi-tenant sweeps can point many oracles at one cross-planner memo via
// ThetaOptions::shared_cache (keyed by a context fingerprint — graph,
// b_ref, solver options — plus destinations; see theta_cache.hpp); the
// private LRU and its counters below then sit idle — hit/miss accounting
// lives in the shared cache instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "psd/flow/commodity.hpp"
#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/theta_cache.hpp"

namespace psd::flow {

struct ThetaOptions {
  double epsilon = 0.05;       // GK accuracy when the FPTAS is used
  // Use the exact simplex LP when K·E (commodities × edges) is at most this.
  std::size_t exact_var_limit = 700;
  bool use_cache = true;
  // Maximum number of memoized matchings; least-recently-used entries are
  // evicted beyond this. Must be >= 1 when use_cache is set.
  std::size_t cache_capacity = 1 << 14;
  // Cross-oracle memo shared by multi-tenant sweeps (sweep::SharedThetaCache
  // is the stock implementation). When set (and use_cache is on), θ lookups
  // go to the shared cache keyed by (graph fingerprint, destinations) and
  // the private per-oracle LRU above is bypassed; when null — the default —
  // each oracle memoizes privately as before. use_cache=false disables both.
  std::shared_ptr<SharedThetaCacheBase> shared_cache;
};

class ThetaOracle {
 public:
  /// `base` must outlive the oracle. `b_ref` is the transceiver bandwidth b
  /// (the cost model's 1/β); demands are one unit of b_ref per pair.
  ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts = {});

  /// θ(G, M): largest common fraction of the matching's demands routable
  /// concurrently. +infinity for an empty matching. Thread-safe.
  [[nodiscard]] double theta(const topo::Matching& m) const;

  /// Full result including per-commodity edge flows (uncached).
  [[nodiscard]] ConcurrentFlowResult concurrent_flow(const topo::Matching& m) const;

  [[nodiscard]] const topo::Graph& base() const { return base_; }
  [[nodiscard]] Bandwidth bandwidth() const { return b_ref_; }
  [[nodiscard]] const ThetaOptions& options() const { return opts_; }

  /// All-pairs hop distances of the base topology, computed once on first
  /// use and shared by every cost-model consumer (ProblemInstance rebuilds,
  /// multi-port/multi-base instances). Thread-safe.
  [[nodiscard]] const std::vector<std::vector<int>>& base_hops() const;

  /// Number of θ values served from cache so far (observability for tests).
  [[nodiscard]] std::size_t cache_hits() const;
  [[nodiscard]] std::size_t cache_size() const;
  /// Number of entries dropped by the LRU bound.
  [[nodiscard]] std::size_t cache_evictions() const;
  /// Times a thread found the cache lock already held (contention signal).
  [[nodiscard]] std::size_t cache_lock_contentions() const {
    return contentions_.load(std::memory_order_relaxed);
  }

 private:
  struct DstHash {
    std::size_t operator()(const std::vector<int>& dst) const noexcept {
      return topo::hash_destinations(dst);
    }
  };
  // front() of lru_ is the most recently used entry; cache_ owns each key
  // (unordered_map nodes have stable addresses) and lru_ holds pointers
  // back to them, so every key is stored once. Hits splice within lru_ (no
  // allocation); misses insert and evict from the back once full.
  using LruList = std::list<const std::vector<int>*>;

  /// θ without the cache: ring closed form, exact LP, or GK — all through
  /// their θ-only entry points.
  [[nodiscard]] double theta_uncached(const topo::Matching& m) const;

  /// Acquires the cache lock, counting contention when it was held.
  [[nodiscard]] std::unique_lock<std::mutex> lock_cache() const;

  const topo::Graph& base_;
  Bandwidth b_ref_;
  ThetaOptions opts_;
  bool base_is_ring_;
  // Shared-cache key half: graph fingerprint mixed with b_ref and the
  // solver options (everything θ depends on besides the matching). Only
  // computed when a shared cache is attached.
  std::uint64_t context_fp_ = 0;
  mutable std::mutex cache_mutex_;
  mutable LruList lru_;
  mutable std::unordered_map<std::vector<int>,
                             std::pair<double, LruList::iterator>, DstHash>
      cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t evictions_ = 0;
  mutable std::atomic<std::size_t> contentions_{0};
  mutable std::once_flag hops_once_;
  mutable std::vector<std::vector<int>> hops_;
};

/// The research agenda's cheap congestion proxy: an *upper bound* on θ from
/// hop-count versus aggregate capacity,
///   θ̂ = Σ_e c_e / Σ_{(s,d) ∈ M} demand·dist_G(s, d),
/// i.e. total flow·hops required cannot exceed total capacity. Exact on
/// edge-transitive patterns (e.g. uniform rotations on rings); an
/// overestimate otherwise. +infinity for an empty matching.
[[nodiscard]] double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                                    const topo::Matching& m,
                                                    Bandwidth b_ref);

}  // namespace psd::flow
