// ThetaOracle: the congestion factor θ(G, M_i) of the paper's cost model
// (Eq. 3), with automatic solver dispatch and memoization.
//
// Dispatch: empty matching → +inf (no traffic); directed ring → exact closed
// form (O(n + k)); small instance → exact simplex LP; otherwise →
// Garg–Könemann FPTAS. θ lookups take the θ-only solver paths
// (ring_theta_only / gk_theta_only), which never materialize per-commodity
// flows — flow routing is only built when concurrent_flow() is called.
// Results are cached per matching: collective algorithms reuse the same
// patterns across steps and across bench sweeps.
//
// The memo table is keyed by the matching's destination vector under
// topo::hash_destinations — a cache hit performs no heap allocation — and is
// LRU-bounded so long bench sweeps cannot grow it without limit.
//
// Thread safety: theta() may be called concurrently from any number of
// threads (the parallel planner and the GK batch path do). The cache is
// guarded by a mutex; θ computation itself runs outside the lock, so
// concurrent misses solve in parallel. cache_lock_contentions() counts how
// often a thread found the lock held — observability for tuning parallel
// sweeps. concurrent_flow() is stateless apart from the shared base graph
// and needs no locking.
//
// Multi-tenant sweeps can point many oracles at one cross-planner memo via
// ThetaOptions::shared_cache (keyed by a context fingerprint — graph,
// b_ref, solver options — plus destinations; see theta_cache.hpp); the
// private LRU and its counters below then sit idle — hit/miss accounting
// lives in the shared cache instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "psd/flow/commodity.hpp"
#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/theta_cache.hpp"
#include "psd/topo/delta.hpp"

namespace psd::flow {

struct ThetaOptions {
  double epsilon = 0.05;       // GK accuracy when the FPTAS is used
  // Use the exact simplex LP when K·E (commodities × edges) is at most this.
  std::size_t exact_var_limit = 700;
  bool use_cache = true;
  // Maximum number of memoized matchings; least-recently-used entries are
  // evicted beyond this. Must be >= 1 when use_cache is set.
  std::size_t cache_capacity = 1 << 14;
  // Record each θ's routed support (the edges carrying positive flow) next
  // to the cached value, enabling edge-level invalidation across topology
  // deltas (see apply_topology_delta) and GK warm-restart hints. Costs one
  // flow materialization on the ring/LP paths and an O(E) scan on the GK
  // path per miss; off by default — sweeps without churn don't pay it.
  bool track_support = false;
  // Cross-oracle memo shared by multi-tenant sweeps (sweep::SharedThetaCache
  // is the stock implementation). When set (and use_cache is on), θ lookups
  // go to the shared cache keyed by (graph fingerprint, destinations) and
  // the private per-oracle LRU above is bypassed; when null — the default —
  // each oracle memoizes privately as before. use_cache=false disables both.
  std::shared_ptr<SharedThetaCacheBase> shared_cache;
  // Cooperative cancellation for deadline-bounded solves (the planning
  // daemon arms one token per request and hands each request its own
  // oracle). Polled at theta() entry and inside the GK hot loop; a firing
  // poll throws psd::Cancelled *before* anything is inserted into any
  // cache layer, and a consumed warm hint is re-stashed, so replaying the
  // request later computes the bit-exact uncancelled answer. Not part of
  // the shared-cache context fingerprint: it never changes θ's value.
  const util::CancellationToken* cancel = nullptr;
};

/// The shared-cache context fingerprint: everything θ depends on besides
/// the matching (graph fingerprint mixed with b_ref and the solver
/// options). Exposed so a service owning the graph can carry shared-cache
/// entries across a topology delta without an oracle in hand — it must
/// match the fingerprint ThetaOracle computes internally, which tests pin.
[[nodiscard]] std::uint64_t theta_context_fingerprint(const topo::Graph& g,
                                                      Bandwidth b_ref,
                                                      const ThetaOptions& opts);

class ThetaOracle {
 public:
  /// `base` must outlive the oracle. `b_ref` is the transceiver bandwidth b
  /// (the cost model's 1/β); demands are one unit of b_ref per pair.
  ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts = {});

  /// θ(G, M): largest common fraction of the matching's demands routable
  /// concurrently. +infinity for an empty matching. Thread-safe.
  [[nodiscard]] double theta(const topo::Matching& m) const;

  /// Full result including per-commodity edge flows (uncached).
  [[nodiscard]] ConcurrentFlowResult concurrent_flow(const topo::Matching& m) const;

  [[nodiscard]] const topo::Graph& base() const { return base_; }
  [[nodiscard]] Bandwidth bandwidth() const { return b_ref_; }
  [[nodiscard]] const ThetaOptions& options() const { return opts_; }

  /// All-pairs hop distances of the base topology, computed once on first
  /// use and shared by every cost-model consumer (ProblemInstance rebuilds,
  /// multi-port/multi-base instances). Thread-safe.
  [[nodiscard]] const std::vector<std::vector<int>>& base_hops() const;

  /// Number of θ values served from cache so far (observability for tests).
  [[nodiscard]] std::size_t cache_hits() const;
  [[nodiscard]] std::size_t cache_size() const;
  /// Number of entries dropped by the LRU bound.
  [[nodiscard]] std::size_t cache_evictions() const;
  /// Times a thread found the cache lock already held (contention signal).
  [[nodiscard]] std::size_t cache_lock_contentions() const {
    return contentions_.load(std::memory_order_relaxed);
  }

  /// Cumulative solver work across every cache miss — the churn engine's
  /// replan-cost metric. GK counters are zero for ring/LP-dispatched solves.
  struct SolveStats {
    long long solves = 0;            // θ computations (cache misses)
    long long gk_path_pushes = 0;    // flow augmentations (GK dispatch only)
    long long gk_sssp_searches = 0;  // shortest-path runs (GK dispatch only)
  };
  [[nodiscard]] SolveStats solve_stats() const;

  /// Outcome of apply_topology_delta over the private memo (and, when a
  /// shared cache is attached, its carry across the context change).
  struct InvalidationStats {
    std::size_t examined = 0;     // private entries inspected
    std::size_t survived = 0;     // kept: support recorded and untouched
    std::size_t invalidated = 0;  // erased: touched, unknown, or relaxing
    std::size_t warm_hints = 0;   // erased entries whose GK paths were kept
    SharedThetaCacheBase::CarryStats shared;
  };

  /// Notifies the oracle that its base graph just changed by `delta`
  /// (applied externally via topo::apply_delta on the same Graph object —
  /// delta.epoch must match base().epoch(), i.e. call this right after).
  /// Edge-level invalidation: a private entry whose recorded support avoids
  /// the delta's touched edges survives verbatim when the delta is
  /// restricting (its θ stays feasible *and* optimal — see topo/delta.hpp);
  /// everything else is erased, but an erased entry's final GK paths are
  /// stashed as warm hints that seed the next solve of the same matching
  /// (gk warm restart). Refreshes the ring-dispatch flag, the cached hop
  /// matrix, and the shared-cache context fingerprint (carrying surviving
  /// shared entries to the new context). NOT thread-safe against concurrent
  /// theta()/base_hops() readers: the caller quiesces the oracle first (the
  /// churn engine is strictly serial per oracle).
  InvalidationStats apply_topology_delta(const topo::DeltaResult& delta);

 private:
  struct DstHash {
    std::size_t operator()(const std::vector<int>& dst) const noexcept {
      return topo::hash_destinations(dst);
    }
  };
  // front() of lru_ is the most recently used entry; cache_ owns each key
  // (unordered_map nodes have stable addresses) and lru_ holds pointers
  // back to them, so every key is stored once. Hits splice within lru_ (no
  // allocation); misses insert and evict from the back once full.
  using LruList = std::list<const std::vector<int>*>;

  /// A memoized θ plus, under track_support, the evidence that keeps it
  /// valid across deltas: the routed support (sorted edge pair codes) and
  /// the final GK paths (warm-restart seed; empty for ring/LP dispatch).
  struct Entry {
    double theta = 0.0;
    std::vector<std::uint64_t> support;
    GkWarmState warm;
    LruList::iterator it;
  };

  /// θ without the cache: ring closed form, exact LP, or GK — all through
  /// their θ-only entry points. `support` (when non-null) receives the
  /// sorted pair codes of the positive-load edges; `warm` (when non-null)
  /// seeds and harvests GK paths; `stats` receives the GK work counters.
  [[nodiscard]] double solve_theta(const topo::Matching& m,
                                   std::vector<std::uint64_t>* support,
                                   GkWarmState* warm, GkRunStats* stats) const;

  /// Acquires the cache lock, counting contention when it was held.
  [[nodiscard]] std::unique_lock<std::mutex> lock_cache() const;

  const topo::Graph& base_;
  Bandwidth b_ref_;
  ThetaOptions opts_;
  bool base_is_ring_;
  // Shared-cache key half: graph fingerprint mixed with b_ref and the
  // solver options (everything θ depends on besides the matching). Only
  // computed when a shared cache is attached.
  std::uint64_t context_fp_ = 0;
  mutable std::mutex cache_mutex_;
  mutable LruList lru_;
  mutable std::unordered_map<std::vector<int>, Entry, DstHash> cache_;
  // Final GK paths of invalidated entries, keyed by destination vector:
  // consumed (moved out) by the next miss on the same matching to seed the
  // warm restart. Guarded by cache_mutex_.
  mutable std::unordered_map<std::vector<int>, GkWarmState, DstHash>
      warm_hints_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t evictions_ = 0;
  mutable SolveStats solve_stats_;
  mutable std::atomic<std::size_t> contentions_{0};
  // Lazily-built hop matrix; a bool (not std::once_flag) so a topology
  // delta can mark it for rebuild.
  mutable std::mutex hops_mutex_;
  mutable bool hops_ready_ = false;
  mutable std::vector<std::vector<int>> hops_;
};

/// The research agenda's cheap congestion proxy: an *upper bound* on θ from
/// hop-count versus aggregate capacity,
///   θ̂ = Σ_e c_e / Σ_{(s,d) ∈ M} demand·dist_G(s, d),
/// i.e. total flow·hops required cannot exceed total capacity. Exact on
/// edge-transitive patterns (e.g. uniform rotations on rings); an
/// overestimate otherwise. +infinity for an empty matching.
[[nodiscard]] double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                                    const topo::Matching& m,
                                                    Bandwidth b_ref);

}  // namespace psd::flow
