// ThetaOracle: the congestion factor θ(G, M_i) of the paper's cost model
// (Eq. 3), with automatic solver dispatch and memoization.
//
// Dispatch: empty matching → +inf (no traffic); directed ring → exact closed
// form (O(n + k)); small instance → exact simplex LP; otherwise →
// Garg–Könemann FPTAS. Results are cached per matching: collective
// algorithms reuse the same patterns across steps and across bench sweeps.
//
// The memo table is keyed by the matching's destination vector under
// topo::hash_destinations — a cache hit performs no heap allocation — and is
// LRU-bounded so long bench sweeps cannot grow it without limit.
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "psd/flow/commodity.hpp"
#include "psd/flow/garg_konemann.hpp"

namespace psd::flow {

struct ThetaOptions {
  double epsilon = 0.05;       // GK accuracy when the FPTAS is used
  // Use the exact simplex LP when K·E (commodities × edges) is at most this.
  std::size_t exact_var_limit = 700;
  bool use_cache = true;
  // Maximum number of memoized matchings; least-recently-used entries are
  // evicted beyond this. Must be >= 1 when use_cache is set.
  std::size_t cache_capacity = 1 << 14;
};

class ThetaOracle {
 public:
  /// `base` must outlive the oracle. `b_ref` is the transceiver bandwidth b
  /// (the cost model's 1/β); demands are one unit of b_ref per pair.
  ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts = {});

  /// θ(G, M): largest common fraction of the matching's demands routable
  /// concurrently. +infinity for an empty matching.
  [[nodiscard]] double theta(const topo::Matching& m) const;

  /// Full result including per-commodity edge flows (uncached).
  [[nodiscard]] ConcurrentFlowResult concurrent_flow(const topo::Matching& m) const;

  [[nodiscard]] const topo::Graph& base() const { return base_; }
  [[nodiscard]] Bandwidth bandwidth() const { return b_ref_; }

  /// Number of θ values served from cache so far (observability for tests).
  [[nodiscard]] std::size_t cache_hits() const { return hits_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  /// Number of entries dropped by the LRU bound.
  [[nodiscard]] std::size_t cache_evictions() const { return evictions_; }

 private:
  struct DstHash {
    std::size_t operator()(const std::vector<int>& dst) const noexcept {
      return topo::hash_destinations(dst);
    }
  };
  // front() of lru_ is the most recently used entry; cache_ owns each key
  // (unordered_map nodes have stable addresses) and lru_ holds pointers
  // back to them, so every key is stored once. Hits splice within lru_ (no
  // allocation); misses insert and evict from the back once full.
  using LruList = std::list<const std::vector<int>*>;

  const topo::Graph& base_;
  Bandwidth b_ref_;
  ThetaOptions opts_;
  bool base_is_ring_;
  mutable LruList lru_;
  mutable std::unordered_map<std::vector<int>,
                             std::pair<double, LruList::iterator>, DstHash>
      cache_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t evictions_ = 0;
};

/// The research agenda's cheap congestion proxy: an *upper bound* on θ from
/// hop-count versus aggregate capacity,
///   θ̂ = Σ_e c_e / Σ_{(s,d) ∈ M} demand·dist_G(s, d),
/// i.e. total flow·hops required cannot exceed total capacity. Exact on
/// edge-transitive patterns (e.g. uniform rotations on rings); an
/// overestimate otherwise. +infinity for an empty matching.
[[nodiscard]] double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                                    const topo::Matching& m,
                                                    Bandwidth b_ref);

}  // namespace psd::flow
