// The seam between ThetaOracle and a cache shared across oracles.
//
// A single oracle memoizes θ privately (see theta.hpp); a multi-tenant
// sweep runs many planners — and therefore many oracles — over overlapping
// (topology, matching) pairs, where a shared memo turns each repeated
// matching into one solve fleet-wide. The flow layer cannot depend on the
// sweep layer that owns such a cache, so the oracle talks to this abstract
// interface; sweep::SharedThetaCache is the concrete sharded-LRU
// implementation.
//
// Keys are (context fingerprint, destination vector). The context
// fingerprint is everything θ depends on besides the matching: the oracle
// mixes topo::graph_fingerprint with its reference bandwidth and its solver
// options (epsilon, exact_var_limit), because θ values are normalized by
// b_ref and solver settings change the computed value — oracles differing
// in any of these must never serve each other's entries. Implementations
// must be thread-safe and first-writer-wins on insert races (θ is a pure
// function of the full key, so racing values are equal anyway).
//
// Churn support: a topology delta changes the graph fingerprint, so a
// mutated oracle moves to a *new* context — old entries simply stop being
// probed (other oracles still on the old graph keep using them). To avoid
// cold-starting the whole context, insert_with_support() records each θ's
// routed support as sorted topo::edge_pair_codes, and carry_across_delta()
// *copies* the entries whose support avoids the delta's touched set to the
// new context: for a restricting delta their θ is still feasible and still
// optimal (see topo/delta.hpp), so survival is exact, never approximate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace psd::flow {

class SharedThetaCacheBase {
 public:
  virtual ~SharedThetaCacheBase() = default;

  /// Outcome of carry_across_delta: entries examined under the old context,
  /// how many survived (were copied to the new context), and how many were
  /// invalidated (support touched the delta, or support unknown).
  struct CarryStats {
    std::size_t examined = 0;
    std::size_t survived = 0;
    std::size_t invalidated = 0;
  };

  /// Memoized θ for (context fingerprint, destination vector), or nullopt.
  [[nodiscard]] virtual std::optional<double> lookup(
      std::uint64_t context_fp, const std::vector<int>& destinations) = 0;

  /// Records a computed θ; returns the canonical cached value (the first
  /// writer's, under races — equal to `theta` whenever θ is pure).
  virtual double insert(std::uint64_t context_fp,
                        const std::vector<int>& destinations, double theta) = 0;

  /// insert() plus the θ's routed support: the sorted, de-duplicated
  /// topo::edge_pair_codes of every edge carrying positive flow in the
  /// solution that produced `theta`. Implementations that don't track
  /// support may ignore it (the default forwards to insert()).
  virtual double insert_with_support(std::uint64_t context_fp,
                                     const std::vector<int>& destinations,
                                     double theta,
                                     const std::vector<std::uint64_t>& support) {
    (void)support;
    return insert(context_fp, destinations, theta);
  }

  /// Carries surviving entries across a topology delta: every entry under
  /// `old_context_fp` whose recorded support avoids the sorted `touched`
  /// pair-code set is copied to `new_context_fp`. Entries without support,
  /// or any entry when `relaxing` (the delta could have raised θ), are not
  /// carried. Old-context entries are left in place — other oracles may
  /// still be keyed on them; the LRU retires them naturally. The default is
  /// a no-op (nothing carried).
  virtual CarryStats carry_across_delta(std::uint64_t old_context_fp,
                                        std::uint64_t new_context_fp,
                                        const std::vector<std::uint64_t>& touched,
                                        bool relaxing) {
    (void)old_context_fp;
    (void)new_context_fp;
    (void)touched;
    (void)relaxing;
    return {};
  }
};

}  // namespace psd::flow
