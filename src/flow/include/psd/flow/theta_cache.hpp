// The seam between ThetaOracle and a cache shared across oracles.
//
// A single oracle memoizes θ privately (see theta.hpp); a multi-tenant
// sweep runs many planners — and therefore many oracles — over overlapping
// (topology, matching) pairs, where a shared memo turns each repeated
// matching into one solve fleet-wide. The flow layer cannot depend on the
// sweep layer that owns such a cache, so the oracle talks to this abstract
// interface; sweep::SharedThetaCache is the concrete sharded-LRU
// implementation.
//
// Keys are (context fingerprint, destination vector). The context
// fingerprint is everything θ depends on besides the matching: the oracle
// mixes topo::graph_fingerprint with its reference bandwidth and its solver
// options (epsilon, exact_var_limit), because θ values are normalized by
// b_ref and solver settings change the computed value — oracles differing
// in any of these must never serve each other's entries. Implementations
// must be thread-safe and first-writer-wins on insert races (θ is a pure
// function of the full key, so racing values are equal anyway).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace psd::flow {

class SharedThetaCacheBase {
 public:
  virtual ~SharedThetaCacheBase() = default;

  /// Memoized θ for (context fingerprint, destination vector), or nullopt.
  [[nodiscard]] virtual std::optional<double> lookup(
      std::uint64_t context_fp, const std::vector<int>& destinations) = 0;

  /// Records a computed θ; returns the canonical cached value (the first
  /// writer's, under races — equal to `theta` whenever θ is pure).
  virtual double insert(std::uint64_t context_fp,
                        const std::vector<int>& destinations, double theta) = 0;
};

}  // namespace psd::flow
