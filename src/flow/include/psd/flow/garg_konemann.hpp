// Garg–Könemann multiplicative-weights FPTAS for maximum concurrent flow
// (Garg & Könemann, FOCS'98; Fleischer's phase-based variant).
//
// Returns a *certified feasible* solution: accumulated flows are rescaled by
// the worst capacity violation, so the reported θ is always achievable
// (θ_reported ≤ θ*), and the multiplicative-weights guarantee keeps it
// ≥ (1 − O(ε))·θ*. Exactness is cross-validated in tests against the
// closed-form ring solver and the simplex LP.
//
// Hot-path structure: edge lengths (duals) only ever grow, so the length a
// commodity's shortest path had when computed lower-bounds the current
// shortest distance forever — a cached path whose current length is within
// a (1+ε)^O(1) window of that distance is still an approximate shortest
// path (Fleischer's relaxation). With warm_start the solver reuses cached
// paths under that test instead of running Dijkstra before every push,
// computes the initial per-commodity paths as one batch (optionally on the
// shared util::ThreadPool), and runs recomputes on an allocation-free
// CSR-based Dijkstra that stops as soon as the destination settles. All of
// this is bitwise-deterministic: parallel and serial execution produce
// identical flows.
#pragma once

#include "psd/flow/commodity.hpp"

namespace psd::flow {

struct GargKonemannOptions {
  double epsilon = 0.05;   // accuracy knob; smaller = tighter & slower
  long long max_path_pushes = 50'000'000;  // hard safety bound
  // Reuse each commodity's shortest path across pushes until its current
  // length exceeds (1+ε)³·(its distance when computed). Lengths are
  // monotone, so such a path is within (1+ε)³ of the current shortest and
  // the approximation guarantee loses O(ε) — cross-validated against the
  // exact solvers in tests. false restores a fresh Dijkstra per push (the
  // pre-warm-start reference behavior, used by the golden equivalence
  // tests; its path choices are pinned to topo::dijkstra's).
  bool warm_start = true;
  // Execute the initial batch of per-commodity shortest paths on the shared
  // ThreadPool. The solves are independent and read-only over the lengths,
  // so results are bitwise identical to serial execution; this toggles an
  // execution strategy, not the algorithm. No effect unless warm_start is
  // set.
  bool parallel = true;
};

/// Approximate θ and per-commodity edge flows. Throws InvalidArgument if a
/// commodity's endpoints are disconnected. An empty commodity list yields
/// theta = +infinity with no flows.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref, const GargKonemannOptions& opts = {});

/// Convenience overload: commodities from a matching.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const topo::Matching& m, Bandwidth b_ref,
    const GargKonemannOptions& opts = {});

/// θ alone, skipping per-commodity flow materialization: only the O(E)
/// aggregate load is tracked, so no K×path-length flow storage is built.
/// Matches gk_concurrent_flow's θ to floating-point roundoff (the rescale
/// accumulates per-edge loads in push order rather than commodity order).
[[nodiscard]] double gk_theta_only(const topo::Graph& g,
                                   const std::vector<Commodity>& commodities,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

/// θ-only convenience overload: commodities from a matching.
[[nodiscard]] double gk_theta_only(const topo::Graph& g, const topo::Matching& m,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

}  // namespace psd::flow
