// Garg–Könemann multiplicative-weights FPTAS for maximum concurrent flow
// (Garg & Könemann, FOCS'98; Fleischer's phase-based variant).
//
// Returns a *certified feasible* solution: accumulated flows are rescaled by
// the worst capacity violation, so the reported θ is always achievable
// (θ_reported ≤ θ*), and the multiplicative-weights guarantee keeps it
// ≥ (1 − O(ε))·θ*. Exactness is cross-validated in tests against the
// closed-form ring solver and the simplex LP.
//
// Hot-path structure: edge lengths (duals) only ever grow, so the length a
// commodity's shortest path had when computed lower-bounds the current
// shortest distance forever — a cached path whose current length is within
// a (1+ε)^O(1) window of that distance is still an approximate shortest
// path (Fleischer's relaxation). The default solver runs Fleischer's phase
// schedule: a global threshold α·(1+ε)^{2i} sweeps upward, each commodity
// keeps pushing along its cached path while the path's dual length stays
// under (1+ε)·threshold, and a recompute — one radius-capped bucket-queue
// SSSP per *source group*, so k same-source commodities cost one search —
// only fires when the path crosses. The bucket queue (topo::BucketQueueSssp)
// settles ε-quantized dual distances in a monotone sweep: no heap, integer
// compares, and nodes beyond the threshold radius are never explored, which
// is what makes a "wasted" search (commodity already past the phase) cheap.
// phase_schedule=false selects the earlier (1+ε)³ reuse-window round-robin;
// warm_start=false restores the legacy fresh-Dijkstra-per-push reference
// bit-for-bit. All modes are bitwise-deterministic: parallel and serial
// execution produce identical flows.
#pragma once

#include "psd/flow/commodity.hpp"

namespace psd::flow {

/// SSSP backend for the phase schedule's recomputes. The bucket queue is
/// the fast path; the binary heap is exact (it also tightens the
/// commodity's distance lower bound, saving phase checks) and is what the
/// non-phase modes always use.
enum class GkSpEngine {
  kBucketQueue,
  kBinaryHeap,
};

struct GargKonemannOptions {
  double epsilon = 0.05;   // accuracy knob; smaller = tighter & slower
  long long max_path_pushes = 50'000'000;  // hard safety bound
  // Reuse each commodity's cached shortest path across pushes (under the
  // phase-threshold or (1+ε)³-window test — see phase_schedule) instead of
  // running a fresh search before every push. false restores the legacy
  // reference behavior — fresh Dijkstra per push, round-robin schedule —
  // bit-for-bit (its path choices are pinned to topo::dijkstra's); the
  // golden equivalence tests rely on this.
  bool warm_start = true;
  // Fleischer's phase schedule (see header comment): commodities are pushed
  // in threshold order and searches batch by source and are radius-capped.
  // false selects the earlier round-robin (1+ε)³ reuse-window variant,
  // unchanged from PR 2 (the differential tests pin it against the legacy
  // reference). No effect unless warm_start is set. Both stay within the
  // (1 − O(ε)) guarantee with the same (1+ε)³ per-push approximation.
  bool phase_schedule = true;
  // SSSP engine for phase-schedule recomputes (no effect in other modes).
  GkSpEngine sp_engine = GkSpEngine::kBucketQueue;
  // Full demand routings per commodity visit in the phase schedule
  // (Fleischer routes a commodity repeatedly within a phase). One search
  // amortizes across the batch, and fairness is exact — every commodity
  // ships the same batch per round-robin round — at the cost of a
  // termination imbalance of up to this many demand units, negligible
  // against the hundreds of rounds a solve runs. 1 restores one routing
  // per visit (the other modes' granularity). No effect unless
  // phase_schedule is active.
  int phase_visit_routings = 4;
  // Execute the initial batch of per-source shortest-path searches on the
  // shared ThreadPool. The solves are independent and read-only over the
  // lengths, so results are bitwise identical to serial execution; this
  // toggles an execution strategy, not the algorithm. No effect unless
  // warm_start is set.
  bool parallel = true;
};

/// Approximate θ and per-commodity edge flows. Throws InvalidArgument if a
/// commodity's endpoints are disconnected. An empty commodity list yields
/// theta = +infinity with no flows.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref, const GargKonemannOptions& opts = {});

/// Convenience overload: commodities from a matching.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const topo::Matching& m, Bandwidth b_ref,
    const GargKonemannOptions& opts = {});

/// θ alone, skipping per-commodity flow materialization: only the O(E)
/// aggregate load is tracked, so no K×path-length flow storage is built.
/// Matches gk_concurrent_flow's θ to floating-point roundoff (the rescale
/// accumulates per-edge loads in push order rather than commodity order).
[[nodiscard]] double gk_theta_only(const topo::Graph& g,
                                   const std::vector<Commodity>& commodities,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

/// θ-only convenience overload: commodities from a matching.
[[nodiscard]] double gk_theta_only(const topo::Graph& g, const topo::Matching& m,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

}  // namespace psd::flow
