// Garg–Könemann multiplicative-weights FPTAS for maximum concurrent flow
// (Garg & Könemann, FOCS'98; Fleischer's phase-based variant).
//
// Returns a *certified feasible* solution: accumulated flows are rescaled by
// the worst capacity violation, so the reported θ is always achievable
// (θ_reported ≤ θ*), and the multiplicative-weights guarantee keeps it
// ≥ (1 − O(ε))·θ*. Exactness is cross-validated in tests against the
// closed-form ring solver and the simplex LP.
//
// Hot-path structure: edge lengths (duals) only ever grow, so the length a
// commodity's shortest path had when computed lower-bounds the current
// shortest distance forever — a cached path whose current length is within
// a (1+ε)^O(1) window of that distance is still an approximate shortest
// path (Fleischer's relaxation). The default solver runs Fleischer's phase
// schedule: a global threshold α·(1+ε)^{2i} sweeps upward, each commodity
// keeps pushing along its cached path while the path's dual length stays
// under (1+ε)·threshold, and a recompute — one radius-capped bucket-queue
// SSSP per *source group*, so k same-source commodities cost one search —
// only fires when the path crosses. The bucket queue (topo::BucketQueueSssp)
// settles ε-quantized dual distances in a monotone sweep: no heap, integer
// compares, and nodes beyond the threshold radius are never explored, which
// is what makes a "wasted" search (commodity already past the phase) cheap.
// phase_schedule=false selects the earlier (1+ε)³ reuse-window round-robin;
// warm_start=false restores the legacy fresh-Dijkstra-per-push reference
// bit-for-bit. All modes are bitwise-deterministic: parallel and serial
// execution produce identical flows.
#pragma once

#include "psd/flow/commodity.hpp"
#include "psd/util/cancellation.hpp"

namespace psd::flow {

/// SSSP backend for the phase schedule's recomputes. The bucket queue is
/// the fast path; the binary heap is exact (it also tightens the
/// commodity's distance lower bound, saving phase checks) and is what the
/// non-phase modes always use.
enum class GkSpEngine {
  kBucketQueue,
  kBinaryHeap,
};

struct GargKonemannOptions {
  double epsilon = 0.05;   // accuracy knob; smaller = tighter & slower
  long long max_path_pushes = 50'000'000;  // hard safety bound
  // Reuse each commodity's cached shortest path across pushes (under the
  // phase-threshold or (1+ε)³-window test — see phase_schedule) instead of
  // running a fresh search before every push. false restores the legacy
  // reference behavior — fresh Dijkstra per push, round-robin schedule —
  // bit-for-bit (its path choices are pinned to topo::dijkstra's); the
  // golden equivalence tests rely on this.
  bool warm_start = true;
  // Fleischer's phase schedule (see header comment): commodities are pushed
  // in threshold order and searches batch by source and are radius-capped.
  // false selects the earlier round-robin (1+ε)³ reuse-window variant,
  // unchanged from PR 2 (the differential tests pin it against the legacy
  // reference). No effect unless warm_start is set. Both stay within the
  // (1 − O(ε)) guarantee with the same (1+ε)³ per-push approximation.
  bool phase_schedule = true;
  // SSSP engine for phase-schedule recomputes (no effect in other modes).
  GkSpEngine sp_engine = GkSpEngine::kBucketQueue;
  // Full demand routings per commodity visit in the phase schedule
  // (Fleischer routes a commodity repeatedly within a phase). One search
  // amortizes across the batch, and fairness is exact — every commodity
  // ships the same batch per round-robin round — at the cost of a
  // termination imbalance of up to this many demand units, negligible
  // against the hundreds of rounds a solve runs. 1 restores one routing
  // per visit (the other modes' granularity). No effect unless
  // phase_schedule is active.
  int phase_visit_routings = 4;
  // Execute the initial batch of per-source shortest-path searches on the
  // shared ThreadPool. The solves are independent and read-only over the
  // lengths, so results are bitwise identical to serial execution; this
  // toggles an execution strategy, not the algorithm. No effect unless
  // warm_start is set.
  bool parallel = true;
  // Cooperative cancellation (deadline-bounded daemon solves): polled once
  // per path push and once per initial-batch search; a poll that observes a
  // cancelled token (or an expired deadline) throws psd::Cancelled and the
  // solve unwinds with nothing published. Null — the default — costs the
  // hot loop a single branch. The polling points are deterministic but the
  // *time* a deadline fires is not, so a cancelled solve makes no result
  // guarantees; rerunning uncancelled is bit-exact to never having
  // cancelled (pinned by tests).
  const util::CancellationToken* cancel = nullptr;
};

/// Carryable solver state for delta-restarts: the per-commodity routed
/// paths of a previous run, as *node* sequences (front() == src,
/// back() == dst). Node paths — not edge ids — survive Graph::remove_edge's
/// renumbering; they are re-resolved against the current graph at solve
/// time, and any path with a missing hop (an edge the delta cut) silently
/// falls back to the cold initial search for that commodity. Duals are NOT
/// carried: Garg–Könemann's runtime is the dual-volume climb from m·δ to 1,
/// and restarting from grown duals either terminates instantly with a
/// garbage θ (if left as-is) or saves nothing (if renormalized) — the
/// valuable state is the paths, which skip the initial SSSP batch and seed
/// each commodity's phase threshold.
struct GkWarmState {
  std::vector<std::vector<topo::NodeId>> node_paths;  // one per commodity

  [[nodiscard]] bool empty() const { return node_paths.empty(); }
};

/// Work counters of one solve — the churn simulator's replan-cost metric.
struct GkRunStats {
  long long path_pushes = 0;   // flow augmentations
  long long sssp_searches = 0; // shortest-path computations (any engine)
};

/// Optional side-channels of a solve, all owned by the caller:
///   warm  — in: seeds paths (skipping their initial searches) when the
///           entry for a commodity is a valid path in the current graph;
///           out: overwritten with the final routed paths, ready to carry
///           into the next delta-restart. Cold runs: pass a default
///           GkWarmState to harvest paths without seeding.
///   stats — out: work counters accumulated over the solve.
///   edge_loads — out: the feasibility-rescaled aggregate per-edge load;
///           its positive entries are the solution's support.
/// Seeding applies to the warm_start modes only; warm_start=false (the
/// bit-exact cold reference) ignores incoming paths but still reports.
struct GkSideChannels {
  GkWarmState* warm = nullptr;
  GkRunStats* stats = nullptr;
  std::vector<double>* edge_loads = nullptr;
};

/// Approximate θ and per-commodity edge flows. Throws InvalidArgument if a
/// commodity's endpoints are disconnected. An empty commodity list yields
/// theta = +infinity with no flows.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref, const GargKonemannOptions& opts = {});

/// Convenience overload: commodities from a matching.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const topo::Matching& m, Bandwidth b_ref,
    const GargKonemannOptions& opts = {});

/// θ alone, skipping per-commodity flow materialization: only the O(E)
/// aggregate load is tracked, so no K×path-length flow storage is built.
/// Matches gk_concurrent_flow's θ to floating-point roundoff (the rescale
/// accumulates per-edge loads in push order rather than commodity order).
[[nodiscard]] double gk_theta_only(const topo::Graph& g,
                                   const std::vector<Commodity>& commodities,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

/// θ-only convenience overload: commodities from a matching.
[[nodiscard]] double gk_theta_only(const topo::Graph& g, const topo::Matching& m,
                                   Bandwidth b_ref,
                                   const GargKonemannOptions& opts = {});

/// θ-only with side-channels: warm-restart path carry-over, work counters
/// and the load support (see GkSideChannels). Identical θ to gk_theta_only
/// when no warm paths are seeded; a delta-restart from near-shortest
/// carried paths stays within the (1+ε) guarantee of a cold solve (pinned
/// empirically by the churn property tests).
[[nodiscard]] double gk_theta_only_ex(const topo::Graph& g,
                                      const std::vector<Commodity>& commodities,
                                      Bandwidth b_ref,
                                      const GargKonemannOptions& opts,
                                      const GkSideChannels& side);

}  // namespace psd::flow
