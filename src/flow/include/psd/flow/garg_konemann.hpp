// Garg–Könemann multiplicative-weights FPTAS for maximum concurrent flow
// (Garg & Könemann, FOCS'98; Fleischer's phase-based variant).
//
// Returns a *certified feasible* solution: accumulated flows are rescaled by
// the worst capacity violation, so the reported θ is always achievable
// (θ_reported ≤ θ*), and the multiplicative-weights guarantee keeps it
// ≥ (1 − O(ε))·θ*. Exactness is cross-validated in tests against the
// closed-form ring solver and the simplex LP.
#pragma once

#include "psd/flow/commodity.hpp"

namespace psd::flow {

struct GargKonemannOptions {
  double epsilon = 0.05;   // accuracy knob; smaller = tighter & slower
  long long max_path_pushes = 50'000'000;  // hard safety bound
};

/// Approximate θ and per-commodity edge flows. Throws InvalidArgument if a
/// commodity's endpoints are disconnected. An empty commodity list yields
/// theta = +infinity with no flows.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref, const GargKonemannOptions& opts = {});

/// Convenience overload: commodities from a matching.
[[nodiscard]] ConcurrentFlowResult gk_concurrent_flow(
    const topo::Graph& g, const topo::Matching& m, Bandwidth b_ref,
    const GargKonemannOptions& opts = {});

}  // namespace psd::flow
