// Exact maximum concurrent flow on directed rings.
//
// On a unidirectional ring every commodity has exactly one path (clockwise
// along the cycle), so the concurrent flow LP collapses: the load on each
// link is the sum of demands whose interval covers it, and
//   θ = min over links of capacity(e) / load(e).
// This is the base-topology case of the paper's evaluation (single
// transceiver per GPU ⇒ base topology is a directed ring) and is O(n + k)
// for θ alone; materializing the routing additionally costs O(total path
// hops), stored sparsely (see FlowAssignment).
#pragma once

#include <optional>

#include "psd/flow/commodity.hpp"

namespace psd::flow {

/// Exact θ and per-commodity edge flows for a directed-ring graph and an
/// arbitrary commodity list (demands need not form a matching — unions of
/// matchings from multi-ported steps work too). Returns std::nullopt if `g`
/// is not a single directed cycle over all nodes. Capacities are normalized
/// by `b_ref`. An empty commodity list yields
/// theta = std::numeric_limits<double>::infinity() with no flows.
[[nodiscard]] std::optional<ConcurrentFlowResult> ring_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref);

/// Convenience overload: one unit-demand commodity per pair of `m`.
[[nodiscard]] std::optional<ConcurrentFlowResult> ring_concurrent_flow(
    const topo::Graph& g, const topo::Matching& m, Bandwidth b_ref);

/// θ alone, skipping flow materialization entirely: O(n + k) with no
/// per-hop work. This is what the ThetaOracle, planner strategies and BvN
/// loop call — they only ever read `.theta`. The value is bitwise identical
/// to ring_concurrent_flow()'s theta.
[[nodiscard]] std::optional<double> ring_theta_only(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref);

/// θ-only convenience overload over a matching; allocates no commodity
/// vector (reads the destination array directly).
[[nodiscard]] std::optional<double> ring_theta_only(const topo::Graph& g,
                                                    const topo::Matching& m,
                                                    Bandwidth b_ref);

}  // namespace psd::flow
