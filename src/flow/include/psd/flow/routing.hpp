// Routing utilities for reconfigurable interconnects (research agenda:
// "routing challenges"). Matched topologies need only one-hop routing, but
// intermediate/base topologies need real path selection:
//
//   - k_shortest_paths: Yen's algorithm for loopless k-shortest paths,
//     the building block for multipath spreading on base topologies.
//   - valiant_paths: Valiant load balancing (route via a random
//     intermediate), the classic oblivious scheme that bounds worst-case
//     congestion for *any* permutation at twice the path length — a natural
//     fit for steps where reconfiguration is not worth it but the pattern
//     is adversarial for shortest-path routing.
#pragma once

#include "psd/flow/commodity.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {

struct Path {
  std::vector<topo::EdgeId> edges;
  double length = 0.0;

  [[nodiscard]] int hops() const { return static_cast<int>(edges.size()); }
};

/// Yen's k-shortest loopless paths from src to dst under `edge_length`
/// (all lengths must be >= 0). Returns at most k paths ordered by
/// non-decreasing length; fewer if the graph has fewer distinct paths.
/// Returns an empty vector if dst is unreachable. src == dst is invalid.
[[nodiscard]] std::vector<Path> k_shortest_paths(
    const topo::Graph& g, topo::NodeId src, topo::NodeId dst, int k,
    const std::vector<double>& edge_length);

/// Hop-count convenience overload (unit edge lengths).
[[nodiscard]] std::vector<Path> k_shortest_paths(const topo::Graph& g,
                                                 topo::NodeId src,
                                                 topo::NodeId dst, int k);

/// Valiant load balancing: each commodity routes via a uniformly random
/// intermediate node (shortest path to it, then shortest path onward).
/// Deterministic given the Rng state. Throws if any segment is
/// disconnected.
[[nodiscard]] std::vector<Path> valiant_paths(
    const topo::Graph& g, const std::vector<Commodity>& commodities, Rng& rng);

/// Per-edge load (in demand units) if every commodity sends its full demand
/// along its assigned path. Used to compare routing schemes' congestion.
[[nodiscard]] std::vector<double> path_loads(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<Path>& paths);

}  // namespace psd::flow
