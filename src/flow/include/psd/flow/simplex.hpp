// Dense two-phase simplex LP solver.
//
// Built as a from-scratch substrate (no external LP dependency) to solve the
// edge-based maximum-concurrent-flow LP exactly on small instances. It is a
// textbook tableau implementation: phase 1 drives artificial variables out,
// phase 2 optimizes the real objective. Dantzig pricing with an automatic
// restart under Bland's rule guarantees termination on degenerate problems.
//
// Problem form:  maximize c^T x  subject to rows of (a^T x REL rhs), x >= 0.
#pragma once

#include <vector>

namespace psd::flow {

enum class Rel { LessEq, Eq, GreaterEq };

struct LpRow {
  std::vector<double> coeffs;  // one per structural variable
  Rel rel = Rel::LessEq;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  // maximized; one per structural variable
  std::vector<LpRow> rows;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective_value = 0.0;
  std::vector<double> x;  // structural variable values (valid iff Optimal)
};

struct SimplexOptions {
  double tol = 1e-9;
  // Iteration budget for the Dantzig-pricing attempt; on exhaustion the
  // solve restarts with Bland's rule (anti-cycling) and 50x the budget.
  int max_iterations = 50000;
};

/// Solves `p`; never throws on infeasible/unbounded inputs (reported via
/// status). Throws InvalidArgument on malformed input (row length mismatch).
[[nodiscard]] LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts = {});

}  // namespace psd::flow
