#include "psd/flow/routing.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <limits>
#include <set>

#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest path as a Path, or nullopt if unreachable.
std::optional<Path> shortest(const topo::Graph& g, topo::NodeId src,
                             topo::NodeId dst,
                             const std::vector<double>& length) {
  const auto dj = topo::dijkstra(g, src, length);
  if (std::isinf(dj.dist[static_cast<std::size_t>(dst)])) return std::nullopt;
  Path p;
  p.edges = topo::extract_path(g, dj, src, dst);
  p.length = dj.dist[static_cast<std::size_t>(dst)];
  return p;
}

/// Node sequence of a path starting at src.
std::vector<topo::NodeId> path_nodes(const topo::Graph& g, topo::NodeId src,
                                     const Path& p) {
  std::vector<topo::NodeId> nodes{src};
  for (topo::EdgeId e : p.edges) nodes.push_back(g.edge(e).dst);
  return nodes;
}

}  // namespace

std::vector<Path> k_shortest_paths(const topo::Graph& g, topo::NodeId src,
                                   topo::NodeId dst, int k,
                                   const std::vector<double>& edge_length) {
  PSD_REQUIRE(g.valid_node(src) && g.valid_node(dst), "node out of range");
  PSD_REQUIRE(src != dst, "src and dst must differ");
  PSD_REQUIRE(k >= 1, "k must be positive");
  PSD_REQUIRE(edge_length.size() == static_cast<std::size_t>(g.num_edges()),
              "edge_length must have one entry per edge");

  std::vector<Path> result;
  const auto first = shortest(g, src, dst, edge_length);
  if (!first) return result;
  result.push_back(*first);

  // Candidate set ordered by (length, edge sequence) for determinism.
  auto cmp = [](const Path& a, const Path& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.edges < b.edges;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    const auto prev_nodes = path_nodes(g, src, prev);

    // Spur from every node of the previous shortest path except dst.
    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const topo::NodeId spur = prev_nodes[i];
      std::vector<double> banned = edge_length;

      // Ban the next edge of every accepted path sharing this root.
      for (const Path& p : result) {
        if (p.edges.size() < i) continue;
        bool same_root = true;
        for (std::size_t j = 0; j < i && same_root; ++j) {
          same_root = (j < p.edges.size() && p.edges[j] == prev.edges[j]);
        }
        if (same_root && i < p.edges.size()) {
          banned[static_cast<std::size_t>(p.edges[i])] = kInf;
        }
      }
      // Ban root nodes (except the spur) to keep paths loopless: delete all
      // edges touching them.
      for (std::size_t j = 0; j < i; ++j) {
        const topo::NodeId v = prev_nodes[j];
        for (topo::EdgeId e : g.out_edges(v)) banned[static_cast<std::size_t>(e)] = kInf;
        for (topo::EdgeId e : g.in_edges(v)) banned[static_cast<std::size_t>(e)] = kInf;
      }

      const auto spur_path = shortest(g, spur, dst, banned);
      if (!spur_path) continue;

      Path total;
      total.edges.assign(prev.edges.begin(),
                         prev.edges.begin() + static_cast<std::ptrdiff_t>(i));
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.length = spur_path->length;
      for (std::size_t j = 0; j < i; ++j) {
        total.length += edge_length[static_cast<std::size_t>(prev.edges[j])];
      }
      // Skip candidates already accepted.
      const bool known = std::any_of(
          result.begin(), result.end(),
          [&total](const Path& p) { return p.edges == total.edges; });
      if (!known) candidates.insert(std::move(total));
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<Path> k_shortest_paths(const topo::Graph& g, topo::NodeId src,
                                   topo::NodeId dst, int k) {
  return k_shortest_paths(
      g, src, dst, k,
      std::vector<double>(static_cast<std::size_t>(g.num_edges()), 1.0));
}

std::vector<Path> valiant_paths(const topo::Graph& g,
                                const std::vector<Commodity>& commodities,
                                Rng& rng) {
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  std::vector<Path> out;
  out.reserve(commodities.size());
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    // Pick an intermediate distinct from both endpoints (when possible).
    topo::NodeId mid = c.src;
    for (int attempts = 0; attempts < 64; ++attempts) {
      mid = static_cast<topo::NodeId>(rng.next_below(
          static_cast<std::uint64_t>(g.num_nodes())));
      if (mid != c.src && mid != c.dst) break;
    }
    if (mid == c.src || mid == c.dst) {
      // Tiny graphs (n == 2): direct shortest path.
      auto direct = shortest(g, c.src, c.dst, unit);
      PSD_REQUIRE(direct.has_value(), "commodity endpoints disconnected");
      out.push_back(*std::move(direct));
      continue;
    }
    auto leg1 = shortest(g, c.src, mid, unit);
    auto leg2 = shortest(g, mid, c.dst, unit);
    PSD_REQUIRE(leg1.has_value() && leg2.has_value(),
                "VLB intermediate unreachable");
    Path p;
    p.edges = std::move(leg1->edges);
    p.edges.insert(p.edges.end(), leg2->edges.begin(), leg2->edges.end());
    p.length = leg1->length + leg2->length;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<double> path_loads(const topo::Graph& g,
                               const std::vector<Commodity>& commodities,
                               const std::vector<Path>& paths) {
  PSD_REQUIRE(commodities.size() == paths.size(),
              "one path per commodity required");
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t k = 0; k < paths.size(); ++k) {
    for (topo::EdgeId e : paths[k].edges) {
      load[static_cast<std::size_t>(e)] += commodities[k].demand;
    }
  }
  return load;
}

}  // namespace psd::flow
