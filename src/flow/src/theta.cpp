#include "psd/flow/theta.hpp"

#include <bit>
#include <limits>
#include <utility>

#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"
#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

namespace {

// The shared-cache context fingerprint: everything θ depends on besides the
// matching. θ is a pure function of (graph, b_ref, epsilon, exact_var_limit,
// matching) — b_ref normalizes the value outright, and the solver options
// move the LP/FPTAS dispatch boundary and the FPTAS accuracy — so oracles
// differing in any of them must not share entries.
std::uint64_t shared_context_fingerprint(const topo::Graph& g, Bandwidth b_ref,
                                         const ThetaOptions& opts) {
  std::uint64_t h = topo::graph_fingerprint(g);
  h = topo::fnv1a_mix64(h, std::bit_cast<std::uint64_t>(b_ref.bytes_per_ns()));
  h = topo::fnv1a_mix64(h, std::bit_cast<std::uint64_t>(opts.epsilon));
  h = topo::fnv1a_mix64(h, static_cast<std::uint64_t>(opts.exact_var_limit));
  return h;
}

}  // namespace

ThetaOracle::ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts)
    : base_(base), b_ref_(b_ref), opts_(std::move(opts)),
      base_is_ring_(topo::is_directed_ring(base)) {
  PSD_REQUIRE(b_ref.bytes_per_ns() > 0.0, "reference bandwidth must be positive");
  PSD_REQUIRE(base.num_nodes() >= 2, "base topology needs at least 2 nodes");
  PSD_REQUIRE(!opts_.use_cache || opts_.cache_capacity >= 1,
              "cache_capacity must be at least 1");
  if (opts_.shared_cache) {
    context_fp_ = shared_context_fingerprint(base_, b_ref_, opts_);
  }
}

std::unique_lock<std::mutex> ThetaOracle::lock_cache() const {
  std::unique_lock<std::mutex> lk(cache_mutex_, std::try_to_lock);
  if (!lk.owns_lock()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
  }
  return lk;
}

// Stats getters take a plain lock: counting an observer's poll as
// "contention" would pollute the very signal cache_lock_contentions()
// exists to provide about the θ lookup path.
std::size_t ThetaOracle::cache_hits() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return hits_;
}

std::size_t ThetaOracle::cache_size() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return cache_.size();
}

std::size_t ThetaOracle::cache_evictions() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return evictions_;
}

double ThetaOracle::theta(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();

  if (opts_.use_cache && opts_.shared_cache) {
    // Cross-planner path: the shared cache replaces the private LRU
    // entirely, so every oracle over the same context fingerprint (graph +
    // b_ref + solver options) sees one memo. Misses solve outside any lock;
    // insert() resolves races first-writer-wins (θ is a pure function of
    // the full key, so racing values agree).
    auto& shared = *opts_.shared_cache;
    if (const auto v = shared.lookup(context_fp_, m.destinations())) return *v;
    return shared.insert(context_fp_, m.destinations(), theta_uncached(m));
  }
  if (opts_.use_cache) {
    // Hit path: one hash of the destination vector, one splice. Neither
    // allocates — destinations() is a reference into the matching and the
    // splice relinks an existing node. The lock is uncontended in
    // single-threaded sweeps (one atomic CAS).
    const auto lk = lock_cache();
    if (const auto it = cache_.find(m.destinations()); it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.second);
      return it->second.first;
    }
  }
  // Compute outside the lock so concurrent misses solve in parallel.
  const double value = theta_uncached(m);
  if (opts_.use_cache) {
    const auto lk = lock_cache();
    const auto [it, inserted] =
        cache_.emplace(m.destinations(), std::make_pair(value, lru_.end()));
    if (!inserted) {
      // Another thread computed the same matching first. θ is a pure
      // function of the matching, so the values agree; just refresh LRU.
      lru_.splice(lru_.begin(), lru_, it->second.second);
      return it->second.first;
    }
    lru_.push_front(&it->first);
    it->second.second = lru_.begin();
    if (cache_.size() > opts_.cache_capacity) {
      // Locate first, erase by iterator: erase-by-key would pass a
      // reference aliasing the key of the node being destroyed.
      const auto victim = cache_.find(*lru_.back());
      PSD_ASSERT(victim != cache_.end(), "LRU tail missing from cache");
      cache_.erase(victim);
      lru_.pop_back();
      ++evictions_;
    }
  }
  return value;
}

double ThetaOracle::theta_uncached(const topo::Matching& m) const {
  if (base_is_ring_) {
    // θ-only closed form: no flow materialization, no commodity vector.
    const auto ring = ring_theta_only(base_, m, b_ref_);
    PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
    return *ring;
  }
  const auto commodities = commodities_from_matching(m);
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(base_.num_edges());
  if (lp_vars <= opts_.exact_var_limit) {
    return exact_concurrent_flow(base_, commodities, b_ref_).theta;
  }
  GargKonemannOptions gk;
  gk.epsilon = opts_.epsilon;
  return gk_theta_only(base_, commodities, b_ref_, gk);
}

ConcurrentFlowResult ThetaOracle::concurrent_flow(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (base_is_ring_) {
    auto ring = ring_concurrent_flow(base_, m, b_ref_);
    PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
    return *std::move(ring);
  }
  const auto commodities = commodities_from_matching(m);
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(base_.num_edges());
  if (lp_vars <= opts_.exact_var_limit) {
    return exact_concurrent_flow(base_, commodities, b_ref_);
  }
  GargKonemannOptions gk;
  gk.epsilon = opts_.epsilon;
  return gk_concurrent_flow(base_, commodities, b_ref_, gk);
}

const std::vector<std::vector<int>>& ThetaOracle::base_hops() const {
  std::call_once(hops_once_, [&] { hops_ = topo::all_pairs_hops(base_); });
  return hops_;
}

double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                      const topo::Matching& m, Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();
  const long long hop_demand = topo::total_pair_hops(g, m);
  PSD_ASSERT(hop_demand > 0, "active pairs must have positive hop distance");
  const double total_cap =
      g.total_capacity().bytes_per_ns() / b_ref.bytes_per_ns();
  return total_cap / static_cast<double>(hop_demand);
}

}  // namespace psd::flow
