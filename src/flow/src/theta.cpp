#include "psd/flow/theta.hpp"

#include <limits>

#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"

namespace psd::flow {

namespace {

/// Stable cache key: the destination vector, comma separated.
std::string cache_key(const topo::Matching& m) {
  std::string key;
  key.reserve(static_cast<std::size_t>(m.size()) * 3);
  for (int j = 0; j < m.size(); ++j) {
    key += std::to_string(m.dst_of(j));
    key += ',';
  }
  return key;
}

}  // namespace

ThetaOracle::ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts)
    : base_(base), b_ref_(b_ref), opts_(opts),
      base_is_ring_(topo::is_directed_ring(base)) {
  PSD_REQUIRE(b_ref.bytes_per_ns() > 0.0, "reference bandwidth must be positive");
  PSD_REQUIRE(base.num_nodes() >= 2, "base topology needs at least 2 nodes");
}

double ThetaOracle::theta(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();

  std::string key;
  if (opts_.use_cache) {
    key = cache_key(m);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  const double value = concurrent_flow(m).theta;
  if (opts_.use_cache) cache_.emplace(std::move(key), value);
  return value;
}

ConcurrentFlowResult ThetaOracle::concurrent_flow(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (base_is_ring_) {
    auto ring = ring_concurrent_flow(base_, m, b_ref_);
    PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
    return *std::move(ring);
  }
  const auto commodities = commodities_from_matching(m);
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(base_.num_edges());
  if (lp_vars <= opts_.exact_var_limit) {
    return exact_concurrent_flow(base_, commodities, b_ref_);
  }
  GargKonemannOptions gk;
  gk.epsilon = opts_.epsilon;
  return gk_concurrent_flow(base_, commodities, b_ref_, gk);
}

double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                      const topo::Matching& m, Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();
  const long long hop_demand = topo::total_pair_hops(g, m);
  PSD_ASSERT(hop_demand > 0, "active pairs must have positive hop distance");
  const double total_cap =
      g.total_capacity().bytes_per_ns() / b_ref.bytes_per_ns();
  return total_cap / static_cast<double>(hop_demand);
}

}  // namespace psd::flow
