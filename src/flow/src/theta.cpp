#include "psd/flow/theta.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"
#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

// θ is a pure function of (graph, b_ref, epsilon, exact_var_limit,
// matching) — b_ref normalizes the value outright, and the solver options
// move the LP/FPTAS dispatch boundary and the FPTAS accuracy — so oracles
// differing in any of them must not share entries.
std::uint64_t theta_context_fingerprint(const topo::Graph& g, Bandwidth b_ref,
                                        const ThetaOptions& opts) {
  std::uint64_t h = topo::graph_fingerprint(g);
  h = topo::fnv1a_mix64(h, std::bit_cast<std::uint64_t>(b_ref.bytes_per_ns()));
  h = topo::fnv1a_mix64(h, std::bit_cast<std::uint64_t>(opts.epsilon));
  h = topo::fnv1a_mix64(h, static_cast<std::uint64_t>(opts.exact_var_limit));
  return h;
}

namespace {

/// The sorted, de-duplicated pair codes of every edge carrying positive
/// load — the support invariant insert_with_support/apply_topology_delta
/// match against a delta's touched set.
std::vector<std::uint64_t> support_from_loads(const topo::Graph& g,
                                              const std::vector<double>& loads) {
  std::vector<std::uint64_t> support;
  for (topo::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (loads[static_cast<std::size_t>(e)] > 0.0) {
      const auto& edge = g.edge(e);
      support.push_back(topo::edge_pair_code(edge.src, edge.dst));
    }
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

}  // namespace

ThetaOracle::ThetaOracle(const topo::Graph& base, Bandwidth b_ref, ThetaOptions opts)
    : base_(base), b_ref_(b_ref), opts_(std::move(opts)),
      base_is_ring_(topo::is_directed_ring(base)) {
  PSD_REQUIRE(b_ref.bytes_per_ns() > 0.0, "reference bandwidth must be positive");
  PSD_REQUIRE(base.num_nodes() >= 2, "base topology needs at least 2 nodes");
  PSD_REQUIRE(!opts_.use_cache || opts_.cache_capacity >= 1,
              "cache_capacity must be at least 1");
  if (opts_.shared_cache) {
    context_fp_ = theta_context_fingerprint(base_, b_ref_, opts_);
  }
}

std::unique_lock<std::mutex> ThetaOracle::lock_cache() const {
  std::unique_lock<std::mutex> lk(cache_mutex_, std::try_to_lock);
  if (!lk.owns_lock()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
  }
  return lk;
}

// Stats getters take a plain lock: counting an observer's poll as
// "contention" would pollute the very signal cache_lock_contentions()
// exists to provide about the θ lookup path.
std::size_t ThetaOracle::cache_hits() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return hits_;
}

std::size_t ThetaOracle::cache_size() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return cache_.size();
}

std::size_t ThetaOracle::cache_evictions() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return evictions_;
}

double ThetaOracle::theta(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();
  // Admission poll: a request whose deadline already passed must not start
  // a solve at all (cache hits still serve — they are effectively free).
  if (opts_.cancel != nullptr && opts_.cancel->cancelled()) {
    if (opts_.use_cache && opts_.shared_cache) {
      if (const auto v = opts_.shared_cache->lookup(context_fp_, m.destinations())) {
        return *v;
      }
    } else if (opts_.use_cache) {
      const auto lk = lock_cache();
      if (const auto it = cache_.find(m.destinations()); it != cache_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.it);
        return it->second.theta;
      }
    }
    throw Cancelled("theta solve cancelled before dispatch");
  }
  const bool track = opts_.track_support;

  if (opts_.use_cache && opts_.shared_cache) {
    // Cross-planner path: the shared cache replaces the private LRU
    // entirely, so every oracle over the same context fingerprint (graph +
    // b_ref + solver options) sees one memo. Misses solve outside any lock;
    // insert() resolves races first-writer-wins (θ is a pure function of
    // the full key, so racing values agree). Under track_support the
    // support rides along so carry_across_delta can keep the entry alive.
    auto& shared = *opts_.shared_cache;
    if (const auto v = shared.lookup(context_fp_, m.destinations())) return *v;
    std::vector<std::uint64_t> support;
    GkRunStats stats;
    const double value =
        solve_theta(m, track ? &support : nullptr, nullptr, &stats);
    {
      const auto lk = lock_cache();
      ++solve_stats_.solves;
      solve_stats_.gk_path_pushes += stats.path_pushes;
      solve_stats_.gk_sssp_searches += stats.sssp_searches;
    }
    if (track) {
      return shared.insert_with_support(context_fp_, m.destinations(), value,
                                        support);
    }
    return shared.insert(context_fp_, m.destinations(), value);
  }

  GkWarmState warm;
  if (opts_.use_cache) {
    // Hit path: one hash of the destination vector, one splice. Neither
    // allocates — destinations() is a reference into the matching and the
    // splice relinks an existing node. The lock is uncontended in
    // single-threaded sweeps (one atomic CAS).
    const auto lk = lock_cache();
    if (const auto it = cache_.find(m.destinations()); it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.it);
      return it->second.theta;
    }
    // Miss: consume any warm hint a topology delta stashed for this
    // matching — the invalidated entry's final GK paths seed the re-solve.
    if (track) {
      if (const auto h = warm_hints_.find(m.destinations());
          h != warm_hints_.end()) {
        warm = std::move(h->second);
        warm_hints_.erase(h);
      }
    }
  }
  // Compute outside the lock so concurrent misses solve in parallel.
  std::vector<std::uint64_t> support;
  GkRunStats stats;
  double value = 0.0;
  try {
    value = solve_theta(m, track ? &support : nullptr,
                        track ? &warm : nullptr, &stats);
  } catch (...) {
    // Abandoned solve (cancellation, solver failure): put a consumed warm
    // hint back so the retry starts from the exact state this attempt saw —
    // the bit-exact-resume guarantee the daemon's deadline tests pin. GK
    // only writes its side channels on successful return, so `warm` still
    // holds the moved-in hint.
    if (track && !warm.empty()) {
      const auto lk = lock_cache();
      warm_hints_.emplace(m.destinations(), std::move(warm));
    }
    throw;
  }
  if (opts_.use_cache) {
    const auto lk = lock_cache();
    ++solve_stats_.solves;
    solve_stats_.gk_path_pushes += stats.path_pushes;
    solve_stats_.gk_sssp_searches += stats.sssp_searches;
    const auto [it, inserted] = cache_.emplace(
        m.destinations(),
        Entry{value, std::move(support), std::move(warm), lru_.end()});
    if (!inserted) {
      // Another thread computed the same matching first. θ is a pure
      // function of the matching, so the values agree; just refresh LRU.
      lru_.splice(lru_.begin(), lru_, it->second.it);
      return it->second.theta;
    }
    lru_.push_front(&it->first);
    it->second.it = lru_.begin();
    if (cache_.size() > opts_.cache_capacity) {
      // Locate first, erase by iterator: erase-by-key would pass a
      // reference aliasing the key of the node being destroyed.
      const auto victim = cache_.find(*lru_.back());
      PSD_ASSERT(victim != cache_.end(), "LRU tail missing from cache");
      cache_.erase(victim);
      lru_.pop_back();
      ++evictions_;
    }
  } else {
    const auto lk = lock_cache();
    ++solve_stats_.solves;
    solve_stats_.gk_path_pushes += stats.path_pushes;
    solve_stats_.gk_sssp_searches += stats.sssp_searches;
  }
  return value;
}

double ThetaOracle::solve_theta(const topo::Matching& m,
                                std::vector<std::uint64_t>* support,
                                GkWarmState* warm, GkRunStats* stats) const {
  if (base_is_ring_) {
    if (warm != nullptr) warm->node_paths.clear();  // ring carries no paths
    if (support == nullptr) {
      // θ-only closed form: no flow materialization, no commodity vector.
      const auto ring = ring_theta_only(base_, m, b_ref_);
      PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
      return *ring;
    }
    auto ring = ring_concurrent_flow(base_, m, b_ref_);
    PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
    *support = support_from_loads(base_, ring->flow.edge_loads());
    return ring->theta;
  }
  const auto commodities = commodities_from_matching(m);
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(base_.num_edges());
  if (lp_vars <= opts_.exact_var_limit) {
    if (warm != nullptr) warm->node_paths.clear();  // LP carries no paths
    if (support == nullptr) {
      return exact_concurrent_flow(base_, commodities, b_ref_).theta;
    }
    auto res = exact_concurrent_flow(base_, commodities, b_ref_);
    *support = support_from_loads(base_, res.flow.edge_loads());
    return res.theta;
  }
  GargKonemannOptions gk;
  gk.epsilon = opts_.epsilon;
  gk.cancel = opts_.cancel;
  if (support == nullptr && warm == nullptr && stats == nullptr) {
    return gk_theta_only(base_, commodities, b_ref_, gk);
  }
  std::vector<double> loads;
  GkSideChannels side;
  side.warm = warm;
  side.stats = stats;
  side.edge_loads = (support != nullptr) ? &loads : nullptr;
  const double value = gk_theta_only_ex(base_, commodities, b_ref_, gk, side);
  if (support != nullptr) *support = support_from_loads(base_, loads);
  return value;
}

ConcurrentFlowResult ThetaOracle::concurrent_flow(const topo::Matching& m) const {
  PSD_REQUIRE(m.size() == base_.num_nodes(), "matching/graph size mismatch");
  if (base_is_ring_) {
    auto ring = ring_concurrent_flow(base_, m, b_ref_);
    PSD_ASSERT(ring.has_value(), "ring dispatch inconsistent with builder check");
    return *std::move(ring);
  }
  const auto commodities = commodities_from_matching(m);
  const std::size_t lp_vars =
      commodities.size() * static_cast<std::size_t>(base_.num_edges());
  if (lp_vars <= opts_.exact_var_limit) {
    return exact_concurrent_flow(base_, commodities, b_ref_);
  }
  GargKonemannOptions gk;
  gk.epsilon = opts_.epsilon;
  gk.cancel = opts_.cancel;
  return gk_concurrent_flow(base_, commodities, b_ref_, gk);
}

ThetaOracle::SolveStats ThetaOracle::solve_stats() const {
  const std::lock_guard<std::mutex> lk(cache_mutex_);
  return solve_stats_;
}

ThetaOracle::InvalidationStats ThetaOracle::apply_topology_delta(
    const topo::DeltaResult& delta) {
  PSD_REQUIRE(base_.epoch() == delta.epoch,
              "delta result is stale: apply_topology_delta must follow the "
              "topo::apply_delta that produced it, with no mutation between");
  InvalidationStats out;
  base_is_ring_ = topo::is_directed_ring(base_);
  {
    const std::lock_guard<std::mutex> lk(hops_mutex_);
    hops_ready_ = false;
    hops_.clear();
  }
  const std::uint64_t old_fp = context_fp_;
  {
    const std::lock_guard<std::mutex> lk(cache_mutex_);
    out.examined = cache_.size();
    for (auto it = cache_.begin(); it != cache_.end();) {
      Entry& e = it->second;
      // Exact survival (see topo/delta.hpp): a restricting delta cannot
      // raise θ of any matching and cannot lower θ of a solution routed
      // entirely off the touched edges — so an entry with recorded support
      // disjoint from the touched set stays feasible and optimal verbatim.
      const bool survives = !delta.relaxing && !e.support.empty() &&
                            !topo::pair_codes_intersect(e.support, delta.touched);
      if (survives) {
        ++out.survived;
        ++it;
        continue;
      }
      ++out.invalidated;
      if (!e.warm.empty()) {
        // The value dies but its paths remain the best available starting
        // point — stash them for the re-solve's GK warm restart.
        warm_hints_[it->first] = std::move(e.warm);
        ++out.warm_hints;
      }
      lru_.erase(e.it);
      it = cache_.erase(it);
    }
  }
  if (opts_.shared_cache) {
    context_fp_ = theta_context_fingerprint(base_, b_ref_, opts_);
    out.shared = opts_.shared_cache->carry_across_delta(
        old_fp, context_fp_, delta.touched, delta.relaxing);
  }
  return out;
}

const std::vector<std::vector<int>>& ThetaOracle::base_hops() const {
  const std::lock_guard<std::mutex> lk(hops_mutex_);
  if (!hops_ready_) {
    hops_ = topo::all_pairs_hops(base_);
    hops_ready_ = true;
  }
  return hops_;
}

double theta_upper_bound_hop_capacity(const topo::Graph& g,
                                      const topo::Matching& m, Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();
  const long long hop_demand = topo::total_pair_hops(g, m);
  PSD_ASSERT(hop_demand > 0, "active pairs must have positive hop distance");
  const double total_cap =
      g.total_capacity().bytes_per_ns() / b_ref.bytes_per_ns();
  return total_cap / static_cast<double>(hop_demand);
}

}  // namespace psd::flow
