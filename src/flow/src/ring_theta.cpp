#include "psd/flow/ring_theta.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "psd/topo/builders.hpp"

namespace psd::flow {

namespace {

/// Cycle layout of a validated directed ring: node_at[i] is the node at
/// cycle position i, ring_edge[i] the edge leaving it.
struct RingLayout {
  std::vector<int> node_at;
  std::vector<topo::EdgeId> ring_edge;
};

RingLayout build_layout(const topo::Graph& g, const std::vector<int>& pos) {
  const int n = g.num_nodes();
  RingLayout layout;
  layout.node_at.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    layout.node_at[static_cast<std::size_t>(pos[static_cast<std::size_t>(v)])] = v;
  }
  layout.ring_edge.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    layout.ring_edge[static_cast<std::size_t>(i)] =
        g.out_edges(layout.node_at[static_cast<std::size_t>(i)]).front();
  }
  return layout;
}

void validate_commodities(const topo::Graph& g,
                          const std::vector<Commodity>& commodities) {
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst),
                "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
  }
}

/// Adds commodity (src, dst, demand) to the cyclic difference array: it
/// loads positions pos[src] .. pos[dst]-1 (mod n).
inline void add_interval(std::vector<double>& diff, const std::vector<int>& pos,
                         int n, int src, int dst, double demand) {
  const int a = pos[static_cast<std::size_t>(src)];
  const int b = pos[static_cast<std::size_t>(dst)];
  if (a < b) {
    diff[static_cast<std::size_t>(a)] += demand;
    diff[static_cast<std::size_t>(b)] -= demand;
  } else {  // wraps past position n-1
    diff[static_cast<std::size_t>(a)] += demand;
    diff[static_cast<std::size_t>(n)] -= demand;
    diff[0] += demand;
    diff[static_cast<std::size_t>(b)] -= demand;
  }
}

/// θ from the accumulated difference array; also leaves the per-position
/// prefix loads in `diff` (diff[i] becomes the load on ring position i).
double scan_theta(std::vector<double>& diff, const std::vector<double>& caps,
                  const RingLayout& layout, int n) {
  double theta = std::numeric_limits<double>::infinity();
  double load = 0.0;
  for (int i = 0; i < n; ++i) {
    load += diff[static_cast<std::size_t>(i)];
    diff[static_cast<std::size_t>(i)] = load;
    if (load > 1e-12) {
      const double cap =
          caps[static_cast<std::size_t>(layout.ring_edge[static_cast<std::size_t>(i)])];
      theta = std::min(theta, cap / load);
    }
  }
  PSD_ASSERT(theta < std::numeric_limits<double>::infinity(),
             "non-empty matching must load at least one ring link");
  return theta;
}

}  // namespace

std::optional<ConcurrentFlowResult> ring_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref) {
  std::vector<int> pos;  // pos[v] = index of v along the cycle from node 0
  if (!topo::is_directed_ring(g, &pos)) return std::nullopt;
  validate_commodities(g, commodities);

  const int n = g.num_nodes();
  const auto caps = normalized_capacities(g, b_ref);

  ConcurrentFlowResult res;
  res.flow.reset(g.num_edges());
  if (commodities.empty()) {
    res.theta = std::numeric_limits<double>::infinity();
    return res;
  }

  const RingLayout layout = build_layout(g, pos);

  std::vector<double> diff(static_cast<std::size_t>(n) + 1, 0.0);
  std::size_t total_hops = 0;
  for (const auto& c : commodities) {
    add_interval(diff, pos, n, c.src, c.dst, c.demand);
    const int a = pos[static_cast<std::size_t>(c.src)];
    const int b = pos[static_cast<std::size_t>(c.dst)];
    total_hops += static_cast<std::size_t>(b > a ? b - a : n - (a - b));
  }
  const double theta = scan_theta(diff, caps, layout, n);

  res.theta = theta;
  res.flow.reset(g.num_edges(), commodities.size(), total_hops);
  for (const auto& c : commodities) {
    res.flow.begin_commodity();
    const double f = theta * c.demand;
    int i = pos[static_cast<std::size_t>(c.src)];
    const int end = pos[static_cast<std::size_t>(c.dst)];
    while (i != end) {
      res.flow.push(layout.ring_edge[static_cast<std::size_t>(i)], f);
      i = (i + 1) % n;
    }
  }
  // The aggregate is already known from the θ scan: position i carries
  // θ·(interval load at i). Hand it to the cache so consumers' O(E)
  // utilization sweeps cost nothing extra.
  std::vector<double> loads(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (int i = 0; i < n; ++i) {
    loads[static_cast<std::size_t>(layout.ring_edge[static_cast<std::size_t>(i)])] =
        theta * diff[static_cast<std::size_t>(i)];
  }
  res.flow.set_edge_loads(std::move(loads));
  return res;
}

std::optional<ConcurrentFlowResult> ring_concurrent_flow(const topo::Graph& g,
                                                         const topo::Matching& m,
                                                         Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return ring_concurrent_flow(g, commodities_from_matching(m), b_ref);
}

std::optional<double> ring_theta_only(const topo::Graph& g,
                                      const std::vector<Commodity>& commodities,
                                      Bandwidth b_ref) {
  std::vector<int> pos;
  if (!topo::is_directed_ring(g, &pos)) return std::nullopt;
  validate_commodities(g, commodities);
  if (commodities.empty()) return std::numeric_limits<double>::infinity();

  const int n = g.num_nodes();
  const auto caps = normalized_capacities(g, b_ref);
  const RingLayout layout = build_layout(g, pos);

  std::vector<double> diff(static_cast<std::size_t>(n) + 1, 0.0);
  for (const auto& c : commodities) {
    add_interval(diff, pos, n, c.src, c.dst, c.demand);
  }
  return scan_theta(diff, caps, layout, n);
}

std::optional<double> ring_theta_only(const topo::Graph& g,
                                      const topo::Matching& m, Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  std::vector<int> pos;
  if (!topo::is_directed_ring(g, &pos)) return std::nullopt;
  if (m.active_pairs() == 0) return std::numeric_limits<double>::infinity();

  const int n = g.num_nodes();
  const auto caps = normalized_capacities(g, b_ref);
  const RingLayout layout = build_layout(g, pos);

  // Same accumulation order as commodities_from_matching would produce
  // (ascending source), so the θ value is bitwise identical — but with no
  // commodity-vector allocation.
  std::vector<double> diff(static_cast<std::size_t>(n) + 1, 0.0);
  const auto& dst = m.destinations();
  for (int s = 0; s < n; ++s) {
    const int d = dst[static_cast<std::size_t>(s)];
    if (d != -1) add_interval(diff, pos, n, s, d, 1.0);
  }
  return scan_theta(diff, caps, layout, n);
}

}  // namespace psd::flow
