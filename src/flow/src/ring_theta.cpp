#include "psd/flow/ring_theta.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "psd/topo/builders.hpp"

namespace psd::flow {

std::optional<ConcurrentFlowResult> ring_concurrent_flow(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    Bandwidth b_ref) {
  std::vector<int> pos;  // pos[v] = index of v along the cycle from node 0
  if (!topo::is_directed_ring(g, &pos)) return std::nullopt;
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst),
                "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
  }

  const int n = g.num_nodes();
  const auto caps = normalized_capacities(g, b_ref);

  ConcurrentFlowResult res;
  if (commodities.empty()) {
    res.theta = std::numeric_limits<double>::infinity();
    return res;
  }

  // node_at[i] = node at cycle position i; ring_edge[i] = edge leaving it.
  std::vector<int> node_at(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) node_at[static_cast<std::size_t>(pos[static_cast<std::size_t>(v)])] = v;
  std::vector<topo::EdgeId> ring_edge(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ring_edge[static_cast<std::size_t>(i)] =
        g.out_edges(node_at[static_cast<std::size_t>(i)]).front();
  }

  // Accumulate interval loads with a cyclic difference array: commodity
  // (s, d) loads positions pos[s] .. pos[d]-1 (mod n).
  std::vector<double> diff(static_cast<std::size_t>(n) + 1, 0.0);
  for (const auto& c : commodities) {
    const int a = pos[static_cast<std::size_t>(c.src)];
    const int b = pos[static_cast<std::size_t>(c.dst)];
    if (a < b) {
      diff[static_cast<std::size_t>(a)] += c.demand;
      diff[static_cast<std::size_t>(b)] -= c.demand;
    } else {  // wraps past position n-1
      diff[static_cast<std::size_t>(a)] += c.demand;
      diff[static_cast<std::size_t>(n)] -= c.demand;
      diff[0] += c.demand;
      diff[static_cast<std::size_t>(b)] -= c.demand;
    }
  }

  double theta = std::numeric_limits<double>::infinity();
  double load = 0.0;
  for (int i = 0; i < n; ++i) {
    load += diff[static_cast<std::size_t>(i)];
    if (load > 1e-12) {
      const double cap = caps[static_cast<std::size_t>(ring_edge[static_cast<std::size_t>(i)])];
      theta = std::min(theta, cap / load);
    }
  }
  PSD_ASSERT(theta < std::numeric_limits<double>::infinity(),
             "non-empty matching must load at least one ring link");

  res.theta = theta;
  res.flow.assign(commodities.size(),
                  std::vector<double>(static_cast<std::size_t>(g.num_edges()), 0.0));
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& c = commodities[k];
    const double f = theta * c.demand;
    int i = pos[static_cast<std::size_t>(c.src)];
    const int end = pos[static_cast<std::size_t>(c.dst)];
    while (i != end) {
      res.flow[k][static_cast<std::size_t>(ring_edge[static_cast<std::size_t>(i)])] = f;
      i = (i + 1) % n;
    }
  }
  return res;
}

std::optional<ConcurrentFlowResult> ring_concurrent_flow(const topo::Graph& g,
                                                         const topo::Matching& m,
                                                         Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return ring_concurrent_flow(g, commodities_from_matching(m), b_ref);
}

}  // namespace psd::flow
