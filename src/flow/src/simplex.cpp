#include "psd/flow/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "psd/util/error.hpp"
#include "psd/util/matrix.hpp"

namespace psd::flow {

namespace {

/// Canonical-form tableau: rows of [A | b] with the basic columns forming an
/// identity, plus a maintained reduced-cost row. A is stored as a flat
/// row-major psd::Matrix so the pivot inner loops stream over contiguous row
/// spans instead of chasing per-row vectors.
class Tableau {
 public:
  Tableau(psd::Matrix a, std::vector<double> rhs, std::vector<int> basis, double tol)
      : a_(std::move(a)), num_rows_(a_.rows()), b_(std::move(rhs)),
        basis_(std::move(basis)), tol_(tol) {}

  /// Installs the cost vector `c` (size = columns) and canonicalizes the
  /// reduced-cost row against the current basis.
  void set_costs(const std::vector<double>& c) {
    cost_ = c;
    reduced_ = c;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const double cb = cost_[static_cast<std::size_t>(basis_[i])];
      if (cb != 0.0) {
        const auto row = a_.row(i);
        for (std::size_t j = 0; j < reduced_.size(); ++j) {
          reduced_[j] -= cb * row[j];
        }
      }
    }
  }

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::size_t num_cols() const { return reduced_.size(); }
  [[nodiscard]] int basis_at(std::size_t row) const { return basis_[row]; }
  [[nodiscard]] double rhs_at(std::size_t row) const { return b_[row]; }
  [[nodiscard]] double coeff(std::size_t row, std::size_t col) const { return a_(row, col); }

  [[nodiscard]] double objective_value() const {
    double z = 0.0;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      z += cost_[static_cast<std::size_t>(basis_[i])] * b_[i];
    }
    return z;
  }

  /// One simplex iteration. `allowed(j)` filters entering columns.
  /// Returns: 0 = optimal, 1 = pivoted, 2 = unbounded.
  template <typename AllowedFn>
  int iterate(bool bland, const AllowedFn& allowed) {
    // --- pricing: choose entering column ---
    int enter = -1;
    double best = tol_;
    for (std::size_t j = 0; j < reduced_.size(); ++j) {
      if (!allowed(static_cast<int>(j))) continue;
      if (reduced_[j] > (bland ? tol_ : best)) {
        enter = static_cast<int>(j);
        if (bland) break;
        best = reduced_[j];
      }
    }
    if (enter < 0) return 0;  // no improving column: optimal

    // --- ratio test: choose leaving row ---
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_rows_; ++i) {
      const double aij = a_(i, static_cast<std::size_t>(enter));
      if (aij > tol_) {
        const double ratio = b_[i] / aij;
        const bool better =
            ratio < best_ratio - tol_ ||
            (ratio < best_ratio + tol_ && leave >= 0 &&
             basis_[i] < basis_[static_cast<std::size_t>(leave)]);  // Bland tie-break
        if (leave < 0 || better) {
          best_ratio = ratio;
          leave = static_cast<int>(i);
        }
      }
    }
    if (leave < 0) return 2;  // unbounded direction

    pivot(static_cast<std::size_t>(leave), static_cast<std::size_t>(enter));
    return 1;
  }

  /// Pivots so column `col` becomes basic in `row`.
  void pivot(std::size_t row, std::size_t col) {
    const auto prow = a_.row(row);
    const double piv = prow[col];
    PSD_ASSERT(std::fabs(piv) > tol_ * 1e-3, "pivot element too small");
    const double inv = 1.0 / piv;
    const std::size_t cols = num_cols();
    for (std::size_t j = 0; j < cols; ++j) prow[j] *= inv;
    b_[row] *= inv;
    prow[col] = 1.0;  // fight round-off drift
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (i == row) continue;
      const auto irow = a_.row(i);
      const double f = irow[col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) irow[j] -= f * prow[j];
      irow[col] = 0.0;
      b_[i] -= f * b_[row];
      if (b_[i] < 0.0 && b_[i] > -tol_) b_[i] = 0.0;
    }
    const double rf = reduced_[col];
    if (rf != 0.0) {
      for (std::size_t j = 0; j < cols; ++j) reduced_[j] -= rf * prow[j];
      reduced_[col] = 0.0;
    }
    basis_[row] = static_cast<int>(col);
  }

  /// Attempts to pivot the artificial basic variable of `row` out to any
  /// allowed column with a usable coefficient. Returns true on success.
  template <typename AllowedFn>
  bool pivot_out(std::size_t row, const AllowedFn& allowed) {
    const auto prow = a_.row(row);
    for (std::size_t j = 0; j < num_cols(); ++j) {
      if (!allowed(static_cast<int>(j))) continue;
      if (std::fabs(prow[j]) > 1e-7) {
        pivot(row, j);
        return true;
      }
    }
    return false;
  }

  /// Removes a (redundant) row from the tableau by shifting the rows below
  /// it up one slot; the matrix keeps its allocation, num_rows_ shrinks.
  void drop_row(std::size_t row) {
    for (std::size_t i = row + 1; i < num_rows_; ++i) {
      const auto src = a_.row(i);
      const auto dst = a_.row(i - 1);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    --num_rows_;
    b_.erase(b_.begin() + static_cast<std::ptrdiff_t>(row));
    basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(row));
  }

 private:
  psd::Matrix a_;          // num_rows_ live rows; drop_row never reallocates
  std::size_t num_rows_;
  std::vector<double> b_;
  std::vector<int> basis_;
  std::vector<double> cost_;
  std::vector<double> reduced_;
  double tol_;
};

/// Runs simplex iterations to optimality with Dantzig pricing, restarting
/// with Bland's rule on iteration-limit (possible cycling).
/// Returns LpStatus::Optimal, Unbounded or IterationLimit.
template <typename AllowedFn>
LpStatus run_to_optimality(Tableau& t, const SimplexOptions& opts,
                           const AllowedFn& allowed) {
  for (int pass = 0; pass < 2; ++pass) {
    const bool bland = (pass == 1);
    const long long budget =
        bland ? static_cast<long long>(opts.max_iterations) * 50 : opts.max_iterations;
    for (long long it = 0; it < budget; ++it) {
      const int r = t.iterate(bland, allowed);
      if (r == 0) return LpStatus::Optimal;
      if (r == 2) return LpStatus::Unbounded;
    }
  }
  return LpStatus::IterationLimit;
}

}  // namespace

LpSolution solve_lp(const LpProblem& p, const SimplexOptions& opts) {
  PSD_REQUIRE(p.num_vars >= 0, "num_vars must be non-negative");
  PSD_REQUIRE(static_cast<int>(p.objective.size()) == p.num_vars,
              "objective size must equal num_vars");
  for (const LpRow& r : p.rows) {
    PSD_REQUIRE(static_cast<int>(r.coeffs.size()) == p.num_vars,
                "row length must equal num_vars");
  }

  const std::size_t m = p.rows.size();
  const std::size_t n = static_cast<std::size_t>(p.num_vars);

  // Column layout: [structural | slacks/surplus | artificials]. Rows are
  // normalized to rhs >= 0 (flipping relation when negating). A <=-row with
  // non-negative rhs gets a slack that can start basic; everything else
  // needs an artificial. Pre-pass: per-row sign/relation, so the flat
  // tableau can be allocated at its final width up front.
  std::vector<double> sign(m, 1.0);
  std::vector<Rel> rel(m, Rel::Eq);
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const LpRow& r = p.rows[i];
    rel[i] = r.rel;
    if (r.rhs < 0.0) {
      sign[i] = -1.0;
      if (rel[i] == Rel::LessEq) {
        rel[i] = Rel::GreaterEq;
      } else if (rel[i] == Rel::GreaterEq) {
        rel[i] = Rel::LessEq;
      }
    }
    if (r.rel != Rel::Eq) ++num_slack;
    if (r.rel == Rel::Eq || rel[i] == Rel::GreaterEq) ++num_art;
  }

  const std::size_t slack_base = n;
  const std::size_t art_base = n + num_slack;
  psd::Matrix a(m, art_base + num_art);
  std::vector<double> rhs(m, 0.0);
  std::vector<int> basis(m, -1);

  std::size_t slack_cursor = 0;
  std::size_t art_cursor = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const LpRow& r = p.rows[i];
    const auto row = a.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = sign[i] * r.coeffs[j];
    rhs[i] = sign[i] * r.rhs;
    bool artificial = true;
    if (r.rel != Rel::Eq) {
      const std::size_t sc = slack_base + slack_cursor++;
      row[sc] = (rel[i] == Rel::LessEq) ? 1.0 : -1.0;
      if (rel[i] == Rel::LessEq) {
        basis[i] = static_cast<int>(sc);  // slack starts basic
        artificial = false;
      }
    }
    if (artificial) {
      const std::size_t ac = art_base + art_cursor++;
      row[ac] = 1.0;
      basis[i] = static_cast<int>(ac);
    }
  }
  PSD_ASSERT(art_cursor == num_art, "artificial column accounting mismatch");

  Tableau t(std::move(a), std::move(rhs), std::move(basis), opts.tol);
  const auto is_artificial = [art_base](int j) {
    return static_cast<std::size_t>(j) >= art_base;
  };

  LpSolution sol;

  // ---- Phase 1: maximize -(sum of artificials) up to 0 ----
  if (num_art > 0) {
    std::vector<double> phase1_cost(art_base + num_art, 0.0);
    for (std::size_t a = 0; a < num_art; ++a) phase1_cost[art_base + a] = -1.0;
    t.set_costs(phase1_cost);
    const LpStatus st = run_to_optimality(t, opts, [](int) { return true; });
    if (st != LpStatus::Optimal) {
      sol.status = st;
      return sol;
    }
    if (t.objective_value() < -1e-6) {
      sol.status = LpStatus::Infeasible;
      return sol;
    }
    // Drive any artificials still (degenerately) basic out of the basis;
    // rows where that is impossible are redundant and dropped.
    for (std::size_t i = t.num_rows(); i-- > 0;) {
      if (is_artificial(t.basis_at(i))) {
        if (!t.pivot_out(i, [&](int j) { return !is_artificial(j); })) {
          t.drop_row(i);
        }
      }
    }
  }

  // ---- Phase 2: the real objective (artificial columns barred) ----
  std::vector<double> phase2_cost(art_base + num_art, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = p.objective[j];
  t.set_costs(phase2_cost);
  const LpStatus st =
      run_to_optimality(t, opts, [&](int j) { return !is_artificial(j); });
  if (st != LpStatus::Optimal) {
    sol.status = st;
    return sol;
  }

  sol.status = LpStatus::Optimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    const int bj = t.basis_at(i);
    if (bj >= 0 && static_cast<std::size_t>(bj) < n) {
      sol.x[static_cast<std::size_t>(bj)] = t.rhs_at(i);
    }
  }
  sol.objective_value = t.objective_value();
  return sol;
}

}  // namespace psd::flow
