#include "psd/flow/commodity.hpp"

namespace psd::flow {

std::vector<Commodity> commodities_from_matching(const topo::Matching& m) {
  std::vector<Commodity> out;
  out.reserve(static_cast<std::size_t>(m.active_pairs()));
  for (const auto& [s, d] : m.pairs()) {
    out.push_back(Commodity{s, d, 1.0});
  }
  return out;
}

std::vector<double> normalized_capacities(const topo::Graph& g, Bandwidth b_ref) {
  PSD_REQUIRE(b_ref.bytes_per_ns() > 0.0, "reference bandwidth must be positive");
  std::vector<double> caps(static_cast<std::size_t>(g.num_edges()));
  for (int e = 0; e < g.num_edges(); ++e) {
    caps[static_cast<std::size_t>(e)] =
        g.edge(e).capacity.bytes_per_ns() / b_ref.bytes_per_ns();
  }
  return caps;
}

}  // namespace psd::flow
