#include "psd/flow/commodity.hpp"

namespace psd::flow {

std::vector<Commodity> commodities_from_matching(const topo::Matching& m) {
  std::vector<Commodity> out;
  out.reserve(static_cast<std::size_t>(m.active_pairs()));
  const auto& dst = m.destinations();
  for (int s = 0; s < m.size(); ++s) {
    const int d = dst[static_cast<std::size_t>(s)];
    if (d != -1) out.push_back(Commodity{s, d, 1.0});
  }
  return out;
}

std::vector<double> normalized_capacities(const topo::Graph& g, Bandwidth b_ref) {
  PSD_REQUIRE(b_ref.bytes_per_ns() > 0.0, "reference bandwidth must be positive");
  std::vector<double> caps(static_cast<std::size_t>(g.num_edges()));
  for (int e = 0; e < g.num_edges(); ++e) {
    caps[static_cast<std::size_t>(e)] =
        g.edge(e).capacity.bytes_per_ns() / b_ref.bytes_per_ns();
  }
  return caps;
}

void FlowAssignment::reset(int num_edges, std::size_t commodity_hint,
                           std::size_t entry_hint) {
  PSD_REQUIRE(num_edges >= 0, "edge count must be non-negative");
  offsets_.clear();
  offsets_.reserve(commodity_hint + 1);
  offsets_.push_back(0);
  edges_.clear();
  edges_.reserve(entry_hint);
  rates_.clear();
  rates_.reserve(entry_hint);
  num_edges_ = num_edges;
  loads_.clear();
  loads_built_ = false;
}

void FlowAssignment::begin_commodity() { offsets_.push_back(edges_.size()); }

void FlowAssignment::merge_duplicates() {
  // Per commodity: keep the first occurrence of each edge and fold later
  // occurrences into it, preserving chronological summation order. The
  // scratch map is edge-indexed and reset via the touched list, so the whole
  // pass is O(entries + E) with no hashing.
  std::vector<std::size_t> slot(static_cast<std::size_t>(num_edges_),
                                static_cast<std::size_t>(-1));
  std::size_t write = 0;
  std::size_t read = 0;
  for (std::size_t k = 0; k < num_commodities(); ++k) {
    const std::size_t end = offsets_[k + 1];
    const std::size_t out_begin = write;
    for (; read < end; ++read) {
      const auto e = static_cast<std::size_t>(edges_[read]);
      if (slot[e] == static_cast<std::size_t>(-1)) {
        slot[e] = write;
        edges_[write] = edges_[read];
        rates_[write] = rates_[read];
        ++write;
      } else {
        rates_[slot[e]] += rates_[read];
      }
    }
    for (std::size_t i = out_begin; i < write; ++i) {
      slot[static_cast<std::size_t>(edges_[i])] = static_cast<std::size_t>(-1);
    }
    offsets_[k + 1] = write;
  }
  edges_.resize(write);
  rates_.resize(write);
  loads_built_ = false;
}

void FlowAssignment::coalesce_entries(
    std::vector<std::pair<topo::EdgeId, double>>& entries,
    std::vector<std::size_t>& slot_scratch) {
  // First-seen in-place merge with chronological summation — the bitwise
  // contract the golden equivalence tests pin (see merge_duplicates, which
  // implements the same algorithm over the CSR's parallel arrays).
  std::size_t write = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto e = static_cast<std::size_t>(entries[i].first);
    if (slot_scratch[e] == static_cast<std::size_t>(-1)) {
      slot_scratch[e] = write;
      entries[write++] = entries[i];
    } else {
      entries[slot_scratch[e]].second += entries[i].second;
    }
  }
  for (std::size_t i = 0; i < write; ++i) {
    slot_scratch[static_cast<std::size_t>(entries[i].first)] =
        static_cast<std::size_t>(-1);
  }
  entries.resize(write);
}

void FlowAssignment::scale(double factor) {
  for (double& r : rates_) r *= factor;
  loads_built_ = false;
}

std::span<const topo::EdgeId> FlowAssignment::edges(std::size_t k) const {
  PSD_REQUIRE(k < num_commodities(), "commodity index out of range");
  return {edges_.data() + offsets_[k], offsets_[k + 1] - offsets_[k]};
}

std::span<const double> FlowAssignment::rates(std::size_t k) const {
  PSD_REQUIRE(k < num_commodities(), "commodity index out of range");
  return {rates_.data() + offsets_[k], offsets_[k + 1] - offsets_[k]};
}

double FlowAssignment::at(std::size_t k, topo::EdgeId e) const {
  PSD_REQUIRE(k < num_commodities(), "commodity index out of range");
  double total = 0.0;
  for (std::size_t i = offsets_[k]; i < offsets_[k + 1]; ++i) {
    if (edges_[i] == e) total += rates_[i];
  }
  return total;
}

const std::vector<double>& FlowAssignment::edge_loads() const {
  if (!loads_built_) {
    loads_.assign(static_cast<std::size_t>(num_edges_), 0.0);
    // Commodity-major accumulation: per edge, contributions sum in ascending
    // commodity order — the same order the former dense sweep used.
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      loads_[static_cast<std::size_t>(edges_[i])] += rates_[i];
    }
    loads_built_ = true;
  }
  return loads_;
}

void FlowAssignment::set_edge_loads(std::vector<double> loads) {
  PSD_REQUIRE(loads.size() == static_cast<std::size_t>(num_edges_),
              "edge load vector size mismatch");
  loads_ = std::move(loads);
  loads_built_ = true;
}

std::vector<std::vector<double>> FlowAssignment::densify() const {
  std::vector<std::vector<double>> dense(
      num_commodities(),
      std::vector<double>(static_cast<std::size_t>(num_edges_), 0.0));
  for (std::size_t k = 0; k < num_commodities(); ++k) {
    for (std::size_t i = offsets_[k]; i < offsets_[k + 1]; ++i) {
      dense[k][static_cast<std::size_t>(edges_[i])] += rates_[i];
    }
  }
  return dense;
}

}  // namespace psd::flow
