#include "psd/flow/rate_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

RateAllocation concurrent_flow_allocation(const topo::Graph& g,
                                          const std::vector<Commodity>& commodities,
                                          Bandwidth b_ref, double epsilon) {
  RateAllocation out;
  if (commodities.empty()) return out;

  double theta = 0.0;
  // Matching-shaped commodity sets on a directed ring solve exactly.
  topo::Matching as_matching(g.num_nodes());
  bool matching_shaped = true;
  for (const auto& c : commodities) {
    if (c.demand != 1.0 || as_matching.dst_of(c.src) != -1 ||
        as_matching.src_of(c.dst) != -1 || c.src == c.dst) {
      matching_shaped = false;
      break;
    }
    as_matching.set(c.src, c.dst);
  }
  if (matching_shaped) {
    if (const auto ring = ring_theta_only(g, as_matching, b_ref)) {
      theta = *ring;
    }
  }
  if (theta == 0.0) {
    GargKonemannOptions gk;
    gk.epsilon = epsilon;
    theta = gk_theta_only(g, commodities, b_ref, gk);
  }

  out.rate.reserve(commodities.size());
  for (const auto& c : commodities) out.rate.push_back(theta * c.demand);
  out.path.assign(commodities.size(), {});
  return out;
}

RateAllocation max_min_fair_allocation(const topo::Graph& g,
                                       const std::vector<Commodity>& commodities,
                                       Bandwidth b_ref) {
  RateAllocation out;
  const std::size_t K = commodities.size();
  if (K == 0) return out;
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  const auto caps = normalized_capacities(g, b_ref);

  // Route every commodity on a hop-shortest path.
  out.path.resize(K);
  std::vector<double> unit_len(E, 1.0);
  for (std::size_t k = 0; k < K; ++k) {
    const auto& c = commodities[k];
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    // Single-destination query: stop the search once c.dst settles.
    const auto dj = topo::dijkstra(g, c.src, unit_len, c.dst);
    out.path[k] = topo::extract_path(g, dj, c.src, c.dst);
    PSD_REQUIRE(!out.path[k].empty(), "commodity endpoints disconnected");
  }

  // Progressive filling.
  out.rate.assign(K, 0.0);
  std::vector<bool> frozen(K, false);
  std::vector<double> residual = caps;
  std::vector<int> active_on_edge(E, 0);
  for (std::size_t k = 0; k < K; ++k) {
    for (topo::EdgeId e : out.path[k]) ++active_on_edge[static_cast<std::size_t>(e)];
  }

  std::size_t remaining = K;
  while (remaining > 0) {
    double step = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < E; ++e) {
      if (active_on_edge[e] > 0) {
        step = std::min(step, residual[e] / active_on_edge[e]);
      }
    }
    PSD_ASSERT(std::isfinite(step), "active flows must cross at least one edge");
    step = std::max(step, 0.0);

    for (std::size_t k = 0; k < K; ++k) {
      if (!frozen[k]) out.rate[k] += step;
    }
    for (std::size_t e = 0; e < E; ++e) {
      residual[e] -= step * active_on_edge[e];
    }

    // Freeze all flows crossing a saturated edge.
    std::vector<bool> saturated(E, false);
    for (std::size_t e = 0; e < E; ++e) {
      if (active_on_edge[e] > 0 && residual[e] <= 1e-12) saturated[e] = true;
    }
    bool froze_any = false;
    for (std::size_t k = 0; k < K; ++k) {
      if (frozen[k]) continue;
      const bool hit = std::any_of(
          out.path[k].begin(), out.path[k].end(),
          [&](topo::EdgeId e) { return saturated[static_cast<std::size_t>(e)]; });
      if (hit) {
        frozen[k] = true;
        --remaining;
        froze_any = true;
        for (topo::EdgeId e : out.path[k]) {
          --active_on_edge[static_cast<std::size_t>(e)];
        }
      }
    }
    PSD_ASSERT(froze_any || remaining == 0,
               "progressive filling must freeze at least one flow per round");
  }
  return out;
}

}  // namespace psd::flow
