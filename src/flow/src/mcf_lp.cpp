#include "psd/flow/mcf_lp.hpp"

#include <limits>

#include "psd/flow/simplex.hpp"
#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

ConcurrentFlowResult exact_concurrent_flow(const topo::Graph& g,
                                           const std::vector<Commodity>& commodities,
                                           Bandwidth b_ref) {
  ConcurrentFlowResult res;
  res.flow.reset(g.num_edges());
  if (commodities.empty()) {
    res.theta = std::numeric_limits<double>::infinity();
    return res;
  }
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
    // θ = 0 is always LP-feasible, so disconnection must be caught up front.
    const auto reach = topo::bfs_hops(g, c.src);
    PSD_REQUIRE(reach[static_cast<std::size_t>(c.dst)] != topo::kUnreachable,
                "commodity endpoints disconnected");
  }

  const std::size_t K = commodities.size();
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  const auto caps = normalized_capacities(g, b_ref);

  // Variable layout: f_{k,e} at k*E + e, then θ at index K*E.
  const int num_vars = static_cast<int>(K * E + 1);
  const std::size_t theta_var = K * E;

  LpProblem p;
  p.num_vars = num_vars;
  p.objective.assign(static_cast<std::size_t>(num_vars), 0.0);
  p.objective[theta_var] = 1.0;

  // Flow conservation per commodity and node, skipping each commodity's dst
  // (its row is implied by the others, and dropping it avoids redundancy).
  for (std::size_t k = 0; k < K; ++k) {
    const auto& c = commodities[k];
    for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == c.dst) continue;
      LpRow row;
      row.coeffs.assign(static_cast<std::size_t>(num_vars), 0.0);
      for (topo::EdgeId e : g.out_edges(v)) {
        row.coeffs[k * E + static_cast<std::size_t>(e)] += 1.0;
      }
      for (topo::EdgeId e : g.in_edges(v)) {
        row.coeffs[k * E + static_cast<std::size_t>(e)] -= 1.0;
      }
      row.coeffs[theta_var] = (v == c.src) ? -c.demand : 0.0;
      row.rel = Rel::Eq;
      row.rhs = 0.0;
      p.rows.push_back(std::move(row));
    }
  }

  // Capacity per edge.
  for (std::size_t e = 0; e < E; ++e) {
    LpRow row;
    row.coeffs.assign(static_cast<std::size_t>(num_vars), 0.0);
    for (std::size_t k = 0; k < K; ++k) row.coeffs[k * E + e] = 1.0;
    row.rel = Rel::LessEq;
    row.rhs = caps[e];
    p.rows.push_back(std::move(row));
  }

  const LpSolution sol = solve_lp(p);
  if (sol.status == LpStatus::Infeasible) {
    // θ = 0 is always feasible, so this indicates disconnected commodities.
    throw InvalidArgument("concurrent flow LP infeasible: commodity disconnected");
  }
  if (sol.status != LpStatus::Optimal) {
    throw NumericalError("simplex failed to solve the concurrent flow LP");
  }

  res.theta = sol.objective_value;
  // Simplex keeps most non-basic f_{k,e} at exactly 0.0; store only the
  // rest. densify() reproduces the former dense matrix bitwise.
  res.flow.reset(g.num_edges(), K);
  for (std::size_t k = 0; k < K; ++k) {
    res.flow.begin_commodity();
    for (std::size_t e = 0; e < E; ++e) {
      const double v = sol.x[k * E + e];
      if (v != 0.0) res.flow.push(static_cast<topo::EdgeId>(e), v);
    }
  }
  return res;
}

ConcurrentFlowResult exact_concurrent_flow(const topo::Graph& g,
                                           const topo::Matching& m,
                                           Bandwidth b_ref) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return exact_concurrent_flow(g, commodities_from_matching(m), b_ref);
}

}  // namespace psd::flow
