#include "psd/flow/garg_konemann.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "psd/topo/shortest_path.hpp"
#include "psd/util/thread_pool.hpp"

namespace psd::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double current_path_length(const std::vector<topo::EdgeId>& path,
                           const std::vector<double>& length) {
  double total = 0.0;
  for (topo::EdgeId e : path) total += length[static_cast<std::size_t>(e)];
  return total;
}

/// Allocation-free shortest-path engine for one commodity: epoch-stamped
/// scratch (no O(V) clears), a manual binary heap reusing its buffer, an
/// early stop once the destination settles, and a flat CSR adjacency
/// (topo::CsrAdjacency). The relaxation order and tie-breaks are exactly
/// topo::dijkstra's (the CSR stores arcs in out_edges order and both use a
/// lazy-deletion binary min-heap over (dist, node)), so the returned path
/// is identical — the golden equivalence tests pin this.
struct PathFinder {
  std::vector<double> dist;
  std::vector<topo::EdgeId> parent;
  std::vector<topo::NodeId> parent_node;
  std::vector<unsigned> stamp;
  unsigned epoch = 0;
  std::vector<std::pair<double, topo::NodeId>> heap;  // (dist, node) min-heap

  void touch(std::size_t v) {
    if (stamp[v] != epoch) {
      stamp[v] = epoch;
      dist[v] = kInf;
      parent[v] = -1;
      parent_node[v] = -1;
    }
  }

  void reset(std::size_t n) {
    if (dist.size() != n) {
      dist.assign(n, kInf);
      parent.assign(n, -1);
      parent_node.assign(n, -1);
      stamp.assign(n, 0);
      epoch = 0;
    }
    ++epoch;
    if (epoch == 0) {  // wrapped (engines are long-lived): avoid stale stamps
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    heap.clear();
  }

  static bool heap_greater(const std::pair<double, topo::NodeId>& a,
                           const std::pair<double, topo::NodeId>& b) {
    return a > b;
  }

  /// Returns dist(src, dst), filling `path_out` with the edge path (empty if
  /// unreachable). Stops as soon as dst is settled: the parent chain of a
  /// settled node is final, so the result matches a full run.
  double shortest_path(const topo::Graph& g, const topo::CsrAdjacency& fwd,
                       topo::NodeId src, topo::NodeId dst,
                       const std::vector<double>& arc_length,
                       std::vector<topo::EdgeId>& path_out) {
    reset(static_cast<std::size_t>(g.num_nodes()));
    path_out.clear();
    touch(static_cast<std::size_t>(src));
    dist[static_cast<std::size_t>(src)] = 0.0;
    heap.emplace_back(0.0, src);
    double dst_dist = kInf;
    while (!heap.empty()) {
      const auto [d, u] = heap.front();
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      heap.pop_back();
      const auto ui = static_cast<std::size_t>(u);
      if (stamp[ui] != epoch || d > dist[ui]) continue;  // stale entry
      if (u == dst) {
        dst_dist = d;
        break;
      }
      const int arc_end = fwd.head[ui + 1];
      for (int i = fwd.head[ui]; i < arc_end; ++i) {
        const auto ai = static_cast<std::size_t>(i);
        const double nd = d + arc_length[ai];
        const auto vi = static_cast<std::size_t>(fwd.to[ai]);
        touch(vi);
        if (nd < dist[vi]) {
          dist[vi] = nd;
          parent[vi] = fwd.eid[ai];
          heap.emplace_back(nd, fwd.to[ai]);
          std::push_heap(heap.begin(), heap.end(), heap_greater);
        }
      }
    }
    if (dst_dist == kInf) return kInf;
    for (topo::NodeId cur = dst; cur != src;) {
      const topo::EdgeId e = parent[static_cast<std::size_t>(cur)];
      path_out.push_back(e);
      cur = g.edge(e).src;
    }
    std::reverse(path_out.begin(), path_out.end());
    return dst_dist;
  }

  /// Multi-target variant for the phase schedule's same-source batches:
  /// settles nodes until every entry of `targets` is settled (or the queue
  /// empties), after which extract() reads each target's distance and path.
  /// k same-source commodities cost one search instead of k.
  void run_targets(const topo::CsrAdjacency& fwd, topo::NodeId src,
                   const std::vector<double>& arc_length,
                   std::span<const topo::NodeId> targets) {
    reset(fwd.head.size() - 1);
    touch(static_cast<std::size_t>(src));
    dist[static_cast<std::size_t>(src)] = 0.0;
    heap.emplace_back(0.0, src);
    std::size_t targets_left = targets.size();
    while (!heap.empty() && targets_left > 0) {
      const auto [d, u] = heap.front();
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      heap.pop_back();
      const auto ui = static_cast<std::size_t>(u);
      if (stamp[ui] != epoch || d > dist[ui]) continue;  // stale entry
      for (const topo::NodeId t : targets) {
        if (t == u) --targets_left;
      }
      if (targets_left == 0) break;
      const int arc_end = fwd.head[ui + 1];
      for (int i = fwd.head[ui]; i < arc_end; ++i) {
        const auto ai = static_cast<std::size_t>(i);
        const double nd = d + arc_length[ai];
        const auto vi = static_cast<std::size_t>(fwd.to[ai]);
        touch(vi);
        if (nd < dist[vi]) {
          dist[vi] = nd;
          parent[vi] = fwd.eid[ai];
          parent_node[vi] = u;
          heap.emplace_back(nd, fwd.to[ai]);
          std::push_heap(heap.begin(), heap.end(), heap_greater);
        }
      }
    }
  }

  /// Distance and edge path to a target settled by run_targets(); +inf and
  /// an empty path if the target never settled (disconnected).
  double extract(topo::NodeId src, topo::NodeId dst,
                 std::vector<topo::EdgeId>& path_out) const {
    path_out.clear();
    const auto di = static_cast<std::size_t>(dst);
    if (stamp[di] != epoch || dist[di] == kInf) return kInf;
    for (topo::NodeId cur = dst; cur != src;) {
      const auto ci = static_cast<std::size_t>(cur);
      const topo::EdgeId e = parent[ci];
      if (e < 0) {
        path_out.clear();
        return kInf;
      }
      path_out.push_back(e);
      cur = parent_node[ci];
    }
    std::reverse(path_out.begin(), path_out.end());
    return dist[di];
  }
};

/// Resolves a carried node path against the current graph. Returns false —
/// leaving `edges_out` empty — when the path no longer exists (wrong
/// endpoints, or a hop's edge was removed by a delta); the commodity then
/// takes the cold initial search.
bool resolve_node_path(const topo::Graph& g, const Commodity& c,
                       const std::vector<topo::NodeId>& nodes,
                       std::vector<topo::EdgeId>& edges_out) {
  edges_out.clear();
  if (nodes.size() < 2 || nodes.front() != c.src || nodes.back() != c.dst) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (!g.valid_node(nodes[i]) || !g.valid_node(nodes[i + 1])) {
      edges_out.clear();
      return false;
    }
    const topo::EdgeId e = g.find_edge(nodes[i], nodes[i + 1]);
    if (e < 0) {
      edges_out.clear();
      return false;
    }
    edges_out.push_back(e);
  }
  return true;
}

/// Shared engine for the full and θ-only entry points. When `materialize`
/// is false no per-commodity entries are recorded; only the aggregate edge
/// load needed for the feasibility rescale is tracked. `side` carries the
/// optional warm-restart / stats / support channels (see GkSideChannels).
ConcurrentFlowResult gk_run(const topo::Graph& g,
                            const std::vector<Commodity>& commodities,
                            Bandwidth b_ref, const GargKonemannOptions& opts,
                            bool materialize,
                            const GkSideChannels& side = {}) {
  PSD_REQUIRE(opts.epsilon > 0.0 && opts.epsilon < 0.5,
              "epsilon must be in (0, 0.5)");
  PSD_REQUIRE(opts.phase_visit_routings >= 1,
              "phase_visit_routings must be at least 1");
  ConcurrentFlowResult res;
  res.flow.reset(g.num_edges());
  if (commodities.empty()) {
    res.theta = kInf;
    if (side.stats != nullptr) *side.stats = {};
    if (side.warm != nullptr) side.warm->node_paths.clear();
    if (side.edge_loads != nullptr) {
      side.edge_loads->assign(static_cast<std::size_t>(g.num_edges()), 0.0);
    }
    return res;
  }
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
  }

  const std::size_t K = commodities.size();
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  PSD_REQUIRE(E > 0, "graph has no edges");
  const auto caps = normalized_capacities(g, b_ref);

  const double eps = opts.epsilon;
  const double delta =
      std::pow(static_cast<double>(E) / (1.0 - eps), -1.0 / eps);

  std::vector<double> length(E);
  for (std::size_t e = 0; e < E; ++e) length[e] = delta / caps[e];
  double dual_volume = static_cast<double>(E) * delta;  // Σ c_e · l_e

  topo::CsrAdjacency fwd;
  fwd.build(g);
  // Arc-order mirror of `length`: the relaxation loops read edge lengths in
  // arc order, so this keeps them gather-free. Updated alongside `length`
  // on every push (a push touches only its path's edges).
  std::vector<double> arc_length(E);
  for (std::size_t e = 0; e < E; ++e) {
    arc_length[static_cast<std::size_t>(fwd.arc_of_edge[e])] = length[e];
  }

  // Per-commodity cached shortest path. Reuse policy depends on the mode:
  // the (1+ε)³-window mode keeps a path while its current length is within
  // that factor of its distance at compute time; the phase mode keeps it
  // while its current length is under (1+ε)·(the global phase threshold).
  // Lengths only grow, so both tests certify the reused path as a
  // (1+ε)^O(1)-approximate shortest path (Fleischer's relaxation) and the
  // end-to-end guarantee stays (1 − O(ε)) — cross-validated against the
  // exact ring/LP solvers in tests.
  const double reuse_window = (1.0 + eps) * (1.0 + eps) * (1.0 + eps);
  std::vector<std::vector<topo::EdgeId>> path(K);
  std::vector<double> reuse_bound(K, -1.0);  // window·dist at compute; -1 = none
  std::vector<double> path_cap(K, 0.0);      // static bottleneck of path[k]
  // One scratch engine per thread, not per commodity: scratch contents
  // never influence results (epoch stamping isolates calls), so sharing
  // keeps the solver's footprint O(V·threads) instead of O(V·K) while the
  // parallel initial batch still gets race-free engines.
  // Search counter (atomic: the initial batches run on the pool). Relaxed
  // increments — the count is a diagnostic, not a synchronization point.
  std::atomic<long long> searches{0};
  const auto recompute_path = [&](std::size_t k) {
    static thread_local PathFinder finder;
    if (opts.cancel != nullptr) opts.cancel->check("gk solve cancelled");
    searches.fetch_add(1, std::memory_order_relaxed);
    const auto& c = commodities[k];
    const double d =
        finder.shortest_path(g, fwd, c.src, c.dst, arc_length, path[k]);
    PSD_REQUIRE(!path[k].empty(), "commodity endpoints disconnected");
    reuse_bound[k] = reuse_window * d;
    double cap = kInf;
    for (topo::EdgeId e : path[k]) {
      cap = std::min(cap, caps[static_cast<std::size_t>(e)]);
    }
    path_cap[k] = cap;
  };
  const auto path_is_fresh = [&](std::size_t k) {
    return reuse_bound[k] >= 0.0 &&
           current_path_length(path[k], length) <= reuse_bound[k];
  };

  const bool phase_mode = opts.warm_start && opts.phase_schedule;

  // Warm-restart seeding (see GkWarmState): re-resolve carried node paths
  // against the current graph; every hit skips its initial search. Only the
  // warm_start modes seed — warm_start=false stays the bit-exact cold
  // reference. A seeded commodity's reuse window starts from its carried
  // path's length under the *initial* (uniform) duals, which upper-bounds
  // its true distance, so the window is slightly looser than a fresh
  // search's — acceptable because carried paths were near-shortest in the
  // pre-delta solve (the churn property tests pin θ within (1+ε) of cold).
  std::vector<char> seeded(K, 0);
  std::size_t seeded_count = 0;
  if (opts.warm_start && side.warm != nullptr &&
      side.warm->node_paths.size() == K) {
    for (std::size_t k = 0; k < K; ++k) {
      if (resolve_node_path(g, commodities[k], side.warm->node_paths[k],
                            path[k])) {
        seeded[k] = 1;
        ++seeded_count;
      }
    }
  }

  if (opts.warm_start && !phase_mode) {
    // Initial batch: every unseeded commodity needs a path, and the lengths
    // are untouched, so the solves are independent read-only jobs — run
    // them on the shared pool. Results are bitwise identical to the serial
    // loop (disjoint per-commodity state).
    if (opts.parallel && K > 1) {
      try {
        util::ThreadPool::shared().parallel_for(K, [&](std::size_t k) {
          if (!seeded[k]) recompute_path(k);
        });
      } catch (const util::JobError& e) {
        // The parallel batch must throw exactly what the serial loop
        // throws (disconnected endpoints -> InvalidArgument, cancellation
        // -> Cancelled); strip the pool's index wrapper.
        e.rethrow_original();
      }
    } else {
      for (std::size_t k = 0; k < K; ++k) {
        if (!seeded[k]) recompute_path(k);
      }
    }
    for (std::size_t k = 0; k < K; ++k) {
      if (!seeded[k]) continue;
      const double plen = current_path_length(path[k], length);
      reuse_bound[k] = reuse_window * plen;
      double cap = kInf;
      for (topo::EdgeId e : path[k]) {
        cap = std::min(cap, caps[static_cast<std::size_t>(e)]);
      }
      path_cap[k] = cap;
    }
  }

  // Raw (edge, amount) entries per commodity, merged into the CSR result
  // at the end (a commodity's path pushes interleave with other
  // commodities', so direct commodity-major appends are impossible). Each
  // list is compacted in place once it exceeds 2E entries, bounding the
  // transient footprint at O(K·E) worst case instead of O(pushes·hops);
  // in-place first-seen merging accumulates per-edge sums in chronological
  // order, so compaction is invisible to the bitwise golden equivalence.
  std::vector<std::vector<std::pair<topo::EdgeId, double>>> raw;
  std::vector<std::size_t> compact_slot;  // edge -> slot scratch
  if (materialize) {
    raw.resize(K);
    compact_slot.assign(E, static_cast<std::size_t>(-1));
  }
  std::vector<double> load(E, 0.0);  // aggregate, for the rescale (θ-only path)
  std::vector<double> shipped(K, 0.0);

  long long pushes = 0;
  // Pushes `f` units along path[k], growing the multiplicative duals. One
  // shared body for the round-robin and phase schedules so their per-push
  // arithmetic is identical to the last bit.
  const auto push_along_path = [&](std::size_t k, double f) {
    for (topo::EdgeId e : path[k]) {
      const auto ei = static_cast<std::size_t>(e);
      if (materialize) {
        raw[k].emplace_back(e, f);
      } else {
        load[ei] += f;
      }
      const double old_len = length[ei];
      length[ei] = old_len * (1.0 + eps * f / caps[ei]);
      arc_length[static_cast<std::size_t>(fwd.arc_of_edge[ei])] = length[ei];
      dual_volume += caps[ei] * (length[ei] - old_len);
    }
    if (materialize && raw[k].size() > 2 * E) {
      FlowAssignment::coalesce_entries(raw[k], compact_slot);
    }
    shipped[k] += f;
  };

  if (!phase_mode) {
    // Round-robin schedule (the legacy reference when warm_start is off,
    // the (1+ε)³ reuse-window variant when it is on): visit commodities
    // cyclically, each visit routing its full demand.
    while (dual_volume < 1.0) {
      for (std::size_t k = 0; k < K && dual_volume < 1.0; ++k) {
        const auto& c = commodities[k];
        double remaining = c.demand;
        while (remaining > 1e-15 && dual_volume < 1.0) {
          PSD_REQUIRE(++pushes <= opts.max_path_pushes,
                      "Garg-Konemann exceeded max_path_pushes; epsilon too small?");
          if (opts.cancel != nullptr) opts.cancel->check("gk solve cancelled");
          if (!opts.warm_start || !path_is_fresh(k)) recompute_path(k);
          const double f = std::min(remaining, path_cap[k]);
          push_along_path(k, f);
          remaining -= f;
        }
      }
    }
  } else {
    // Phase schedule (Fleischer-style). Every commodity owns a phase
    // threshold on the global (1+ε) grid, always within one grid step above
    // a proven lower bound on its current shortest distance. A commodity
    // keeps pushing along its cached path while the path's dual length
    // stays under (1+ε)²·threshold — i.e. within (1+ε)³ of its true
    // distance, the same per-push approximation the reuse-window mode
    // certifies — and only a crossing triggers a search. The search is
    // batched per *source group* (k same-source commodities cost one SSSP,
    // refreshed opportunistically) and radius-capped at the expired path's
    // own length, which always upper-bounds the fresh distance; the bucket
    // engine quantizes dual lengths to q = ε·threshold/V so the cap is
    // ~V·(1+ε)³/ε buckets and settles them in one monotone integer sweep.
    //
    // The commodity *visit order and demand granularity stay exactly the
    // legacy round-robin*: a strictly global threshold that skips
    // not-yet-reached commodities sounds closer to Fleischer's
    // max-multicommodity loop, but concurrent flow scores min_k
    // shipped_k/demand_k, and a schedule that lets cheap commodities race
    // ahead strands the expensive ones at termination (θ collapses toward
    // zero). Per-commodity thresholds keep the fairness of the round-robin
    // while retaining every amortization the phase structure buys.
    const std::size_t V = static_cast<std::size_t>(g.num_nodes());
    const double grid = 1.0 + eps;

    // Same-source batches, in first-appearance order.
    std::vector<int> group_of_src(V, -1);
    struct Group {
      topo::NodeId src = -1;
      std::vector<std::size_t> members;
      std::vector<topo::NodeId> targets;
    };
    std::vector<Group> groups;
    std::vector<std::size_t> group_of(K);
    for (std::size_t k = 0; k < K; ++k) {
      const auto& c = commodities[k];
      int gi = group_of_src[static_cast<std::size_t>(c.src)];
      if (gi < 0) {
        gi = static_cast<int>(groups.size());
        group_of_src[static_cast<std::size_t>(c.src)] = gi;
        groups.push_back(Group{c.src, {}, {}});
      }
      groups[static_cast<std::size_t>(gi)].members.push_back(k);
      groups[static_cast<std::size_t>(gi)].targets.push_back(c.dst);
      group_of[k] = static_cast<std::size_t>(gi);
    }

    // threshold[k]: the commodity's phase value — ≥ a proven lower bound on
    // its current shortest distance (lower bounds stay valid forever since
    // lengths only grow) and ratcheted in (1+ε) steps as the distance
    // climbs. It scales the bucket engine's quantum and radius.
    // reuse_limit[k]: the push window — (1+ε)³ times the fresh path's
    // length at the last search, so every pushed path is within (1+ε)³ of
    // a (1+ε)-approximate shortest distance: the same (1 − O(ε)) budget as
    // the reuse-window mode, with the quantization slack folded in.
    std::vector<double> threshold(K, 0.0);
    std::vector<double> reuse_limit(K, 0.0);

    // Ratchets the threshold until the (fresh, just-computed) path fits the
    // window. `lb` is the new proven distance lower bound; the loop runs at
    // most a couple of steps because plen ≤ (1+ε)·distance for any fresh
    // path (exact for the heap engine, quantization-bounded for buckets).
    const auto ratchet = [&](std::size_t k, double lb, double plen) {
      threshold[k] = std::max(threshold[k], lb);
      const double win = grid * grid;
      while (win * threshold[k] < plen) threshold[k] *= grid;
      reuse_limit[k] = grid * grid * grid * plen;
    };

    const auto refresh_cap = [&](std::size_t k) {
      double cap = kInf;
      for (topo::EdgeId e : path[k]) {
        cap = std::min(cap, caps[static_cast<std::size_t>(e)]);
      }
      path_cap[k] = cap;
    };

    const auto refresh_member_exact = [&](const PathFinder& finder,
                                          std::size_t k) {
      const auto& c = commodities[k];
      const double d = finder.extract(c.src, c.dst, path[k]);
      PSD_REQUIRE(!path[k].empty(), "commodity endpoints disconnected");
      refresh_cap(k);
      ratchet(k, d, d);
    };

    // Initial batch: one exact multi-target Dijkstra per source group (the
    // exact distances seed the phase thresholds), parallel across groups —
    // lengths are untouched, so the group solves are independent read-only
    // jobs and results are bitwise identical to the serial loop.
    const auto initial_group = [&](std::size_t gi) {
      static thread_local PathFinder finder;
      if (opts.cancel != nullptr) opts.cancel->check("gk solve cancelled");
      const auto& grp = groups[gi];
      if (seeded_count == 0) {
        searches.fetch_add(1, std::memory_order_relaxed);
        finder.run_targets(fwd, grp.src, arc_length, grp.targets);
        for (const std::size_t k : grp.members) {
          refresh_member_exact(finder, k);
        }
        return;
      }
      // Warm restart: only the unseeded members search; a group whose
      // members all carried valid paths skips its SSSP entirely — that
      // skip is where the delta-restart speedup comes from. Seeded members
      // get a deliberately *tight* window — threshold one grid window
      // below the carried length, lease (1+ε)² instead of (1+ε)³ — so a
      // carried path that the delta pushed off-optimal is re-searched
      // after little flow lands on it.
      std::vector<std::size_t> pending;
      std::vector<topo::NodeId> pending_targets;
      for (const std::size_t k : grp.members) {
        if (seeded[k]) continue;
        pending.push_back(k);
        pending_targets.push_back(commodities[k].dst);
      }
      if (!pending.empty()) {
        searches.fetch_add(1, std::memory_order_relaxed);
        finder.run_targets(fwd, grp.src, arc_length, pending_targets);
        for (const std::size_t k : pending) refresh_member_exact(finder, k);
      }
      for (const std::size_t k : grp.members) {
        if (!seeded[k]) continue;
        const double plen = current_path_length(path[k], length);
        refresh_cap(k);
        threshold[k] = plen / (grid * grid);
        reuse_limit[k] = grid * grid * plen;
      }
    };
    if (opts.parallel && groups.size() > 1) {
      try {
        util::ThreadPool::shared().parallel_for(groups.size(), initial_group);
      } catch (const util::JobError& e) {
        e.rethrow_original();  // see the round-robin batch above
      }
    } else {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) initial_group(gi);
    }

    // Engines for the serial push loop (one live search at a time). The
    // bucket engine needs ~2(1+ε)²·V/ε buckets; beyond its radius guard
    // (huge V at tiny ε) fall back to the exact heap engine instead of
    // aborting mid-solve.
    PathFinder heap_finder;
    topo::BucketQueueSssp bucket;
    const double bucket_cap =
        2.0 * std::ceil(grid * grid * static_cast<double>(V) / eps);
    const bool use_bucket =
        opts.sp_engine == GkSpEngine::kBucketQueue &&
        bucket_cap <= static_cast<double>(topo::BucketQueueSssp::kMaxRadius);
    const std::int32_t radius_cap =
        use_bucket ? static_cast<std::int32_t>(bucket_cap) : 0;

    // One batched search for k's source group, radius-capped at k's expired
    // path length (the fresh shortest distance can never exceed the length
    // of a path that exists) and at a fixed number of buckets. Members
    // whose destinations settle within the cap are refreshed for free; the
    // others keep their caches — their own expiry will trigger their own
    // search. If k itself fails to settle — its distance outran its phase
    // threshold while it waited its round-robin turn — the cap has *proven*
    // d > 2(1+ε)²·threshold, so the threshold ratchets one grid step (still
    // ≤ d/(1+ε), preserving the window invariant) and the search retries at
    // the coarser quantum; the retries are geometric, each costs one cheap
    // capped sweep, and every one advances k's phase permanently.
    const auto recompute_group = [&](std::size_t k, double expired_len) {
      const Group& grp = groups[group_of[k]];
      const auto& ck = commodities[k];
      if (use_bucket) {
        for (;;) {
          searches.fetch_add(1, std::memory_order_relaxed);
          const double q = eps * threshold[k] / static_cast<double>(V);
          const auto radius = std::min(
              static_cast<std::int32_t>(
                  std::min(std::floor(expired_len / q),
                           static_cast<double>(radius_cap))) + 1,
              radius_cap);
          bucket.run(fwd, grp.src, arc_length, q, radius, grp.targets);
          if (bucket.quantized_dist(ck.dst) ==
              topo::BucketQueueSssp::kUnsettled) {
            // Only possible at the fixed cap (the expired path itself fits
            // the radius otherwise), which proves d > 2(1+ε)²·threshold:
            // ratchet one grid step (still ≤ d/(1+ε)) and retry coarser.
            threshold[k] *= grid;
            continue;
          }
          for (const std::size_t m : grp.members) {
            const auto& c = commodities[m];
            const std::int32_t qd = bucket.quantized_dist(c.dst);
            if (qd == topo::BucketQueueSssp::kUnsettled) continue;
            const double lb = q * static_cast<double>(qd);
            // Opportunistic refresh only at a compatible scale: this
            // search's quantization slack is ε·threshold[k] — the
            // *trigger's* scale. A member whose distance is far below it
            // could have a near-optimal cached path replaced by a detour
            // of pure quantization noise (and its lease inflated to
            // match); skip those — their own expiry searches at their own
            // quantum. The trigger always qualifies by construction.
            if (m != k && lb * (1.0 + eps) < threshold[k]) continue;
            bucket.extract_path(grp.src, c.dst, path[m]);
            PSD_ASSERT(!path[m].empty(), "settled target lost its parent chain");
            refresh_cap(m);
            ratchet(m, lb, current_path_length(path[m], length));
          }
          break;
        }
      } else {
        searches.fetch_add(1, std::memory_order_relaxed);
        heap_finder.run_targets(fwd, grp.src, arc_length, grp.targets);
        for (const std::size_t m : grp.members) {
          refresh_member_exact(heap_finder, m);
        }
      }
    };

    // Per visit a commodity routes `phase_visit_routings` full demands —
    // Fleischer's repeated per-phase routings. One search amortizes over
    // the whole batch (the lease usually survives a routing's self-growth
    // of ×(1+ε); mid-visit expiries re-search and continue). Fairness is
    // exact — every commodity ships the same batch per round — and the
    // termination imbalance grows from one to B demand units, vanishing
    // against the hundreds of rounds a solve runs.
    const double batch = static_cast<double>(opts.phase_visit_routings);
    while (dual_volume < 1.0) {
      for (std::size_t k = 0; k < K && dual_volume < 1.0; ++k) {
        const auto& c = commodities[k];
        double remaining = c.demand * batch;
        while (remaining > 1e-15 && dual_volume < 1.0) {
          PSD_REQUIRE(++pushes <= opts.max_path_pushes,
                      "Garg-Konemann exceeded max_path_pushes; epsilon too small?");
          if (opts.cancel != nullptr) opts.cancel->check("gk solve cancelled");
          const double plen = current_path_length(path[k], length);
          if (plen > reuse_limit[k]) recompute_group(k, plen);
          const double f = std::min(remaining, path_cap[k]);
          push_along_path(k, f);
          remaining -= f;
        }
      }
    }
  }

  // Rescale to strict feasibility: divide by the worst capacity violation.
  if (materialize) {
    std::size_t total_entries = 0;
    for (const auto& r : raw) total_entries += r.size();
    res.flow.reset(g.num_edges(), K, total_entries);
    for (std::size_t k = 0; k < K; ++k) {
      res.flow.begin_commodity();
      for (const auto& [e, f] : raw[k]) res.flow.push(e, f);
    }
    // Coalescing sums chronologically per (commodity, edge) and the load
    // aggregate sums commodity-major per edge — both exactly the orders the
    // former dense representation produced, so the rescaled flows densify
    // bitwise-identically to it.
    res.flow.merge_duplicates();
    load = res.flow.edge_loads();
  }
  double violation = 0.0;
  for (std::size_t e = 0; e < E; ++e) {
    violation = std::max(violation, load[e] / caps[e]);
  }
  PSD_ASSERT(violation > 0.0, "GK pushed no flow despite non-empty demand");
  const double inv = 1.0 / violation;
  if (materialize) res.flow.scale(inv);
  double theta = kInf;
  for (std::size_t k = 0; k < K; ++k) {
    theta = std::min(theta, shipped[k] * inv / commodities[k].demand);
  }
  res.theta = theta;

  if (side.stats != nullptr) {
    side.stats->path_pushes = pushes;
    side.stats->sssp_searches = searches.load(std::memory_order_relaxed);
  }
  if (side.edge_loads != nullptr) {
    side.edge_loads->resize(E);
    for (std::size_t e = 0; e < E; ++e) (*side.edge_loads)[e] = load[e] * inv;
  }
  if (side.warm != nullptr) {
    // Harvest the final routed paths as node sequences (edge ids don't
    // survive remove_edge's renumbering; node pairs do).
    auto& out = side.warm->node_paths;
    out.assign(K, {});
    for (std::size_t k = 0; k < K; ++k) {
      out[k].reserve(path[k].size() + 1);
      out[k].push_back(commodities[k].src);
      for (topo::EdgeId e : path[k]) out[k].push_back(g.edge(e).dst);
    }
  }
  return res;
}

}  // namespace

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const std::vector<Commodity>& commodities,
                                        Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  return gk_run(g, commodities, b_ref, opts, /*materialize=*/true);
}

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const topo::Matching& m, Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return gk_concurrent_flow(g, commodities_from_matching(m), b_ref, opts);
}

double gk_theta_only(const topo::Graph& g,
                     const std::vector<Commodity>& commodities, Bandwidth b_ref,
                     const GargKonemannOptions& opts) {
  return gk_run(g, commodities, b_ref, opts, /*materialize=*/false).theta;
}

double gk_theta_only(const topo::Graph& g, const topo::Matching& m,
                     Bandwidth b_ref, const GargKonemannOptions& opts) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return gk_theta_only(g, commodities_from_matching(m), b_ref, opts);
}

double gk_theta_only_ex(const topo::Graph& g,
                        const std::vector<Commodity>& commodities,
                        Bandwidth b_ref, const GargKonemannOptions& opts,
                        const GkSideChannels& side) {
  return gk_run(g, commodities, b_ref, opts, /*materialize=*/false, side).theta;
}

}  // namespace psd::flow
