#include "psd/flow/garg_konemann.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "psd/util/thread_pool.hpp"

namespace psd::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double current_path_length(const std::vector<topo::EdgeId>& path,
                           const std::vector<double>& length) {
  double total = 0.0;
  for (topo::EdgeId e : path) total += length[static_cast<std::size_t>(e)];
  return total;
}

/// Flat adjacency copy of the graph: the push loop runs one shortest-path
/// query per push — tens of thousands per solve — and the Graph's
/// vector-of-vectors adjacency plus Edge-struct hops dominated the search's
/// memory traffic.
struct Csr {
  std::vector<int> head;              // size V+1
  std::vector<topo::NodeId> to;       // neighbour of the arc
  std::vector<topo::EdgeId> eid;      // underlying edge id
  std::vector<int> arc_of_edge;       // inverse of eid (edges appear once)

  void build(const topo::Graph& g) {
    const int V = g.num_nodes();
    head.assign(static_cast<std::size_t>(V) + 1, 0);
    to.resize(static_cast<std::size_t>(g.num_edges()));
    eid.resize(static_cast<std::size_t>(g.num_edges()));
    arc_of_edge.resize(static_cast<std::size_t>(g.num_edges()));
    std::size_t at = 0;
    for (topo::NodeId v = 0; v < V; ++v) {
      head[static_cast<std::size_t>(v)] = static_cast<int>(at);
      // Arcs in out_edges order: the relaxation order (and therefore every
      // tie-break) matches a loop over g.out_edges exactly.
      for (topo::EdgeId e : g.out_edges(v)) {
        to[at] = g.edge(e).dst;
        eid[at] = e;
        arc_of_edge[static_cast<std::size_t>(e)] = static_cast<int>(at);
        ++at;
      }
    }
    head[static_cast<std::size_t>(V)] = static_cast<int>(at);
  }
};

/// Allocation-free shortest-path engine for one commodity: epoch-stamped
/// scratch (no O(V) clears), a manual binary heap reusing its buffer, an
/// early stop once the destination settles, and a flat CSR adjacency. The
/// relaxation order and tie-breaks are exactly topo::dijkstra's (the CSR
/// stores arcs in out_edges order and both use a lazy-deletion binary
/// min-heap over (dist, node)), so the returned path is identical — the
/// golden equivalence tests pin this.
struct PathFinder {
  std::vector<double> dist;
  std::vector<topo::EdgeId> parent;
  std::vector<unsigned> stamp;
  unsigned epoch = 0;
  std::vector<std::pair<double, topo::NodeId>> heap;  // (dist, node) min-heap

  void touch(std::size_t v) {
    if (stamp[v] != epoch) {
      stamp[v] = epoch;
      dist[v] = kInf;
      parent[v] = -1;
    }
  }

  static bool heap_greater(const std::pair<double, topo::NodeId>& a,
                           const std::pair<double, topo::NodeId>& b) {
    return a > b;
  }

  /// Returns dist(src, dst), filling `path_out` with the edge path (empty if
  /// unreachable). Stops as soon as dst is settled: the parent chain of a
  /// settled node is final, so the result matches a full run.
  double shortest_path(const topo::Graph& g, const Csr& fwd, topo::NodeId src,
                       topo::NodeId dst, const std::vector<double>& arc_length,
                       std::vector<topo::EdgeId>& path_out) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    if (dist.size() != n) {
      dist.assign(n, kInf);
      parent.assign(n, -1);
      stamp.assign(n, 0);
      epoch = 0;
    }
    ++epoch;
    if (epoch == 0) {  // wrapped (engines are long-lived): avoid stale stamps
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    heap.clear();
    path_out.clear();
    touch(static_cast<std::size_t>(src));
    dist[static_cast<std::size_t>(src)] = 0.0;
    heap.emplace_back(0.0, src);
    double dst_dist = kInf;
    while (!heap.empty()) {
      const auto [d, u] = heap.front();
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      heap.pop_back();
      const auto ui = static_cast<std::size_t>(u);
      if (stamp[ui] != epoch || d > dist[ui]) continue;  // stale entry
      if (u == dst) {
        dst_dist = d;
        break;
      }
      const int arc_end = fwd.head[ui + 1];
      for (int i = fwd.head[ui]; i < arc_end; ++i) {
        const auto ai = static_cast<std::size_t>(i);
        const double nd = d + arc_length[ai];
        const auto vi = static_cast<std::size_t>(fwd.to[ai]);
        touch(vi);
        if (nd < dist[vi]) {
          dist[vi] = nd;
          parent[vi] = fwd.eid[ai];
          heap.emplace_back(nd, fwd.to[ai]);
          std::push_heap(heap.begin(), heap.end(), heap_greater);
        }
      }
    }
    if (dst_dist == kInf) return kInf;
    for (topo::NodeId cur = dst; cur != src;) {
      const topo::EdgeId e = parent[static_cast<std::size_t>(cur)];
      path_out.push_back(e);
      cur = g.edge(e).src;
    }
    std::reverse(path_out.begin(), path_out.end());
    return dst_dist;
  }
};

/// Shared engine for the full and θ-only entry points. When `materialize`
/// is false no per-commodity entries are recorded; only the aggregate edge
/// load needed for the feasibility rescale is tracked.
ConcurrentFlowResult gk_run(const topo::Graph& g,
                            const std::vector<Commodity>& commodities,
                            Bandwidth b_ref, const GargKonemannOptions& opts,
                            bool materialize) {
  PSD_REQUIRE(opts.epsilon > 0.0 && opts.epsilon < 0.5,
              "epsilon must be in (0, 0.5)");
  ConcurrentFlowResult res;
  res.flow.reset(g.num_edges());
  if (commodities.empty()) {
    res.theta = kInf;
    return res;
  }
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
  }

  const std::size_t K = commodities.size();
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  PSD_REQUIRE(E > 0, "graph has no edges");
  const auto caps = normalized_capacities(g, b_ref);

  const double eps = opts.epsilon;
  const double delta =
      std::pow(static_cast<double>(E) / (1.0 - eps), -1.0 / eps);

  std::vector<double> length(E);
  for (std::size_t e = 0; e < E; ++e) length[e] = delta / caps[e];
  double dual_volume = static_cast<double>(E) * delta;  // Σ c_e · l_e

  Csr fwd;
  fwd.build(g);
  // Arc-order mirror of `length`: the Dijkstra relaxation loop reads edge
  // lengths in arc order, so this keeps it gather-free. Updated alongside
  // `length` on every push (a push touches only its path's edges).
  std::vector<double> arc_length(E);
  for (std::size_t e = 0; e < E; ++e) {
    arc_length[static_cast<std::size_t>(fwd.arc_of_edge[e])] = length[e];
  }

  // Per-commodity cached shortest path. It stays usable while its current
  // length is within (1+ε)³ of its distance at compute time: lengths only
  // grow, so that distance lower-bounds the current shortest distance for
  // all time, making any reused path a (1+ε)³-approximate shortest path —
  // extra (1+ε) factors in Fleischer's analysis, still a (1−O(ε))
  // guarantee (cross-validated against the exact ring/LP solvers in
  // tests). The window must exceed one round's worst-case growth of the
  // path — ×(1+ε) from the commodity's own saturating push plus the growth
  // contributed by commodities sharing its edges — else it never fires and
  // the solver degenerates to one Dijkstra per push.
  const double reuse_window = (1.0 + eps) * (1.0 + eps) * (1.0 + eps);
  std::vector<std::vector<topo::EdgeId>> path(K);
  std::vector<double> reuse_bound(K, -1.0);  // window·dist at compute; -1 = none
  std::vector<double> path_cap(K, 0.0);      // static bottleneck of path[k]
  // One scratch engine per thread, not per commodity: scratch contents
  // never influence results (epoch stamping isolates calls), so sharing
  // keeps the solver's footprint O(V·threads) instead of O(V·K) while the
  // parallel initial batch still gets race-free engines.
  const auto recompute_path = [&](std::size_t k) {
    static thread_local PathFinder finder;
    const auto& c = commodities[k];
    const double d =
        finder.shortest_path(g, fwd, c.src, c.dst, arc_length, path[k]);
    PSD_REQUIRE(!path[k].empty(), "commodity endpoints disconnected");
    reuse_bound[k] = reuse_window * d;
    double cap = kInf;
    for (topo::EdgeId e : path[k]) {
      cap = std::min(cap, caps[static_cast<std::size_t>(e)]);
    }
    path_cap[k] = cap;
  };
  const auto path_is_fresh = [&](std::size_t k) {
    return reuse_bound[k] >= 0.0 &&
           current_path_length(path[k], length) <= reuse_bound[k];
  };

  if (opts.warm_start) {
    // Initial batch: every commodity needs a path, and the lengths are
    // untouched, so the K solves are independent read-only jobs — run them
    // on the shared pool. Results are bitwise identical to the serial loop
    // (disjoint per-commodity state).
    if (opts.parallel && K > 1) {
      util::ThreadPool::shared().parallel_for(
          K, [&](std::size_t k) { recompute_path(k); });
    } else {
      for (std::size_t k = 0; k < K; ++k) recompute_path(k);
    }
  }

  // Raw (edge, amount) entries per commodity, merged into the CSR result
  // at the end (a commodity's path pushes interleave with other
  // commodities', so direct commodity-major appends are impossible). Each
  // list is compacted in place once it exceeds 2E entries, bounding the
  // transient footprint at O(K·E) worst case instead of O(pushes·hops);
  // in-place first-seen merging accumulates per-edge sums in chronological
  // order, so compaction is invisible to the bitwise golden equivalence.
  std::vector<std::vector<std::pair<topo::EdgeId, double>>> raw;
  std::vector<std::size_t> compact_slot;  // edge -> slot scratch
  if (materialize) {
    raw.resize(K);
    compact_slot.assign(E, static_cast<std::size_t>(-1));
  }
  std::vector<double> load(E, 0.0);  // aggregate, for the rescale (θ-only path)
  std::vector<double> shipped(K, 0.0);

  long long pushes = 0;
  while (dual_volume < 1.0) {
    for (std::size_t k = 0; k < K && dual_volume < 1.0; ++k) {
      const auto& c = commodities[k];
      double remaining = c.demand;
      while (remaining > 1e-15 && dual_volume < 1.0) {
        PSD_REQUIRE(++pushes <= opts.max_path_pushes,
                    "Garg-Konemann exceeded max_path_pushes; epsilon too small?");
        if (!opts.warm_start || !path_is_fresh(k)) recompute_path(k);
        const auto& p = path[k];
        const double f = std::min(remaining, path_cap[k]);
        for (topo::EdgeId e : p) {
          const auto ei = static_cast<std::size_t>(e);
          if (materialize) {
            raw[k].emplace_back(e, f);
          } else {
            load[ei] += f;
          }
          const double old_len = length[ei];
          length[ei] = old_len * (1.0 + eps * f / caps[ei]);
          arc_length[static_cast<std::size_t>(fwd.arc_of_edge[ei])] = length[ei];
          dual_volume += caps[ei] * (length[ei] - old_len);
        }
        if (materialize && raw[k].size() > 2 * E) {
          FlowAssignment::coalesce_entries(raw[k], compact_slot);
        }
        shipped[k] += f;
        remaining -= f;
      }
    }
  }

  // Rescale to strict feasibility: divide by the worst capacity violation.
  if (materialize) {
    std::size_t total_entries = 0;
    for (const auto& r : raw) total_entries += r.size();
    res.flow.reset(g.num_edges(), K, total_entries);
    for (std::size_t k = 0; k < K; ++k) {
      res.flow.begin_commodity();
      for (const auto& [e, f] : raw[k]) res.flow.push(e, f);
    }
    // Coalescing sums chronologically per (commodity, edge) and the load
    // aggregate sums commodity-major per edge — both exactly the orders the
    // former dense representation produced, so the rescaled flows densify
    // bitwise-identically to it.
    res.flow.merge_duplicates();
    load = res.flow.edge_loads();
  }
  double violation = 0.0;
  for (std::size_t e = 0; e < E; ++e) {
    violation = std::max(violation, load[e] / caps[e]);
  }
  PSD_ASSERT(violation > 0.0, "GK pushed no flow despite non-empty demand");
  const double inv = 1.0 / violation;
  if (materialize) res.flow.scale(inv);
  double theta = kInf;
  for (std::size_t k = 0; k < K; ++k) {
    theta = std::min(theta, shipped[k] * inv / commodities[k].demand);
  }
  res.theta = theta;
  return res;
}

}  // namespace

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const std::vector<Commodity>& commodities,
                                        Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  return gk_run(g, commodities, b_ref, opts, /*materialize=*/true);
}

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const topo::Matching& m, Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return gk_concurrent_flow(g, commodities_from_matching(m), b_ref, opts);
}

double gk_theta_only(const topo::Graph& g,
                     const std::vector<Commodity>& commodities, Bandwidth b_ref,
                     const GargKonemannOptions& opts) {
  return gk_run(g, commodities, b_ref, opts, /*materialize=*/false).theta;
}

double gk_theta_only(const topo::Graph& g, const topo::Matching& m,
                     Bandwidth b_ref, const GargKonemannOptions& opts) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return gk_theta_only(g, commodities_from_matching(m), b_ref, opts);
}

}  // namespace psd::flow
