#include "psd/flow/garg_konemann.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "psd/topo/shortest_path.hpp"

namespace psd::flow {

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const std::vector<Commodity>& commodities,
                                        Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  PSD_REQUIRE(opts.epsilon > 0.0 && opts.epsilon < 0.5,
              "epsilon must be in (0, 0.5)");
  ConcurrentFlowResult res;
  if (commodities.empty()) {
    res.theta = std::numeric_limits<double>::infinity();
    return res;
  }
  for (const auto& c : commodities) {
    PSD_REQUIRE(g.valid_node(c.src) && g.valid_node(c.dst), "commodity node out of range");
    PSD_REQUIRE(c.src != c.dst, "commodity src == dst");
    PSD_REQUIRE(c.demand > 0.0, "commodity demand must be positive");
  }

  const std::size_t K = commodities.size();
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  PSD_REQUIRE(E > 0, "graph has no edges");
  const auto caps = normalized_capacities(g, b_ref);

  const double eps = opts.epsilon;
  const double delta =
      std::pow(static_cast<double>(E) / (1.0 - eps), -1.0 / eps);

  std::vector<double> length(E);
  for (std::size_t e = 0; e < E; ++e) length[e] = delta / caps[e];
  double dual_volume = static_cast<double>(E) * delta;  // Σ c_e · l_e

  res.flow.assign(K, std::vector<double>(E, 0.0));
  std::vector<double> shipped(K, 0.0);

  long long pushes = 0;
  while (dual_volume < 1.0) {
    for (std::size_t k = 0; k < K && dual_volume < 1.0; ++k) {
      const auto& c = commodities[k];
      double remaining = c.demand;
      while (remaining > 1e-15 && dual_volume < 1.0) {
        PSD_REQUIRE(++pushes <= opts.max_path_pushes,
                    "Garg-Konemann exceeded max_path_pushes; epsilon too small?");
        const auto dj = topo::dijkstra(g, c.src, length);
        const auto path = topo::extract_path(g, dj, c.src, c.dst);
        PSD_REQUIRE(!path.empty(), "commodity endpoints disconnected");
        double bottleneck = std::numeric_limits<double>::infinity();
        for (topo::EdgeId e : path) {
          bottleneck = std::min(bottleneck, caps[static_cast<std::size_t>(e)]);
        }
        const double f = std::min(remaining, bottleneck);
        double* flow_k = res.flow[k].data();
        for (topo::EdgeId e : path) {
          const auto ei = static_cast<std::size_t>(e);
          flow_k[ei] += f;
          const double old_len = length[ei];
          length[ei] = old_len * (1.0 + eps * f / caps[ei]);
          dual_volume += caps[ei] * (length[ei] - old_len);
        }
        shipped[k] += f;
        remaining -= f;
      }
    }
  }

  // Rescale to strict feasibility: divide by the worst capacity violation.
  // Accumulate per-edge load commodity-major so each pass streams one
  // contiguous flow row (vectorizable) instead of striding across all K.
  std::vector<double> load(E, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const double* fk = res.flow[k].data();
    double* ld = load.data();
    for (std::size_t e = 0; e < E; ++e) ld[e] += fk[e];
  }
  double violation = 0.0;
  for (std::size_t e = 0; e < E; ++e) {
    violation = std::max(violation, load[e] / caps[e]);
  }
  PSD_ASSERT(violation > 0.0, "GK pushed no flow despite non-empty demand");
  const double inv = 1.0 / violation;
  double theta = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < K; ++k) {
    for (double& v : res.flow[k]) v *= inv;
    theta = std::min(theta, shipped[k] * inv / commodities[k].demand);
  }
  res.theta = theta;
  return res;
}

ConcurrentFlowResult gk_concurrent_flow(const topo::Graph& g,
                                        const topo::Matching& m, Bandwidth b_ref,
                                        const GargKonemannOptions& opts) {
  PSD_REQUIRE(g.num_nodes() == m.size(), "matching/graph size mismatch");
  return gk_concurrent_flow(g, commodities_from_matching(m), b_ref, opts);
}

}  // namespace psd::flow
