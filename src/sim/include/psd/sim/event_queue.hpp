// Discrete-event queue with deterministic ordering: events at equal
// timestamps pop in insertion order (monotone sequence numbers), so
// simulations are exactly reproducible.
#pragma once

#include <cstdint>
#include <queue>

#include "psd/util/error.hpp"
#include "psd/util/units.hpp"

namespace psd::sim {

enum class EventType : std::uint8_t {
  kReconfigDone,
  kComputeDone,
  kFlowCompleted,   // payload: flow id
  kLastBitArrived,  // payload: flow id
  kLinkFault,       // payload: fault index (churn driver)
  kLinkRepair,      // payload: fault index (churn driver)
};

struct Event {
  TimeNs time;
  EventType type = EventType::kFlowCompleted;
  int payload = -1;
  std::uint64_t epoch = 0;  // lazy invalidation: stale events are skipped
  std::uint64_t seq = 0;    // assigned by the queue
};

class EventQueue {
 public:
  /// Schedules `ev` (its seq is overwritten). Time must be >= now().
  void push(Event ev);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Pops the earliest event and advances now(). Queue must be non-empty.
  Event pop();

  /// Drops all pending events, keeping the clock.
  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time.ns() != b.time.ns()) return a.time.ns() > b.time.ns();
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  TimeNs now_{0.0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace psd::sim
