// Topology-churn driver: seeded fault injection over a live topology with
// replanning after every event, measuring what the paper's adaptive domains
// must survive in practice — how deep θ dips when links fail, how fast the
// planner's caches and the warm-restarted GK solver recover it, and what
// each replan costs.
//
// The engine owns a mutable copy of the base graph and a private
// support-tracking ThetaOracle over it. A fault either cuts a random alive
// link (droop == 1) or droops its capacity (droop < 1); every fault
// schedules a repair that restores the original capacity. Events flow
// through sim::EventQueue (deterministic (time, seq) order), and after each
// one the engine applies the topology delta, notifies the oracle —
// edge-level cache invalidation plus GK warm hints — and re-solves θ for
// every matching of the workload, recording the trace row.
//
// Determinism: every random draw comes from a fresh util::Rng seeded by
// derive_stream_seed(seed, scenario_key, fault_index) — a pure function of
// the (scenario, event) key — and all metrics come from the engine's private
// oracle, never from a shared cache whose counters depend on sweep-wide
// interleaving. Identical configs therefore produce byte-identical reports
// across runs and thread counts; the sweep determinism tests pin this.
//
// Connectivity guard: a cut that would disconnect the topology (θ would be
// 0 and every solver would throw) falls back to a deep droop
// (kDisconnectFallbackDroop) — the link is "down hard" but the domain stays
// routable, which matches how an optical fabric degrades before full
// partition.
#pragma once

#include <string>
#include <vector>

#include "psd/flow/theta.hpp"
#include "psd/sim/event_queue.hpp"
#include "psd/topo/delta.hpp"
#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"

namespace psd::sim {

struct ChurnConfig {
  int drops = 1;       // fault events to inject (>= 1)
  double droop = 1.0;  // 1.0: cut the link; (0, 1): scale its capacity
  std::uint64_t seed = 1;
  // Stream name for seed derivation — scenario id in sweeps, so every
  // scenario draws from its own independent stream regardless of how many
  // others ran first.
  std::string scenario_key = "churn";
  TimeNs fault_spacing{100'000.0};  // 100 us between successive faults
  TimeNs repair_delay{250'000.0};   // repair fires this long after its fault
  // θ solver settings of the private oracle (mirrors flow::ThetaOptions).
  double gk_epsilon = 0.05;
  std::size_t exact_var_limit = 700;
};

/// A cut that would disconnect the domain degrades to this capacity factor
/// instead (see header comment).
inline constexpr double kDisconnectFallbackDroop = 0.25;

enum class ChurnEventKind : std::uint8_t { kFault, kRepair };

/// One trace row: what happened, what it did to θ, and what the replan cost.
struct ChurnEventRecord {
  double time_ns = 0.0;
  ChurnEventKind kind = ChurnEventKind::kFault;
  int fault_index = -1;
  topo::NodeId src = -1;
  topo::NodeId dst = -1;
  bool dropped = false;  // fault removed the edge (vs drooped its capacity)
  double theta_before = 0.0;  // min θ over the workload, pre-event
  double theta_after = 0.0;   // min θ after the replan
  // Oracle invalidation outcome for this event's delta.
  std::size_t cache_kept = 0;
  std::size_t cache_erased = 0;
  // Replan cost: θ solves this event forced, and their GK work.
  long long replan_solves = 0;
  long long gk_path_pushes = 0;
  long long gk_sssp_searches = 0;
  bool recovered = false;  // θ back within tolerance of healthy after this event

  bool operator==(const ChurnEventRecord&) const = default;
};

struct ChurnReport {
  double theta_healthy = 0.0;  // min θ over the workload, pristine topology
  double theta_min = 0.0;      // worst min-θ observed during the run
  // Worst fault-to-recovery gap among recovered faults (0 when drops == 0).
  double worst_recovery_ns = 0.0;
  bool fully_recovered = false;  // every fault's θ dip recovered by run end
  long long total_replan_solves = 0;
  long long total_gk_path_pushes = 0;
  long long total_gk_sssp_searches = 0;
  std::size_t total_cache_kept = 0;
  std::size_t total_cache_erased = 0;
  std::vector<ChurnEventRecord> events;

  /// Depth of the θ degradation: 0 = unscathed, 1 = fully collapsed.
  [[nodiscard]] double degradation_depth() const {
    if (theta_healthy <= 0.0) return 0.0;
    return 1.0 - theta_min / theta_healthy;
  }

  bool operator==(const ChurnReport&) const = default;
};

/// Runs the churn schedule against one workload (the matchings of a
/// collective's steps). The graph is copied — the caller's stays pristine.
class ChurnEngine {
 public:
  ChurnEngine(topo::Graph base, std::vector<topo::Matching> matchings,
              Bandwidth b_ref, ChurnConfig cfg);

  /// Executes the full fault/repair schedule; callable once per engine.
  [[nodiscard]] ChurnReport run();

 private:
  topo::Graph graph_;
  std::vector<topo::Matching> matchings_;
  Bandwidth b_ref_;
  ChurnConfig cfg_;
  bool ran_ = false;
};

}  // namespace psd::sim
