// Event-driven flow-level simulator for adaptive photonic scale-up domains
// (the evaluation vehicle of §3.4).
//
// Executes a CollectiveSchedule under a reconfiguration plan on a
// photonic::Fabric: steps are barrier-synchronized; before each step the
// fabric optionally reconfigures (per-step α_r, optionally overlapped with
// compute); flows then transmit at rates chosen by the configured policy
// and the step ends when every flow's last bit has arrived (serialization +
// δ per hop).
//
// Under the kConcurrentFlow policy the simulated completion time equals the
// analytic Eq. (4)/(7) cost exactly — that agreement is asserted in the
// integration tests. The kMaxMinFair policy re-rates surviving flows on
// every flow completion (true event-driven dynamics) and quantifies how a
// fairness-governed transport deviates from the model.
#pragma once

#include <vector>

#include "psd/collective/schedule.hpp"
#include "psd/core/cost_model.hpp"
#include "psd/photonic/fabric.hpp"
#include "psd/sim/event_queue.hpp"

namespace psd::sim {

enum class RatePolicy {
  kConcurrentFlow,  // every flow gets rate θ·b (model-optimal)
  kMaxMinFair,      // progressive filling on shortest paths, re-rated on events
};

struct SimConfig {
  core::CostParams params;
  RatePolicy policy = RatePolicy::kConcurrentFlow;
  // Charge α_r by the paper's z_i rule: any transition except base→base
  // pays, even matched→matched with identical matchings. When false, only
  // physical configuration changes pay (the fabric's delay model decides).
  bool paper_reconfig_charging = true;
  // Optional per-step compute that can hide reconfiguration (size 0 or s).
  std::vector<TimeNs> compute_before_step;
  double gk_epsilon = 0.05;  // θ accuracy for non-ring base topologies
  // Failure injection: each charged reconfiguration attempt independently
  // fails with this probability and is retried at full cost (geometric
  // retries). Deterministic under failure_seed.
  double reconfig_failure_prob = 0.0;
  std::uint64_t failure_seed = 1;
  // Chunk-pipelined execution (kConcurrentFlow only): each step's per-pair
  // payload is split into `pipeline_chunks` equal chunks progressed
  // per-chunk — the way caffe2's RING_CHUNKED and the RDMA-ring process
  // groups execute — so consecutive steps overlap wherever neither a
  // reconfiguration nor a data dependency forbids it. α is charged per
  // chunk round and δ per hop per chunk; a reconfiguration (or compute
  // overlap) between steps is a hard barrier because the fabric cannot
  // retime while flows are in flight. pipeline_chunks == 1 degenerates to
  // the barrier schedule exactly (pinned in tests); 0 asks the schedule for
  // its own granularity (CollectiveSchedule::natural_pipeline_chunks).
  bool pipeline = false;
  int pipeline_chunks = 1;
};

struct StepTrace {
  int step = -1;
  core::TopoChoice choice = core::TopoChoice::kBase;
  bool reconfigured = false;
  TimeNs reconfig_delay;
  TimeNs start;      // barrier time (before α/reconfig/compute)
  TimeNs comm_start; // first bit leaves
  TimeNs end;        // last bit arrived everywhere
  double theta = 0.0;
  int max_hops = 0;
  double max_link_utilization = 0.0;  // at step start
  int flows = 0;
};

struct SimResult {
  TimeNs completion_time;
  std::vector<StepTrace> steps;
  long long reconfigurations = 0;
  TimeNs total_reconfig_time;
  long long flow_completion_events = 0;
  long long reconfig_retries = 0;  // failure-injection retries

  [[nodiscard]] const StepTrace& step(int i) const {
    PSD_REQUIRE(i >= 0 && i < static_cast<int>(steps.size()), "step out of range");
    return steps[static_cast<std::size_t>(i)];
  }
};

class FlowLevelSimulator {
 public:
  /// `base` is the base topology G; it must be realizable by the fabric when
  /// the plan chooses kBase — for single-transceiver domains that means G is
  /// a permutation topology (e.g. a directed ring), supplied as
  /// `base_config`. The simulator owns copies of everything.
  FlowLevelSimulator(topo::Graph base, topo::Matching base_config, SimConfig config);

  /// Runs `schedule` under the per-step `plan` (one choice per step).
  [[nodiscard]] SimResult run(const collective::CollectiveSchedule& schedule,
                              const std::vector<core::TopoChoice>& plan);

  /// Convenience: runs a core::ReconfigPlan.
  [[nodiscard]] SimResult run(const collective::CollectiveSchedule& schedule,
                              const core::ReconfigPlan& plan);

 private:
  struct StepOutcome {
    TimeNs duration;  // comm_start -> last arrival
    double theta = 0.0;
    double max_util = 0.0;
    long long events = 0;
    int max_hops = 0;  // longest routed path among the step's flows
  };

  /// The concurrent-flow rate assignment of one step on `g`: θ, the longest
  /// routed path, and the peak link utilization — shared by the barrier
  /// event loop and the pipelined chunk schedule.
  struct RateParams {
    double theta = 0.0;
    int max_hops = 0;
    double max_util = 0.0;
    int flows = 0;
  };
  RateParams concurrent_rate_params(const topo::Graph& g,
                                    const collective::Step& step);

  /// Simulates one step's flows on `g`, starting at queue time 0 (relative).
  StepOutcome simulate_step(const topo::Graph& g, const collective::Step& step);

  /// The chunk-pipelined execution (SimConfig::pipeline).
  SimResult run_pipelined(const collective::CollectiveSchedule& schedule,
                          const std::vector<core::TopoChoice>& plan);

  topo::Graph base_;
  topo::Matching base_config_;
  SimConfig config_;
};

}  // namespace psd::sim
