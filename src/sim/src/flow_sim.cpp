#include "psd/sim/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "psd/flow/rate_allocation.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/photonic/reconfig_delay.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"
#include "psd/topo/shortest_path.hpp"
#include "psd/util/rng.hpp"

namespace psd::sim {

namespace {

/// Per-flow transmission state during a step.
struct ActiveFlow {
  int commodity = -1;
  double remaining = 0.0;  // bytes
  double rate = 0.0;       // bytes/ns
  int hops = 0;
  bool done = false;
};

}  // namespace

FlowLevelSimulator::FlowLevelSimulator(topo::Graph base, topo::Matching base_config,
                                       SimConfig config)
    : base_(std::move(base)), base_config_(std::move(base_config)),
      config_(std::move(config)) {
  PSD_REQUIRE(base_.num_nodes() >= 2, "base topology needs at least 2 nodes");
  PSD_REQUIRE(base_config_.size() == base_.num_nodes(),
              "base configuration size mismatch");
  PSD_REQUIRE(config_.params.b.bytes_per_ns() > 0.0, "bandwidth must be positive");
}

FlowLevelSimulator::StepOutcome FlowLevelSimulator::simulate_step(
    const topo::Graph& g, const collective::Step& step) {
  StepOutcome out;
  const auto commodities = flow::commodities_from_matching(step.matching);
  if (commodities.empty()) return out;
  const Bandwidth b = config_.params.b;
  const double bpn = b.bytes_per_ns();

  // Per-flow hop counts without an all-pairs sweep: a direct circuit is one
  // hop (the common case once the fabric matches the step), otherwise one
  // BFS from the flow's source — sources are distinct in a matching, so
  // this is at most K single-source searches instead of n.
  std::vector<ActiveFlow> flows(commodities.size());
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& c = commodities[k];
    flows[k].commodity = static_cast<int>(k);
    flows[k].remaining = step.volume.count();
    if (g.find_edge(c.src, c.dst) != -1) {
      flows[k].hops = 1;
    } else {
      const auto bh = topo::bfs_hops(g, c.src);
      flows[k].hops = bh[static_cast<std::size_t>(c.dst)];
    }
    PSD_REQUIRE(flows[k].hops != topo::kUnreachable,
                "flow endpoints disconnected in the current topology");
    out.max_hops = std::max(out.max_hops, flows[k].hops);
  }

  const auto caps = flow::normalized_capacities(g, b);

  // --- Initial rate assignment -------------------------------------------
  std::vector<std::vector<topo::EdgeId>> paths;  // max-min only
  if (config_.policy == RatePolicy::kConcurrentFlow) {
    double theta = 1.0;
    std::vector<double> util(caps.size(), 0.0);
    if (topo::matches_topology(g, step.matching)) {
      // Dedicated circuits: each pair rides its own direct link.
      theta = std::numeric_limits<double>::infinity();
      for (const auto& c : commodities) {
        const topo::EdgeId e = g.find_edge(c.src, c.dst);
        theta = std::min(theta, caps[static_cast<std::size_t>(e)] / c.demand);
      }
      theta = std::min(theta, 1.0);  // a transceiver cannot exceed its rate
      for (const auto& c : commodities) {
        const topo::EdgeId e = g.find_edge(c.src, c.dst);
        util[static_cast<std::size_t>(e)] +=
            theta * c.demand / caps[static_cast<std::size_t>(e)];
      }
    } else {
      // One concurrent-flow solve serves both the rate (θ) and the
      // utilization sweep — this used to run the solver twice per step.
      flow::ConcurrentFlowResult cf;
      if (auto ring = flow::ring_concurrent_flow(g, step.matching, b)) {
        cf = *std::move(ring);
      } else {
        cf = flow::gk_concurrent_flow(g, commodities, b,
                                      {.epsilon = config_.gk_epsilon});
      }
      theta = cf.theta;
      const auto& load = cf.flow.edge_loads();
      for (std::size_t e = 0; e < caps.size(); ++e) {
        util[e] = load[e] / caps[e];
      }
    }
    out.theta = theta;
    for (auto& f : flows) f.rate = theta * bpn;
    out.max_util = util.empty() ? 0.0 : *std::max_element(util.begin(), util.end());
  } else {
    const auto alloc = flow::max_min_fair_allocation(g, commodities, b);
    paths = alloc.path;
    double min_rate = std::numeric_limits<double>::infinity();
    std::vector<double> util(caps.size(), 0.0);
    for (std::size_t k = 0; k < flows.size(); ++k) {
      flows[k].rate = alloc.rate[k] * bpn;
      min_rate = std::min(min_rate, alloc.rate[k]);
      for (topo::EdgeId e : paths[k]) {
        util[static_cast<std::size_t>(e)] += alloc.rate[k] / caps[static_cast<std::size_t>(e)];
      }
    }
    out.theta = min_rate;  // max-min's worst flow, for comparability
    out.max_util = util.empty() ? 0.0 : *std::max_element(util.begin(), util.end());
  }

  // --- Event loop ---------------------------------------------------------
  EventQueue queue;
  std::uint64_t epoch = 0;
  std::size_t in_flight = flows.size();
  TimeNs last_arrival(0.0);

  auto schedule_completions = [&]() {
    for (const auto& f : flows) {
      if (f.done || f.rate <= 0.0) continue;
      Event ev;
      ev.time = queue.now() + TimeNs(f.remaining / f.rate);
      ev.type = EventType::kFlowCompleted;
      ev.payload = f.commodity;
      ev.epoch = epoch;
      queue.push(ev);
    }
  };
  auto advance_remaining = [&](TimeNs from, TimeNs to) {
    const double dt = (to - from).ns();
    for (auto& f : flows) {
      if (!f.done) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  };

  schedule_completions();
  TimeNs last_progress = queue.now();
  while (in_flight > 0 || !queue.empty()) {
    PSD_ASSERT(!queue.empty(), "flows in flight but no pending events");
    const Event ev = queue.pop();
    if (ev.type == EventType::kFlowCompleted) {
      if (ev.epoch != epoch) continue;  // stale: rates changed since scheduled
      auto& f = flows[static_cast<std::size_t>(ev.payload)];
      if (f.done) continue;
      advance_remaining(last_progress, ev.time);
      last_progress = ev.time;
      f.done = true;
      f.remaining = 0.0;
      --in_flight;
      ++out.events;
      Event arrival;
      arrival.time = ev.time + config_.params.delta * static_cast<double>(f.hops);
      arrival.type = EventType::kLastBitArrived;
      arrival.payload = f.commodity;
      arrival.epoch = 0;  // arrivals never go stale
      queue.push(arrival);
      // Re-rate survivors under max-min (released capacity is reusable).
      if (config_.policy == RatePolicy::kMaxMinFair && in_flight > 0) {
        std::vector<flow::Commodity> live;
        std::vector<std::size_t> live_idx;
        for (std::size_t k = 0; k < flows.size(); ++k) {
          if (!flows[k].done) {
            live.push_back(commodities[k]);
            live_idx.push_back(k);
          }
        }
        const auto re = flow::max_min_fair_allocation(g, live, config_.params.b);
        for (std::size_t j = 0; j < live_idx.size(); ++j) {
          flows[live_idx[j]].rate = re.rate[j] * bpn;
        }
        ++epoch;
        schedule_completions();
      }
    } else if (ev.type == EventType::kLastBitArrived) {
      last_arrival = std::max(last_arrival, ev.time);
    }
  }
  out.duration = last_arrival;
  return out;
}

FlowLevelSimulator::RateParams FlowLevelSimulator::concurrent_rate_params(
    const topo::Graph& g, const collective::Step& step) {
  RateParams rp;
  const auto commodities = flow::commodities_from_matching(step.matching);
  rp.flows = static_cast<int>(commodities.size());
  if (commodities.empty()) return rp;
  const Bandwidth b = config_.params.b;

  for (const auto& c : commodities) {
    int hops = 0;
    if (g.find_edge(c.src, c.dst) != -1) {
      hops = 1;
    } else {
      const auto bh = topo::bfs_hops(g, c.src);
      hops = bh[static_cast<std::size_t>(c.dst)];
    }
    PSD_REQUIRE(hops != topo::kUnreachable,
                "flow endpoints disconnected in the current topology");
    rp.max_hops = std::max(rp.max_hops, hops);
  }

  const auto caps = flow::normalized_capacities(g, b);
  double theta = 1.0;
  std::vector<double> util(caps.size(), 0.0);
  if (topo::matches_topology(g, step.matching)) {
    theta = std::numeric_limits<double>::infinity();
    for (const auto& c : commodities) {
      const topo::EdgeId e = g.find_edge(c.src, c.dst);
      theta = std::min(theta, caps[static_cast<std::size_t>(e)] / c.demand);
    }
    theta = std::min(theta, 1.0);
    for (const auto& c : commodities) {
      const topo::EdgeId e = g.find_edge(c.src, c.dst);
      util[static_cast<std::size_t>(e)] +=
          theta * c.demand / caps[static_cast<std::size_t>(e)];
    }
  } else {
    flow::ConcurrentFlowResult cf;
    if (auto ring = flow::ring_concurrent_flow(g, step.matching, b)) {
      cf = *std::move(ring);
    } else {
      cf = flow::gk_concurrent_flow(g, commodities, b,
                                    {.epsilon = config_.gk_epsilon});
    }
    theta = cf.theta;
    const auto& load = cf.flow.edge_loads();
    for (std::size_t e = 0; e < caps.size(); ++e) {
      util[e] = load[e] / caps[e];
    }
  }
  rp.theta = theta;
  rp.max_util = util.empty() ? 0.0 : *std::max_element(util.begin(), util.end());
  return rp;
}

SimResult FlowLevelSimulator::run_pipelined(
    const collective::CollectiveSchedule& schedule,
    const std::vector<core::TopoChoice>& plan) {
  PSD_REQUIRE(config_.policy == RatePolicy::kConcurrentFlow,
              "pipelined mode models the concurrent-flow policy only");
  PSD_REQUIRE(config_.pipeline_chunks >= 0,
              "pipeline_chunks must be non-negative");
  const int chunks = config_.pipeline_chunks > 0
                         ? config_.pipeline_chunks
                         : schedule.natural_pipeline_chunks();
  const std::size_t cn = static_cast<std::size_t>(chunks);
  const bool overlap = !config_.compute_before_step.empty();
  const double bpn = config_.params.b.bytes_per_ns();

  photonic::Fabric fabric(
      base_.num_nodes(), config_.params.b,
      std::make_unique<photonic::ConstantDelayModel>(config_.params.alpha_r),
      base_config_);

  SimResult result;
  Rng failure_rng(config_.failure_seed);
  core::TopoChoice prev = core::TopoChoice::kBase;

  // Chunk-granular transceiver timeline: when each chunk of the previous
  // step left its port (the port frees) and when it fully arrived (the data
  // dependency releases). All zeros before the first step.
  std::vector<TimeNs> prev_send(cn, TimeNs(0.0));
  std::vector<TimeNs> prev_recv(cn, TimeNs(0.0));
  std::vector<TimeNs> send(cn, TimeNs(0.0));
  std::vector<TimeNs> recv(cn, TimeNs(0.0));

  for (int i = 0; i < schedule.num_steps(); ++i) {
    const collective::Step& step = schedule.step(i);
    const core::TopoChoice cur = plan[static_cast<std::size_t>(i)];
    const TimeNs prev_end = prev_recv[cn - 1];

    StepTrace trace;
    trace.step = i;
    trace.choice = cur;
    trace.start = prev_end;
    trace.flows = step.matching.active_pairs();

    // Reconfiguration is charged exactly as in barrier mode (Eq. 7 z_i rule,
    // failure injection included) — the modes differ only in overlap.
    const topo::Matching& target =
        (cur == core::TopoChoice::kBase) ? base_config_ : step.matching;
    TimeNs charged(0.0);
    if (config_.paper_reconfig_charging) {
      if (!(prev == core::TopoChoice::kBase && cur == core::TopoChoice::kBase)) {
        charged = config_.params.alpha_r;
      }
      fabric.reconfigure(target);
    } else {
      charged = fabric.reconfigure(target);
    }
    if (charged.ns() > 0.0 && config_.reconfig_failure_prob > 0.0) {
      while (failure_rng.next_double() < config_.reconfig_failure_prob) {
        charged += config_.params.alpha_r;
        ++result.reconfig_retries;
      }
    }
    trace.reconfigured = charged.ns() > 0.0;
    trace.reconfig_delay = charged;
    if (trace.reconfigured) ++result.reconfigurations;
    result.total_reconfig_time += charged;

    const TimeNs compute =
        overlap ? config_.compute_before_step[static_cast<std::size_t>(i)]
                : TimeNs(0.0);
    const TimeNs pre_comm = TimeNs(std::max(compute.ns(), charged.ns()));
    // A reconfiguration (or blocking compute) is a hard barrier: the fabric
    // cannot retime while chunks are in flight, so the whole previous step
    // must have arrived before it starts. With pre_comm == 0 there is no
    // gate and overlap is limited only by ports and data dependencies.
    const bool barriered = pre_comm.ns() > 0.0;
    const TimeNs gate = barriered ? prev_end + pre_comm : TimeNs(0.0);

    const topo::Graph topology = (cur == core::TopoChoice::kBase)
                                     ? base_
                                     : fabric.current_topology();
    const RateParams rp = concurrent_rate_params(topology, step);
    trace.theta = rp.theta;
    trace.max_hops = rp.max_hops;
    trace.max_link_utilization = rp.max_util;

    TimeNs ser(0.0);
    if (rp.flows > 0 && step.volume.count() > 0.0) {
      ser = TimeNs(step.volume.count() / static_cast<double>(chunks) /
                   (rp.theta * bpn));
    }
    const TimeNs lag = config_.params.delta * static_cast<double>(rp.max_hops);

    for (int c = 0; c < chunks; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      // Port free: this pair's transceiver is busy until its previous chunk
      // (or, for chunk 0, the previous step's last chunk) has left.
      TimeNs start = (c > 0) ? send[ci - 1] : prev_send[cn - 1];
      // Data dependency: chunk c of step i forwards what chunk c of step
      // i−1 delivered, so it cannot leave before that chunk arrived.
      start = std::max(start, prev_recv[ci]);
      start = std::max(start, gate);
      send[ci] = start + config_.params.alpha + ser;
      recv[ci] = send[ci] + lag;
    }

    trace.comm_start = recv[0] - lag - ser;  // first chunk's first bit leaves
    trace.end = recv[cn - 1];
    result.flow_completion_events += static_cast<long long>(rp.flows) * chunks;
    result.steps.push_back(std::move(trace));

    prev_send.swap(send);
    prev_recv.swap(recv);
    prev = cur;
  }
  result.completion_time =
      result.steps.empty() ? TimeNs(0.0) : prev_recv[cn - 1];
  return result;
}

SimResult FlowLevelSimulator::run(const collective::CollectiveSchedule& schedule,
                                  const std::vector<core::TopoChoice>& plan) {
  PSD_REQUIRE(schedule.num_nodes() == base_.num_nodes(),
              "schedule/topology node count mismatch");
  PSD_REQUIRE(static_cast<int>(plan.size()) == schedule.num_steps(),
              "plan must have one choice per step");
  const bool overlap = !config_.compute_before_step.empty();
  if (overlap) {
    PSD_REQUIRE(static_cast<int>(config_.compute_before_step.size()) ==
                    schedule.num_steps(),
                "compute_before_step must have one entry per step");
  }

  PSD_REQUIRE(config_.reconfig_failure_prob >= 0.0 &&
                  config_.reconfig_failure_prob < 1.0,
              "failure probability must be in [0, 1)");

  if (config_.pipeline) return run_pipelined(schedule, plan);

  photonic::Fabric fabric(
      base_.num_nodes(), config_.params.b,
      std::make_unique<photonic::ConstantDelayModel>(config_.params.alpha_r),
      base_config_);

  SimResult result;
  Rng failure_rng(config_.failure_seed);
  TimeNs clock(0.0);
  core::TopoChoice prev = core::TopoChoice::kBase;

  for (int i = 0; i < schedule.num_steps(); ++i) {
    const collective::Step& step = schedule.step(i);
    const core::TopoChoice cur = plan[static_cast<std::size_t>(i)];

    StepTrace trace;
    trace.step = i;
    trace.choice = cur;
    trace.start = clock;
    trace.flows = step.matching.active_pairs();

    // --- reconfiguration ---------------------------------------------------
    const topo::Matching& target =
        (cur == core::TopoChoice::kBase) ? base_config_ : step.matching;
    TimeNs charged(0.0);
    if (config_.paper_reconfig_charging) {
      // Eq. (7): z_i = x_i ∧ x_{i−1}; only base→base transitions are free.
      if (!(prev == core::TopoChoice::kBase && cur == core::TopoChoice::kBase)) {
        charged = config_.params.alpha_r;
      }
      fabric.reconfigure(target);
    } else {
      charged = fabric.reconfigure(target);  // physical changes only
    }
    // Failure injection: a charged attempt may fail and retry at full cost.
    if (charged.ns() > 0.0 && config_.reconfig_failure_prob > 0.0) {
      while (failure_rng.next_double() < config_.reconfig_failure_prob) {
        charged += charged.ns() > 0.0 ? config_.params.alpha_r : TimeNs(0.0);
        ++result.reconfig_retries;
      }
    }
    trace.reconfigured = charged.ns() > 0.0;
    trace.reconfig_delay = charged;
    if (trace.reconfigured) ++result.reconfigurations;
    result.total_reconfig_time += charged;

    // --- α, compute overlap, communication ---------------------------------
    const TimeNs compute =
        overlap ? config_.compute_before_step[static_cast<std::size_t>(i)] : TimeNs(0.0);
    const TimeNs pre_comm = TimeNs(std::max(compute.ns(), charged.ns()));
    trace.comm_start = clock + config_.params.alpha + pre_comm;

    const topo::Graph topology = (cur == core::TopoChoice::kBase)
                                     ? base_
                                     : fabric.current_topology();
    const StepOutcome outcome = simulate_step(topology, step);
    trace.theta = outcome.theta;
    trace.max_link_utilization = outcome.max_util;
    trace.end = trace.comm_start + outcome.duration;
    result.flow_completion_events += outcome.events;
    // The step's flows are exactly the matching's pairs, so simulate_step
    // already knows the longest routed path — no second hop sweep.
    trace.max_hops = outcome.max_hops;

    clock = trace.end;
    result.steps.push_back(std::move(trace));
    prev = cur;
  }
  result.completion_time = clock;
  return result;
}

SimResult FlowLevelSimulator::run(const collective::CollectiveSchedule& schedule,
                                  const core::ReconfigPlan& plan) {
  return run(schedule, plan.choice);
}

}  // namespace psd::sim
