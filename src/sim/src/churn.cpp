#include "psd/sim/churn.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "psd/topo/properties.hpp"
#include "psd/util/rng.hpp"

namespace psd::sim {

namespace {

/// The workload's score under the current topology: min θ over its step
/// matchings (the binding constraint of the cost model). Pure cache hits
/// when nothing changed since the last call.
double min_theta(const flow::ThetaOracle& oracle,
                 const std::vector<topo::Matching>& matchings) {
  double t = std::numeric_limits<double>::infinity();
  for (const auto& m : matchings) t = std::min(t, oracle.theta(m));
  return t;
}

}  // namespace

ChurnEngine::ChurnEngine(topo::Graph base, std::vector<topo::Matching> matchings,
                         Bandwidth b_ref, ChurnConfig cfg)
    : graph_(std::move(base)),
      matchings_(std::move(matchings)),
      b_ref_(b_ref),
      cfg_(std::move(cfg)) {
  PSD_REQUIRE(cfg_.drops >= 1, "churn needs at least one fault");
  PSD_REQUIRE(cfg_.droop > 0.0 && cfg_.droop <= 1.0,
              "droop must be in (0, 1] (1 = cut the link)");
  PSD_REQUIRE(!matchings_.empty(), "churn needs a workload of matchings");
  PSD_REQUIRE(cfg_.fault_spacing.ns() > 0.0, "fault_spacing must be positive");
  PSD_REQUIRE(cfg_.repair_delay.ns() > 0.0, "repair_delay must be positive");
}

ChurnReport ChurnEngine::run() {
  PSD_REQUIRE(!ran_, "ChurnEngine::run is single-shot");
  ran_ = true;

  flow::ThetaOptions topts;
  topts.epsilon = cfg_.gk_epsilon;
  topts.exact_var_limit = cfg_.exact_var_limit;
  topts.track_support = true;  // edge-level invalidation + GK warm hints
  flow::ThetaOracle oracle(graph_, b_ref_, topts);

  ChurnReport report;
  report.theta_healthy = min_theta(oracle, matchings_);
  report.theta_min = report.theta_healthy;
  // GK resolves within (1±ε), so a repaired topology's re-solved θ can sit
  // a bit under the healthy solve of the same instance; "recovered" allows
  // two ε of solver slack (plus roundoff) rather than demanding bit equality.
  const double recover_floor =
      report.theta_healthy * (1.0 - 2.0 * cfg_.gk_epsilon) - 1e-12;

  struct Fault {
    topo::NodeId src = -1;
    topo::NodeId dst = -1;
    Bandwidth original;
    bool dropped = false;
    bool skipped = false;  // no candidate link was available
    bool pending = false;  // θ dip not yet recovered
    double time_ns = 0.0;
  };
  std::vector<Fault> faults(static_cast<std::size_t>(cfg_.drops));

  EventQueue queue;
  for (int i = 0; i < cfg_.drops; ++i) {
    const double t = cfg_.fault_spacing.ns() * static_cast<double>(i + 1);
    queue.push(Event{TimeNs{t}, EventType::kLinkFault, i});
    queue.push(
        Event{TimeNs{t + cfg_.repair_delay.ns()}, EventType::kLinkRepair, i});
  }

  // Pair codes of links under an active (un-repaired) fault: a fault never
  // strikes one of these again — its repair would otherwise need to stack.
  std::vector<std::uint64_t> active;

  while (!queue.empty()) {
    const Event ev = queue.pop();
    Fault& f = faults[static_cast<std::size_t>(ev.payload)];

    topo::TopologyDelta delta;
    ChurnEventRecord rec;
    rec.time_ns = ev.time.ns();
    rec.fault_index = ev.payload;

    if (ev.type == EventType::kLinkFault) {
      rec.kind = ChurnEventKind::kFault;
      // Fresh stream per (scenario, fault index): the draw is a pure
      // function of the key, independent of execution history.
      Rng rng(derive_stream_seed(cfg_.seed, cfg_.scenario_key,
                                 static_cast<std::uint64_t>(ev.payload)));
      std::vector<topo::EdgeId> candidates;
      for (topo::EdgeId e = 0; e < graph_.num_edges(); ++e) {
        const auto& edge = graph_.edge(e);
        const std::uint64_t code = topo::edge_pair_code(edge.src, edge.dst);
        if (std::find(active.begin(), active.end(), code) == active.end()) {
          candidates.push_back(e);
        }
      }
      if (candidates.empty()) {  // every link already faulted: nothing to cut
        f.skipped = true;
        continue;
      }
      const topo::EdgeId victim = candidates[static_cast<std::size_t>(
          rng.next_below(candidates.size()))];
      const auto& edge = graph_.edge(victim);
      f.src = edge.src;
      f.dst = edge.dst;
      f.original = edge.capacity;
      f.time_ns = ev.time.ns();
      f.pending = true;
      rec.src = f.src;
      rec.dst = f.dst;
      bool drop = cfg_.droop >= 1.0;
      if (drop) {
        // Connectivity guard: probe the cut on a copy; a disconnecting cut
        // degrades to a deep droop instead (see header comment).
        topo::Graph probe = graph_;
        probe.remove_edge(victim);
        if (!topo::is_strongly_connected(probe)) drop = false;
      }
      f.dropped = drop;
      rec.dropped = drop;
      if (drop) {
        delta.remove_edge(f.src, f.dst);
      } else {
        delta.scale_capacity(
            f.src, f.dst,
            cfg_.droop < 1.0 ? cfg_.droop : kDisconnectFallbackDroop);
      }
      active.push_back(topo::edge_pair_code(f.src, f.dst));
    } else {
      PSD_ASSERT(ev.type == EventType::kLinkRepair, "unexpected churn event");
      if (f.skipped) continue;
      rec.kind = ChurnEventKind::kRepair;
      rec.src = f.src;
      rec.dst = f.dst;
      rec.dropped = f.dropped;
      // Restore the exact original capacity (set, not inverse-scale: the
      // round trip through a multiply would not be bit-exact).
      if (f.dropped) {
        delta.add_edge(f.src, f.dst, f.original);
      } else {
        delta.set_capacity(f.src, f.dst, f.original);
      }
      active.erase(std::find(active.begin(), active.end(),
                             topo::edge_pair_code(f.src, f.dst)));
    }

    // Pre-delta θ is fully memoized — this is a cache sweep, not a solve.
    rec.theta_before = min_theta(oracle, matchings_);
    const auto before = oracle.solve_stats();
    const auto dres = topo::apply_delta(graph_, delta);
    const auto inv = oracle.apply_topology_delta(dres);
    rec.cache_kept = inv.survived;
    rec.cache_erased = inv.invalidated;
    rec.theta_after = min_theta(oracle, matchings_);
    const auto after = oracle.solve_stats();
    rec.replan_solves = after.solves - before.solves;
    rec.gk_path_pushes = after.gk_path_pushes - before.gk_path_pushes;
    rec.gk_sssp_searches = after.gk_sssp_searches - before.gk_sssp_searches;

    report.theta_min = std::min(report.theta_min, rec.theta_after);
    rec.recovered = rec.theta_after >= recover_floor;
    if (rec.recovered) {
      // Every outstanding dip is healed by this event: time-to-recover is
      // measured from each fault to the first event that restores θ.
      for (auto& pf : faults) {
        if (!pf.pending) continue;
        pf.pending = false;
        report.worst_recovery_ns =
            std::max(report.worst_recovery_ns, ev.time.ns() - pf.time_ns);
      }
    }
    report.total_replan_solves += rec.replan_solves;
    report.total_gk_path_pushes += rec.gk_path_pushes;
    report.total_gk_sssp_searches += rec.gk_sssp_searches;
    report.total_cache_kept += rec.cache_kept;
    report.total_cache_erased += rec.cache_erased;
    report.events.push_back(rec);
  }

  report.fully_recovered = std::none_of(
      faults.begin(), faults.end(), [](const Fault& f) { return f.pending; });
  return report;
}

}  // namespace psd::sim
