#include "psd/sim/event_queue.hpp"

namespace psd::sim {

void EventQueue::push(Event ev) {
  PSD_REQUIRE(ev.time >= now_, "cannot schedule an event in the past");
  ev.seq = next_seq_++;
  heap_.push(ev);
}

Event EventQueue::pop() {
  PSD_REQUIRE(!heap_.empty(), "pop from empty event queue");
  Event ev = heap_.top();
  heap_.pop();
  PSD_ASSERT(ev.time >= now_, "event queue time went backwards");
  now_ = ev.time;
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace psd::sim
