// Service observability: monotonic outcome counters plus a bounded window
// of plan latencies for percentile estimation.
//
// Counters are atomics — workers, the watchdog and the admission path bump
// them concurrently. Latencies land in a fixed-size ring (mutex-guarded;
// recording is O(1) and never allocates after construction), and
// percentiles are computed on demand from a snapshot of the window —
// p50/p99 over the last `window` plans, which is the operationally useful
// number for a long-running daemon (lifetime percentiles go stale).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psd::serve {

/// Point-in-time copy of every counter (see ServeStats::snapshot).
struct ServeStatsSnapshot {
  std::uint64_t received = 0;   // protocol lines admitted to parsing
  std::uint64_t planned = 0;    // fresh solves completed
  std::uint64_t cache_hits = 0; // answered from the plan memo (fresh epoch)
  std::uint64_t coalesced = 0;  // piggybacked on an in-flight identical solve
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;   // stale-epoch answers served
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t invalid = 0;
  std::uint64_t internal_errors = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t replans = 0;    // async post-delta memo refreshes completed
  std::uint64_t replans_debounced = 0;  // deltas coalesced into an armed window
  std::uint64_t deltas = 0;     // topology deltas applied
  std::uint64_t memo_loaded = 0;       // snapshot entries admitted at startup
  std::uint64_t memo_load_errors = 0;  // malformed snapshot lines/files
  std::uint64_t memo_load_rejected = 0;  // stale-fingerprint/scenario rejects
  std::uint64_t memo_snapshots = 0;    // journal generations written
  // Robustness surface (overlaid by PlanService::stats() from the fault
  // injector and the memo journal; raw ServeStats::snapshot() leaves the
  // first three zero):
  std::uint64_t faults_injected = 0;        // injector fires, all sites
  std::uint64_t journal_compactions = 0;    // generations compacted
  std::uint64_t journal_truncated_tail = 0; // torn tails healed at load
  std::uint64_t tenant_deferrals = 0;  // dequeues skipped: tenant at quota
  std::size_t latency_samples = 0;  // plans inside the percentile window
  double p50_plan_ms = 0.0;
  double p99_plan_ms = 0.0;

  /// Fraction of answered plan requests that never waited for a solve.
  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t answered = planned + cache_hits + coalesced + degraded;
    return answered == 0 ? 0.0
                         : static_cast<double>(cache_hits + coalesced) /
                               static_cast<double>(answered);
  }
};

class ServeStats {
 public:
  /// `latency_window` caps the percentile ring (>= 1).
  explicit ServeStats(std::size_t latency_window = 512);

  // Outcome counters (thread-safe, relaxed — they are monotonic tallies).
  void on_received() { received_.fetch_add(1, std::memory_order_relaxed); }
  void on_planned() { planned_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_hit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_coalesced() { coalesced_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void on_degraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }
  void on_deadline_exceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_invalid() { invalid_.fetch_add(1, std::memory_order_relaxed); }
  void on_internal_error() {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_worker_restart() {
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_replan() { replans_.fetch_add(1, std::memory_order_relaxed); }
  void on_replan_debounced() {
    replans_debounced_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_delta() { deltas_.fetch_add(1, std::memory_order_relaxed); }
  void on_memo_loaded(std::uint64_t n) {
    memo_loaded_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_memo_load_error() {
    memo_load_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_memo_load_rejected() {
    memo_load_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_memo_snapshot() {
    memo_snapshots_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_tenant_deferral() {
    tenant_deferrals_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one completed plan's wall latency into the percentile ring.
  void record_plan_latency_ms(double ms);

  [[nodiscard]] ServeStatsSnapshot snapshot() const;

  /// Current p50 over the window — the admission controller's service-time
  /// estimate for retry_after hints. `fallback_ms` when no samples yet.
  [[nodiscard]] double p50_plan_ms(double fallback_ms) const;

  /// Serializes a snapshot as the "stats" object of a stats response.
  [[nodiscard]] static std::string to_json_object(
      const ServeStatsSnapshot& s, std::size_t queue_depth,
      double shared_cache_hit_rate);

 private:
  /// Percentile by rank over a copy of the window (nth_element); `p` in
  /// [0, 1]. Zero when the window is empty.
  [[nodiscard]] double percentile_ms(double p) const;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> planned_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> replans_{0};
  std::atomic<std::uint64_t> replans_debounced_{0};
  std::atomic<std::uint64_t> deltas_{0};
  std::atomic<std::uint64_t> memo_loaded_{0};
  std::atomic<std::uint64_t> memo_load_errors_{0};
  std::atomic<std::uint64_t> memo_load_rejected_{0};
  std::atomic<std::uint64_t> memo_snapshots_{0};
  std::atomic<std::uint64_t> tenant_deferrals_{0};

  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;  // ms; filled circularly
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;  // min(total recorded, ring size)
};

}  // namespace psd::serve
