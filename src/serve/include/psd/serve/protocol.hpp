// The planning daemon's JSON-lines wire protocol (see docs/serve.md).
//
// One request per line, one response line per request (responses may
// arrive out of order — clients correlate by the echoed "id"). Four ops:
//
//   plan      — plan a collective on a registered topology context, under
//               an optional deadline budget
//   delta     — apply a topo::TopologyDelta to a context (epoch bump +
//               edge-level θ-cache carry + async replans)
//   stats     — snapshot the service counters and latency percentiles
//   shutdown  — stop admitting work and drain
//
// Parsing is strict: unknown ops, missing required fields, or wrong-typed
// fields throw (InvalidArgument / JsonParseError) and the service folds
// the message into an INVALID_REQUEST response. Every response carries a
// "code" from ErrorCode below; non-OK responses add "error" text, and SHED
// adds the admission controller's "retry_after_ms" hint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "psd/core/cost_model.hpp"
#include "psd/sweep/scenario.hpp"
#include "psd/topo/delta.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {

/// Structured outcome of every response line. Stable wire names via
/// to_string (clients switch on the string, not the enum ordinal).
enum class ErrorCode : std::uint8_t {
  kOk,                // answered (possibly degraded — see the degraded flag)
  kInvalidRequest,    // unparsable line or bad field; request not admitted
  kShed,              // admission queue full; retry_after_ms hints when
  kDeadlineExceeded,  // budget elapsed with no answer (even stale) available
  kInternal,          // solver threw; the worker survived, the request did not
  kShuttingDown,      // service is draining; no new work admitted
};

[[nodiscard]] const char* to_string(ErrorCode code);

enum class RequestOp : std::uint8_t { kPlan, kStats, kDelta, kShutdown };

/// A parsed "plan" request. Cost parameters default to a 400 Gb/s fabric
/// with microsecond-scale reconfiguration — override per request.
struct PlanFields {
  sweep::TopologySpec topology;
  int nodes = 0;
  sweep::CollectiveSpec collective;
  Bytes message{1 << 20};
  core::CostParams params{TimeNs(500.0), TimeNs(50.0), TimeNs(20'000.0),
                          Bandwidth(50.0)};
  // Deadline budget in milliseconds from admission; <= 0 means none.
  double deadline_ms = 0.0;
  // Permit a stale-epoch (degraded) answer when the budget cannot fit a
  // fresh solve. Off ⇒ such requests get DEADLINE_EXCEEDED instead.
  bool allow_degraded = true;
  // Test/ops hook: make the worker thread that picks this request up die
  // (crash-only restart drill — the watchdog must respawn it).
  bool inject_worker_crash = false;
  // Fair-queueing identity. Empty falls back to the submitter's transport
  // tenant (one per socket connection) — see ServiceOptions.
  std::string tenant;
};

/// A parsed "delta" request: which context's graph to mutate, and how.
struct DeltaFields {
  sweep::TopologySpec topology;
  int nodes = 0;
  double bandwidth_gbps = 400.0;  // context key half (must match plans)
  topo::TopologyDelta delta;
};

struct Request {
  RequestOp op = RequestOp::kPlan;
  std::string id;  // echoed verbatim in the response
  PlanFields plan;    // op == kPlan
  DeltaFields delta;  // op == kDelta
};

/// Parses exactly one protocol line. Throws psd::InvalidArgument (field
/// errors) or psd::JsonParseError (malformed JSON); the thrown message is
/// safe to echo to the client. When `id_out` is non-null it receives the
/// request's "id" as soon as one is recoverable, so even a rejected
/// request's error response can be correlated by the client.
[[nodiscard]] Request parse_request(std::string_view line,
                                    std::string* id_out = nullptr);

/// Parses the "plan" op's payload fields out of an already-parsed JSON
/// object. Shared by the request parser and the memo-snapshot loader
/// (snapshot records reuse the request field vocabulary). Throws
/// InvalidArgument on missing/invalid fields.
[[nodiscard]] PlanFields parse_plan_fields(const JsonValue& obj);

/// One-line error response: {"id":..., "code":..., "error":...} plus a
/// "retry_after_ms" field when retry_after_ms >= 0 (SHED responses).
[[nodiscard]] std::string error_response(std::string_view id, ErrorCode code,
                                         std::string_view message,
                                         double retry_after_ms = -1.0);

/// The numbers a plan response carries (and the degradation memo stores).
struct PlanAnswer {
  int steps = 0;
  double optimal_ns = 0.0;
  double static_ns = 0.0;
  double naive_bvn_ns = 0.0;
  double greedy_ns = 0.0;
  int reconfigurations = 0;
  double speedup_vs_static = 0.0;
  double speedup_vs_bvn = 0.0;
  // Chunk-pipelined pricing of the optimal plan (≤ optimal_ns: a single
  // chunk is always swept), and — when the request asked for algo=auto —
  // which algorithm the size-adaptive selector resolved (else empty, and
  // the wire response omits the field).
  double pipelined_ns = 0.0;
  int pipeline_chunks = 1;
  std::string chosen_algo;
};

/// OK plan response. `epoch_lag` > 0 marks a degraded (stale-epoch) answer
/// and implies degraded == true on the wire; `cached` flags a memo hit and
/// `coalesced` a piggyback on another request's in-flight solve.
[[nodiscard]] std::string plan_response(std::string_view id,
                                        const PlanAnswer& answer,
                                        std::uint64_t epoch,
                                        std::uint64_t epoch_lag, bool cached,
                                        bool coalesced, double plan_ms);

}  // namespace psd::serve
