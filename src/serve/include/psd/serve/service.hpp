// PlanService: the fault-tolerant planning-as-a-service engine behind
// tools/psd_serve.
//
// Requests arrive as protocol lines (see protocol.hpp / docs/serve.md);
// responses leave through the Emit callback, possibly out of submission
// order. Inside, the service is a bounded admission queue in front of a
// small worker fleet, with a watchdog thread enforcing deadlines and
// reviving crashed workers:
//
//   admission   — fresh memo hits answer synchronously; budgets at or
//                 below the fast-path floor take the degradation ladder
//                 immediately (a solve could never fit); identical
//                 in-flight/queued solves coalesce (the new request rides
//                 as an extra waiter); a full queue sheds with a
//                 retry_after hint derived from the observed p50 latency.
//   workers     — each job plans on a *snapshot* of its context's graph
//                 with a per-job Planner over the shared θ cache, under a
//                 cooperative cancellation token armed with the latest
//                 waiter deadline. Solver exceptions are contained (the
//                 waiters get INTERNAL, the worker lives); a crashed
//                 worker thread (crash drill or escaping non-solver
//                 failure) is respawned by the watchdog — crash-only
//                 recovery, the daemon itself never dies.
//   watchdog    — every tick it expires overdue waiters (degraded answer
//                 from the stale memo when allowed, DEADLINE_EXCEEDED
//                 otherwise), cancels in-flight solves nobody waits for
//                 anymore, and respawns dead workers.
//   deltas      — a topology delta bumps the context's graph epoch in
//                 place, carries provably-unaffected θ entries to the new
//                 context fingerprint (the PR-6 edge-level survival rule
//                 via SharedThetaCache::carry_across_delta), leaves the
//                 plan memo as stale degraded-answer fodder, and enqueues
//                 internal replan jobs that refresh it asynchronously.
//                 With a debounce window configured, back-to-back deltas
//                 on one context coalesce: the first arms the window, the
//                 rest ride it (replans_debounced), and the watchdog fires
//                 one replan wave when the window closes.
//
// The queue is two priority lanes: deadline-carrying requests enter the
// urgent lane and are always dequeued ahead of batch work (deadline-free
// plans and internal replans). A batch job that a deadline waiter later
// coalesces onto is promoted to the urgent lane. Within each lane, jobs
// are grouped by *tenant* (the request's "tenant" field, defaulting to
// the transport connection's identity) and dequeued by weighted
// deficit-round-robin, so one chatty client cannot starve everyone else
// behind a FIFO. tenant_inflight_quota additionally caps how many solves
// one tenant may hold in flight; a tenant at quota is skipped
// (tenant_deferrals) until one of its solves finishes.
//
// Requests can carry a per-submission response sink (submit_line's second
// argument) so one service can serve many transport connections: every
// response for a request goes to the sink it arrived with, and a sink
// whose connection died simply drops the line. The plan memo can persist
// across restarts: with memo_journal_path set, every completed fresh
// answer is appended to a crash-consistent journal (CRC-framed records,
// generation files, periodic compaction — see snapshot.hpp) and the
// constructor replays it, admitting only records whose θ context
// fingerprint matches the freshly built topology — a restarted daemon,
// even one killed mid-append, answers every committed plan key warm.
//
// Robustness drills: ServiceOptions::fault plugs a seeded deterministic
// util::FaultInjector into the worker path (worker.crash, worker.slow),
// the watchdog clock (watchdog.stall) and the journal (journal.append.*,
// journal.compact.rename); the transport adds its own sites. See
// docs/fault_injection.md for the registry.
//
// Degradation ladder (tight or blown deadlines): a stale-epoch memo entry
// for the exact solve key is served with degraded=true and its epoch lag;
// with no entry (or allow_degraded=false) the request gets
// DEADLINE_EXCEEDED. A request answered from a solve that a delta
// overtook mid-flight reports its lag the same way instead of erroring.
//
// Timing guarantee: with fast_path_budget_ms >= the watchdog interval
// (both default 5 ms), every deadline-carrying request is answered within
// its budget plus one watchdog tick — i.e. within 2x its budget — no
// matter what the workers are busy with.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "psd/core/planner.hpp"
#include "psd/serve/protocol.hpp"
#include "psd/serve/snapshot.hpp"
#include "psd/serve/stats.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/util/cancellation.hpp"
#include "psd/util/fault_injection.hpp"

namespace psd::serve {

struct ServiceOptions {
  // Worker threads solving plan jobs (>= 1).
  unsigned workers = 2;
  // Admission bound: plan requests beyond this many *queued* jobs are shed.
  std::size_t queue_limit = 32;
  // Watchdog tick: deadline sweeps and worker-liveness checks.
  std::chrono::milliseconds watchdog_interval{5};
  // Budgets at or below this take the degradation ladder at admission (no
  // solve could finish in time). Keep >= watchdog_interval to preserve the
  // 2x-budget answer guarantee (see file comment).
  double fast_path_budget_ms = 5.0;
  // retry_after seed before any latency samples exist.
  double retry_fallback_ms = 50.0;
  // Plan-latency percentile window (ServeStats).
  std::size_t latency_window = 512;
  // Plan-memo bound: completed answers kept for cache hits / degradation.
  std::size_t memo_capacity = 1024;
  // Enqueue internal memo-refresh jobs after a topology delta.
  bool replan_on_delta = true;
  // Delta-storm debouncing: > 0 coalesces back-to-back deltas per context
  // so the replan wave fires once per burst, when the window closes (the
  // watchdog flushes it). 0 replans immediately on every delta.
  std::chrono::milliseconds replan_debounce_window{0};
  // Trailing-edge debouncing: a delta arriving inside an open window
  // extends the window instead of merely riding it, so the replan wave
  // fires one quiet window after the *last* delta of a burst. Off = the
  // leading-edge behavior (window closes relative to the first delta).
  bool debounce_trailing = false;
  // Plan-memo persistence: non-empty is the base path of the append-only
  // memo journal (generation files <base>.gNNNNNN). The constructor
  // replays it; every completed fresh answer is appended durably; the
  // journal compacts itself per journal_compact_records.
  std::string memo_journal_path;
  // Appends between journal compactions (generation rewrites).
  std::size_t journal_compact_records = 256;
  // Generation files kept on disk after a compaction (>= 1).
  std::size_t journal_keep_generations = 2;
  // Per-tenant fairness: max solves one tenant may have in flight at once
  // (0 = unlimited). Tenants at quota are skipped by the DRR dequeue.
  std::size_t tenant_inflight_quota = 0;
  // DRR weights: jobs dequeued per round-robin visit for a tenant (>= 1).
  // Tenants not listed use default_tenant_weight.
  std::map<std::string, int> tenant_weights;
  int default_tenant_weight = 1;
  // Seeded deterministic fault injection (drills only; see
  // docs/fault_injection.md). Not owned; must outlive the service.
  util::FaultInjector* fault = nullptr;
  // θ solver settings shared by every job (cancel and shared_cache are
  // overridden per job; track_support is forced on — the delta carry
  // needs routed supports recorded).
  flow::ThetaOptions theta;
  sweep::SharedThetaCacheOptions theta_cache;
};

class PlanService {
 public:
  /// `emit` receives one response line per answered request, called from
  /// service threads (admission caller, workers, watchdog) — it must be
  /// thread-safe. It is never called while internal locks are held.
  using Emit = std::function<void(const std::string&)>;
  /// A per-request response sink (one per transport connection, usually).
  /// Shared so queued waiters outlive the submit call that created them.
  using EmitRef = std::shared_ptr<const Emit>;

  PlanService(ServiceOptions opts, Emit emit);
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Handles one protocol line (thread-safe). stats/delta/shutdown and all
  /// synchronous plan outcomes (memo hit, shed, fast-path ladder) emit
  /// before returning; queued solves emit later from a worker or the
  /// watchdog. Responses go to `sink` when given, else to the service-wide
  /// emit callback — a multi-connection transport passes one sink per
  /// connection so every answer finds its way back to the right client.
  /// `default_tenant` is the fair-queueing identity used when the request
  /// itself carries no "tenant" field (transports pass one per connection).
  void submit_line(const std::string& line, EmitRef sink = nullptr,
                   const std::string& default_tenant = {});

  /// Blocks until no job is queued or in flight (test synchronization).
  void drain();

  /// Stops admitting work, fails queued waiters with SHUTTING_DOWN, lets
  /// in-flight solves finish, joins every thread. Idempotent.
  void shutdown();

  [[nodiscard]] bool shutting_down() const;
  [[nodiscard]] std::size_t queue_depth() const;
  /// Counter snapshot with the robustness surface overlaid: faults_injected
  /// from the injector, journal_compactions / journal_truncated_tail /
  /// memo_snapshots from the journal.
  [[nodiscard]] ServeStatsSnapshot stats() const;
  [[nodiscard]] const sweep::SharedThetaCache& theta_cache() const {
    return *shared_cache_;
  }

  /// Forces a journal compaction now (tests/ops; the service compacts
  /// itself per journal_compact_records). Only entries fresh at their
  /// context's current epoch survive, each stamped with the context's θ
  /// fingerprint. False without a journal or on I/O failure.
  bool compact_journal();

  /// The memo journal, or nullptr when persistence is off (tests).
  [[nodiscard]] const MemoJournal* journal() const { return journal_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request riding on a (possibly coalesced) solve job.
  struct Waiter {
    std::string id;
    EmitRef sink;  // where this request's answer goes
    Clock::time_point admitted;
    Clock::time_point deadline;  // meaningful iff has_deadline
    bool has_deadline = false;
    bool allow_degraded = true;
    bool coalesced = false;  // joined an existing job rather than creating it
  };

  /// A response line bound to its requester's sink, collected under mu_
  /// and emitted after unlocking.
  struct Outgoing {
    EmitRef sink;
    std::string line;
  };

  /// One solve: the representative request plus everyone waiting on it.
  /// waiters is guarded by mu_; token is internally atomic (the watchdog
  /// cancels it while a worker polls it).
  struct Job {
    std::string solve_key;
    std::string context_key;
    PlanFields plan;
    std::string tenant;  // fair-queueing identity of the creating request
    std::vector<Waiter> waiters;
    util::CancellationToken token;
    bool in_flight = false;
    bool internal = false;  // post-delta memo refresh: no waiters, no emits
    int lane = kLaneBatch;  // which queue lane currently holds it
  };
  using JobPtr = std::shared_ptr<Job>;

  // Priority lanes: deadline-carrying requests always dequeue first.
  static constexpr int kLaneUrgent = 0;
  static constexpr int kLaneBatch = 1;
  static constexpr int kNumLanes = 2;

  /// One tenant's FIFO within a lane, plus its DRR bookkeeping.
  struct TenantQueue {
    std::deque<JobPtr> q;
    int deficit = 0;    // jobs this tenant may still take this DRR visit
    bool in_rr = false; // whether the lane's rotation currently lists it
  };

  /// A priority lane: per-tenant FIFOs dequeued weighted-DRR. `rr` is the
  /// rotation order (tenants join at the back on first enqueue, leave when
  /// drained); `size` counts queued jobs across all tenants.
  struct Lane {
    std::map<std::string, TenantQueue> tenants;
    std::vector<std::string> rr;
    std::size_t rr_pos = 0;
    std::size_t size = 0;
  };

  /// A registered topology: the authoritative graph deltas mutate. Jobs
  /// solve on value snapshots, so epoch() can advance mid-solve (the
  /// answer is then reported with its epoch lag).
  struct Context {
    topo::Graph graph;
    Bandwidth b_ref;
    // Graph epoch at construction (build_topology bumps it once per edge);
    // wire epochs are reported relative to this so a fresh context is 0
    // and each delta op adds one.
    std::uint64_t base_epoch = 0;
  };

  /// The context's wire epoch: mutations since this service built it.
  static std::uint64_t epoch_of(const Context& ctx) {
    return ctx.graph.epoch() - ctx.base_epoch;
  }

  /// A completed answer, kept for fresh cache hits (entry epoch == context
  /// epoch) and stale degraded answers (entry epoch behind). The request
  /// fields ride along so delta-triggered replans can re-solve the key.
  struct MemoEntry {
    PlanAnswer answer;
    std::uint64_t epoch = 0;
    PlanFields plan;
    std::uint64_t last_used = 0;  // LRU clock for eviction
  };

  void handle_plan(const Request& req, const EmitRef& sink,
                   const std::string& default_tenant);
  void handle_delta(const Request& req, const EmitRef& sink);
  void handle_stats(const Request& req, const EmitRef& sink);

  /// Worker thread body; the out-of-line crash boundary lives in
  /// run_worker (marks the slot dead on any escape).
  void run_worker(std::size_t slot);
  void worker_loop(std::size_t slot);
  void watchdog_loop();

  /// The solve itself: per-job Planner on a graph snapshot over the shared
  /// θ cache, cancellation token threaded through to GK.
  [[nodiscard]] PlanAnswer solve_plan(topo::Graph graph, const PlanFields& plan,
                                      const util::CancellationToken* token) const;

  Context& ensure_context_locked(const sweep::TopologySpec& topology, int nodes,
                                 Bandwidth b_ref, const std::string& key);

  /// Ladder answer for an overdue/unservable waiter: stale memo entry (when
  /// allowed) or DEADLINE_EXCEEDED. Appends the response; caller emits
  /// after unlocking.
  void answer_expired_locked(const Waiter& w, const std::string& solve_key,
                             std::uint64_t context_epoch,
                             std::vector<Outgoing>* responses);

  /// Removes overdue waiters from `job`, answering each via the ladder.
  void expire_overdue_locked(const JobPtr& job, Clock::time_point now,
                             std::vector<Outgoing>* responses);

  /// Memo upsert with LRU-by-use eviction at memo_capacity.
  void memo_put_locked(const std::string& solve_key, PlanAnswer answer,
                       std::uint64_t epoch, const PlanFields& plan);

  /// Enqueues a job into its lane under its tenant (joins the DRR rotation
  /// on first enqueue).
  void push_job_locked(JobPtr job);

  /// Pops the next dispatchable job: lane priority (urgent before batch),
  /// weighted DRR across tenants within a lane, tenants at their in-flight
  /// quota skipped (tenant_deferrals). Null when nothing is dispatchable —
  /// which, under quotas, is NOT the same as nothing queued.
  [[nodiscard]] JobPtr pop_job_locked();

  /// True when pop_job_locked() would return a job (worker wake predicate).
  [[nodiscard]] bool has_dispatchable_locked() const;

  /// Returns a finished solve's quota slot to its tenant and wakes workers
  /// whose rotation may have been quota-blocked on it.
  void release_tenant_slot_locked(const std::string& tenant);

  [[nodiscard]] std::size_t queued_locked() const {
    return lanes_[kLaneUrgent].size + lanes_[kLaneBatch].size;
  }

  [[nodiscard]] int tenant_weight(const std::string& tenant) const;

  /// Moves a queued batch job to the urgent lane (a deadline waiter
  /// coalesced onto it). No-op for in-flight or already-urgent jobs.
  void promote_to_urgent_locked(const JobPtr& job);

  /// One replan wave for `ckey`: enqueues an internal refresh job per
  /// stale memo entry of that context. Returns how many were enqueued.
  std::size_t enqueue_replans_locked(const std::string& ckey);

  /// Every memo entry fresh at its context's current epoch, stamped with
  /// the context's θ fingerprint — the journal's compaction payload and
  /// per-answer append source.
  [[nodiscard]] std::vector<MemoSnapshotRecord> live_records_locked();

  /// One journal record for `solve_key`'s memo entry if it is fresh at its
  /// context's current epoch; nullopt otherwise.
  [[nodiscard]] std::optional<MemoSnapshotRecord> record_for_key_locked(
      const std::string& solve_key);

  /// Replays the journal into the memo (constructor, pre-threads):
  /// fingerprint-validated admission, counters for loaded/errors/rejected.
  void replay_journal_locked();

  /// Appends `rec` (when set) and runs a compaction if the journal asks
  /// for one. Called WITHOUT mu_ held (the journal has its own lock; the
  /// compaction payload is gathered under mu_ internally).
  void journal_append_and_maintain(std::optional<MemoSnapshotRecord> rec);

  [[nodiscard]] static std::string context_key(
      const sweep::TopologySpec& topology, int nodes, double gbps);
  [[nodiscard]] static std::string solve_key(const std::string& context_key,
                                             const PlanFields& plan);

  ServiceOptions opts_;
  Emit emit_;
  EmitRef default_sink_;  // wraps emit_ for requests submitted without one
  ServeStats stats_;
  std::shared_ptr<sweep::SharedThetaCache> shared_cache_;
  std::unique_ptr<MemoJournal> journal_;  // null when persistence is off
  std::uint64_t journal_truncated_tail_ = 0;  // from the startup replay

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: job dispatchable / shutdown
  std::condition_variable idle_cv_;   // drain(): queue empty, nothing in flight
  std::condition_variable watchdog_cv_;
  Lane lanes_[kNumLanes];  // urgent ahead of batch; DRR within each
  std::map<std::string, JobPtr> jobs_by_key_;  // queued + in-flight
  std::map<std::string, std::unique_ptr<Context>> contexts_;
  std::map<std::string, MemoEntry> memo_;
  // In-flight solves per tenant (quota accounting; entries removed at 0).
  std::map<std::string, std::size_t> tenant_inflight_;
  // Debounce windows armed by deltas, keyed by context: the watchdog
  // flushes each into one replan wave once its close time passes.
  std::map<std::string, Clock::time_point> pending_replans_;
  std::uint64_t memo_clock_ = 0;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool watchdog_stop_ = false;

  /// Crash-only worker slot: `alive` drops when the thread exits for any
  /// reason; the watchdog joins and respawns it unless shutting down.
  struct WorkerSlot {
    std::thread thread;
    std::atomic<bool> alive{false};
  };
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::thread watchdog_;

  // Serializes shutdown(): one caller joins, concurrent callers block
  // until teardown finishes, later callers return immediately.
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
};

}  // namespace psd::serve
