// PlanService: the fault-tolerant planning-as-a-service engine behind
// tools/psd_serve.
//
// Requests arrive as protocol lines (see protocol.hpp / docs/serve.md);
// responses leave through the Emit callback, possibly out of submission
// order. Inside, the service is a bounded admission queue in front of a
// small worker fleet, with a watchdog thread enforcing deadlines and
// reviving crashed workers:
//
//   admission   — fresh memo hits answer synchronously; budgets at or
//                 below the fast-path floor take the degradation ladder
//                 immediately (a solve could never fit); identical
//                 in-flight/queued solves coalesce (the new request rides
//                 as an extra waiter); a full queue sheds with a
//                 retry_after hint derived from the observed p50 latency.
//   workers     — each job plans on a *snapshot* of its context's graph
//                 with a per-job Planner over the shared θ cache, under a
//                 cooperative cancellation token armed with the latest
//                 waiter deadline. Solver exceptions are contained (the
//                 waiters get INTERNAL, the worker lives); a crashed
//                 worker thread (crash drill or escaping non-solver
//                 failure) is respawned by the watchdog — crash-only
//                 recovery, the daemon itself never dies.
//   watchdog    — every tick it expires overdue waiters (degraded answer
//                 from the stale memo when allowed, DEADLINE_EXCEEDED
//                 otherwise), cancels in-flight solves nobody waits for
//                 anymore, and respawns dead workers.
//   deltas      — a topology delta bumps the context's graph epoch in
//                 place, carries provably-unaffected θ entries to the new
//                 context fingerprint (the PR-6 edge-level survival rule
//                 via SharedThetaCache::carry_across_delta), leaves the
//                 plan memo as stale degraded-answer fodder, and enqueues
//                 internal replan jobs that refresh it asynchronously.
//
// Degradation ladder (tight or blown deadlines): a stale-epoch memo entry
// for the exact solve key is served with degraded=true and its epoch lag;
// with no entry (or allow_degraded=false) the request gets
// DEADLINE_EXCEEDED. A request answered from a solve that a delta
// overtook mid-flight reports its lag the same way instead of erroring.
//
// Timing guarantee: with fast_path_budget_ms >= the watchdog interval
// (both default 5 ms), every deadline-carrying request is answered within
// its budget plus one watchdog tick — i.e. within 2x its budget — no
// matter what the workers are busy with.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "psd/core/planner.hpp"
#include "psd/serve/protocol.hpp"
#include "psd/serve/stats.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/util/cancellation.hpp"

namespace psd::serve {

struct ServiceOptions {
  // Worker threads solving plan jobs (>= 1).
  unsigned workers = 2;
  // Admission bound: plan requests beyond this many *queued* jobs are shed.
  std::size_t queue_limit = 32;
  // Watchdog tick: deadline sweeps and worker-liveness checks.
  std::chrono::milliseconds watchdog_interval{5};
  // Budgets at or below this take the degradation ladder at admission (no
  // solve could finish in time). Keep >= watchdog_interval to preserve the
  // 2x-budget answer guarantee (see file comment).
  double fast_path_budget_ms = 5.0;
  // retry_after seed before any latency samples exist.
  double retry_fallback_ms = 50.0;
  // Plan-latency percentile window (ServeStats).
  std::size_t latency_window = 512;
  // Plan-memo bound: completed answers kept for cache hits / degradation.
  std::size_t memo_capacity = 1024;
  // Enqueue internal memo-refresh jobs after a topology delta.
  bool replan_on_delta = true;
  // θ solver settings shared by every job (cancel and shared_cache are
  // overridden per job; track_support is forced on — the delta carry
  // needs routed supports recorded).
  flow::ThetaOptions theta;
  sweep::SharedThetaCacheOptions theta_cache;
};

class PlanService {
 public:
  /// `emit` receives one response line per answered request, called from
  /// service threads (admission caller, workers, watchdog) — it must be
  /// thread-safe. It is never called while internal locks are held.
  using Emit = std::function<void(const std::string&)>;

  PlanService(ServiceOptions opts, Emit emit);
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Handles one protocol line (thread-safe). stats/delta/shutdown and all
  /// synchronous plan outcomes (memo hit, shed, fast-path ladder) emit
  /// before returning; queued solves emit later from a worker or the
  /// watchdog.
  void submit_line(const std::string& line);

  /// Blocks until no job is queued or in flight (test synchronization).
  void drain();

  /// Stops admitting work, fails queued waiters with SHUTTING_DOWN, lets
  /// in-flight solves finish, joins every thread. Idempotent.
  void shutdown();

  [[nodiscard]] bool shutting_down() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] ServeStatsSnapshot stats() const { return stats_.snapshot(); }
  [[nodiscard]] const sweep::SharedThetaCache& theta_cache() const {
    return *shared_cache_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request riding on a (possibly coalesced) solve job.
  struct Waiter {
    std::string id;
    Clock::time_point admitted;
    Clock::time_point deadline;  // meaningful iff has_deadline
    bool has_deadline = false;
    bool allow_degraded = true;
    bool coalesced = false;  // joined an existing job rather than creating it
  };

  /// One solve: the representative request plus everyone waiting on it.
  /// waiters is guarded by mu_; token is internally atomic (the watchdog
  /// cancels it while a worker polls it).
  struct Job {
    std::string solve_key;
    std::string context_key;
    PlanFields plan;
    std::vector<Waiter> waiters;
    util::CancellationToken token;
    bool in_flight = false;
    bool internal = false;  // post-delta memo refresh: no waiters, no emits
  };
  using JobPtr = std::shared_ptr<Job>;

  /// A registered topology: the authoritative graph deltas mutate. Jobs
  /// solve on value snapshots, so epoch() can advance mid-solve (the
  /// answer is then reported with its epoch lag).
  struct Context {
    topo::Graph graph;
    Bandwidth b_ref;
    // Graph epoch at construction (build_topology bumps it once per edge);
    // wire epochs are reported relative to this so a fresh context is 0
    // and each delta op adds one.
    std::uint64_t base_epoch = 0;
  };

  /// The context's wire epoch: mutations since this service built it.
  static std::uint64_t epoch_of(const Context& ctx) {
    return ctx.graph.epoch() - ctx.base_epoch;
  }

  /// A completed answer, kept for fresh cache hits (entry epoch == context
  /// epoch) and stale degraded answers (entry epoch behind). The request
  /// fields ride along so delta-triggered replans can re-solve the key.
  struct MemoEntry {
    PlanAnswer answer;
    std::uint64_t epoch = 0;
    PlanFields plan;
    std::uint64_t last_used = 0;  // LRU clock for eviction
  };

  void handle_plan(const Request& req);
  void handle_delta(const Request& req);
  void handle_stats(const Request& req);
  void initiate_shutdown(std::vector<std::string>* responses);

  /// Worker thread body; the out-of-line crash boundary lives in
  /// run_worker (marks the slot dead on any escape).
  void run_worker(std::size_t slot);
  void worker_loop(std::size_t slot);
  void watchdog_loop();

  /// The solve itself: per-job Planner on a graph snapshot over the shared
  /// θ cache, cancellation token threaded through to GK.
  [[nodiscard]] PlanAnswer solve_plan(topo::Graph graph, const PlanFields& plan,
                                      const util::CancellationToken* token) const;

  Context& ensure_context_locked(const sweep::TopologySpec& topology, int nodes,
                                 Bandwidth b_ref, const std::string& key);

  /// Ladder answer for an overdue/unservable waiter: stale memo entry (when
  /// allowed) or DEADLINE_EXCEEDED. Appends the response; caller emits
  /// after unlocking.
  void answer_expired_locked(const Waiter& w, const std::string& solve_key,
                             std::uint64_t context_epoch,
                             std::vector<std::string>* responses);

  /// Removes overdue waiters from `job`, answering each via the ladder.
  void expire_overdue_locked(const JobPtr& job, Clock::time_point now,
                             std::vector<std::string>* responses);

  /// Memo upsert with LRU-by-use eviction at memo_capacity.
  void memo_put_locked(const std::string& solve_key, PlanAnswer answer,
                       std::uint64_t epoch, const PlanFields& plan);

  [[nodiscard]] static std::string context_key(
      const sweep::TopologySpec& topology, int nodes, double gbps);
  [[nodiscard]] static std::string solve_key(const std::string& context_key,
                                             const PlanFields& plan);

  ServiceOptions opts_;
  Emit emit_;
  ServeStats stats_;
  std::shared_ptr<sweep::SharedThetaCache> shared_cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty / shutdown
  std::condition_variable idle_cv_;   // drain(): queue empty, nothing in flight
  std::condition_variable watchdog_cv_;
  std::deque<JobPtr> queue_;
  std::map<std::string, JobPtr> jobs_by_key_;  // queued + in-flight
  std::map<std::string, std::unique_ptr<Context>> contexts_;
  std::map<std::string, MemoEntry> memo_;
  std::uint64_t memo_clock_ = 0;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool watchdog_stop_ = false;

  /// Crash-only worker slot: `alive` drops when the thread exits for any
  /// reason; the watchdog joins and respawns it unless shutting down.
  struct WorkerSlot {
    std::thread thread;
    std::atomic<bool> alive{false};
  };
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::thread watchdog_;

  // Serializes shutdown(): one caller joins, concurrent callers block
  // until teardown finishes, later callers return immediately.
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
};

}  // namespace psd::serve
