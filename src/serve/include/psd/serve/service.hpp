// PlanService: the fault-tolerant planning-as-a-service engine behind
// tools/psd_serve.
//
// Requests arrive as protocol lines (see protocol.hpp / docs/serve.md);
// responses leave through the Emit callback, possibly out of submission
// order. Inside, the service is a bounded admission queue in front of a
// small worker fleet, with a watchdog thread enforcing deadlines and
// reviving crashed workers:
//
//   admission   — fresh memo hits answer synchronously; budgets at or
//                 below the fast-path floor take the degradation ladder
//                 immediately (a solve could never fit); identical
//                 in-flight/queued solves coalesce (the new request rides
//                 as an extra waiter); a full queue sheds with a
//                 retry_after hint derived from the observed p50 latency.
//   workers     — each job plans on a *snapshot* of its context's graph
//                 with a per-job Planner over the shared θ cache, under a
//                 cooperative cancellation token armed with the latest
//                 waiter deadline. Solver exceptions are contained (the
//                 waiters get INTERNAL, the worker lives); a crashed
//                 worker thread (crash drill or escaping non-solver
//                 failure) is respawned by the watchdog — crash-only
//                 recovery, the daemon itself never dies.
//   watchdog    — every tick it expires overdue waiters (degraded answer
//                 from the stale memo when allowed, DEADLINE_EXCEEDED
//                 otherwise), cancels in-flight solves nobody waits for
//                 anymore, and respawns dead workers.
//   deltas      — a topology delta bumps the context's graph epoch in
//                 place, carries provably-unaffected θ entries to the new
//                 context fingerprint (the PR-6 edge-level survival rule
//                 via SharedThetaCache::carry_across_delta), leaves the
//                 plan memo as stale degraded-answer fodder, and enqueues
//                 internal replan jobs that refresh it asynchronously.
//                 With a debounce window configured, back-to-back deltas
//                 on one context coalesce: the first arms the window, the
//                 rest ride it (replans_debounced), and the watchdog fires
//                 one replan wave when the window closes.
//
// The queue is two priority lanes: deadline-carrying requests enter the
// urgent lane and are always dequeued ahead of batch work (deadline-free
// plans and internal replans). A batch job that a deadline waiter later
// coalesces onto is promoted to the urgent lane.
//
// Requests can carry a per-submission response sink (submit_line's second
// argument) so one service can serve many transport connections: every
// response for a request goes to the sink it arrived with, and a sink
// whose connection died simply drops the line. The plan memo can persist
// across restarts: save_memo_snapshot writes a versioned JSON-lines file
// (also periodically / on shutdown when configured) and the constructor
// reloads it, admitting only entries whose θ context fingerprint matches
// the freshly built topology — a restarted daemon answers its first
// repeat requests from the warm memo (see snapshot.hpp, docs/serve.md).
//
// Degradation ladder (tight or blown deadlines): a stale-epoch memo entry
// for the exact solve key is served with degraded=true and its epoch lag;
// with no entry (or allow_degraded=false) the request gets
// DEADLINE_EXCEEDED. A request answered from a solve that a delta
// overtook mid-flight reports its lag the same way instead of erroring.
//
// Timing guarantee: with fast_path_budget_ms >= the watchdog interval
// (both default 5 ms), every deadline-carrying request is answered within
// its budget plus one watchdog tick — i.e. within 2x its budget — no
// matter what the workers are busy with.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "psd/core/planner.hpp"
#include "psd/serve/protocol.hpp"
#include "psd/serve/stats.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/util/cancellation.hpp"

namespace psd::serve {

struct ServiceOptions {
  // Worker threads solving plan jobs (>= 1).
  unsigned workers = 2;
  // Admission bound: plan requests beyond this many *queued* jobs are shed.
  std::size_t queue_limit = 32;
  // Watchdog tick: deadline sweeps and worker-liveness checks.
  std::chrono::milliseconds watchdog_interval{5};
  // Budgets at or below this take the degradation ladder at admission (no
  // solve could finish in time). Keep >= watchdog_interval to preserve the
  // 2x-budget answer guarantee (see file comment).
  double fast_path_budget_ms = 5.0;
  // retry_after seed before any latency samples exist.
  double retry_fallback_ms = 50.0;
  // Plan-latency percentile window (ServeStats).
  std::size_t latency_window = 512;
  // Plan-memo bound: completed answers kept for cache hits / degradation.
  std::size_t memo_capacity = 1024;
  // Enqueue internal memo-refresh jobs after a topology delta.
  bool replan_on_delta = true;
  // Delta-storm debouncing: > 0 coalesces back-to-back deltas per context
  // so the replan wave fires once per burst, when the window closes (the
  // watchdog flushes it). 0 replans immediately on every delta.
  std::chrono::milliseconds replan_debounce_window{0};
  // Plan-memo persistence: non-empty enables loading a snapshot at
  // construction and writing one at shutdown (path + ".tmp" then rename).
  std::string memo_snapshot_path;
  // > 0 additionally snapshots periodically from the watchdog.
  std::chrono::milliseconds memo_snapshot_interval{0};
  // θ solver settings shared by every job (cancel and shared_cache are
  // overridden per job; track_support is forced on — the delta carry
  // needs routed supports recorded).
  flow::ThetaOptions theta;
  sweep::SharedThetaCacheOptions theta_cache;
};

class PlanService {
 public:
  /// `emit` receives one response line per answered request, called from
  /// service threads (admission caller, workers, watchdog) — it must be
  /// thread-safe. It is never called while internal locks are held.
  using Emit = std::function<void(const std::string&)>;
  /// A per-request response sink (one per transport connection, usually).
  /// Shared so queued waiters outlive the submit call that created them.
  using EmitRef = std::shared_ptr<const Emit>;

  PlanService(ServiceOptions opts, Emit emit);
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Handles one protocol line (thread-safe). stats/delta/shutdown and all
  /// synchronous plan outcomes (memo hit, shed, fast-path ladder) emit
  /// before returning; queued solves emit later from a worker or the
  /// watchdog. Responses go to `sink` when given, else to the service-wide
  /// emit callback — a multi-connection transport passes one sink per
  /// connection so every answer finds its way back to the right client.
  void submit_line(const std::string& line, EmitRef sink = nullptr);

  /// Blocks until no job is queued or in flight (test synchronization).
  void drain();

  /// Stops admitting work, fails queued waiters with SHUTTING_DOWN, lets
  /// in-flight solves finish, joins every thread. Idempotent.
  void shutdown();

  [[nodiscard]] bool shutting_down() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] ServeStatsSnapshot stats() const { return stats_.snapshot(); }
  [[nodiscard]] const sweep::SharedThetaCache& theta_cache() const {
    return *shared_cache_;
  }

  /// Writes the plan memo to `path` as a versioned JSON-lines snapshot
  /// (atomically: path + ".tmp" then rename). Only entries fresh at their
  /// context's current epoch are recorded, each stamped with the context's
  /// θ fingerprint. Returns the number of entries written, or -1 on I/O
  /// failure (logged to stderr; the service keeps running).
  std::ptrdiff_t save_memo_snapshot(const std::string& path);

  /// Loads a snapshot written by save_memo_snapshot, admitting entries
  /// whose fingerprint matches the freshly built context (memo_loaded);
  /// malformed lines count memo_load_errors, fingerprint/scenario
  /// mismatches memo_load_rejected. A missing file is a silent cold start.
  void load_memo_snapshot(const std::string& path);

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request riding on a (possibly coalesced) solve job.
  struct Waiter {
    std::string id;
    EmitRef sink;  // where this request's answer goes
    Clock::time_point admitted;
    Clock::time_point deadline;  // meaningful iff has_deadline
    bool has_deadline = false;
    bool allow_degraded = true;
    bool coalesced = false;  // joined an existing job rather than creating it
  };

  /// A response line bound to its requester's sink, collected under mu_
  /// and emitted after unlocking.
  struct Outgoing {
    EmitRef sink;
    std::string line;
  };

  /// One solve: the representative request plus everyone waiting on it.
  /// waiters is guarded by mu_; token is internally atomic (the watchdog
  /// cancels it while a worker polls it).
  struct Job {
    std::string solve_key;
    std::string context_key;
    PlanFields plan;
    std::vector<Waiter> waiters;
    util::CancellationToken token;
    bool in_flight = false;
    bool internal = false;  // post-delta memo refresh: no waiters, no emits
    int lane = kLaneBatch;  // which queue lane currently holds it
  };
  using JobPtr = std::shared_ptr<Job>;

  // Priority lanes: deadline-carrying requests always dequeue first.
  static constexpr int kLaneUrgent = 0;
  static constexpr int kLaneBatch = 1;
  static constexpr int kNumLanes = 2;

  /// A registered topology: the authoritative graph deltas mutate. Jobs
  /// solve on value snapshots, so epoch() can advance mid-solve (the
  /// answer is then reported with its epoch lag).
  struct Context {
    topo::Graph graph;
    Bandwidth b_ref;
    // Graph epoch at construction (build_topology bumps it once per edge);
    // wire epochs are reported relative to this so a fresh context is 0
    // and each delta op adds one.
    std::uint64_t base_epoch = 0;
  };

  /// The context's wire epoch: mutations since this service built it.
  static std::uint64_t epoch_of(const Context& ctx) {
    return ctx.graph.epoch() - ctx.base_epoch;
  }

  /// A completed answer, kept for fresh cache hits (entry epoch == context
  /// epoch) and stale degraded answers (entry epoch behind). The request
  /// fields ride along so delta-triggered replans can re-solve the key.
  struct MemoEntry {
    PlanAnswer answer;
    std::uint64_t epoch = 0;
    PlanFields plan;
    std::uint64_t last_used = 0;  // LRU clock for eviction
  };

  void handle_plan(const Request& req, const EmitRef& sink);
  void handle_delta(const Request& req, const EmitRef& sink);
  void handle_stats(const Request& req, const EmitRef& sink);

  /// Worker thread body; the out-of-line crash boundary lives in
  /// run_worker (marks the slot dead on any escape).
  void run_worker(std::size_t slot);
  void worker_loop(std::size_t slot);
  void watchdog_loop();

  /// The solve itself: per-job Planner on a graph snapshot over the shared
  /// θ cache, cancellation token threaded through to GK.
  [[nodiscard]] PlanAnswer solve_plan(topo::Graph graph, const PlanFields& plan,
                                      const util::CancellationToken* token) const;

  Context& ensure_context_locked(const sweep::TopologySpec& topology, int nodes,
                                 Bandwidth b_ref, const std::string& key);

  /// Ladder answer for an overdue/unservable waiter: stale memo entry (when
  /// allowed) or DEADLINE_EXCEEDED. Appends the response; caller emits
  /// after unlocking.
  void answer_expired_locked(const Waiter& w, const std::string& solve_key,
                             std::uint64_t context_epoch,
                             std::vector<Outgoing>* responses);

  /// Removes overdue waiters from `job`, answering each via the ladder.
  void expire_overdue_locked(const JobPtr& job, Clock::time_point now,
                             std::vector<Outgoing>* responses);

  /// Memo upsert with LRU-by-use eviction at memo_capacity.
  void memo_put_locked(const std::string& solve_key, PlanAnswer answer,
                       std::uint64_t epoch, const PlanFields& plan);

  /// Pops the next job honoring lane priority (urgent before batch).
  [[nodiscard]] JobPtr pop_job_locked();
  [[nodiscard]] std::size_t queued_locked() const {
    return lanes_[kLaneUrgent].size() + lanes_[kLaneBatch].size();
  }

  /// Moves a queued batch job to the urgent lane (a deadline waiter
  /// coalesced onto it). No-op for in-flight or already-urgent jobs.
  void promote_to_urgent_locked(const JobPtr& job);

  /// One replan wave for `ckey`: enqueues an internal refresh job per
  /// stale memo entry of that context. Returns how many were enqueued.
  std::size_t enqueue_replans_locked(const std::string& ckey);

  /// Collects snapshot lines for every memo entry fresh at its context's
  /// current epoch (header first).
  [[nodiscard]] std::vector<std::string> snapshot_lines_locked();

  /// Writes collected snapshot lines to `path` atomically (path + ".tmp"
  /// then rename) and bumps the snapshot counter. False on I/O failure
  /// (logged to stderr). Called without mu_ held.
  bool write_snapshot_lines(const std::string& path,
                            const std::vector<std::string>& lines);

  [[nodiscard]] static std::string context_key(
      const sweep::TopologySpec& topology, int nodes, double gbps);
  [[nodiscard]] static std::string solve_key(const std::string& context_key,
                                             const PlanFields& plan);

  ServiceOptions opts_;
  Emit emit_;
  EmitRef default_sink_;  // wraps emit_ for requests submitted without one
  ServeStats stats_;
  std::shared_ptr<sweep::SharedThetaCache> shared_cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty / shutdown
  std::condition_variable idle_cv_;   // drain(): queue empty, nothing in flight
  std::condition_variable watchdog_cv_;
  std::deque<JobPtr> lanes_[kNumLanes];  // urgent ahead of batch
  std::map<std::string, JobPtr> jobs_by_key_;  // queued + in-flight
  std::map<std::string, std::unique_ptr<Context>> contexts_;
  std::map<std::string, MemoEntry> memo_;
  // Debounce windows armed by deltas, keyed by context: the watchdog
  // flushes each into one replan wave once its close time passes.
  std::map<std::string, Clock::time_point> pending_replans_;
  Clock::time_point next_snapshot_ = Clock::time_point::max();
  std::uint64_t memo_clock_ = 0;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  bool watchdog_stop_ = false;

  /// Crash-only worker slot: `alive` drops when the thread exits for any
  /// reason; the watchdog joins and respawns it unless shutting down.
  struct WorkerSlot {
    std::thread thread;
    std::atomic<bool> alive{false};
  };
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  std::thread watchdog_;

  // Serializes shutdown(): one caller joins, concurrent callers block
  // until teardown finishes, later callers return immediately.
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
};

}  // namespace psd::serve
