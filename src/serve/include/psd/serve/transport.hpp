// SocketServer: the multi-client Unix-socket transport in front of a
// PlanService.
//
// One poll(2) event loop owns the listening socket and every accepted
// connection. Inbound bytes are framed into protocol lines by a
// util::LineBuffer per connection (half lines, coalesced lines, and
// split-across-read requests all work; an oversized line is answered
// with INVALID_REQUEST and the stream resyncs at its newline). Each
// complete line goes to PlanService::submit_line with a per-connection
// response sink, so answers — which arrive out of order, from worker and
// watchdog threads — are routed back to the connection that asked.
//
// Response sinks never block the service: they append to the
// connection's outbound buffer under its own mutex and nudge the event
// loop through a self-pipe; the loop writes when the socket can take it.
// A connection whose client stops reading grows its outbound buffer to
// the configured cap and is then dropped (backpressure by disconnect —
// the service's answers must not be held hostage by one slow client). A
// client that disconnects mid-solve just loses its answers: the sink
// holds a weak reference, emits to a dead connection are dropped, and
// the accept loop never stalls.
//
// Shutdown is graceful: stop() (or the service reaching shutting_down
// after a "shutdown" op) flips the loop into a drain phase that stops
// accepting and reading, flushes what the out-buffers still hold — up to
// drain_timeout — then closes everything and removes the socket file.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "psd/serve/service.hpp"

namespace psd::serve {

struct SocketServerOptions {
  // Filesystem path of the Unix-domain listening socket. Anything already
  // at that path is unlinked at start().
  std::string socket_path;
  // Per-line cap for inbound requests; longer lines are dropped and
  // answered INVALID_REQUEST (the connection survives). 1 MiB default.
  std::size_t max_line_bytes = 1u << 20;
  // Outbound-buffer cap per connection; a client that stops reading past
  // this many pending bytes is disconnected.
  std::size_t max_outbound_bytes = 8u << 20;
  int listen_backlog = 64;
  // How long the drain phase may keep flushing outbound buffers.
  std::chrono::milliseconds drain_timeout{2000};
  // Seeded deterministic fault injection for transport drills (sites
  // transport.read.short / transport.read.eagain / transport.write.short /
  // transport.write.eagain / transport.conn.reset — see
  // docs/fault_injection.md). Not owned; must outlive the server.
  util::FaultInjector* fault = nullptr;
};

class SocketServer {
 public:
  /// The service must outlive the server.
  SocketServer(SocketServerOptions opts, PlanService& service);
  ~SocketServer();  // stop()

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens on socket_path and spawns the event-loop thread.
  /// Throws psd::Error when the socket cannot be set up.
  void start();

  /// Requests a graceful drain and joins the loop thread. Idempotent;
  /// also triggered by the service reaching shutting_down().
  void stop();

  /// True from start() until the loop thread has exited.
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Lifetime counters (tests / ops).
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return accepted_.load();
  }
  [[nodiscard]] std::uint64_t connections_dropped() const {
    return dropped_.load();
  }
  [[nodiscard]] std::uint64_t overlong_lines() const {
    return overlong_.load();
  }

 private:
  /// Both ends of the self-pipe, shared with every connection's sink so a
  /// late emit after the server died writes into a still-owned pipe (or
  /// fails EAGAIN) instead of a recycled fd.
  struct WakePipe;
  struct Conn;

  void run();
  /// Handles readable bytes on `conn`; false when the connection is done
  /// (EOF or error) and must be dropped.
  bool service_input(const std::shared_ptr<Conn>& conn);
  /// Flushes the outbound buffer; false when the connection broke.
  bool service_output(const std::shared_ptr<Conn>& conn);
  void drop_conn(int fd);

  SocketServerOptions opts_;
  PlanService& service_;
  std::shared_ptr<WakePipe> wake_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> overlong_{0};
  // Event-loop-thread private (no lock): fd -> connection.
  std::map<int, std::shared_ptr<Conn>> conns_;
};

}  // namespace psd::serve
