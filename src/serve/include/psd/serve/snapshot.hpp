// Crash-consistent persisted plan memo: the append-only journal a
// PlanService writes while it runs and replays at startup so a restarted
// daemon — even one that died mid-write — answers every previously
// committed plan key warm.
//
// A journal is a family of *generation* files next to a base path:
//
//   <base>.g000001, <base>.g000002, ...
//
// Each generation starts with a header line, followed by one framed
// record per memo entry or append:
//
//   {"format":"psd-serve-journal","version":2,"generation":1}
//   a1b2c3d4 217 {"topology":"ring","nodes":8,...,"answer":{...}}
//   ^ CRC32   ^ payload bytes  ^ payload (the PR-9 memo record JSON)
//
// Records are length- and CRC-framed so the loader can tell a committed
// record from a torn one: a crash mid-append leaves a tail whose length
// or checksum cannot match, and load() truncates exactly there — every
// record before the tear is kept, nothing after it is trusted. Earlier
// valid records are never rejected because of a torn tail.
//
// Appends go to the newest generation and are flushed to the OS per
// record (an answer is durable as soon as append() returns). After
// `compact_records` appends the owner compacts: the full live memo is
// written to the *next* generation via .tmp + atomic rename, appends
// switch over, and generations beyond `keep_generations` are unlinked —
// disk stays bounded no matter how long the daemon runs. The newest
// generation with a readable header wins at load time (an interrupted
// compaction leaves at most a .tmp and the previous generation intact).
//
// Record payloads carry the full solve parameters, the answer (%.17g —
// bit-exact round trip), the context's wire epoch, and the θ context
// fingerprint; the service admits a replayed record only when the
// fingerprint matches its freshly built context (see service.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "psd/serve/protocol.hpp"
#include "psd/util/fault_injection.hpp"

namespace psd::serve {

inline constexpr int kMemoJournalVersion = 2;

/// One journal record: a memo entry plus the provenance needed to
/// validate it against a freshly built context.
struct MemoSnapshotRecord {
  PlanFields plan;
  PlanAnswer answer;
  std::uint64_t epoch = 0;        // context wire epoch when recorded
  std::uint64_t fingerprint = 0;  // θ context fingerprint of that graph
};

/// Serializes one record payload as a single JSON line (no framing, no
/// trailing newline).
[[nodiscard]] std::string memo_record_to_json(const MemoSnapshotRecord& rec);

/// Parses one record payload. Throws psd::Error (InvalidArgument /
/// JsonParseError) on malformed input.
[[nodiscard]] MemoSnapshotRecord memo_record_from_json(std::string_view line);

/// CRC32 (IEEE, reflected) of `data` — the journal's record checksum,
/// exposed so tests can craft torn and corrupted files byte by byte.
[[nodiscard]] std::uint32_t crc32_ieee(std::string_view data);

/// Frames a record payload as a journal line (no trailing newline):
/// "<crc32 hex8> <payload length> <payload>".
[[nodiscard]] std::string journal_frame_record(std::string_view payload);

/// A generation file's first line.
[[nodiscard]] std::string journal_header(std::uint64_t generation);

/// True when `line` is a well-formed header of a readable version;
/// `generation_out` (optional) receives the recorded generation number.
[[nodiscard]] bool parse_journal_header(std::string_view line,
                                        std::uint64_t* generation_out = nullptr);

struct MemoJournalOptions {
  // Appends since the last compaction that trigger wants_compaction().
  std::size_t compact_records = 256;
  // On-disk generation files retained after a compaction (>= 1).
  std::size_t keep_generations = 2;
  // Injection sites journal.append.torn / journal.append.error /
  // journal.compact.rename consult this when non-null (drills only).
  util::FaultInjector* fault = nullptr;
};

/// What load() recovered from disk.
struct JournalLoadResult {
  std::vector<MemoSnapshotRecord> records;  // committed, in append order
  std::uint64_t generation = 0;  // generation replayed; 0 = cold start
  // Torn-tail events: 1 when the replayed generation ended in a record
  // that failed its length/CRC frame (truncated there, prefix kept).
  std::uint64_t truncated_tail = 0;
  // Malformed payloads *inside* committed frames (CRC fine, JSON bad) and
  // unreadable newest-generation headers.
  std::uint64_t errors = 0;
};

/// The append-only, generation-compacted memo journal. Thread-safe: the
/// service appends from worker threads and compacts from whichever thread
/// notices wants_compaction().
class MemoJournal {
 public:
  MemoJournal(std::string base_path, MemoJournalOptions opts);
  ~MemoJournal();

  MemoJournal(const MemoJournal&) = delete;
  MemoJournal& operator=(const MemoJournal&) = delete;

  /// Replays the newest readable generation (see JournalLoadResult) and
  /// positions append() at its end. With no generation on disk this is a
  /// cold start: generation 1 is created on the first append. Call once,
  /// before any append().
  [[nodiscard]] JournalLoadResult load();

  /// Appends one framed record and flushes it to the OS. Returns false on
  /// I/O failure or injected fault — a torn write (journal.append.torn)
  /// additionally wedges the journal, exactly like the crash it models:
  /// nothing further is appended until the next compaction rotates to a
  /// fresh generation.
  bool append(const MemoSnapshotRecord& rec);

  /// True once compact_records appends accumulated since the last
  /// compaction (or a torn write wedged the current generation).
  [[nodiscard]] bool wants_compaction() const;

  /// Rewrites the journal as one fresh generation holding exactly `live`
  /// (.tmp + atomic rename), switches append() to it and unlinks
  /// generations beyond keep_generations. False on I/O failure or an
  /// injected rename fault; the old generation stays authoritative then.
  bool compact(const std::vector<MemoSnapshotRecord>& live);

  [[nodiscard]] std::uint64_t compactions() const;
  [[nodiscard]] std::uint64_t appends() const;
  [[nodiscard]] std::uint64_t generation() const;
  /// On-disk generation files for this base path, sorted oldest first.
  [[nodiscard]] std::vector<std::string> generation_files() const;

 private:
  [[nodiscard]] std::string generation_path(std::uint64_t gen) const;
  void close_fd_locked();
  /// Opens `path` for appending and makes it the live generation.
  bool open_for_append_locked(const std::string& path, std::uint64_t gen);

  std::string base_path_;
  MemoJournalOptions opts_;
  mutable std::mutex mu_;
  int fd_ = -1;                  // live generation, append mode
  std::uint64_t generation_ = 0;  // 0 = nothing on disk yet
  std::uint64_t appends_since_compact_ = 0;
  std::uint64_t appends_total_ = 0;
  std::uint64_t compactions_ = 0;
  bool wedged_ = false;  // torn write happened: stop appending until rotate
  bool loaded_ = false;
};

}  // namespace psd::serve
