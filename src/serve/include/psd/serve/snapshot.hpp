// Persisted plan-memo snapshot: the wire format a PlanService writes at
// shutdown (and periodically) and reloads at startup so a restarted
// daemon answers its first repeat requests warm.
//
// The file is versioned JSON lines: a header line, then one record per
// memo entry. Each record carries the full solve parameters (enough to
// rebuild the solve key and the topology context from scratch), the
// answer, the context's wire epoch when the entry was recorded, and the
// θ context fingerprint of the graph it was computed on. At load time
// the service rebuilds the pristine context and admits a record only
// when its fingerprint matches — entries recorded after topology deltas
// (or under different θ options) are provably not answers for the
// rebuilt graph and are rejected rather than served wrong.
//
//   {"format":"psd-serve-memo","version":1}
//   {"topology":"ring","nodes":8,"bandwidth_gbps":400,"collective":
//    "allreduce:ring","message_bytes":1048576,"alpha_ns":500,
//    "delta_ns":50,"alpha_r_ns":20000,"deadline_ms":0,
//    "allow_degraded":true,"epoch":0,"fingerprint":"1a2b...",
//    "answer":{"steps":14,...}}
//
// Doubles are printed with %.17g so answers round-trip bit-exactly; the
// fingerprint is 16 hex digits (JSON numbers cannot hold a uint64).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "psd/serve/protocol.hpp"

namespace psd::serve {

inline constexpr int kMemoSnapshotVersion = 1;

/// One snapshot record: a memo entry plus the provenance needed to
/// validate it against a freshly built context.
struct MemoSnapshotRecord {
  PlanFields plan;
  PlanAnswer answer;
  std::uint64_t epoch = 0;        // context wire epoch when recorded
  std::uint64_t fingerprint = 0;  // θ context fingerprint of that graph
};

/// The snapshot file's first line.
[[nodiscard]] std::string memo_snapshot_header();

/// True when `line` is a well-formed header of a readable version.
[[nodiscard]] bool parse_memo_snapshot_header(std::string_view line);

/// Serializes one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string memo_record_to_json(const MemoSnapshotRecord& rec);

/// Parses one record line. Throws psd::Error (InvalidArgument /
/// JsonParseError) on malformed input — the loader counts such lines as
/// memo_load_errors and keeps going.
[[nodiscard]] MemoSnapshotRecord memo_record_from_json(std::string_view line);

}  // namespace psd::serve
