#include "psd/serve/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "psd/util/json.hpp"

namespace psd::serve {

namespace {

/// uint64 ⇄ 16 hex digits: JSON numbers (doubles) cannot hold one.
std::string to_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t from_hex64(const std::string& s) {
  if (s.size() != 16) {
    throw InvalidArgument("fingerprint must be 16 hex digits");
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      throw InvalidArgument("fingerprint must be lowercase hex");
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw InvalidArgument("journal record needs numeric \"" +
                          std::string(key) + "\"");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw InvalidArgument("journal record needs string \"" +
                          std::string(key) + "\"");
  }
  return v->as_string();
}

/// Full write with EINTR retry; false on any short/terminal failure.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Parses one framed journal line ("<crc hex8> <len> <payload>") back to
/// its payload. False when the frame is malformed, short, or fails CRC —
/// the torn-tail signal.
bool unframe_record(std::string_view line, std::string_view* payload_out) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 != 8) return false;
  std::uint32_t crc = 0;
  for (const char c : line.substr(0, 8)) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    crc = (crc << 4) | static_cast<std::uint32_t>(digit);
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  std::size_t len = 0;
  for (const char c : line.substr(sp1 + 1, sp2 - sp1 - 1)) {
    if (c < '0' || c > '9') return false;
    len = len * 10 + static_cast<std::size_t>(c - '0');
    if (len > (64u << 20)) return false;  // absurd length: treat as torn
  }
  const std::string_view payload = line.substr(sp2 + 1);
  if (payload.size() != len) return false;
  if (crc32_ieee(payload) != crc) return false;
  *payload_out = payload;
  return true;
}

}  // namespace

std::uint32_t crc32_ieee(std::string_view data) {
  // Reflected IEEE polynomial, byte-at-a-time table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string journal_frame_record(std::string_view payload) {
  char head[32];
  std::snprintf(head, sizeof head, "%08x %zu ", crc32_ieee(payload),
                payload.size());
  return std::string(head) + std::string(payload);
}

std::string journal_header(std::uint64_t generation) {
  JsonWriter w;
  w.begin_object();
  w.key("format").value("psd-serve-journal");
  w.key("version").value(kMemoJournalVersion);
  w.key("generation").value(static_cast<std::int64_t>(generation));
  w.end_object();
  return w.str();
}

bool parse_journal_header(std::string_view line,
                          std::uint64_t* generation_out) {
  try {
    const JsonValue v = parse_json(line);
    const JsonValue* fmt = v.find("format");
    const JsonValue* ver = v.find("version");
    const JsonValue* gen = v.find("generation");
    const bool ok = fmt != nullptr && fmt->is_string() &&
                    fmt->as_string() == "psd-serve-journal" && ver != nullptr &&
                    ver->is_number() &&
                    ver->as_number() ==
                        static_cast<double>(kMemoJournalVersion) &&
                    gen != nullptr && gen->is_number() &&
                    gen->as_number() >= 1.0;
    if (ok && generation_out != nullptr) {
      *generation_out = static_cast<std::uint64_t>(gen->as_number());
    }
    return ok;
  } catch (const Error&) {
    return false;
  }
}

std::string memo_record_to_json(const MemoSnapshotRecord& rec) {
  JsonWriter w;
  w.begin_object();
  // Solve parameters, in the plan-request field vocabulary so the loader
  // reuses parse_plan_fields and the solve key rebuilds identically.
  w.key("topology").value(sweep::to_string(rec.plan.topology));
  w.key("nodes").value(rec.plan.nodes);
  w.key("collective").value(sweep::to_string(rec.plan.collective));
  w.key("message_bytes").value(rec.plan.message.count());
  w.key("alpha_ns").value(rec.plan.params.alpha.ns());
  w.key("delta_ns").value(rec.plan.params.delta.ns());
  w.key("alpha_r_ns").value(rec.plan.params.alpha_r.ns());
  w.key("bandwidth_gbps").value(rec.plan.params.b.gbps());
  w.key("epoch").value(static_cast<std::int64_t>(rec.epoch));
  w.key("fingerprint").value(to_hex64(rec.fingerprint));
  w.key("answer").begin_object();
  w.key("steps").value(rec.answer.steps);
  w.key("optimal_ns").value(rec.answer.optimal_ns);
  w.key("static_ns").value(rec.answer.static_ns);
  w.key("naive_bvn_ns").value(rec.answer.naive_bvn_ns);
  w.key("greedy_ns").value(rec.answer.greedy_ns);
  w.key("reconfigurations").value(rec.answer.reconfigurations);
  w.key("speedup_vs_static").value(rec.answer.speedup_vs_static);
  w.key("speedup_vs_bvn").value(rec.answer.speedup_vs_bvn);
  w.key("pipelined_ns").value(rec.answer.pipelined_ns);
  w.key("pipeline_chunks").value(rec.answer.pipeline_chunks);
  if (!rec.answer.chosen_algo.empty()) {
    w.key("chosen_algo").value(rec.answer.chosen_algo);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MemoSnapshotRecord memo_record_from_json(std::string_view line) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) {
    throw InvalidArgument("journal record must be a JSON object");
  }
  MemoSnapshotRecord rec;
  rec.plan = parse_plan_fields(doc);
  const double epoch = require_number(doc, "epoch");
  if (epoch < 0.0) throw InvalidArgument("journal epoch must be >= 0");
  rec.epoch = static_cast<std::uint64_t>(epoch);
  rec.fingerprint = from_hex64(require_string(doc, "fingerprint"));
  const JsonValue* ans = doc.find("answer");
  if (ans == nullptr || !ans->is_object()) {
    throw InvalidArgument("journal record needs an \"answer\" object");
  }
  rec.answer.steps = static_cast<int>(require_number(*ans, "steps"));
  rec.answer.optimal_ns = require_number(*ans, "optimal_ns");
  rec.answer.static_ns = require_number(*ans, "static_ns");
  rec.answer.naive_bvn_ns = require_number(*ans, "naive_bvn_ns");
  rec.answer.greedy_ns = require_number(*ans, "greedy_ns");
  rec.answer.reconfigurations =
      static_cast<int>(require_number(*ans, "reconfigurations"));
  rec.answer.speedup_vs_static = require_number(*ans, "speedup_vs_static");
  rec.answer.speedup_vs_bvn = require_number(*ans, "speedup_vs_bvn");
  rec.answer.pipelined_ns = require_number(*ans, "pipelined_ns");
  rec.answer.pipeline_chunks =
      static_cast<int>(require_number(*ans, "pipeline_chunks"));
  if (const JsonValue* algo = ans->find("chosen_algo"); algo != nullptr) {
    if (!algo->is_string()) {
      throw InvalidArgument("\"chosen_algo\" must be a string");
    }
    rec.answer.chosen_algo = algo->as_string();
  }
  return rec;
}

// ---- MemoJournal ---------------------------------------------------------

MemoJournal::MemoJournal(std::string base_path, MemoJournalOptions opts)
    : base_path_(std::move(base_path)), opts_(opts) {
  PSD_REQUIRE(!base_path_.empty(), "MemoJournal needs a base path");
  if (opts_.compact_records < 1) opts_.compact_records = 1;
  if (opts_.keep_generations < 1) opts_.keep_generations = 1;
}

MemoJournal::~MemoJournal() {
  const std::lock_guard<std::mutex> lk(mu_);
  close_fd_locked();
}

std::string MemoJournal::generation_path(std::uint64_t gen) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".g%06llu",
                static_cast<unsigned long long>(gen));
  return base_path_ + buf;
}

void MemoJournal::close_fd_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool MemoJournal::open_for_append_locked(const std::string& path,
                                         std::uint64_t gen) {
  close_fd_locked();
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  fd_ = fd;
  generation_ = gen;
  // A freshly created generation needs its header before any record.
  struct stat st{};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    const std::string header = journal_header(gen) + "\n";
    if (!write_all(fd_, header.data(), header.size())) {
      close_fd_locked();
      return false;
    }
  }
  return true;
}

std::vector<std::string> MemoJournal::generation_files() const {
  namespace fs = std::filesystem;
  const fs::path base(base_path_);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base.filename().string() + ".g";
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != prefix.size() + 6 || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::uint64_t gen = 0;
    bool digits = true;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (!digits || gen == 0) continue;
    found.emplace_back(gen, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [gen, path] : found) paths.push_back(std::move(path));
  return paths;
}

JournalLoadResult MemoJournal::load() {
  const std::lock_guard<std::mutex> lk(mu_);
  PSD_REQUIRE(!loaded_, "MemoJournal::load() must be called once, first");
  loaded_ = true;
  JournalLoadResult result;

  const std::vector<std::string> gens = generation_files();
  // Newest readable generation wins; an unreadable header (crash during a
  // botched compaction, foreign file) falls back one generation.
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::ifstream in(*it, std::ios::binary);
    if (!in) {
      ++result.errors;
      continue;
    }
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::size_t pos = content.find('\n');
    std::uint64_t gen = 0;
    if (pos == std::string::npos ||
        !parse_journal_header(std::string_view(content).substr(0, pos),
                              &gen)) {
      ++result.errors;
      continue;
    }
    std::size_t committed_end = pos + 1;
    std::size_t line_start = pos + 1;
    while (line_start < content.size()) {
      std::size_t nl = content.find('\n', line_start);
      const bool has_newline = nl != std::string::npos;
      if (!has_newline) nl = content.size();
      const std::string_view line =
          std::string_view(content).substr(line_start, nl - line_start);
      std::string_view payload;
      // A record is committed only when its newline landed and its frame
      // checks out — anything else is the torn tail a crash left behind.
      if (!has_newline || !unframe_record(line, &payload)) {
        result.truncated_tail = 1;
        break;
      }
      try {
        result.records.push_back(memo_record_from_json(payload));
      } catch (const Error&) {
        // A complete, checksummed frame with an unparsable payload is file
        // corruption, not a tear: skip the record, trust what follows.
        ++result.errors;
      }
      committed_end = nl + 1;
      line_start = nl + 1;
    }
    result.generation = gen;
    if (result.truncated_tail != 0 && committed_end < content.size()) {
      // Drop the torn bytes so subsequent appends start on a record
      // boundary. Failure is survivable: the journal just stays wedged.
      if (::truncate(it->c_str(), static_cast<off_t>(committed_end)) != 0) {
        wedged_ = true;
      }
    }
    if (!open_for_append_locked(*it, gen)) wedged_ = true;
    return result;
  }
  // Cold start: no generation on disk; the first append creates .g000001.
  generation_ = 0;
  return result;
}

bool MemoJournal::append(const MemoSnapshotRecord& rec) {
  const std::lock_guard<std::mutex> lk(mu_);
  PSD_REQUIRE(loaded_, "MemoJournal::append() before load()");
  if (wedged_) return false;
  if (opts_.fault != nullptr && opts_.fault->fire("journal.append.error")) {
    return false;
  }
  if (fd_ < 0) {
    const std::uint64_t gen = generation_ == 0 ? 1 : generation_;
    if (!open_for_append_locked(generation_path(gen), gen)) return false;
  }
  const std::string line = journal_frame_record(memo_record_to_json(rec)) + "\n";
  if (opts_.fault != nullptr && opts_.fault->fire("journal.append.torn")) {
    // The crash drill: half the record reaches the file, then the world
    // stops. Wedging mirrors reality — a torn tail is only ever healed by
    // the compaction that rotates to a fresh generation.
    (void)write_all(fd_, line.data(), line.size() / 2);
    wedged_ = true;
    return false;
  }
  if (!write_all(fd_, line.data(), line.size())) {
    wedged_ = true;
    return false;
  }
  ++appends_total_;
  ++appends_since_compact_;
  if (opts_.fault != nullptr && opts_.fault->fire("journal.append.fsync")) {
    return false;  // record written but not provably durable
  }
  (void)::fsync(fd_);
  return true;
}

bool MemoJournal::wants_compaction() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return wedged_ || appends_since_compact_ >= opts_.compact_records;
}

bool MemoJournal::compact(const std::vector<MemoSnapshotRecord>& live) {
  const std::lock_guard<std::mutex> lk(mu_);
  PSD_REQUIRE(loaded_, "MemoJournal::compact() before load()");
  const std::uint64_t next_gen = generation_ + 1;
  const std::string path = generation_path(next_gen);
  const std::string tmp = path + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_TRUNC | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    std::string content = journal_header(next_gen) + "\n";
    for (const auto& rec : live) {
      content += journal_frame_record(memo_record_to_json(rec));
      content.push_back('\n');
    }
    const bool ok = write_all(fd, content.data(), content.size());
    if (ok) (void)::fsync(fd);
    ::close(fd);
    if (!ok) {
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (opts_.fault != nullptr && opts_.fault->fire("journal.compact.rename")) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (!open_for_append_locked(path, next_gen)) return false;
  wedged_ = false;
  appends_since_compact_ = 0;
  ++compactions_;
  // Bound the disk: only the newest keep_generations files survive.
  const std::vector<std::string> gens = generation_files();
  if (gens.size() > opts_.keep_generations) {
    for (std::size_t i = 0; i + opts_.keep_generations < gens.size(); ++i) {
      ::unlink(gens[i].c_str());
    }
  }
  return true;
}

std::uint64_t MemoJournal::compactions() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return compactions_;
}

std::uint64_t MemoJournal::appends() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return appends_total_;
}

std::uint64_t MemoJournal::generation() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return generation_;
}

}  // namespace psd::serve
