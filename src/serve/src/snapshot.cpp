#include "psd/serve/snapshot.hpp"

#include <cstdio>

#include "psd/util/json.hpp"

namespace psd::serve {

namespace {

/// uint64 ⇄ 16 hex digits: JSON numbers (doubles) cannot hold one.
std::string to_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t from_hex64(const std::string& s) {
  if (s.size() != 16) {
    throw InvalidArgument("fingerprint must be 16 hex digits");
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      throw InvalidArgument("fingerprint must be lowercase hex");
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw InvalidArgument("snapshot record needs numeric \"" +
                          std::string(key) + "\"");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw InvalidArgument("snapshot record needs string \"" +
                          std::string(key) + "\"");
  }
  return v->as_string();
}

}  // namespace

std::string memo_snapshot_header() {
  JsonWriter w;
  w.begin_object();
  w.key("format").value("psd-serve-memo");
  w.key("version").value(kMemoSnapshotVersion);
  w.end_object();
  return w.str();
}

bool parse_memo_snapshot_header(std::string_view line) {
  try {
    const JsonValue v = parse_json(line);
    const JsonValue* fmt = v.find("format");
    const JsonValue* ver = v.find("version");
    return fmt != nullptr && fmt->is_string() &&
           fmt->as_string() == "psd-serve-memo" && ver != nullptr &&
           ver->is_number() &&
           ver->as_number() == static_cast<double>(kMemoSnapshotVersion);
  } catch (const Error&) {
    return false;
  }
}

std::string memo_record_to_json(const MemoSnapshotRecord& rec) {
  JsonWriter w;
  w.begin_object();
  // Solve parameters, in the plan-request field vocabulary so the loader
  // reuses parse_plan_fields and the solve key rebuilds identically.
  w.key("topology").value(sweep::to_string(rec.plan.topology));
  w.key("nodes").value(rec.plan.nodes);
  w.key("collective").value(sweep::to_string(rec.plan.collective));
  w.key("message_bytes").value(rec.plan.message.count());
  w.key("alpha_ns").value(rec.plan.params.alpha.ns());
  w.key("delta_ns").value(rec.plan.params.delta.ns());
  w.key("alpha_r_ns").value(rec.plan.params.alpha_r.ns());
  w.key("bandwidth_gbps").value(rec.plan.params.b.gbps());
  w.key("epoch").value(static_cast<std::int64_t>(rec.epoch));
  w.key("fingerprint").value(to_hex64(rec.fingerprint));
  w.key("answer").begin_object();
  w.key("steps").value(rec.answer.steps);
  w.key("optimal_ns").value(rec.answer.optimal_ns);
  w.key("static_ns").value(rec.answer.static_ns);
  w.key("naive_bvn_ns").value(rec.answer.naive_bvn_ns);
  w.key("greedy_ns").value(rec.answer.greedy_ns);
  w.key("reconfigurations").value(rec.answer.reconfigurations);
  w.key("speedup_vs_static").value(rec.answer.speedup_vs_static);
  w.key("speedup_vs_bvn").value(rec.answer.speedup_vs_bvn);
  w.key("pipelined_ns").value(rec.answer.pipelined_ns);
  w.key("pipeline_chunks").value(rec.answer.pipeline_chunks);
  if (!rec.answer.chosen_algo.empty()) {
    w.key("chosen_algo").value(rec.answer.chosen_algo);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MemoSnapshotRecord memo_record_from_json(std::string_view line) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) {
    throw InvalidArgument("snapshot record must be a JSON object");
  }
  MemoSnapshotRecord rec;
  rec.plan = parse_plan_fields(doc);
  const double epoch = require_number(doc, "epoch");
  if (epoch < 0.0) throw InvalidArgument("snapshot epoch must be >= 0");
  rec.epoch = static_cast<std::uint64_t>(epoch);
  rec.fingerprint = from_hex64(require_string(doc, "fingerprint"));
  const JsonValue* ans = doc.find("answer");
  if (ans == nullptr || !ans->is_object()) {
    throw InvalidArgument("snapshot record needs an \"answer\" object");
  }
  rec.answer.steps = static_cast<int>(require_number(*ans, "steps"));
  rec.answer.optimal_ns = require_number(*ans, "optimal_ns");
  rec.answer.static_ns = require_number(*ans, "static_ns");
  rec.answer.naive_bvn_ns = require_number(*ans, "naive_bvn_ns");
  rec.answer.greedy_ns = require_number(*ans, "greedy_ns");
  rec.answer.reconfigurations =
      static_cast<int>(require_number(*ans, "reconfigurations"));
  rec.answer.speedup_vs_static = require_number(*ans, "speedup_vs_static");
  rec.answer.speedup_vs_bvn = require_number(*ans, "speedup_vs_bvn");
  rec.answer.pipelined_ns = require_number(*ans, "pipelined_ns");
  rec.answer.pipeline_chunks =
      static_cast<int>(require_number(*ans, "pipeline_chunks"));
  if (const JsonValue* algo = ans->find("chosen_algo"); algo != nullptr) {
    if (!algo->is_string()) {
      throw InvalidArgument("\"chosen_algo\" must be a string");
    }
    rec.answer.chosen_algo = algo->as_string();
  }
  return rec;
}

}  // namespace psd::serve
