#include "psd/serve/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "psd/util/error.hpp"
#include "psd/util/line_buffer.hpp"

namespace psd::serve {

struct SocketServer::WakePipe {
  int fds[2] = {-1, -1};
  WakePipe() {
    if (::pipe(fds) != 0) {
      throw Error("SocketServer: cannot create wake pipe: " +
                  std::string(std::strerror(errno)));
    }
    for (const int fd : fds) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  }
  ~WakePipe() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// Nudges the poll loop. A full pipe means a wake-up is already
  /// pending, so the EAGAIN is exactly as good as the write.
  void notify() const {
    const char b = 0;
    (void)!::write(fds[1], &b, 1);
  }
  void drain() const {
    char buf[256];
    while (::read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

struct SocketServer::Conn {
  Conn(int fd, std::size_t max_line, std::shared_ptr<WakePipe> wake)
      : fd(fd), in(max_line), wake(std::move(wake)) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// True when the line was queued; false when the outbound buffer blew
  /// its cap (the loop will drop the connection).
  bool queue_line(const std::string& line, std::size_t cap) {
    bool ok = true;
    {
      const std::lock_guard<std::mutex> lk(mu);
      out.append(line);
      out.push_back('\n');
      if (out.size() - out_off > cap) {
        overflowed = true;
        ok = false;
      }
    }
    wake->notify();
    return ok;
  }

  const int fd;
  util::LineBuffer in;
  std::string tenant;  // fair-queueing identity the service sees ("c<N>")
  const std::shared_ptr<WakePipe> wake;
  std::mutex mu;              // guards out / out_off / overflowed
  std::string out;            // response bytes awaiting the socket
  std::size_t out_off = 0;    // written prefix of out
  bool overflowed = false;    // out-buffer cap exceeded: drop this client
  PlanService::EmitRef sink;  // routes this connection's answers back here
};

SocketServer::SocketServer(SocketServerOptions opts, PlanService& service)
    : opts_(std::move(opts)), service_(service) {
  PSD_REQUIRE(!opts_.socket_path.empty(),
              "SocketServer needs a socket path");
  if (opts_.max_line_bytes == 0) opts_.max_line_bytes = 1u << 20;
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  PSD_REQUIRE(!thread_.joinable(), "SocketServer already started");
  wake_ = std::make_shared<WakePipe>();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    throw InvalidArgument("socket path too long: " + opts_.socket_path);
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error("SocketServer: socket(): " + std::string(std::strerror(errno)));
  }
  ::unlink(opts_.socket_path.c_str());  // a stale socket file blocks bind
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, opts_.listen_backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("SocketServer: cannot listen on " + opts_.socket_path + ": " +
                why);
  }
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void SocketServer::stop() {
  stop_.store(true);
  if (wake_ != nullptr) wake_->notify();
  if (thread_.joinable()) thread_.join();
}

bool SocketServer::service_input(const std::shared_ptr<Conn>& conn) {
  char buf[16 * 1024];
  while (true) {
    std::size_t cap = sizeof buf;
    if (opts_.fault != nullptr) {
      // Transport drills. A reset drops the connection as a peer RST
      // would (buffered partial lines are lost with it); an EAGAIN storm
      // defers to the next poll round (level-triggered, nothing is lost);
      // a short read delivers one byte and exercises mid-frame resumption.
      if (opts_.fault->fire("transport.conn.reset")) return false;
      if (opts_.fault->fire("transport.read.eagain")) break;
      if (opts_.fault->fire("transport.read.short")) cap = 1;
    }
    const ssize_t n = ::read(conn->fd, buf, cap);
    if (n > 0) {
      conn->in.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return false;  // clean EOF
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      return false;
    }
    std::string line;
    while (true) {
      const auto ev = conn->in.next(&line);
      if (ev == util::LineBuffer::Event::kNone) break;
      if (ev == util::LineBuffer::Event::kOverlong) {
        // No id is recoverable from a line we refused to buffer; the
        // empty-id error line still tells the client what happened.
        overlong_.fetch_add(1);
        (*conn->sink)(error_response(
            "", ErrorCode::kInvalidRequest,
            "request line exceeds " + std::to_string(opts_.max_line_bytes) +
                " bytes"));
        continue;
      }
      try {
        service_.submit_line(line, conn->sink, conn->tenant);
      } catch (const std::exception& e) {
        // Belt and braces: submit_line answers parse errors itself, so
        // anything landing here is unexpected — the client still gets a
        // response and the daemon still stands.
        (*conn->sink)(error_response("", ErrorCode::kInternal, e.what()));
      }
    }
  }
  return true;
}

bool SocketServer::service_output(const std::shared_ptr<Conn>& conn) {
  const std::lock_guard<std::mutex> lk(conn->mu);
  while (conn->out_off < conn->out.size()) {
    std::size_t chunk = conn->out.size() - conn->out_off;
    if (opts_.fault != nullptr) {
      // Write-side drills: an EAGAIN storm leaves the bytes queued for
      // the next POLLOUT round; a short write trickles one byte so
      // responses cross many partial writes and must still frame cleanly.
      if (opts_.fault->fire("transport.write.eagain")) break;
      if (opts_.fault->fire("transport.write.short")) chunk = 1;
    }
    const ssize_t n =
        ::write(conn->fd, conn->out.data() + conn->out_off, chunk);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      return false;  // peer vanished with answers pending
    }
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (64u << 10)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  return true;
}

void SocketServer::drop_conn(int fd) {
  conns_.erase(fd);  // ~Conn closes the fd; the sink's weak ref goes dead
}

void SocketServer::run() {
  const auto no_deadline = std::chrono::steady_clock::time_point::max();
  auto drain_deadline = no_deadline;
  std::vector<pollfd> pfds;
  std::vector<int> fd_of;  // pfds index -> conn fd (listen/wake get -1)

  while (true) {
    const bool draining =
        stop_.load() || service_.shutting_down();
    if (draining && drain_deadline == no_deadline) {
      drain_deadline = std::chrono::steady_clock::now() + opts_.drain_timeout;
    }

    pfds.clear();
    fd_of.clear();
    pfds.push_back({wake_->fds[0], POLLIN, 0});
    fd_of.push_back(-1);
    if (!draining) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      fd_of.push_back(-1);
    }
    bool any_pending_out = false;
    for (const auto& [fd, conn] : conns_) {
      short events = draining ? 0 : POLLIN;
      {
        const std::lock_guard<std::mutex> lk(conn->mu);
        if (conn->out_off < conn->out.size()) {
          events |= POLLOUT;
          any_pending_out = true;
        }
      }
      if (events == 0) continue;
      pfds.push_back({fd, events, 0});
      fd_of.push_back(fd);
    }

    if (draining) {
      if (!any_pending_out) break;
      if (std::chrono::steady_clock::now() >= drain_deadline) break;
    }

    // Finite timeout even when idle: the drain trigger can be the
    // service shutting down from another thread (signal handler, stdio
    // shutdown op) with no wake written.
    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    std::vector<int> doomed;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const auto& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_->fds[0]) {
        wake_->drain();
        continue;
      }
      if (p.fd == listen_fd_ && fd_of[i] == -1) {
        while (true) {
          const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          auto conn =
              std::make_shared<Conn>(cfd, opts_.max_line_bytes, wake_);
          // Connection-scoped fair-queueing identity: requests that carry
          // no "tenant" field are queued under it, so one chatty client
          // is one DRR tenant without any client-side cooperation.
          conn->tenant = "c" + std::to_string(accepted_.load() + 1);
          // The sink outlives the connection on purpose: waiters queued
          // deep in the service hold it, and once the Conn dies their
          // answers drop here instead of stalling anything.
          std::weak_ptr<Conn> weak = conn;
          const std::size_t cap = opts_.max_outbound_bytes;
          conn->sink = std::make_shared<const PlanService::Emit>(
              [weak, cap](const std::string& line) {
                if (const auto c = weak.lock()) (void)c->queue_line(line, cap);
              });
          conns_.emplace(cfd, std::move(conn));
          accepted_.fetch_add(1);
        }
        continue;
      }
      const auto it = conns_.find(fd_of[i]);
      if (it == conns_.end()) continue;
      const auto conn = it->second;
      bool alive = true;
      if ((p.revents & POLLOUT) != 0) alive = service_output(conn);
      if (alive && (p.revents & POLLIN) != 0) alive = service_input(conn);
      if (alive && (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        // POLLHUP with readable data still pending is handled above;
        // here the peer is gone for good.
        const std::lock_guard<std::mutex> lk(conn->mu);
        alive = conn->out_off < conn->out.size() ? alive : false;
      }
      {
        const std::lock_guard<std::mutex> lk(conn->mu);
        if (conn->overflowed) {
          alive = false;
          dropped_.fetch_add(1);
        }
      }
      if (!alive) doomed.push_back(conn->fd);
    }
    for (const int fd : doomed) drop_conn(fd);
  }

  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
  running_.store(false);
}

}  // namespace psd::serve
