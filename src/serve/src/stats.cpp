#include "psd/serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "psd/util/error.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {

ServeStats::ServeStats(std::size_t latency_window) {
  PSD_REQUIRE(latency_window >= 1, "latency window must be >= 1");
  latency_ring_.resize(latency_window, 0.0);
}

void ServeStats::record_plan_latency_ms(double ms) {
  const std::lock_guard<std::mutex> lk(latency_mutex_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

double ServeStats::percentile_ms(double p) const {
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lk(latency_mutex_);
    if (latency_count_ == 0) return 0.0;
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() + static_cast<std::ptrdiff_t>(latency_count_));
  }
  // Nearest-rank percentile: rank ⌈p·n⌉ (1-based), clamped into the window.
  const std::size_t n = window.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  std::nth_element(window.begin(),
                   window.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   window.end());
  return window[rank - 1];
}

double ServeStats::p50_plan_ms(double fallback_ms) const {
  const double p50 = percentile_ms(0.50);
  bool empty = false;
  {
    const std::lock_guard<std::mutex> lk(latency_mutex_);
    empty = latency_count_ == 0;
  }
  return empty ? fallback_ms : p50;
}

ServeStatsSnapshot ServeStats::snapshot() const {
  ServeStatsSnapshot s;
  s.received = received_.load(std::memory_order_relaxed);
  s.planned = planned_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.replans = replans_.load(std::memory_order_relaxed);
  s.replans_debounced = replans_debounced_.load(std::memory_order_relaxed);
  s.deltas = deltas_.load(std::memory_order_relaxed);
  s.memo_loaded = memo_loaded_.load(std::memory_order_relaxed);
  s.memo_load_errors = memo_load_errors_.load(std::memory_order_relaxed);
  s.memo_load_rejected = memo_load_rejected_.load(std::memory_order_relaxed);
  s.memo_snapshots = memo_snapshots_.load(std::memory_order_relaxed);
  s.tenant_deferrals = tenant_deferrals_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lk(latency_mutex_);
    s.latency_samples = latency_count_;
  }
  s.p50_plan_ms = percentile_ms(0.50);
  s.p99_plan_ms = percentile_ms(0.99);
  return s;
}

std::string ServeStats::to_json_object(const ServeStatsSnapshot& s,
                                       std::size_t queue_depth,
                                       double shared_cache_hit_rate) {
  JsonWriter w;
  w.begin_object();
  w.key("received").value(static_cast<std::int64_t>(s.received));
  w.key("planned").value(static_cast<std::int64_t>(s.planned));
  w.key("cache_hits").value(static_cast<std::int64_t>(s.cache_hits));
  w.key("coalesced").value(static_cast<std::int64_t>(s.coalesced));
  w.key("shed").value(static_cast<std::int64_t>(s.shed));
  w.key("degraded").value(static_cast<std::int64_t>(s.degraded));
  w.key("deadline_exceeded")
      .value(static_cast<std::int64_t>(s.deadline_exceeded));
  w.key("invalid").value(static_cast<std::int64_t>(s.invalid));
  w.key("internal_errors").value(static_cast<std::int64_t>(s.internal_errors));
  w.key("worker_restarts").value(static_cast<std::int64_t>(s.worker_restarts));
  w.key("replans").value(static_cast<std::int64_t>(s.replans));
  w.key("replans_debounced")
      .value(static_cast<std::int64_t>(s.replans_debounced));
  w.key("deltas").value(static_cast<std::int64_t>(s.deltas));
  w.key("memo_loaded").value(static_cast<std::int64_t>(s.memo_loaded));
  w.key("memo_load_errors")
      .value(static_cast<std::int64_t>(s.memo_load_errors));
  w.key("memo_load_rejected")
      .value(static_cast<std::int64_t>(s.memo_load_rejected));
  w.key("memo_snapshots").value(static_cast<std::int64_t>(s.memo_snapshots));
  w.key("faults_injected")
      .value(static_cast<std::int64_t>(s.faults_injected));
  w.key("journal_compactions")
      .value(static_cast<std::int64_t>(s.journal_compactions));
  w.key("journal_truncated_tail")
      .value(static_cast<std::int64_t>(s.journal_truncated_tail));
  w.key("tenant_deferrals")
      .value(static_cast<std::int64_t>(s.tenant_deferrals));
  w.key("queue_depth").value(static_cast<std::int64_t>(queue_depth));
  w.key("latency_samples").value(static_cast<std::int64_t>(s.latency_samples));
  w.key("p50_plan_ms").value(s.p50_plan_ms);
  w.key("p99_plan_ms").value(s.p99_plan_ms);
  w.key("memo_hit_rate").value(s.cache_hit_rate());
  w.key("theta_cache_hit_rate").value(shared_cache_hit_rate);
  w.end_object();
  return w.str();
}

}  // namespace psd::serve
