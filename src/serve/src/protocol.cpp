#include "psd/serve/protocol.hpp"

#include <cmath>

#include "psd/util/json.hpp"

namespace psd::serve {

namespace {

/// Required object member, with the field name in every failure message so
/// a client sees exactly which key to fix.
const JsonValue& require(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw InvalidArgument("missing field \"" + std::string(key) + "\"");
  }
  return *v;
}

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_number()) {
    throw InvalidArgument("field \"" + std::string(key) + "\" must be a number");
  }
  return v.as_number();
}

std::string require_string(const JsonValue& obj, std::string_view key) {
  const JsonValue& v = require(obj, key);
  if (!v.is_string()) {
    throw InvalidArgument("field \"" + std::string(key) + "\" must be a string");
  }
  return v.as_string();
}

/// Optional scalar with a default; present-but-wrong-type is still an error
/// (silent coercion would mask client bugs).
double number_or(const JsonValue& obj, std::string_view key, double dflt) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_number()) {
    throw InvalidArgument("field \"" + std::string(key) + "\" must be a number");
  }
  return v->as_number();
}

bool bool_or(const JsonValue& obj, std::string_view key, bool dflt) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_bool()) {
    throw InvalidArgument("field \"" + std::string(key) + "\" must be a bool");
  }
  return v->as_bool();
}

int require_node_count(const JsonValue& obj) {
  const double n = require_number(obj, "nodes");
  if (n < 2.0 || n > 4096.0 || n != std::floor(n)) {
    throw InvalidArgument("field \"nodes\" must be an integer in [2, 4096]");
  }
  return static_cast<int>(n);
}

sweep::TopologySpec require_topology(const JsonValue& obj) {
  const std::string s = require_string(obj, "topology");
  const auto spec = sweep::topology_spec_from_string(s);
  if (!spec) throw InvalidArgument("unknown topology \"" + s + "\"");
  return *spec;
}

topo::NodeId require_node_id(const JsonValue& obj, std::string_view key,
                             int nodes) {
  const double v = require_number(obj, key);
  if (v < 0.0 || v >= static_cast<double>(nodes) || v != std::floor(v)) {
    throw InvalidArgument("field \"" + std::string(key) +
                          "\" must be a node id in [0, nodes)");
  }
  return static_cast<topo::NodeId>(v);
}

}  // namespace

PlanFields parse_plan_fields(const JsonValue& obj) {
  PlanFields plan;
  plan.topology = require_topology(obj);
  plan.nodes = require_node_count(obj);
  const std::string coll = require_string(obj, "collective");
  const auto collective = sweep::collective_from_string(coll);
  if (!collective) throw InvalidArgument("unknown collective \"" + coll + "\"");
  plan.collective = *collective;
  if (!sweep::scenario_valid(plan.topology, plan.nodes, plan.collective)) {
    throw InvalidArgument("collective \"" + coll +
                          "\" cannot be materialized on this topology/nodes");
  }
  const double bytes = number_or(obj, "message_bytes", plan.message.count());
  if (bytes <= 0.0) throw InvalidArgument("field \"message_bytes\" must be > 0");
  plan.message = Bytes(bytes);
  plan.params.alpha = TimeNs(number_or(obj, "alpha_ns", plan.params.alpha.ns()));
  plan.params.delta = TimeNs(number_or(obj, "delta_ns", plan.params.delta.ns()));
  plan.params.alpha_r =
      TimeNs(number_or(obj, "alpha_r_ns", plan.params.alpha_r.ns()));
  const double gbps = number_or(obj, "bandwidth_gbps", plan.params.b.gbps());
  if (gbps <= 0.0) throw InvalidArgument("field \"bandwidth_gbps\" must be > 0");
  plan.params.b = Bandwidth(gbps / 8.0);
  plan.deadline_ms = number_or(obj, "deadline_ms", 0.0);
  plan.allow_degraded = bool_or(obj, "allow_degraded", true);
  plan.inject_worker_crash = bool_or(obj, "inject_worker_crash", false);
  if (const JsonValue* v = obj.find("tenant"); v != nullptr) {
    if (!v->is_string()) {
      throw InvalidArgument("field \"tenant\" must be a string");
    }
    plan.tenant = v->as_string();
  }
  return plan;
}

namespace {

DeltaFields parse_delta_fields(const JsonValue& obj) {
  DeltaFields d;
  d.topology = require_topology(obj);
  d.nodes = require_node_count(obj);
  d.bandwidth_gbps = number_or(obj, "bandwidth_gbps", d.bandwidth_gbps);
  if (d.bandwidth_gbps <= 0.0) {
    throw InvalidArgument("field \"bandwidth_gbps\" must be > 0");
  }
  const JsonValue& ops = require(obj, "ops");
  if (!ops.is_array()) throw InvalidArgument("field \"ops\" must be an array");
  if (ops.as_array().empty()) throw InvalidArgument("field \"ops\" is empty");
  const Bandwidth link_bw(d.bandwidth_gbps / 8.0);
  for (const JsonValue& op : ops.as_array()) {
    if (!op.is_object()) throw InvalidArgument("delta op must be an object");
    const std::string kind = require_string(op, "kind");
    const topo::NodeId src = require_node_id(op, "src", d.nodes);
    const topo::NodeId dst = require_node_id(op, "dst", d.nodes);
    if (kind == "remove_edge") {
      d.delta.remove_edge(src, dst);
    } else if (kind == "add_edge") {
      const double f = number_or(op, "capacity_factor", 1.0);
      if (f <= 0.0) throw InvalidArgument("\"capacity_factor\" must be > 0");
      d.delta.add_edge(src, dst, link_bw * f);
    } else if (kind == "set_capacity") {
      const double f = require_number(op, "capacity_factor");
      if (f <= 0.0) throw InvalidArgument("\"capacity_factor\" must be > 0");
      d.delta.set_capacity(src, dst, link_bw * f);
    } else if (kind == "scale_capacity") {
      const double f = require_number(op, "factor");
      if (f <= 0.0) throw InvalidArgument("\"factor\" must be > 0");
      d.delta.scale_capacity(src, dst, f);
    } else {
      throw InvalidArgument("unknown delta op kind \"" + kind + "\"");
    }
  }
  return d;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidRequest: return "INVALID_REQUEST";
    case ErrorCode::kShed: return "SHED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "INTERNAL";
}

Request parse_request(std::string_view line, std::string* id_out) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) throw InvalidArgument("request must be a JSON object");
  // Salvage the id before strict validation: a rejected request's error
  // response should still be correlatable.
  if (id_out != nullptr) {
    if (const JsonValue* v = doc.find("id"); v != nullptr && v->is_string()) {
      *id_out = v->as_string();
    }
  }
  Request req;
  req.id = require_string(doc, "id");
  const std::string op = require_string(doc, "op");
  if (op == "plan") {
    req.op = RequestOp::kPlan;
    req.plan = parse_plan_fields(doc);
  } else if (op == "stats") {
    req.op = RequestOp::kStats;
  } else if (op == "delta") {
    req.op = RequestOp::kDelta;
    req.delta = parse_delta_fields(doc);
  } else if (op == "shutdown") {
    req.op = RequestOp::kShutdown;
  } else {
    throw InvalidArgument("unknown op \"" + op + "\"");
  }
  return req;
}

std::string error_response(std::string_view id, ErrorCode code,
                           std::string_view message, double retry_after_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("code").value(to_string(code));
  w.key("error").value(message);
  if (retry_after_ms >= 0.0) w.key("retry_after_ms").value(retry_after_ms);
  w.end_object();
  return w.str();
}

std::string plan_response(std::string_view id, const PlanAnswer& answer,
                          std::uint64_t epoch, std::uint64_t epoch_lag,
                          bool cached, bool coalesced, double plan_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("code").value(to_string(ErrorCode::kOk));
  w.key("degraded").value(epoch_lag > 0);
  if (epoch_lag > 0) {
    w.key("epoch_lag").value(static_cast<std::int64_t>(epoch_lag));
  }
  w.key("epoch").value(static_cast<std::int64_t>(epoch));
  w.key("cached").value(cached);
  w.key("coalesced").value(coalesced);
  w.key("steps").value(answer.steps);
  w.key("optimal_ns").value(answer.optimal_ns);
  w.key("static_ns").value(answer.static_ns);
  w.key("naive_bvn_ns").value(answer.naive_bvn_ns);
  w.key("greedy_ns").value(answer.greedy_ns);
  w.key("reconfigurations").value(answer.reconfigurations);
  w.key("speedup_vs_static").value(answer.speedup_vs_static);
  w.key("speedup_vs_bvn").value(answer.speedup_vs_bvn);
  w.key("pipelined_ns").value(answer.pipelined_ns);
  w.key("pipeline_chunks").value(answer.pipeline_chunks);
  if (!answer.chosen_algo.empty()) {
    w.key("chosen_algo").value(answer.chosen_algo);
  }
  w.key("plan_latency_ms").value(plan_ms);
  w.end_object();
  return w.str();
}

}  // namespace psd::serve
