#include "psd/serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "psd/core/algo_select.hpp"
#include "psd/core/pipelined_cost.hpp"
#include "psd/serve/snapshot.hpp"
#include "psd/util/json.hpp"
#include "psd/workload/workload.hpp"

namespace psd::serve {

namespace {

/// Escapes worker_loop's per-job exception containment on purpose: the
/// crash drill must kill the worker *thread* (run_worker's crash boundary)
/// rather than be folded into an INTERNAL response. Deliberately not a
/// std::exception so no generic handler can swallow it.
struct WorkerCrash {};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

PlanService::PlanService(ServiceOptions opts, Emit emit)
    : opts_(std::move(opts)),
      emit_(std::move(emit)),
      stats_(opts_.latency_window < 1 ? 1 : opts_.latency_window) {
  PSD_REQUIRE(emit_ != nullptr, "PlanService needs an emit callback");
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.memo_capacity < 1) opts_.memo_capacity = 1;
  default_sink_ = std::make_shared<const Emit>(emit_);
  // The delta carry needs routed supports recorded beside every shared θ
  // entry, and per-job oracles are throwaway — shared memo or nothing.
  opts_.theta.track_support = true;
  opts_.theta.use_cache = true;
  shared_cache_ = sweep::make_shared_theta_cache(opts_.theta_cache);
  // Warm restart: replay the memo journal before any thread runs, so the
  // very first requests can be answered from it. A torn tail left by a
  // crash mid-append is truncated by the journal itself; everything
  // committed before it is admitted (fingerprint-validated).
  if (!opts_.memo_journal_path.empty()) {
    MemoJournalOptions jopts;
    jopts.compact_records = opts_.journal_compact_records;
    jopts.keep_generations = opts_.journal_keep_generations;
    jopts.fault = opts_.fault;
    journal_ =
        std::make_unique<MemoJournal>(opts_.memo_journal_path, jopts);
    const std::lock_guard<std::mutex> lk(mu_);
    replay_journal_locked();
  }
  workers_.reserve(opts_.workers);
  for (unsigned i = 0; i < opts_.workers; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->alive.store(true);
    workers_.push_back(std::move(slot));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

PlanService::~PlanService() { shutdown(); }

std::string PlanService::context_key(const sweep::TopologySpec& topology,
                                     int nodes, double gbps) {
  return sweep::to_string(topology) + "/n" + std::to_string(nodes) + "/bw" +
         fmt17(gbps);
}

std::string PlanService::solve_key(const std::string& context_key,
                                   const PlanFields& plan) {
  return context_key + "/" + sweep::to_string(plan.collective) + "/m" +
         fmt17(plan.message.count()) + "/a" + fmt17(plan.params.alpha.ns()) +
         "/d" + fmt17(plan.params.delta.ns()) + "/ar" +
         fmt17(plan.params.alpha_r.ns());
}

PlanService::Context& PlanService::ensure_context_locked(
    const sweep::TopologySpec& topology, int nodes, Bandwidth b_ref,
    const std::string& key) {
  auto it = contexts_.find(key);
  if (it == contexts_.end()) {
    auto ctx = std::make_unique<Context>(
        Context{sweep::build_topology(topology, nodes, b_ref), b_ref});
    ctx->base_epoch = ctx->graph.epoch();
    it = contexts_.emplace(key, std::move(ctx)).first;
  }
  return *it->second;
}

void PlanService::memo_put_locked(const std::string& solve_key,
                                  PlanAnswer answer, std::uint64_t epoch,
                                  const PlanFields& plan) {
  auto& entry = memo_[solve_key];
  // A delta may have overtaken this solve; never let a stale answer clobber
  // a fresher one another worker already recorded.
  if (entry.last_used != 0 && entry.epoch > epoch) return;
  entry.answer = answer;
  entry.epoch = epoch;
  entry.plan = plan;
  entry.last_used = ++memo_clock_;
  if (memo_.size() > opts_.memo_capacity) {
    auto victim = memo_.begin();
    for (auto it = memo_.begin(); it != memo_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    memo_.erase(victim);
  }
}

int PlanService::tenant_weight(const std::string& tenant) const {
  const auto it = opts_.tenant_weights.find(tenant);
  const int w = it == opts_.tenant_weights.end() ? opts_.default_tenant_weight
                                                 : it->second;
  return w < 1 ? 1 : w;
}

void PlanService::push_job_locked(JobPtr job) {
  Lane& lane = lanes_[job->lane];
  TenantQueue& tq = lane.tenants[job->tenant];
  if (!tq.in_rr) {
    tq.in_rr = true;
    lane.rr.push_back(job->tenant);
  }
  tq.q.push_back(std::move(job));
  ++lane.size;
}

PlanService::JobPtr PlanService::pop_job_locked() {
  for (auto& lane : lanes_) {
    if (lane.size == 0) continue;
    // At most one full rotation: every visit either yields a job, drops a
    // drained tenant from the rotation, or defers a quota-blocked one. If
    // the whole rotation is quota-blocked this lane yields nothing — the
    // caller sleeps until a completion frees a slot.
    std::size_t visits = lane.rr.size();
    while (visits-- > 0 && !lane.rr.empty()) {
      if (lane.rr_pos >= lane.rr.size()) lane.rr_pos = 0;
      const std::string tenant = lane.rr[lane.rr_pos];
      TenantQueue& tq = lane.tenants[tenant];
      if (tq.q.empty()) {
        // Emptied by expiry/shutdown since its last visit: retire it.
        lane.rr.erase(lane.rr.begin() +
                      static_cast<std::ptrdiff_t>(lane.rr_pos));
        lane.tenants.erase(tenant);
        continue;  // rr_pos now points at the next tenant
      }
      if (opts_.tenant_inflight_quota > 0) {
        const auto fit = tenant_inflight_.find(tenant);
        if (fit != tenant_inflight_.end() &&
            fit->second >= opts_.tenant_inflight_quota) {
          stats_.on_tenant_deferral();
          tq.deficit = 0;
          ++lane.rr_pos;
          continue;
        }
      }
      // Weighted DRR: a visit grants the tenant its weight in dequeues;
      // the rotation advances once the grant is spent.
      if (tq.deficit <= 0) tq.deficit = tenant_weight(tenant);
      JobPtr job = std::move(tq.q.front());
      tq.q.pop_front();
      --lane.size;
      --tq.deficit;
      if (tq.q.empty()) {
        lane.rr.erase(lane.rr.begin() +
                      static_cast<std::ptrdiff_t>(lane.rr_pos));
        lane.tenants.erase(tenant);
      } else if (tq.deficit <= 0) {
        ++lane.rr_pos;
      }
      return job;
    }
  }
  return nullptr;
}

void PlanService::release_tenant_slot_locked(const std::string& tenant) {
  const auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && --it->second == 0) {
    tenant_inflight_.erase(it);
  }
  // A worker may be asleep with the whole rotation quota-blocked on this
  // tenant; only a completion can make it dispatchable again.
  if (opts_.tenant_inflight_quota > 0) work_cv_.notify_all();
}

bool PlanService::has_dispatchable_locked() const {
  for (const auto& lane : lanes_) {
    if (lane.size == 0) continue;
    for (const auto& [tenant, tq] : lane.tenants) {
      if (tq.q.empty()) continue;
      if (opts_.tenant_inflight_quota > 0) {
        const auto fit = tenant_inflight_.find(tenant);
        if (fit != tenant_inflight_.end() &&
            fit->second >= opts_.tenant_inflight_quota) {
          continue;
        }
      }
      return true;
    }
  }
  return false;
}

void PlanService::promote_to_urgent_locked(const JobPtr& job) {
  if (job->in_flight || job->lane == kLaneUrgent) return;
  Lane& batch = lanes_[kLaneBatch];
  const auto tit = batch.tenants.find(job->tenant);
  if (tit == batch.tenants.end()) return;
  auto& q = tit->second.q;
  const auto it = std::find(q.begin(), q.end(), job);
  if (it == q.end()) return;
  q.erase(it);
  --batch.size;
  // A drained tenant queue is retired lazily by pop_job_locked.
  job->lane = kLaneUrgent;
  push_job_locked(job);
}

void PlanService::answer_expired_locked(const Waiter& w,
                                        const std::string& solve_key,
                                        std::uint64_t context_epoch,
                                        std::vector<Outgoing>* responses) {
  const double elapsed = ms_between(w.admitted, Clock::now());
  const auto it = memo_.find(solve_key);
  if (w.allow_degraded && it != memo_.end()) {
    it->second.last_used = ++memo_clock_;
    const std::uint64_t lag = context_epoch - it->second.epoch;
    if (lag == 0) {
      stats_.on_cache_hit();
    } else {
      stats_.on_degraded();
    }
    responses->push_back(
        {w.sink, plan_response(w.id, it->second.answer, it->second.epoch, lag,
                               true, w.coalesced, elapsed)});
  } else {
    stats_.on_deadline_exceeded();
    responses->push_back(
        {w.sink,
         error_response(
             w.id, ErrorCode::kDeadlineExceeded,
             "deadline budget exhausted with no answer (or stale answer) "
             "available")});
  }
}

void PlanService::expire_overdue_locked(const JobPtr& job,
                                        Clock::time_point now,
                                        std::vector<Outgoing>* responses) {
  if (job->internal) return;
  std::uint64_t epoch = 0;
  if (const auto cit = contexts_.find(job->context_key); cit != contexts_.end()) {
    epoch = epoch_of(*cit->second);
  }
  auto& ws = job->waiters;
  for (auto it = ws.begin(); it != ws.end();) {
    if (it->has_deadline && now >= it->deadline) {
      answer_expired_locked(*it, job->solve_key, epoch, responses);
      it = ws.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanService::submit_line(const std::string& line, EmitRef sink,
                              const std::string& default_tenant) {
  if (sink == nullptr) sink = default_sink_;
  stats_.on_received();
  Request req;
  std::string id;
  try {
    req = parse_request(line, &id);
  } catch (const std::exception& e) {
    stats_.on_invalid();
    (*sink)(error_response(id, ErrorCode::kInvalidRequest, e.what()));
    return;
  }
  switch (req.op) {
    case RequestOp::kPlan: handle_plan(req, sink, default_tenant); break;
    case RequestOp::kStats: handle_stats(req, sink); break;
    case RequestOp::kDelta: handle_delta(req, sink); break;
    case RequestOp::kShutdown: {
      // Ack first so the client sees the transition, then drain: queued
      // waiters get SHUTTING_DOWN, in-flight solves finish and answer.
      JsonWriter w;
      w.begin_object();
      w.key("id").value(req.id);
      w.key("code").value(to_string(ErrorCode::kOk));
      w.key("shutting_down").value(true);
      w.end_object();
      (*sink)(w.str());
      shutdown();
      break;
    }
  }
}

void PlanService::handle_plan(const Request& req, const EmitRef& sink,
                              const std::string& default_tenant) {
  const auto now = Clock::now();
  std::vector<Outgoing> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (shutting_down_) {
      responses.push_back(
          {sink, error_response(req.id, ErrorCode::kShuttingDown,
                                "service is shutting down")});
    } else {
      const std::string ckey =
          context_key(req.plan.topology, req.plan.nodes, req.plan.params.b.gbps());
      Context& ctx =
          ensure_context_locked(req.plan.topology, req.plan.nodes,
                                req.plan.params.b, ckey);
      const std::string skey = solve_key(ckey, req.plan);
      const std::uint64_t epoch = epoch_of(ctx);

      Waiter w;
      w.id = req.id;
      w.sink = sink;
      w.admitted = now;
      w.allow_degraded = req.plan.allow_degraded;
      if (req.plan.deadline_ms > 0.0) {
        w.has_deadline = true;
        w.deadline = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   req.plan.deadline_ms));
      }

      const auto mit = memo_.find(skey);
      if (mit != memo_.end() && mit->second.epoch == epoch) {
        // Fresh memo hit: answered synchronously, deadline trivially met.
        mit->second.last_used = ++memo_clock_;
        stats_.on_cache_hit();
        responses.push_back(
            {sink, plan_response(req.id, mit->second.answer, epoch, 0, true,
                                 false, ms_between(now, Clock::now()))});
      } else if (w.has_deadline &&
                 req.plan.deadline_ms <= opts_.fast_path_budget_ms) {
        // Budget below the plausible-solve floor: take the degradation
        // ladder right now instead of queueing work that cannot finish.
        answer_expired_locked(w, skey, epoch, &responses);
      } else if (const auto jit = jobs_by_key_.find(skey);
                 jit != jobs_by_key_.end()) {
        // Identical solve already queued or in flight — piggyback. A
        // deadline waiter pulls a still-queued batch job into the urgent
        // lane with it. Riding an *internal* replan job converts it to an
        // external one: internal completions answer nobody, and this
        // waiter must be answered.
        w.coalesced = true;
        const JobPtr& job = jit->second;
        job->internal = false;
        job->waiters.push_back(w);
        if (w.has_deadline) promote_to_urgent_locked(job);
        if (job->in_flight && w.has_deadline) {
          // Extend an armed in-flight token to cover the new waiter (a
          // disarmed token — some waiter without a deadline — stays so).
          const auto need = w.deadline - Clock::now();
          if (job->token.remaining() < need) {
            job->token.set_deadline_after(
                std::chrono::duration_cast<std::chrono::nanoseconds>(need));
          }
        }
      } else if (queued_locked() >= opts_.queue_limit) {
        // Admission control: shed with a service-time-derived retry hint
        // instead of growing the queue without bound.
        const double p50 = stats_.p50_plan_ms(opts_.retry_fallback_ms);
        const double retry =
            p50 * static_cast<double>(queued_locked() + in_flight_ + 1);
        stats_.on_shed();
        responses.push_back(
            {sink, error_response(req.id, ErrorCode::kShed,
                                  "admission queue full", retry)});
      } else {
        auto job = std::make_shared<Job>();
        job->solve_key = skey;
        job->context_key = ckey;
        job->plan = req.plan;
        job->tenant =
            req.plan.tenant.empty() ? default_tenant : req.plan.tenant;
        job->waiters.push_back(w);
        // Deadline-carrying requests enter the urgent lane and are always
        // dequeued ahead of batch work.
        job->lane = w.has_deadline ? kLaneUrgent : kLaneBatch;
        jobs_by_key_[skey] = job;
        push_job_locked(std::move(job));
        work_cv_.notify_one();
      }
    }
  }
  for (const auto& r : responses) (*r.sink)(r.line);
}

void PlanService::handle_stats(const Request& req, const EmitRef& sink) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    depth = queued_locked() + in_flight_;
  }
  const auto cache_stats = shared_cache_->stats();
  const std::string obj =
      ServeStats::to_json_object(stats(), depth, cache_stats.hit_rate());
  std::string out = "{\"id\":\"" + json_escape(req.id) +
                    "\",\"code\":\"OK\",\"stats\":" + obj + "}";
  (*sink)(out);
}

std::size_t PlanService::enqueue_replans_locked(const std::string& ckey) {
  const auto cit = contexts_.find(ckey);
  if (cit == contexts_.end()) return 0;
  const std::uint64_t wire_epoch = epoch_of(*cit->second);
  std::size_t replans = 0;
  for (const auto& [key, entry] : memo_) {
    if (key.compare(0, ckey.size() + 1, ckey + "/") != 0) continue;
    if (entry.epoch >= wire_epoch) continue;
    if (jobs_by_key_.count(key) != 0) continue;  // already being solved
    if (queued_locked() >= opts_.queue_limit) continue;  // plans outrank
    auto job = std::make_shared<Job>();
    job->solve_key = key;
    job->context_key = ckey;
    job->plan = entry.plan;
    job->internal = true;
    job->lane = kLaneBatch;
    jobs_by_key_[key] = job;
    push_job_locked(std::move(job));  // internal work: the "" tenant
    ++replans;
  }
  if (replans > 0) work_cv_.notify_all();
  return replans;
}

void PlanService::handle_delta(const Request& req, const EmitRef& sink) {
  std::vector<Outgoing> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    const std::string ckey = context_key(req.delta.topology, req.delta.nodes,
                                         req.delta.bandwidth_gbps);
    const Bandwidth b_ref(req.delta.bandwidth_gbps / 8.0);
    Context& ctx =
        ensure_context_locked(req.delta.topology, req.delta.nodes, b_ref, ckey);
    const std::uint64_t old_fp =
        flow::theta_context_fingerprint(ctx.graph, ctx.b_ref, opts_.theta);
    topo::DeltaResult result;
    try {
      result = topo::apply_delta(ctx.graph, req.delta.delta);
    } catch (const std::exception& e) {
      stats_.on_invalid();
      responses.push_back(
          {sink, error_response(req.id, ErrorCode::kInvalidRequest, e.what())});
      lk.unlock();
      for (const auto& r : responses) (*r.sink)(r.line);
      return;
    }
    const std::uint64_t new_fp =
        flow::theta_context_fingerprint(ctx.graph, ctx.b_ref, opts_.theta);
    const std::uint64_t wire_epoch = result.epoch - ctx.base_epoch;
    // PR-6 survival rule at the θ layer: entries whose routed support
    // provably avoids every touched edge follow the graph to its new
    // context fingerprint; the rest are left behind to age out.
    const auto carry = shared_cache_->carry_across_delta(
        old_fp, new_fp, result.touched, result.relaxing);

    // The plan memo is NOT erased: its now-stale entries are exactly what
    // the degradation ladder serves to tight-deadline requests. Refresh
    // them asynchronously instead.
    std::size_t stale = 0;
    for (const auto& [key, entry] : memo_) {
      if (key.compare(0, ckey.size() + 1, ckey + "/") != 0) continue;
      if (entry.epoch < wire_epoch) ++stale;
    }
    std::size_t replans = 0;
    bool deferred = false;
    if (opts_.replan_on_delta && !shutting_down_) {
      if (opts_.replan_debounce_window.count() > 0) {
        // Delta-storm debouncing: the first delta of a burst arms the
        // context's window; the rest ride it. One replan wave fires when
        // the watchdog sees the window close — in trailing-edge mode each
        // rider also pushes the close time out, so the wave fires one
        // quiet window after the *last* delta of the burst.
        deferred = true;
        const auto close = Clock::now() + opts_.replan_debounce_window;
        const auto [pit, inserted] = pending_replans_.try_emplace(ckey, close);
        if (!inserted) {
          stats_.on_replan_debounced();
          if (opts_.debounce_trailing) pit->second = close;
        }
      } else {
        replans = enqueue_replans_locked(ckey);
      }
    }
    stats_.on_delta();

    JsonWriter w;
    w.begin_object();
    w.key("id").value(req.id);
    w.key("code").value(to_string(ErrorCode::kOk));
    w.key("epoch").value(static_cast<std::int64_t>(wire_epoch));
    w.key("touched").value(static_cast<std::int64_t>(result.touched.size()));
    w.key("relaxing").value(result.relaxing);
    w.key("theta_examined").value(static_cast<std::int64_t>(carry.examined));
    w.key("theta_carried").value(static_cast<std::int64_t>(carry.survived));
    w.key("theta_invalidated")
        .value(static_cast<std::int64_t>(carry.invalidated));
    w.key("memo_stale").value(static_cast<std::int64_t>(stale));
    w.key("replans_enqueued").value(static_cast<std::int64_t>(replans));
    w.key("replans_deferred").value(deferred);
    w.end_object();
    responses.push_back({sink, w.str()});
  }
  for (const auto& r : responses) (*r.sink)(r.line);
}

PlanAnswer PlanService::solve_plan(topo::Graph graph, const PlanFields& plan,
                                   const util::CancellationToken* token) const {
  flow::ThetaOptions theta = opts_.theta;
  theta.shared_cache = shared_cache_;
  theta.cancel = token;
  // Planner-internal parallelism off: the service's own workers provide
  // the concurrency, and a serial plan keeps each job's cost attributable.
  core::Planner planner(std::move(graph), plan.params, theta,
                        core::PlannerOptions{.parallel = false});
  const workload::CollectiveRequest request{plan.collective.kind, plan.message,
                                            "serve"};
  PlanAnswer a;
  workload::MaterializeOptions mat;
  mat.allreduce = plan.collective.allreduce;
  mat.alltoall = plan.collective.alltoall;
  const bool wants_auto =
      (plan.collective.kind == workload::CollectiveKind::kAllReduce &&
       mat.allreduce == workload::AllReduceAlgo::kAuto) ||
      (plan.collective.kind == workload::CollectiveKind::kAllToAll &&
       mat.alltoall == workload::AllToAllAlgo::kAuto);
  if (wants_auto) {
    // Size-adaptive selection rides the same cancellable oracle as the plan
    // solve, so a deadline cancels the candidate sweep too.
    const auto sel = core::select_algorithm(planner, request, mat);
    a.chosen_algo = sel.chosen.algo;
    mat.allreduce = sel.chosen.allreduce;
    mat.alltoall = sel.chosen.alltoall;
  }
  const auto schedule = workload::materialize(request, plan.nodes, mat);
  const auto result = planner.plan(schedule);
  a.steps = schedule.num_steps();
  a.optimal_ns = result.optimal.total_time().ns();
  a.static_ns = result.static_base.total_time().ns();
  a.naive_bvn_ns = result.naive_bvn.total_time().ns();
  a.greedy_ns = result.greedy.total_time().ns();
  a.reconfigurations = result.optimal.num_reconfigurations;
  a.speedup_vs_static = result.speedup_vs_static();
  a.speedup_vs_bvn = result.speedup_vs_bvn();
  const core::ProblemInstance inst = planner.instance(schedule);
  const core::PipelinedCostModel pipelined(inst);
  const auto sweep = pipelined.best_over_chunks(result.optimal.choice);
  a.pipelined_ns = sweep.completion.ns();
  a.pipeline_chunks = sweep.chunks;
  return a;
}

void PlanService::run_worker(std::size_t slot) {
  try {
    worker_loop(slot);
  } catch (...) {
    // Crash-only recovery: whatever escaped the per-job containment kills
    // this thread alone. The watchdog notices the dead slot and respawns
    // it; the daemon never dies with the worker.
  }
  workers_[slot]->alive.store(false);
}

void PlanService::worker_loop(std::size_t /*slot*/) {
  while (true) {
    JobPtr job;
    topo::Graph snapshot;
    std::uint64_t snapshot_epoch = 0;
    std::vector<Outgoing> responses;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(
          lk, [&] { return shutting_down_ || has_dispatchable_locked(); });
      job = pop_job_locked();
      if (job == nullptr) {
        if (shutting_down_) return;
        continue;  // raced another worker, or the rotation is quota-blocked
      }
      // Pre-dispatch deadline check: don't burn a solve on waiters that
      // already expired while queued.
      expire_overdue_locked(job, Clock::now(), &responses);
      if (job->waiters.empty() && !job->internal) {
        jobs_by_key_.erase(job->solve_key);
        if (queued_locked() == 0 && in_flight_ == 0) idle_cv_.notify_all();
        lk.unlock();
        for (const auto& r : responses) (*r.sink)(r.line);
        continue;
      }
      const auto cit = contexts_.find(job->context_key);
      PSD_ASSERT(cit != contexts_.end(), "job's topology context vanished");
      snapshot = cit->second->graph;  // jobs solve on a value snapshot
      snapshot_epoch = epoch_of(*cit->second);
      job->in_flight = true;
      ++in_flight_;
      ++tenant_inflight_[job->tenant];
      // Arm the cooperative token with the *latest* waiter deadline (an
      // earlier waiter is expired individually by the watchdog while the
      // solve keeps going for the rest); any deadline-free waiter, or an
      // internal replan, leaves it disarmed.
      job->token.reset();
      bool all_deadlined = !job->internal;
      Clock::time_point latest = Clock::time_point::min();
      for (const auto& w : job->waiters) {
        if (!w.has_deadline) {
          all_deadlined = false;
          break;
        }
        latest = std::max(latest, w.deadline);
      }
      if (all_deadlined) {
        job->token.set_deadline_after(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                latest - Clock::now()));
      }
    }
    for (const auto& r : responses) (*r.sink)(r.line);
    responses.clear();

    // Slow-solve drill: stall this dispatch before the solve starts, as a
    // hung solver or an overloaded host would. Deterministic under a
    // seeded injector; the watchdog's 2x-budget guarantee must hold.
    if (opts_.fault != nullptr) {
      const auto stall = opts_.fault->fire_delay("worker.slow");
      if (stall.count() > 0) std::this_thread::sleep_for(stall);
    }

    const bool crash_now =
        job->plan.inject_worker_crash ||
        (opts_.fault != nullptr && !job->internal &&
         opts_.fault->fire("worker.crash"));
    if (crash_now) {
      // Crash drill: answer and detach the job first so nothing dangles,
      // then die. WorkerCrash sails past the containment below by design.
      {
        const std::lock_guard<std::mutex> lk(mu_);
        stats_.on_internal_error();
        for (const auto& w : job->waiters) {
          responses.push_back(
              {w.sink,
               error_response(w.id, ErrorCode::kInternal,
                              "worker crashed while planning (crash drill)")});
        }
        jobs_by_key_.erase(job->solve_key);
        job->in_flight = false;
        --in_flight_;
        release_tenant_slot_locked(job->tenant);
        if (queued_locked() == 0 && in_flight_ == 0) idle_cv_.notify_all();
      }
      for (const auto& r : responses) (*r.sink)(r.line);
      throw WorkerCrash{};
    }

    const auto start = Clock::now();
    enum class Outcome : std::uint8_t { kOk, kCancelled, kError };
    Outcome outcome = Outcome::kOk;
    PlanAnswer answer;
    std::string error_msg;
    try {
      answer = solve_plan(std::move(snapshot), job->plan, &job->token);
    } catch (const Cancelled&) {
      outcome = Outcome::kCancelled;
    } catch (const std::exception& e) {
      // Containment boundary: a solver failure costs this request, never
      // the worker.
      outcome = Outcome::kError;
      error_msg = e.what();
    }
    const double solve_ms = ms_between(start, Clock::now());

    std::optional<MemoSnapshotRecord> jrec;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      job->in_flight = false;
      --in_flight_;
      release_tenant_slot_locked(job->tenant);
      std::uint64_t ctx_epoch = snapshot_epoch;
      if (const auto cit = contexts_.find(job->context_key);
          cit != contexts_.end()) {
        ctx_epoch = epoch_of(*cit->second);
      }
      if (outcome != Outcome::kCancelled) jobs_by_key_.erase(job->solve_key);
      if (outcome == Outcome::kOk) {
        memo_put_locked(job->solve_key, answer, snapshot_epoch, job->plan);
        // Durability per answer: journal the entry now (outside the lock,
        // below) if it is fresh at its context's current epoch.
        if (journal_ != nullptr) jrec = record_for_key_locked(job->solve_key);
        if (job->internal) {
          stats_.on_replan();
        } else {
          stats_.on_planned();
          stats_.record_plan_latency_ms(solve_ms);
          // A delta that landed mid-solve makes this answer stale by
          // (ctx_epoch - snapshot_epoch) — report the lag, don't error.
          const std::uint64_t lag = ctx_epoch - snapshot_epoch;
          for (const auto& w : job->waiters) {
            if (w.coalesced) stats_.on_coalesced();
            if (lag > 0) stats_.on_degraded();
            responses.push_back(
                {w.sink, plan_response(w.id, answer, snapshot_epoch, lag,
                                       false, w.coalesced, solve_ms)});
          }
        }
      } else if (outcome == Outcome::kCancelled) {
        // The token fired for the waiters whose budgets lapsed — but a
        // waiter that coalesced on after the token was armed (no deadline,
        // or a later one) still wants the answer: expire only the lapsed,
        // requeue the job for the rest. The re-dispatch re-arms the token
        // from the surviving waiters, so a deadline-free rider runs the
        // solve to completion.
        const auto now = Clock::now();
        std::vector<Waiter> kept;
        for (const auto& w : job->waiters) {
          if (w.has_deadline && now >= w.deadline) {
            answer_expired_locked(w, job->solve_key, ctx_epoch, &responses);
          } else {
            kept.push_back(w);
          }
        }
        if (kept.empty()) {
          jobs_by_key_.erase(job->solve_key);
        } else {
          job->waiters = std::move(kept);
          job->token.reset();
          job->lane = kLaneBatch;
          for (const auto& w : job->waiters) {
            if (w.has_deadline) job->lane = kLaneUrgent;
          }
          push_job_locked(job);
          work_cv_.notify_one();
        }
      } else if (!job->internal) {
        stats_.on_internal_error();
        for (const auto& w : job->waiters) {
          responses.push_back(
              {w.sink, error_response(w.id, ErrorCode::kInternal, error_msg)});
        }
      }
      if (queued_locked() == 0 && in_flight_ == 0) idle_cv_.notify_all();
    }
    for (const auto& r : responses) (*r.sink)(r.line);
    if (journal_ != nullptr) journal_append_and_maintain(std::move(jrec));
  }
}

void PlanService::watchdog_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lk, opts_.watchdog_interval,
                          [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    // Watchdog-clock drill: a stalled tick delays deadline sweeps and
    // worker revival — the 2x-budget guarantee degrades by exactly the
    // stall, never by more. Sleeps outside the lock: a slow watchdog must
    // not block admission.
    if (opts_.fault != nullptr) {
      const auto stall = opts_.fault->fire_delay("watchdog.stall");
      if (stall.count() > 0) {
        lk.unlock();
        std::this_thread::sleep_for(stall);
        lk.lock();
        if (watchdog_stop_) return;
      }
    }
    std::vector<Outgoing> responses;
    const auto now = Clock::now();
    // Expire overdue waiters of queued jobs; drop jobs nobody waits for.
    // (Tenant queues emptied here are retired lazily by pop_job_locked.)
    for (auto& lane : lanes_) {
      for (auto& [tenant, tq] : lane.tenants) {
        for (auto it = tq.q.begin(); it != tq.q.end();) {
          expire_overdue_locked(*it, now, &responses);
          if ((*it)->waiters.empty() && !(*it)->internal) {
            jobs_by_key_.erase((*it)->solve_key);
            it = tq.q.erase(it);
            --lane.size;
          } else {
            ++it;
          }
        }
      }
    }
    // In-flight jobs: expire overdue waiters individually; once nobody is
    // left waiting, cancel the solve — its work benefits no one.
    for (const auto& [key, job] : jobs_by_key_) {
      if (!job->in_flight) continue;
      expire_overdue_locked(job, now, &responses);
      if (job->waiters.empty() && !job->internal) job->token.cancel();
    }
    // Debounced replan waves whose window closed: one wave per context.
    if (!shutting_down_) {
      for (auto it = pending_replans_.begin(); it != pending_replans_.end();) {
        if (now >= it->second) {
          enqueue_replans_locked(it->first);
          it = pending_replans_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Crash-only worker recovery: join dead slots and respawn them.
    if (!shutting_down_) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerSlot& slot = *workers_[i];
        if (!slot.alive.load() && slot.thread.joinable()) {
          slot.thread.join();
          stats_.on_worker_restart();
          slot.alive.store(true);
          slot.thread = std::thread([this, i] { run_worker(i); });
        }
      }
    }
    if (queued_locked() == 0 && in_flight_ == 0) idle_cv_.notify_all();
    // A wedged journal (torn append) heals only through compaction; the
    // watchdog is the one guaranteed to notice when traffic has stopped.
    const bool maintain_journal =
        !shutting_down_ && journal_ != nullptr && journal_->wants_compaction();
    if (!responses.empty() || maintain_journal) {
      lk.unlock();
      for (const auto& r : responses) (*r.sink)(r.line);
      if (maintain_journal) journal_append_and_maintain(std::nullopt);
      lk.lock();
    }
  }
}

std::vector<MemoSnapshotRecord> PlanService::live_records_locked() {
  std::vector<MemoSnapshotRecord> records;
  // θ fingerprints are per context; compute each once per compaction.
  std::map<std::string, std::uint64_t> fp_by_ckey;
  for (const auto& [key, entry] : memo_) {
    const std::string ckey =
        context_key(entry.plan.topology, entry.plan.nodes,
                    entry.plan.params.b.gbps());
    const auto cit = contexts_.find(ckey);
    if (cit == contexts_.end()) continue;
    // Only entries fresh at their context's current epoch are recorded: a
    // stale answer restored into a pristine rebuild would be wrong twice.
    if (entry.epoch != epoch_of(*cit->second)) continue;
    auto fit = fp_by_ckey.find(ckey);
    if (fit == fp_by_ckey.end()) {
      fit = fp_by_ckey
                .emplace(ckey, flow::theta_context_fingerprint(
                                   cit->second->graph, cit->second->b_ref,
                                   opts_.theta))
                .first;
    }
    MemoSnapshotRecord rec;
    rec.plan = entry.plan;
    rec.answer = entry.answer;
    rec.epoch = entry.epoch;
    rec.fingerprint = fit->second;
    records.push_back(std::move(rec));
  }
  return records;
}

std::optional<MemoSnapshotRecord> PlanService::record_for_key_locked(
    const std::string& solve_key) {
  const auto mit = memo_.find(solve_key);
  if (mit == memo_.end()) return std::nullopt;
  const MemoEntry& entry = mit->second;
  const std::string ckey = context_key(
      entry.plan.topology, entry.plan.nodes, entry.plan.params.b.gbps());
  const auto cit = contexts_.find(ckey);
  if (cit == contexts_.end()) return std::nullopt;
  if (entry.epoch != epoch_of(*cit->second)) return std::nullopt;
  MemoSnapshotRecord rec;
  rec.plan = entry.plan;
  rec.answer = entry.answer;
  rec.epoch = entry.epoch;
  rec.fingerprint = flow::theta_context_fingerprint(
      cit->second->graph, cit->second->b_ref, opts_.theta);
  return rec;
}

void PlanService::replay_journal_locked() {
  JournalLoadResult res = journal_->load();
  journal_truncated_tail_ = res.truncated_tail;
  for (std::uint64_t i = 0; i < res.errors; ++i) stats_.on_memo_load_error();
  std::uint64_t loaded = 0;
  // Per-context fingerprint of the freshly built graph, computed once.
  std::map<std::string, std::uint64_t> fresh_fp;
  for (const auto& rec : res.records) {
    const std::string ckey = context_key(rec.plan.topology, rec.plan.nodes,
                                         rec.plan.params.b.gbps());
    Context& ctx = ensure_context_locked(rec.plan.topology, rec.plan.nodes,
                                         rec.plan.params.b, ckey);
    auto fit = fresh_fp.find(ckey);
    if (fit == fresh_fp.end()) {
      fit = fresh_fp
                .emplace(ckey, flow::theta_context_fingerprint(
                                   ctx.graph, ctx.b_ref, opts_.theta))
                .first;
    }
    if (rec.fingerprint != fit->second) {
      // The answer was computed on a different graph (deltas before the
      // record, or different θ options) — provably not warm for this
      // rebuild.
      stats_.on_memo_load_rejected();
      continue;
    }
    // Admitted at the rebuilt context's epoch: the fingerprint match is
    // the proof the answer is fresh for the graph as it stands now.
    memo_put_locked(solve_key(ckey, rec.plan), rec.answer, epoch_of(ctx),
                    rec.plan);
    ++loaded;
  }
  if (loaded > 0) stats_.on_memo_loaded(loaded);
}

void PlanService::journal_append_and_maintain(
    std::optional<MemoSnapshotRecord> rec) {
  if (journal_ == nullptr) return;
  if (rec.has_value()) (void)journal_->append(*rec);
  if (!journal_->wants_compaction()) return;
  std::vector<MemoSnapshotRecord> live;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    live = live_records_locked();
  }
  if (journal_->compact(live)) stats_.on_memo_snapshot();
}

bool PlanService::compact_journal() {
  if (journal_ == nullptr) return false;
  std::vector<MemoSnapshotRecord> live;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    live = live_records_locked();
  }
  const bool ok = journal_->compact(live);
  if (ok) stats_.on_memo_snapshot();
  return ok;
}

ServeStatsSnapshot PlanService::stats() const {
  ServeStatsSnapshot s = stats_.snapshot();
  if (opts_.fault != nullptr) s.faults_injected = opts_.fault->fires();
  if (journal_ != nullptr) s.journal_compactions = journal_->compactions();
  s.journal_truncated_tail = journal_truncated_tail_;
  return s;
}

void PlanService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queued_locked() == 0 && in_flight_ == 0; });
}

bool PlanService::shutting_down() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return shutting_down_;
}

std::size_t PlanService::queue_depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return queued_locked() + in_flight_;
}

void PlanService::shutdown() {
  // One caller performs the joins; later/concurrent callers (e.g. the
  // destructor after a shutdown op) wait here until teardown is complete.
  const std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  if (shutdown_done_) return;
  std::vector<Outgoing> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    shutting_down_ = true;
    for (auto& lane : lanes_) {
      for (auto& [tenant, tq] : lane.tenants) {
        for (const auto& job : tq.q) {
          for (const auto& w : job->waiters) {
            responses.push_back(
                {w.sink,
                 error_response(
                     w.id, ErrorCode::kShuttingDown,
                     "service shut down before the request was solved")});
          }
          jobs_by_key_.erase(job->solve_key);
        }
      }
      lane.tenants.clear();
      lane.rr.clear();
      lane.rr_pos = 0;
      lane.size = 0;
    }
    pending_replans_.clear();
    work_cv_.notify_all();
    watchdog_stop_ = true;
    watchdog_cv_.notify_all();
  }
  for (const auto& r : responses) (*r.sink)(r.line);
  // Join the watchdog before the workers: once it is gone nothing else
  // touches the worker std::thread objects (it joins/respawns dead slots),
  // so the joins below cannot race it. In-flight solves still finish and
  // answer — their deadline tokens keep ticking without the watchdog.
  if (watchdog_.joinable()) watchdog_.join();
  for (const auto& slot : workers_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  // Final journal compaction: everything is quiesced, so the single fresh
  // generation on disk is exactly what a restart should resume from (and
  // a wedged journal is healed before the daemon exits).
  if (journal_ != nullptr) (void)compact_journal();
  shutdown_done_ = true;
}

}  // namespace psd::serve
