#include "psd/serve/service.hpp"

#include <algorithm>
#include <cstdio>

#include "psd/core/algo_select.hpp"
#include "psd/core/pipelined_cost.hpp"
#include "psd/util/json.hpp"
#include "psd/workload/workload.hpp"

namespace psd::serve {

namespace {

/// Escapes worker_loop's per-job exception containment on purpose: the
/// crash drill must kill the worker *thread* (run_worker's crash boundary)
/// rather than be folded into an INTERNAL response. Deliberately not a
/// std::exception so no generic handler can swallow it.
struct WorkerCrash {};

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

PlanService::PlanService(ServiceOptions opts, Emit emit)
    : opts_(std::move(opts)),
      emit_(std::move(emit)),
      stats_(opts_.latency_window < 1 ? 1 : opts_.latency_window) {
  PSD_REQUIRE(emit_ != nullptr, "PlanService needs an emit callback");
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.memo_capacity < 1) opts_.memo_capacity = 1;
  // The delta carry needs routed supports recorded beside every shared θ
  // entry, and per-job oracles are throwaway — shared memo or nothing.
  opts_.theta.track_support = true;
  opts_.theta.use_cache = true;
  shared_cache_ = sweep::make_shared_theta_cache(opts_.theta_cache);
  workers_.reserve(opts_.workers);
  for (unsigned i = 0; i < opts_.workers; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->alive.store(true);
    workers_.push_back(std::move(slot));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

PlanService::~PlanService() { shutdown(); }

std::string PlanService::context_key(const sweep::TopologySpec& topology,
                                     int nodes, double gbps) {
  return sweep::to_string(topology) + "/n" + std::to_string(nodes) + "/bw" +
         fmt17(gbps);
}

std::string PlanService::solve_key(const std::string& context_key,
                                   const PlanFields& plan) {
  return context_key + "/" + sweep::to_string(plan.collective) + "/m" +
         fmt17(plan.message.count()) + "/a" + fmt17(plan.params.alpha.ns()) +
         "/d" + fmt17(plan.params.delta.ns()) + "/ar" +
         fmt17(plan.params.alpha_r.ns());
}

PlanService::Context& PlanService::ensure_context_locked(
    const sweep::TopologySpec& topology, int nodes, Bandwidth b_ref,
    const std::string& key) {
  auto it = contexts_.find(key);
  if (it == contexts_.end()) {
    auto ctx = std::make_unique<Context>(
        Context{sweep::build_topology(topology, nodes, b_ref), b_ref});
    ctx->base_epoch = ctx->graph.epoch();
    it = contexts_.emplace(key, std::move(ctx)).first;
  }
  return *it->second;
}

void PlanService::memo_put_locked(const std::string& solve_key,
                                  PlanAnswer answer, std::uint64_t epoch,
                                  const PlanFields& plan) {
  auto& entry = memo_[solve_key];
  // A delta may have overtaken this solve; never let a stale answer clobber
  // a fresher one another worker already recorded.
  if (entry.last_used != 0 && entry.epoch > epoch) return;
  entry.answer = answer;
  entry.epoch = epoch;
  entry.plan = plan;
  entry.last_used = ++memo_clock_;
  if (memo_.size() > opts_.memo_capacity) {
    auto victim = memo_.begin();
    for (auto it = memo_.begin(); it != memo_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    memo_.erase(victim);
  }
}

void PlanService::answer_expired_locked(const Waiter& w,
                                        const std::string& solve_key,
                                        std::uint64_t context_epoch,
                                        std::vector<std::string>* responses) {
  const double elapsed = ms_between(w.admitted, Clock::now());
  const auto it = memo_.find(solve_key);
  if (w.allow_degraded && it != memo_.end()) {
    it->second.last_used = ++memo_clock_;
    const std::uint64_t lag = context_epoch - it->second.epoch;
    if (lag == 0) {
      stats_.on_cache_hit();
    } else {
      stats_.on_degraded();
    }
    responses->push_back(plan_response(w.id, it->second.answer,
                                       it->second.epoch, lag, true,
                                       w.coalesced, elapsed));
  } else {
    stats_.on_deadline_exceeded();
    responses->push_back(error_response(
        w.id, ErrorCode::kDeadlineExceeded,
        "deadline budget exhausted with no answer (or stale answer) available"));
  }
}

void PlanService::expire_overdue_locked(const JobPtr& job,
                                        Clock::time_point now,
                                        std::vector<std::string>* responses) {
  if (job->internal) return;
  std::uint64_t epoch = 0;
  if (const auto cit = contexts_.find(job->context_key); cit != contexts_.end()) {
    epoch = epoch_of(*cit->second);
  }
  auto& ws = job->waiters;
  for (auto it = ws.begin(); it != ws.end();) {
    if (it->has_deadline && now >= it->deadline) {
      answer_expired_locked(*it, job->solve_key, epoch, responses);
      it = ws.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanService::submit_line(const std::string& line) {
  stats_.on_received();
  Request req;
  std::string id;
  try {
    req = parse_request(line, &id);
  } catch (const std::exception& e) {
    stats_.on_invalid();
    emit_(error_response(id, ErrorCode::kInvalidRequest, e.what()));
    return;
  }
  switch (req.op) {
    case RequestOp::kPlan: handle_plan(req); break;
    case RequestOp::kStats: handle_stats(req); break;
    case RequestOp::kDelta: handle_delta(req); break;
    case RequestOp::kShutdown: {
      // Ack first so the client sees the transition, then drain: queued
      // waiters get SHUTTING_DOWN, in-flight solves finish and answer.
      JsonWriter w;
      w.begin_object();
      w.key("id").value(req.id);
      w.key("code").value(to_string(ErrorCode::kOk));
      w.key("shutting_down").value(true);
      w.end_object();
      emit_(w.str());
      shutdown();
      break;
    }
  }
}

void PlanService::handle_plan(const Request& req) {
  const auto now = Clock::now();
  std::vector<std::string> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (shutting_down_) {
      responses.push_back(error_response(req.id, ErrorCode::kShuttingDown,
                                         "service is shutting down"));
    } else {
      const std::string ckey =
          context_key(req.plan.topology, req.plan.nodes, req.plan.params.b.gbps());
      Context& ctx =
          ensure_context_locked(req.plan.topology, req.plan.nodes,
                                req.plan.params.b, ckey);
      const std::string skey = solve_key(ckey, req.plan);
      const std::uint64_t epoch = epoch_of(ctx);

      Waiter w;
      w.id = req.id;
      w.admitted = now;
      w.allow_degraded = req.plan.allow_degraded;
      if (req.plan.deadline_ms > 0.0) {
        w.has_deadline = true;
        w.deadline = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   req.plan.deadline_ms));
      }

      const auto mit = memo_.find(skey);
      if (mit != memo_.end() && mit->second.epoch == epoch) {
        // Fresh memo hit: answered synchronously, deadline trivially met.
        mit->second.last_used = ++memo_clock_;
        stats_.on_cache_hit();
        responses.push_back(
            plan_response(req.id, mit->second.answer, epoch, 0, true, false,
                          ms_between(now, Clock::now())));
      } else if (w.has_deadline &&
                 req.plan.deadline_ms <= opts_.fast_path_budget_ms) {
        // Budget below the plausible-solve floor: take the degradation
        // ladder right now instead of queueing work that cannot finish.
        answer_expired_locked(w, skey, epoch, &responses);
      } else if (const auto jit = jobs_by_key_.find(skey);
                 jit != jobs_by_key_.end()) {
        // Identical solve already queued or in flight — piggyback.
        w.coalesced = true;
        const JobPtr& job = jit->second;
        job->waiters.push_back(w);
        if (job->in_flight && w.has_deadline) {
          // Extend an armed in-flight token to cover the new waiter (a
          // disarmed token — some waiter without a deadline — stays so).
          const auto need = w.deadline - Clock::now();
          if (job->token.remaining() < need) {
            job->token.set_deadline_after(
                std::chrono::duration_cast<std::chrono::nanoseconds>(need));
          }
        }
      } else if (queue_.size() >= opts_.queue_limit) {
        // Admission control: shed with a service-time-derived retry hint
        // instead of growing the queue without bound.
        const double p50 = stats_.p50_plan_ms(opts_.retry_fallback_ms);
        const double retry =
            p50 * static_cast<double>(queue_.size() + in_flight_ + 1);
        stats_.on_shed();
        responses.push_back(error_response(req.id, ErrorCode::kShed,
                                           "admission queue full", retry));
      } else {
        auto job = std::make_shared<Job>();
        job->solve_key = skey;
        job->context_key = ckey;
        job->plan = req.plan;
        job->waiters.push_back(w);
        jobs_by_key_[skey] = job;
        queue_.push_back(std::move(job));
        work_cv_.notify_one();
      }
    }
  }
  for (const auto& r : responses) emit_(r);
}

void PlanService::handle_stats(const Request& req) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    depth = queue_.size() + in_flight_;
  }
  const auto cache_stats = shared_cache_->stats();
  const std::string obj = ServeStats::to_json_object(stats_.snapshot(), depth,
                                                     cache_stats.hit_rate());
  std::string out = "{\"id\":\"" + json_escape(req.id) +
                    "\",\"code\":\"OK\",\"stats\":" + obj + "}";
  emit_(out);
}

void PlanService::handle_delta(const Request& req) {
  std::vector<std::string> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    const std::string ckey = context_key(req.delta.topology, req.delta.nodes,
                                         req.delta.bandwidth_gbps);
    const Bandwidth b_ref(req.delta.bandwidth_gbps / 8.0);
    Context& ctx =
        ensure_context_locked(req.delta.topology, req.delta.nodes, b_ref, ckey);
    const std::uint64_t old_fp =
        flow::theta_context_fingerprint(ctx.graph, ctx.b_ref, opts_.theta);
    topo::DeltaResult result;
    try {
      result = topo::apply_delta(ctx.graph, req.delta.delta);
    } catch (const std::exception& e) {
      stats_.on_invalid();
      responses.push_back(
          error_response(req.id, ErrorCode::kInvalidRequest, e.what()));
      lk.unlock();
      for (const auto& r : responses) emit_(r);
      return;
    }
    const std::uint64_t new_fp =
        flow::theta_context_fingerprint(ctx.graph, ctx.b_ref, opts_.theta);
    const std::uint64_t wire_epoch = result.epoch - ctx.base_epoch;
    // PR-6 survival rule at the θ layer: entries whose routed support
    // provably avoids every touched edge follow the graph to its new
    // context fingerprint; the rest are left behind to age out.
    const auto carry = shared_cache_->carry_across_delta(
        old_fp, new_fp, result.touched, result.relaxing);

    // The plan memo is NOT erased: its now-stale entries are exactly what
    // the degradation ladder serves to tight-deadline requests. Refresh
    // them asynchronously instead.
    std::size_t stale = 0;
    std::size_t replans = 0;
    for (const auto& [key, entry] : memo_) {
      if (key.compare(0, ckey.size() + 1, ckey + "/") != 0) continue;
      if (entry.epoch >= wire_epoch) continue;
      ++stale;
      if (!opts_.replan_on_delta || shutting_down_) continue;
      if (jobs_by_key_.count(key) != 0) continue;  // already being solved
      if (queue_.size() >= opts_.queue_limit) continue;  // plans outrank
      auto job = std::make_shared<Job>();
      job->solve_key = key;
      job->context_key = ckey;
      job->plan = entry.plan;
      job->internal = true;
      jobs_by_key_[key] = job;
      queue_.push_back(std::move(job));
      ++replans;
    }
    if (replans > 0) work_cv_.notify_all();
    stats_.on_delta();

    JsonWriter w;
    w.begin_object();
    w.key("id").value(req.id);
    w.key("code").value(to_string(ErrorCode::kOk));
    w.key("epoch").value(static_cast<std::int64_t>(wire_epoch));
    w.key("touched").value(static_cast<std::int64_t>(result.touched.size()));
    w.key("relaxing").value(result.relaxing);
    w.key("theta_examined").value(static_cast<std::int64_t>(carry.examined));
    w.key("theta_carried").value(static_cast<std::int64_t>(carry.survived));
    w.key("theta_invalidated")
        .value(static_cast<std::int64_t>(carry.invalidated));
    w.key("memo_stale").value(static_cast<std::int64_t>(stale));
    w.key("replans_enqueued").value(static_cast<std::int64_t>(replans));
    w.end_object();
    responses.push_back(w.str());
  }
  for (const auto& r : responses) emit_(r);
}

PlanAnswer PlanService::solve_plan(topo::Graph graph, const PlanFields& plan,
                                   const util::CancellationToken* token) const {
  flow::ThetaOptions theta = opts_.theta;
  theta.shared_cache = shared_cache_;
  theta.cancel = token;
  // Planner-internal parallelism off: the service's own workers provide
  // the concurrency, and a serial plan keeps each job's cost attributable.
  core::Planner planner(std::move(graph), plan.params, theta,
                        core::PlannerOptions{.parallel = false});
  const workload::CollectiveRequest request{plan.collective.kind, plan.message,
                                            "serve"};
  PlanAnswer a;
  workload::MaterializeOptions mat;
  mat.allreduce = plan.collective.allreduce;
  mat.alltoall = plan.collective.alltoall;
  const bool wants_auto =
      (plan.collective.kind == workload::CollectiveKind::kAllReduce &&
       mat.allreduce == workload::AllReduceAlgo::kAuto) ||
      (plan.collective.kind == workload::CollectiveKind::kAllToAll &&
       mat.alltoall == workload::AllToAllAlgo::kAuto);
  if (wants_auto) {
    // Size-adaptive selection rides the same cancellable oracle as the plan
    // solve, so a deadline cancels the candidate sweep too.
    const auto sel = core::select_algorithm(planner, request, mat);
    a.chosen_algo = sel.chosen.algo;
    mat.allreduce = sel.chosen.allreduce;
    mat.alltoall = sel.chosen.alltoall;
  }
  const auto schedule = workload::materialize(request, plan.nodes, mat);
  const auto result = planner.plan(schedule);
  a.steps = schedule.num_steps();
  a.optimal_ns = result.optimal.total_time().ns();
  a.static_ns = result.static_base.total_time().ns();
  a.naive_bvn_ns = result.naive_bvn.total_time().ns();
  a.greedy_ns = result.greedy.total_time().ns();
  a.reconfigurations = result.optimal.num_reconfigurations;
  a.speedup_vs_static = result.speedup_vs_static();
  a.speedup_vs_bvn = result.speedup_vs_bvn();
  const core::ProblemInstance inst = planner.instance(schedule);
  const core::PipelinedCostModel pipelined(inst);
  const auto sweep = pipelined.best_over_chunks(result.optimal.choice);
  a.pipelined_ns = sweep.completion.ns();
  a.pipeline_chunks = sweep.chunks;
  return a;
}

void PlanService::run_worker(std::size_t slot) {
  try {
    worker_loop(slot);
  } catch (...) {
    // Crash-only recovery: whatever escaped the per-job containment kills
    // this thread alone. The watchdog notices the dead slot and respawns
    // it; the daemon never dies with the worker.
  }
  workers_[slot]->alive.store(false);
}

void PlanService::worker_loop(std::size_t /*slot*/) {
  while (true) {
    JobPtr job;
    topo::Graph snapshot;
    std::uint64_t snapshot_epoch = 0;
    std::vector<std::string> responses;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, nothing left
      job = queue_.front();
      queue_.pop_front();
      // Pre-dispatch deadline check: don't burn a solve on waiters that
      // already expired while queued.
      expire_overdue_locked(job, Clock::now(), &responses);
      if (job->waiters.empty() && !job->internal) {
        jobs_by_key_.erase(job->solve_key);
        if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
        lk.unlock();
        for (const auto& r : responses) emit_(r);
        continue;
      }
      const auto cit = contexts_.find(job->context_key);
      PSD_ASSERT(cit != contexts_.end(), "job's topology context vanished");
      snapshot = cit->second->graph;  // jobs solve on a value snapshot
      snapshot_epoch = epoch_of(*cit->second);
      job->in_flight = true;
      ++in_flight_;
      // Arm the cooperative token with the *latest* waiter deadline (an
      // earlier waiter is expired individually by the watchdog while the
      // solve keeps going for the rest); any deadline-free waiter, or an
      // internal replan, leaves it disarmed.
      job->token.reset();
      bool all_deadlined = !job->internal;
      Clock::time_point latest = Clock::time_point::min();
      for (const auto& w : job->waiters) {
        if (!w.has_deadline) {
          all_deadlined = false;
          break;
        }
        latest = std::max(latest, w.deadline);
      }
      if (all_deadlined) {
        job->token.set_deadline_after(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                latest - Clock::now()));
      }
    }
    for (const auto& r : responses) emit_(r);
    responses.clear();

    if (job->plan.inject_worker_crash) {
      // Crash drill: answer and detach the job first so nothing dangles,
      // then die. WorkerCrash sails past the containment below by design.
      {
        const std::lock_guard<std::mutex> lk(mu_);
        stats_.on_internal_error();
        for (const auto& w : job->waiters) {
          responses.push_back(
              error_response(w.id, ErrorCode::kInternal,
                             "worker crashed while planning (crash drill)"));
        }
        jobs_by_key_.erase(job->solve_key);
        job->in_flight = false;
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
      }
      for (const auto& r : responses) emit_(r);
      throw WorkerCrash{};
    }

    const auto start = Clock::now();
    enum class Outcome : std::uint8_t { kOk, kCancelled, kError };
    Outcome outcome = Outcome::kOk;
    PlanAnswer answer;
    std::string error_msg;
    try {
      answer = solve_plan(std::move(snapshot), job->plan, &job->token);
    } catch (const Cancelled&) {
      outcome = Outcome::kCancelled;
    } catch (const std::exception& e) {
      // Containment boundary: a solver failure costs this request, never
      // the worker.
      outcome = Outcome::kError;
      error_msg = e.what();
    }
    const double solve_ms = ms_between(start, Clock::now());

    {
      const std::lock_guard<std::mutex> lk(mu_);
      jobs_by_key_.erase(job->solve_key);
      job->in_flight = false;
      --in_flight_;
      std::uint64_t ctx_epoch = snapshot_epoch;
      if (const auto cit = contexts_.find(job->context_key);
          cit != contexts_.end()) {
        ctx_epoch = epoch_of(*cit->second);
      }
      if (outcome == Outcome::kOk) {
        memo_put_locked(job->solve_key, answer, snapshot_epoch, job->plan);
        if (job->internal) {
          stats_.on_replan();
        } else {
          stats_.on_planned();
          stats_.record_plan_latency_ms(solve_ms);
          // A delta that landed mid-solve makes this answer stale by
          // (ctx_epoch - snapshot_epoch) — report the lag, don't error.
          const std::uint64_t lag = ctx_epoch - snapshot_epoch;
          for (const auto& w : job->waiters) {
            if (w.coalesced) stats_.on_coalesced();
            if (lag > 0) stats_.on_degraded();
            responses.push_back(plan_response(w.id, answer, snapshot_epoch,
                                              lag, false, w.coalesced,
                                              solve_ms));
          }
        }
      } else if (outcome == Outcome::kCancelled) {
        for (const auto& w : job->waiters) {
          answer_expired_locked(w, job->solve_key, ctx_epoch, &responses);
        }
      } else if (!job->internal) {
        stats_.on_internal_error();
        for (const auto& w : job->waiters) {
          responses.push_back(
              error_response(w.id, ErrorCode::kInternal, error_msg));
        }
      }
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
    for (const auto& r : responses) emit_(r);
  }
}

void PlanService::watchdog_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lk, opts_.watchdog_interval,
                          [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    std::vector<std::string> responses;
    const auto now = Clock::now();
    // Expire overdue waiters of queued jobs; drop jobs nobody waits for.
    for (auto it = queue_.begin(); it != queue_.end();) {
      expire_overdue_locked(*it, now, &responses);
      if ((*it)->waiters.empty() && !(*it)->internal) {
        jobs_by_key_.erase((*it)->solve_key);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    // In-flight jobs: expire overdue waiters individually; once nobody is
    // left waiting, cancel the solve — its work benefits no one.
    for (const auto& [key, job] : jobs_by_key_) {
      if (!job->in_flight) continue;
      expire_overdue_locked(job, now, &responses);
      if (job->waiters.empty() && !job->internal) job->token.cancel();
    }
    // Crash-only worker recovery: join dead slots and respawn them.
    if (!shutting_down_) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerSlot& slot = *workers_[i];
        if (!slot.alive.load() && slot.thread.joinable()) {
          slot.thread.join();
          stats_.on_worker_restart();
          slot.alive.store(true);
          slot.thread = std::thread([this, i] { run_worker(i); });
        }
      }
    }
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    if (!responses.empty()) {
      lk.unlock();
      for (const auto& r : responses) emit_(r);
      lk.lock();
    }
  }
}

void PlanService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

bool PlanService::shutting_down() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return shutting_down_;
}

std::size_t PlanService::queue_depth() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return queue_.size() + in_flight_;
}

void PlanService::shutdown() {
  // One caller performs the joins; later/concurrent callers (e.g. the
  // destructor after a shutdown op) wait here until teardown is complete.
  const std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  if (shutdown_done_) return;
  std::vector<std::string> responses;
  {
    std::unique_lock<std::mutex> lk(mu_);
    shutting_down_ = true;
    for (const auto& job : queue_) {
      for (const auto& w : job->waiters) {
        responses.push_back(
            error_response(w.id, ErrorCode::kShuttingDown,
                           "service shut down before the request was solved"));
      }
      jobs_by_key_.erase(job->solve_key);
    }
    queue_.clear();
    work_cv_.notify_all();
    watchdog_stop_ = true;
    watchdog_cv_.notify_all();
  }
  for (const auto& r : responses) emit_(r);
  // Join the watchdog before the workers: once it is gone nothing else
  // touches the worker std::thread objects (it joins/respawns dead slots),
  // so the joins below cannot race it. In-flight solves still finish and
  // answer — their deadline tokens keep ticking without the watchdog.
  if (watchdog_.joinable()) watchdog_.join();
  for (const auto& slot : workers_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  shutdown_done_ = true;
}

}  // namespace psd::serve
