#include "psd/bvn/birkhoff.hpp"

#include <algorithm>
#include <cmath>

#include "psd/bvn/hopcroft_karp.hpp"
#include "psd/util/thread_pool.hpp"

namespace psd::bvn {

namespace {

// Below this size the per-step scans are cheaper than a pool fan-out.
constexpr int kParallelMinRows = 64;

/// Runs fn(r) for every row, on the shared pool when worthwhile. Rows
/// touch disjoint state in every caller, so pool and serial execution are
/// byte-identical; the pool merely reorders independent work.
template <typename Fn>
void for_each_row(int n, bool parallel, const Fn& fn) {
  if (parallel && n >= kParallelMinRows) {
    try {
      util::ThreadPool::shared().parallel_for(
          static_cast<std::size_t>(n),
          [&](std::size_t r) { fn(static_cast<int>(r)); });
    } catch (const util::JobError& e) {
      e.rethrow_original();  // pool and serial paths must throw identically
    }
  } else {
    for (int r = 0; r < n; ++r) fn(r);
  }
}

/// Builds the support bipartite graph of `m` (entries > tol). Row fills are
/// independent, so the scan fans out on the pool for large matrices.
BipartiteGraph support_graph(const psd::Matrix& m, double tol, bool parallel) {
  const int n = static_cast<int>(m.rows());
  BipartiteGraph g;
  g.n_left = n;
  g.n_right = n;
  g.adj.resize(static_cast<std::size_t>(n));
  for_each_row(n, parallel, [&](int r) {
    auto& row = g.adj[static_cast<std::size_t>(r)];
    for (int c = 0; c < n; ++c) {
      if (m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) > tol) {
        row.push_back(c);
      }
    }
  });
  return g;
}

}  // namespace

std::vector<BvnTerm> birkhoff_decompose(const psd::Matrix& input,
                                        const BvnOptions& opts) {
  PSD_REQUIRE(input.rows() == input.cols(), "matrix must be square");
  PSD_REQUIRE(input.is_nonnegative(opts.tol), "matrix must be non-negative");
  const int n = static_cast<int>(input.rows());
  if (!opts.allow_partial) {
    const double target = input.row_sum(0);
    PSD_REQUIRE(input.is_doubly_stochastic_scaled(target, opts.tol * n),
                "matrix must have equal row and column sums");
  }

  psd::Matrix residual = input;
  std::vector<BvnTerm> terms;

  // Incremental state: the support graph and the matching both persist
  // across extraction steps. Subtracting a term only *removes* support
  // entries (the ones driven to zero), so the support never needs a rebuild,
  // and Hopcroft–Karp only has to re-augment the pairs it lost — O(removed
  // edges) repair instead of an O(n²·√n + n²) solve per iteration.
  BipartiteGraph support = support_graph(residual, opts.tol, opts.parallel);
  std::vector<int> match_left(static_cast<std::size_t>(n), -1);
  std::vector<int> match_right(static_cast<std::size_t>(n), -1);
  MatchingAugmenter augmenter;

  // Drops (r, c) from the support adjacency and the matching together —
  // every residual-zeroing site must keep the three views consistent.
  const auto drop_support_edge = [&](int r, int c) {
    auto& nbrs = support.adj[static_cast<std::size_t>(r)];
    const auto it = std::find(nbrs.begin(), nbrs.end(), c);
    PSD_ASSERT(it != nbrs.end(), "matched edge missing from support");
    nbrs.erase(it);  // erase (not swap-pop) keeps adjacency order stable
    match_left[static_cast<std::size_t>(r)] = -1;
    match_right[static_cast<std::size_t>(c)] = -1;
  };

  // Each iteration zeroes at least one support entry, so this terminates in
  // at most n² iterations.
  for (int guard = 0; guard < n * n + 1; ++guard) {
    if (!opts.incremental && guard > 0) {
      // Reference path: rebuild everything from scratch each step.
      support = support_graph(residual, opts.tol, opts.parallel);
      std::fill(match_left.begin(), match_left.end(), -1);
      std::fill(match_right.begin(), match_right.end(), -1);
    }
    const int match_size = augmenter.augment(support, match_left, match_right);
    if (match_size == 0) break;

    // Birkhoff's theorem guarantees a *perfect* matching on the support of a
    // doubly-stochastic matrix; with allow_partial we accept maximum
    // matchings (they still strictly shrink the support).
    if (!opts.allow_partial) {
      PSD_REQUIRE(match_size == n,
                  "support admits no perfect matching: matrix is not doubly "
                  "stochastic (numerical tolerance too tight?)");
    }

    BvnTerm term;
    term.matching = topo::Matching(n);
    double weight = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      const int c = match_left[static_cast<std::size_t>(r)];
      if (c < 0) continue;
      if (r == c) continue;  // diagonal (self) demand carries no traffic
      term.matching.set(r, c);
      weight = std::min(weight,
                        residual(static_cast<std::size_t>(r), static_cast<std::size_t>(c)));
    }
    if (term.matching.active_pairs() == 0) {
      // The maximum matching covered only diagonal entries (self-traffic,
      // which the decomposition discards). Off-diagonal support may still
      // remain — e.g. support {(1,1), (2,1)} admits the diagonal-only
      // maximum matching {(1,1)} — so clear the matched diagonals out of
      // the residual, the support and the matching, and keep extracting.
      // Each pass removes at least one support entry, preserving the
      // guard bound; once the support is diagonal-free the loop proceeds
      // or terminates normally.
      for (int r = 0; r < n; ++r) {
        if (match_left[static_cast<std::size_t>(r)] != r) continue;
        residual(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) = 0.0;
        drop_support_edge(r, r);
      }
      continue;
    }
    PSD_ASSERT(std::isfinite(weight) && weight > 0.0, "matched entries must be positive");
    term.weight = weight;

    // Subtract along every matched edge — diagonal entries matched alongside
    // real pairs shrink by the same weight, under the same snap rule. An
    // entry driven below tol leaves the residual, the support and the
    // matching together, keeping all three views consistent. Each row
    // touches only its own residual cell, adjacency row and match slots
    // (matched columns are distinct), so the scan fans out on the pool with
    // byte-identical results.
    for_each_row(n, opts.parallel, [&](int r) {
      const int c = match_left[static_cast<std::size_t>(r)];
      if (c < 0) return;
      double& cell = residual(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      cell -= weight;
      // The `<= 0.0` leg matters when tol == 0: the minimum matched cell
      // lands on exactly 0.0 and must still leave the support, or the next
      // iteration would extract a zero-weight term.
      if (cell < opts.tol || cell <= 0.0) {
        cell = 0.0;
        drop_support_edge(r, c);
      }
    });
    terms.push_back(std::move(term));
  }

  PSD_ASSERT(residual.max_abs() <= std::max(1.0, input.max_abs()) * 1e-6,
             "decomposition left a non-trivial residual");
  return terms;
}

psd::Matrix recompose(const std::vector<BvnTerm>& terms, int n) {
  PSD_REQUIRE(n >= 0, "n must be non-negative");
  psd::Matrix sum(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (const auto& t : terms) {
    PSD_REQUIRE(t.matching.size() == n, "term size mismatch");
    for (const auto& [r, c] : t.matching.pairs()) {
      sum(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += t.weight;
    }
  }
  return sum;
}

psd::Matrix aggregate_demand(
    const std::vector<std::pair<double, topo::Matching>>& steps, int n) {
  PSD_REQUIRE(n >= 0, "n must be non-negative");
  psd::Matrix sum(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (const auto& [volume, matching] : steps) {
    PSD_REQUIRE(volume >= 0.0, "step volume must be non-negative");
    PSD_REQUIRE(matching.size() == n, "step matching size mismatch");
    for (const auto& [r, c] : matching.pairs()) {
      sum(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += volume;
    }
  }
  return sum;
}

}  // namespace psd::bvn
