#include "psd/bvn/birkhoff.hpp"

#include <algorithm>
#include <cmath>

#include "psd/bvn/hopcroft_karp.hpp"

namespace psd::bvn {

namespace {

/// Builds the support bipartite graph of `m` (entries > tol).
BipartiteGraph support_graph(const psd::Matrix& m, double tol) {
  const int n = static_cast<int>(m.rows());
  BipartiteGraph g;
  g.n_left = n;
  g.n_right = n;
  g.adj.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) > tol) {
        g.adj[static_cast<std::size_t>(r)].push_back(c);
      }
    }
  }
  return g;
}

}  // namespace

std::vector<BvnTerm> birkhoff_decompose(const psd::Matrix& input,
                                        const BvnOptions& opts) {
  PSD_REQUIRE(input.rows() == input.cols(), "matrix must be square");
  PSD_REQUIRE(input.is_nonnegative(opts.tol), "matrix must be non-negative");
  const int n = static_cast<int>(input.rows());
  if (!opts.allow_partial) {
    const double target = input.row_sum(0);
    PSD_REQUIRE(input.is_doubly_stochastic_scaled(target, opts.tol * n),
                "matrix must have equal row and column sums");
  }

  psd::Matrix residual = input;
  std::vector<BvnTerm> terms;

  // Each iteration zeroes at least one support entry, so this terminates in
  // at most n² iterations.
  for (int guard = 0; guard < n * n + 1; ++guard) {
    const auto support = support_graph(residual, opts.tol);
    const auto match = hopcroft_karp(support);
    if (match.size == 0) break;

    // Birkhoff's theorem guarantees a *perfect* matching on the support of a
    // doubly-stochastic matrix; with allow_partial we accept maximum
    // matchings (they still strictly shrink the support).
    if (!opts.allow_partial) {
      PSD_REQUIRE(match.size == n,
                  "support admits no perfect matching: matrix is not doubly "
                  "stochastic (numerical tolerance too tight?)");
    }

    BvnTerm term;
    term.matching = topo::Matching(n);
    double weight = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      const int c = match.match_left[static_cast<std::size_t>(r)];
      if (c < 0) continue;
      if (r == c) continue;  // diagonal (self) demand carries no traffic
      term.matching.set(r, c);
      weight = std::min(weight,
                        residual(static_cast<std::size_t>(r), static_cast<std::size_t>(c)));
    }
    if (term.matching.active_pairs() == 0) {
      // Matching covered only diagonal entries; clear them and finish.
      for (int r = 0; r < n; ++r) {
        residual(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) = 0.0;
      }
      break;
    }
    PSD_ASSERT(std::isfinite(weight) && weight > 0.0, "matched entries must be positive");
    term.weight = weight;
    for (const auto& [r, c] : term.matching.pairs()) {
      double& cell = residual(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      cell -= weight;
      if (cell < opts.tol) cell = 0.0;
    }
    // Diagonal entries matched alongside real pairs also shrink.
    for (int r = 0; r < n; ++r) {
      if (match.match_left[static_cast<std::size_t>(r)] == r) {
        double& cell = residual(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
        cell = std::max(0.0, cell - weight);
      }
    }
    terms.push_back(std::move(term));
  }

  PSD_ASSERT(residual.max_abs() <= std::max(1.0, input.max_abs()) * 1e-6,
             "decomposition left a non-trivial residual");
  return terms;
}

psd::Matrix recompose(const std::vector<BvnTerm>& terms, int n) {
  PSD_REQUIRE(n >= 0, "n must be non-negative");
  psd::Matrix sum(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (const auto& t : terms) {
    PSD_REQUIRE(t.matching.size() == n, "term size mismatch");
    for (const auto& [r, c] : t.matching.pairs()) {
      sum(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += t.weight;
    }
  }
  return sum;
}

psd::Matrix aggregate_demand(
    const std::vector<std::pair<double, topo::Matching>>& steps, int n) {
  PSD_REQUIRE(n >= 0, "n must be non-negative");
  psd::Matrix sum(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (const auto& [volume, matching] : steps) {
    PSD_REQUIRE(volume >= 0.0, "step volume must be non-negative");
    PSD_REQUIRE(matching.size() == n, "step matching size mismatch");
    for (const auto& [r, c] : matching.pairs()) {
      sum(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += volume;
    }
  }
  return sum;
}

}  // namespace psd::bvn
