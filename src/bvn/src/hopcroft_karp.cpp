#include "psd/bvn/hopcroft_karp.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "psd/util/error.hpp"

namespace psd::bvn {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

void validate_graph(const BipartiteGraph& g) {
  PSD_REQUIRE(g.n_left >= 0 && g.n_right >= 0, "vertex counts must be non-negative");
  PSD_REQUIRE(static_cast<int>(g.adj.size()) == g.n_left,
              "adjacency must have one entry per left vertex");
  for (const auto& nbrs : g.adj) {
    for (int r : nbrs) {
      PSD_REQUIRE(r >= 0 && r < g.n_right, "right vertex out of range");
    }
  }
}

/// Cold-solve engine over a flat CSR copy of the adjacency (EdgeT = uint16_t
/// when every right vertex fits, halving the hot arrays' cache footprint).
/// The contiguous edge array keeps the BFS/DFS phases out of per-row heap
/// chasing, and a min-degree greedy initialization — left vertices in
/// ascending degree order, each matched to its lowest-degree free neighbour
/// via a branchless packed-key argmin — leaves only a handful of vertices
/// for the phase loop to repair.
template <typename EdgeT>
class CsrSolver {
 public:
  int solve(const BipartiteGraph& g, std::vector<int>& ml, std::vector<int>& mr) {
    const int nl = g.n_left;
    const int nr = g.n_right;
    off_.resize(static_cast<std::size_t>(nl) + 1);
    std::size_t edges = 0;
    for (int l = 0; l < nl; ++l) {
      off_[static_cast<std::size_t>(l)] = static_cast<int>(edges);
      edges += g.adj[static_cast<std::size_t>(l)].size();
    }
    off_[static_cast<std::size_t>(nl)] = static_cast<int>(edges);
    dst_.resize(edges);
    rdeg_.assign(static_cast<std::size_t>(nr), 0);
    int max_deg = 0;
    for (int l = 0; l < nl; ++l) {
      const auto& nbrs = g.adj[static_cast<std::size_t>(l)];
      EdgeT* out = dst_.data() + off_[static_cast<std::size_t>(l)];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int r = nbrs[i];
        out[i] = static_cast<EdgeT>(r);
        ++rdeg_[static_cast<std::size_t>(r)];
      }
      max_deg = std::max(max_deg, static_cast<int>(nbrs.size()));
    }

    // Counting sort of left vertices by ascending degree (stable).
    cnt_.assign(static_cast<std::size_t>(max_deg) + 1, 0);
    for (int l = 0; l < nl; ++l) {
      ++cnt_[static_cast<std::size_t>(off_[l + 1] - off_[l])];
    }
    int run = 0;
    for (int d = 0; d <= max_deg; ++d) {
      const int c = cnt_[static_cast<std::size_t>(d)];
      cnt_[static_cast<std::size_t>(d)] = run;
      run += c;
    }
    order_.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
      order_[static_cast<std::size_t>(cnt_[static_cast<std::size_t>(off_[l + 1] - off_[l])]++)] = l;
    }

    // Greedy pass. The packed key (matched | degree | vertex) turns the
    // min-degree-free-neighbour choice into a branch-free running minimum;
    // the data-dependent branches this replaces mispredict ~50% and used to
    // dominate the whole solve. Left vertices already matched by a
    // warm-start seed are counted and skipped (never taken in a cold solve,
    // where each left vertex is still free when its turn comes).
    constexpr std::int64_t kMatchedBit = std::int64_t{1} << 62;
    int size = 0;
    for (int oi = 0; oi < nl; ++oi) {
      const int l = order_[static_cast<std::size_t>(oi)];
      if (ml[static_cast<std::size_t>(l)] != -1) {
        ++size;
        continue;
      }
      std::int64_t best_key = std::numeric_limits<std::int64_t>::max();
      const int end = off_[l + 1];
      for (int i = off_[l]; i < end; ++i) {
        const int r = static_cast<int>(dst_[static_cast<std::size_t>(i)]);
        const std::int64_t key =
            (std::int64_t{mr[static_cast<std::size_t>(r)] != -1} << 62) |
            (static_cast<std::int64_t>(rdeg_[static_cast<std::size_t>(r)]) << 31) | r;
        best_key = key < best_key ? key : best_key;
      }
      if (best_key < kMatchedBit) {
        const int best = static_cast<int>(best_key & 0x7FFFFFFF);
        ml[static_cast<std::size_t>(l)] = best;
        mr[static_cast<std::size_t>(best)] = l;
        ++size;
      }
    }

    dist_.resize(static_cast<std::size_t>(nl));
    queue_.resize(static_cast<std::size_t>(nl));
    cursor_.resize(static_cast<std::size_t>(nl));
    while (size < std::min(nl, nr) && bfs(ml, mr)) {
      std::memcpy(cursor_.data(), off_.data(), sizeof(int) * static_cast<std::size_t>(nl));
      for (int l = 0; l < nl; ++l) {
        if (ml[static_cast<std::size_t>(l)] == -1 && dfs(l, ml, mr)) ++size;
      }
    }
    return size;
  }

 private:
  bool bfs(const std::vector<int>& ml, const std::vector<int>& mr) {
    const int nl = static_cast<int>(ml.size());
    int tail = 0;
    for (int l = 0; l < nl; ++l) {
      if (ml[static_cast<std::size_t>(l)] == -1) {
        dist_[static_cast<std::size_t>(l)] = 0;
        queue_[static_cast<std::size_t>(tail++)] = l;
      } else {
        dist_[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found = false;
    int found_layer = kInf;
    for (int head = 0; head < tail; ++head) {
      const int l = queue_[static_cast<std::size_t>(head)];
      const int dl = dist_[static_cast<std::size_t>(l)];
      if (dl >= found_layer) break;  // deeper layers cannot host shortest paths
      for (int i = off_[l]; i < off_[l + 1]; ++i) {
        const int l2 = mr[static_cast<std::size_t>(dst_[static_cast<std::size_t>(i)])];
        if (l2 == -1) {
          found = true;
          found_layer = dl;
        } else if (dist_[static_cast<std::size_t>(l2)] == kInf) {
          dist_[static_cast<std::size_t>(l2)] = dl + 1;
          queue_[static_cast<std::size_t>(tail++)] = l2;
        }
      }
    }
    return found;
  }

  bool dfs(int l, std::vector<int>& ml, std::vector<int>& mr) {
    const int end = off_[l + 1];
    // cursor_ advances monotonically within a phase so each edge is
    // inspected at most once per phase (the classic O(E)-per-phase trick).
    for (int& i = cursor_[static_cast<std::size_t>(l)]; i < end; ++i) {
      const int r = static_cast<int>(dst_[static_cast<std::size_t>(i)]);
      const int l2 = mr[static_cast<std::size_t>(r)];
      if (l2 == -1 || (dist_[static_cast<std::size_t>(l2)] ==
                           dist_[static_cast<std::size_t>(l)] + 1 &&
                       dfs(l2, ml, mr))) {
        ml[static_cast<std::size_t>(l)] = r;
        mr[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist_[static_cast<std::size_t>(l)] = kInf;
    return false;
  }

  std::vector<int> off_, rdeg_, cnt_, order_, dist_, queue_, cursor_;
  std::vector<EdgeT> dst_;
};

}  // namespace

/// Layered BFS from all free left vertices; returns true if an augmenting
/// path exists. dist_[l] is the BFS layer of left vertex l.
bool MatchingAugmenter::bfs_layers(const BipartiteGraph& g,
                                   const std::vector<int>& match_left,
                                   const std::vector<int>& match_right) {
  queue_.clear();
  for (int l = 0; l < g.n_left; ++l) {
    if (match_left[static_cast<std::size_t>(l)] == -1) {
      dist_[static_cast<std::size_t>(l)] = 0;
      queue_.push_back(l);
    } else {
      dist_[static_cast<std::size_t>(l)] = kInf;
    }
  }
  bool found = false;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const int l = queue_[head];
    for (int r : g.adj[static_cast<std::size_t>(l)]) {
      const int l2 = match_right[static_cast<std::size_t>(r)];
      if (l2 == -1) {
        found = true;
      } else if (dist_[static_cast<std::size_t>(l2)] == kInf) {
        dist_[static_cast<std::size_t>(l2)] = dist_[static_cast<std::size_t>(l)] + 1;
        queue_.push_back(l2);
      }
    }
  }
  return found;
}

bool MatchingAugmenter::try_augment(const BipartiteGraph& g, int l,
                                    std::vector<int>& match_left,
                                    std::vector<int>& match_right) {
  for (int r : g.adj[static_cast<std::size_t>(l)]) {
    const int l2 = match_right[static_cast<std::size_t>(r)];
    if (l2 == -1 || (dist_[static_cast<std::size_t>(l2)] ==
                         dist_[static_cast<std::size_t>(l)] + 1 &&
                     try_augment(g, l2, match_left, match_right))) {
      match_left[static_cast<std::size_t>(l)] = r;
      match_right[static_cast<std::size_t>(r)] = l;
      return true;
    }
  }
  dist_[static_cast<std::size_t>(l)] = kInf;  // dead end: prune
  return false;
}

int MatchingAugmenter::augment(const BipartiteGraph& g,
                               std::vector<int>& match_left,
                               std::vector<int>& match_right) {
  const auto nl = static_cast<std::size_t>(g.n_left);
  dist_.resize(nl);
  queue_.reserve(nl);

  int size = 0;
  for (std::size_t l = 0; l < nl; ++l) {
    if (match_left[l] >= 0) ++size;
  }

  // Greedy pass: match each free left vertex to its first free neighbour.
  // On a cold start this is exactly the first Hopcroft–Karp phase (every
  // augmenting path has length one), at a fraction of the constant cost; on
  // a warm start it repairs most single-edge losses before any BFS runs.
  for (std::size_t l = 0; l < nl; ++l) {
    if (match_left[l] != -1) continue;
    for (int r : g.adj[l]) {
      if (match_right[static_cast<std::size_t>(r)] == -1) {
        match_left[l] = r;
        match_right[static_cast<std::size_t>(r)] = static_cast<int>(l);
        ++size;
        break;
      }
    }
  }

  while (bfs_layers(g, match_left, match_right)) {
    for (int l = 0; l < g.n_left; ++l) {
      if (match_left[static_cast<std::size_t>(l)] == -1 &&
          try_augment(g, l, match_left, match_right)) {
        ++size;
      }
    }
  }
  return size;
}

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  validate_graph(g);
  MatchingResult res;
  res.match_left.assign(static_cast<std::size_t>(g.n_left), -1);
  res.match_right.assign(static_cast<std::size_t>(g.n_right), -1);
  // Scratch persists per thread so repeated solves (BvN sweeps, benches)
  // reuse warm buffers instead of faulting in fresh pages every call.
  if (g.n_right <= static_cast<int>(std::numeric_limits<std::uint16_t>::max())) {
    thread_local CsrSolver<std::uint16_t> solver;
    res.size = solver.solve(g, res.match_left, res.match_right);
  } else {
    thread_local CsrSolver<int> solver;
    res.size = solver.solve(g, res.match_left, res.match_right);
  }
  return res;
}

MatchingResult hopcroft_karp(const BipartiteGraph& g, MatchingResult init) {
  validate_graph(g);
  PSD_REQUIRE(static_cast<int>(init.match_left.size()) == g.n_left &&
                  static_cast<int>(init.match_right.size()) == g.n_right,
              "warm-start matching sized to a different graph");
  for (int l = 0; l < g.n_left; ++l) {
    const int r = init.match_left[static_cast<std::size_t>(l)];
    if (r == -1) continue;
    PSD_REQUIRE(r >= 0 && r < g.n_right, "warm-start match out of range");
    PSD_REQUIRE(init.match_right[static_cast<std::size_t>(r)] == l,
                "warm-start matching not mutually consistent");
    const auto& nbrs = g.adj[static_cast<std::size_t>(l)];
    PSD_REQUIRE(std::find(nbrs.begin(), nbrs.end(), r) != nbrs.end(),
                "warm-start matching uses an edge absent from the graph");
  }
  for (int r = 0; r < g.n_right; ++r) {
    const int l = init.match_right[static_cast<std::size_t>(r)];
    if (l == -1) continue;
    PSD_REQUIRE(l >= 0 && l < g.n_left &&
                    init.match_left[static_cast<std::size_t>(l)] == r,
                "warm-start matching not mutually consistent");
  }
  // Same CSR engine as the cold solve, seeded with the validated matching:
  // the flat edge array and layered phases repair the deficit without the
  // ragged vector-of-vectors BFS passes that used to make this overload
  // *slower* than a cold solve at n = 2048 (the greedy pass skips matched
  // left vertices, so a near-complete seed leaves only the damaged
  // vertices for the phase loop).
  if (g.n_right <= static_cast<int>(std::numeric_limits<std::uint16_t>::max())) {
    thread_local CsrSolver<std::uint16_t> solver;
    init.size = solver.solve(g, init.match_left, init.match_right);
  } else {
    thread_local CsrSolver<int> solver;
    init.size = solver.solve(g, init.match_left, init.match_right);
  }
  return init;
}

}  // namespace psd::bvn
