#include "psd/bvn/hopcroft_karp.hpp"

#include <limits>
#include <queue>

#include "psd/util/error.hpp"

namespace psd::bvn {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

/// Layered BFS from all free left vertices; returns true if an augmenting
/// path exists. dist[l] is the BFS layer of left vertex l.
bool bfs_layers(const BipartiteGraph& g, const std::vector<int>& match_left,
                const std::vector<int>& match_right, std::vector<int>& dist) {
  std::queue<int> q;
  for (int l = 0; l < g.n_left; ++l) {
    if (match_left[static_cast<std::size_t>(l)] == -1) {
      dist[static_cast<std::size_t>(l)] = 0;
      q.push(l);
    } else {
      dist[static_cast<std::size_t>(l)] = kInf;
    }
  }
  bool found = false;
  while (!q.empty()) {
    const int l = q.front();
    q.pop();
    for (int r : g.adj[static_cast<std::size_t>(l)]) {
      const int l2 = match_right[static_cast<std::size_t>(r)];
      if (l2 == -1) {
        found = true;
      } else if (dist[static_cast<std::size_t>(l2)] == kInf) {
        dist[static_cast<std::size_t>(l2)] = dist[static_cast<std::size_t>(l)] + 1;
        q.push(l2);
      }
    }
  }
  return found;
}

bool try_augment(const BipartiteGraph& g, int l, std::vector<int>& match_left,
                 std::vector<int>& match_right, std::vector<int>& dist) {
  for (int r : g.adj[static_cast<std::size_t>(l)]) {
    const int l2 = match_right[static_cast<std::size_t>(r)];
    if (l2 == -1 || (dist[static_cast<std::size_t>(l2)] ==
                         dist[static_cast<std::size_t>(l)] + 1 &&
                     try_augment(g, l2, match_left, match_right, dist))) {
      match_left[static_cast<std::size_t>(l)] = r;
      match_right[static_cast<std::size_t>(r)] = l;
      return true;
    }
  }
  dist[static_cast<std::size_t>(l)] = kInf;  // dead end: prune
  return false;
}

}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  PSD_REQUIRE(g.n_left >= 0 && g.n_right >= 0, "vertex counts must be non-negative");
  PSD_REQUIRE(static_cast<int>(g.adj.size()) == g.n_left,
              "adjacency must have one entry per left vertex");
  for (const auto& nbrs : g.adj) {
    for (int r : nbrs) {
      PSD_REQUIRE(r >= 0 && r < g.n_right, "right vertex out of range");
    }
  }

  MatchingResult res;
  res.match_left.assign(static_cast<std::size_t>(g.n_left), -1);
  res.match_right.assign(static_cast<std::size_t>(g.n_right), -1);
  std::vector<int> dist(static_cast<std::size_t>(g.n_left), kInf);

  while (bfs_layers(g, res.match_left, res.match_right, dist)) {
    for (int l = 0; l < g.n_left; ++l) {
      if (res.match_left[static_cast<std::size_t>(l)] == -1 &&
          try_augment(g, l, res.match_left, res.match_right, dist)) {
        ++res.size;
      }
    }
  }
  return res;
}

}  // namespace psd::bvn
