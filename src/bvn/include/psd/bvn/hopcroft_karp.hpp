// Hopcroft–Karp maximum bipartite matching in O(E·sqrt(V)).
//
// Substrate for Birkhoff's algorithm: each extraction step needs a perfect
// matching on the support of the remaining doubly-stochastic matrix.
#pragma once

#include <vector>

namespace psd::bvn {

/// Bipartite graph with `n_left` left and `n_right` right vertices;
/// adj[l] lists the right vertices adjacent to left vertex l.
struct BipartiteGraph {
  int n_left = 0;
  int n_right = 0;
  std::vector<std::vector<int>> adj;
};

/// Result: match_left[l] = matched right vertex or -1; match_right mirrors.
struct MatchingResult {
  int size = 0;
  std::vector<int> match_left;
  std::vector<int> match_right;
};

/// Computes a maximum matching.
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& g);

}  // namespace psd::bvn
