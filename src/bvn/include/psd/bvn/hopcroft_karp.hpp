// Hopcroft–Karp maximum bipartite matching in O(E·sqrt(V)).
//
// Substrate for Birkhoff's algorithm: each extraction step needs a perfect
// matching on the support of the remaining doubly-stochastic matrix. The
// incremental decomposition warm-starts from the previous step's matching —
// only the entries zeroed by the extraction leave the support, so restoring
// maximality costs a handful of augmenting paths instead of a full solve.
#pragma once

#include <vector>

namespace psd::bvn {

/// Bipartite graph with `n_left` left and `n_right` right vertices;
/// adj[l] lists the right vertices adjacent to left vertex l.
struct BipartiteGraph {
  int n_left = 0;
  int n_right = 0;
  std::vector<std::vector<int>> adj;
};

/// Result: match_left[l] = matched right vertex or -1; match_right mirrors.
struct MatchingResult {
  int size = 0;
  std::vector<int> match_left;
  std::vector<int> match_right;
};

/// Computes a maximum matching from scratch.
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& g);

/// Warm start: augments `init` — a consistent partial matching of `g` — to a
/// maximum matching. Equivalent to the cold solve in result size, but costs
/// only the augmenting paths missing from `init`.
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& g,
                                           MatchingResult init);

/// Reusable augmentation engine. Owns the BFS/DFS scratch buffers so
/// repeated solves over a shrinking graph (the Birkhoff inner loop) perform
/// no per-call allocations once warmed up.
///
/// `augment` trusts its input: `match_left`/`match_right` must be mutually
/// consistent, sized to the graph, and every matched edge must exist in
/// `g.adj` (the public `hopcroft_karp` wrappers validate; this hot path does
/// not). Returns the size of the resulting maximum matching.
class MatchingAugmenter {
 public:
  int augment(const BipartiteGraph& g, std::vector<int>& match_left,
              std::vector<int>& match_right);

 private:
  bool bfs_layers(const BipartiteGraph& g, const std::vector<int>& match_left,
                  const std::vector<int>& match_right);
  bool try_augment(const BipartiteGraph& g, int l, std::vector<int>& match_left,
                   std::vector<int>& match_right);

  std::vector<int> dist_;   // BFS layer of each left vertex
  std::vector<int> queue_;  // flat FIFO for the layered BFS
};

}  // namespace psd::bvn
