// Birkhoff–von Neumann decomposition.
//
// Every matrix with equal row and column sums (a scaled doubly-stochastic
// matrix) is a convex combination of permutation matrices (Birkhoff 1946).
// Birkhoff's constructive algorithm repeatedly finds a perfect matching on
// the support of the residual matrix and subtracts the minimum entry along
// it, producing at most (n-1)² + 1 terms.
//
// This is the paper's Observation 1 in reverse: collective algorithms
// *induce* BvN decompositions of their aggregate demand (psd::collective
// produces those directly); this module goes the other way, decomposing an
// arbitrary demand matrix into a naive per-step reconfiguration schedule —
// the "BvN schedule" baseline of Figure 1.
#pragma once

#include <vector>

#include "psd/topo/matching.hpp"
#include "psd/util/matrix.hpp"

namespace psd::bvn {

/// One term of a decomposition: `weight` times the permutation `matching`.
struct BvnTerm {
  double weight = 0.0;
  topo::Matching matching;
};

struct BvnOptions {
  double tol = 1e-9;      // entries below tol are treated as zero
  bool allow_partial = true;  // accept sub-doubly-stochastic inputs, producing
                              // sub-permutation terms (zero rows/cols allowed)
  // Maintain the support graph and matching across extraction steps (only
  // entries zeroed by a step leave the support, and Hopcroft–Karp restarts
  // from the surviving matching) instead of rebuilding both from scratch
  // every iteration. `false` selects the reference full-rebuild path, kept
  // for differential testing; both paths satisfy recompose(terms) == m and
  // the same term-count bound, and coincide exactly whenever the extracted
  // matchings are forced (e.g. rotation mixtures).
  bool incremental = true;
  // Fan the per-extraction support maintenance — the residual-subtract +
  // support-drop scan, and the initial support build — out over
  // util::ThreadPool::shared(), partitioned by rows. Rows of a matching
  // touch disjoint state (residual cells, adjacency rows, match slots), so
  // the decomposition is byte-identical to the serial scan (asserted in
  // tests, same pattern as the parallel planner); this toggles an execution
  // strategy, not the algorithm. Engaged for n >= 64 only — below that the
  // scan is cheaper than the fan-out.
  bool parallel = true;
};

/// Decomposes `m` into weighted (sub-)permutations summing back to `m`.
/// Requires a square non-negative matrix. For allow_partial == false the
/// matrix must have all row/col sums equal (within tol·n), else throws.
[[nodiscard]] std::vector<BvnTerm> birkhoff_decompose(const psd::Matrix& m,
                                                      const BvnOptions& opts = {});

/// Reconstructs Σ weight_i · P_i (for testing round-trips).
[[nodiscard]] psd::Matrix recompose(const std::vector<BvnTerm>& terms, int n);

/// Aggregate demand matrix M = Σ m_i · M_i of a step sequence — the paper's
/// Eq. (1) / Observation 1.
[[nodiscard]] psd::Matrix aggregate_demand(
    const std::vector<std::pair<double, topo::Matching>>& steps, int n);

}  // namespace psd::bvn
