// Golden equivalence of the sparse FlowAssignment against the pre-refactor
// dense K×E flow representation: the in-test reference solvers below
// re-implement the *original* dense algorithms verbatim (interval fill for
// the ring closed form, a fresh full Dijkstra per push for Garg–Könemann),
// and the sparse results must densify to bitwise-identical matrices.
#include "psd/flow/commodity.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/shortest_path.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(FlowAssignment, BuildAccessorsAndDensify) {
  FlowAssignment fa;
  fa.reset(4);
  fa.begin_commodity();
  fa.push(1, 0.5);
  fa.push(3, 0.25);
  fa.begin_commodity();  // empty commodity
  fa.begin_commodity();
  fa.push(0, 1.0);

  ASSERT_EQ(fa.num_commodities(), 3u);
  EXPECT_EQ(fa.num_edges(), 4);
  EXPECT_EQ(fa.num_entries(), 3u);
  EXPECT_FALSE(fa.empty());

  ASSERT_EQ(fa.edges(0).size(), 2u);
  EXPECT_EQ(fa.edges(0)[0], 1);
  EXPECT_EQ(fa.rates(0)[1], 0.25);
  EXPECT_EQ(fa.edges(1).size(), 0u);
  EXPECT_EQ(fa.at(0, 3), 0.25);
  EXPECT_EQ(fa.at(0, 2), 0.0);
  EXPECT_EQ(fa.at(2, 0), 1.0);

  const auto dense = fa.densify();
  ASSERT_EQ(dense.size(), 3u);
  EXPECT_EQ(dense[0][1], 0.5);
  EXPECT_EQ(dense[0][3], 0.25);
  EXPECT_EQ(dense[1][2], 0.0);
  EXPECT_EQ(dense[2][0], 1.0);
}

TEST(FlowAssignment, MergeDuplicatesSumsChronologically) {
  FlowAssignment fa;
  fa.reset(3);
  fa.begin_commodity();
  fa.push(2, 1.0);
  fa.push(0, 0.5);
  fa.push(2, 0.25);
  fa.push(2, 0.125);
  fa.begin_commodity();
  fa.push(2, 3.0);
  fa.merge_duplicates();

  ASSERT_EQ(fa.num_entries(), 3u);
  EXPECT_EQ(fa.at(0, 2), 1.0 + 0.25 + 0.125);
  EXPECT_EQ(fa.at(0, 0), 0.5);
  EXPECT_EQ(fa.at(1, 2), 3.0);
}

TEST(FlowAssignment, ScaleAndEdgeLoads) {
  FlowAssignment fa;
  fa.reset(2);
  fa.begin_commodity();
  fa.push(0, 1.0);
  fa.begin_commodity();
  fa.push(0, 2.0);
  fa.push(1, 4.0);
  fa.scale(0.5);

  const auto& loads = fa.edge_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 1.5);
  EXPECT_DOUBLE_EQ(loads[1], 2.0);
  // scale invalidates the cached loads
  fa.scale(2.0);
  EXPECT_DOUBLE_EQ(fa.edge_loads()[0], 3.0);
}

TEST(FlowAssignment, EdgeLoadsMatchDensifyColumnSums) {
  const auto g = topo::directed_ring(12, gbps(800));
  psd::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = rng.permutation(12);
    Matching m(12);
    for (int j = 0; j < 12; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) m.set(j, perm[static_cast<std::size_t>(j)]);
    }
    if (m.active_pairs() == 0) continue;
    const auto res = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(res.has_value());
    const auto dense = res->flow.densify();
    const auto& loads = res->flow.edge_loads();
    for (int e = 0; e < g.num_edges(); ++e) {
      double col = 0.0;
      for (const auto& row : dense) col += row[static_cast<std::size_t>(e)];
      EXPECT_NEAR(loads[static_cast<std::size_t>(e)], col, 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-refactor dense reference solvers.

/// The original ring closed form: dense K×E matrix, interval fill.
std::vector<std::vector<double>> dense_ring_reference(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    double* theta_out) {
  std::vector<int> pos;
  EXPECT_TRUE(topo::is_directed_ring(g, &pos));
  const int n = g.num_nodes();
  const auto caps = normalized_capacities(g, gbps(800));
  std::vector<int> node_at(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) node_at[static_cast<std::size_t>(pos[static_cast<std::size_t>(v)])] = v;
  std::vector<topo::EdgeId> ring_edge(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ring_edge[static_cast<std::size_t>(i)] = g.out_edges(node_at[static_cast<std::size_t>(i)]).front();
  }
  std::vector<double> diff(static_cast<std::size_t>(n) + 1, 0.0);
  for (const auto& c : commodities) {
    const int a = pos[static_cast<std::size_t>(c.src)];
    const int b = pos[static_cast<std::size_t>(c.dst)];
    if (a < b) {
      diff[static_cast<std::size_t>(a)] += c.demand;
      diff[static_cast<std::size_t>(b)] -= c.demand;
    } else {
      diff[static_cast<std::size_t>(a)] += c.demand;
      diff[static_cast<std::size_t>(n)] -= c.demand;
      diff[0] += c.demand;
      diff[static_cast<std::size_t>(b)] -= c.demand;
    }
  }
  double theta = std::numeric_limits<double>::infinity();
  double load = 0.0;
  for (int i = 0; i < n; ++i) {
    load += diff[static_cast<std::size_t>(i)];
    if (load > 1e-12) {
      theta = std::min(theta, caps[static_cast<std::size_t>(ring_edge[static_cast<std::size_t>(i)])] / load);
    }
  }
  *theta_out = theta;
  std::vector<std::vector<double>> flow(
      commodities.size(),
      std::vector<double>(static_cast<std::size_t>(g.num_edges()), 0.0));
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& c = commodities[k];
    const double f = theta * c.demand;
    int i = pos[static_cast<std::size_t>(c.src)];
    const int end = pos[static_cast<std::size_t>(c.dst)];
    while (i != end) {
      flow[k][static_cast<std::size_t>(ring_edge[static_cast<std::size_t>(i)])] = f;
      i = (i + 1) % n;
    }
  }
  return flow;
}

/// The original Garg–Könemann: dense K×E accumulation, a fresh full
/// topo::dijkstra before every push, commodity-major load aggregation.
std::vector<std::vector<double>> dense_gk_reference(
    const topo::Graph& g, const std::vector<Commodity>& commodities,
    double epsilon, double* theta_out) {
  const std::size_t K = commodities.size();
  const std::size_t E = static_cast<std::size_t>(g.num_edges());
  const auto caps = normalized_capacities(g, gbps(800));
  const double eps = epsilon;
  const double delta = std::pow(static_cast<double>(E) / (1.0 - eps), -1.0 / eps);
  std::vector<double> length(E);
  for (std::size_t e = 0; e < E; ++e) length[e] = delta / caps[e];
  double dual_volume = static_cast<double>(E) * delta;
  std::vector<std::vector<double>> flow(K, std::vector<double>(E, 0.0));
  std::vector<double> shipped(K, 0.0);
  while (dual_volume < 1.0) {
    for (std::size_t k = 0; k < K && dual_volume < 1.0; ++k) {
      const auto& c = commodities[k];
      double remaining = c.demand;
      while (remaining > 1e-15 && dual_volume < 1.0) {
        const auto dj = topo::dijkstra(g, c.src, length);
        const auto path = topo::extract_path(g, dj, c.src, c.dst);
        double bottleneck = std::numeric_limits<double>::infinity();
        for (topo::EdgeId e : path) {
          bottleneck = std::min(bottleneck, caps[static_cast<std::size_t>(e)]);
        }
        const double f = std::min(remaining, bottleneck);
        for (topo::EdgeId e : path) {
          const auto ei = static_cast<std::size_t>(e);
          flow[k][ei] += f;
          const double old_len = length[ei];
          length[ei] = old_len * (1.0 + eps * f / caps[ei]);
          dual_volume += caps[ei] * (length[ei] - old_len);
        }
        shipped[k] += f;
        remaining -= f;
      }
    }
  }
  std::vector<double> load(E, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t e = 0; e < E; ++e) load[e] += flow[k][e];
  }
  double violation = 0.0;
  for (std::size_t e = 0; e < E; ++e) {
    violation = std::max(violation, load[e] / caps[e]);
  }
  const double inv = 1.0 / violation;
  double theta = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < K; ++k) {
    for (double& v : flow[k]) v *= inv;
    theta = std::min(theta, shipped[k] * inv / commodities[k].demand);
  }
  *theta_out = theta;
  return flow;
}

TEST(FlowAssignmentGolden, RingDensifiesToPreRefactorDenseFlows) {
  psd::Rng rng(2024);
  const int n = 16;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = rng.permutation(n);
    Matching m(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) m.set(j, perm[static_cast<std::size_t>(j)]);
    }
    if (m.active_pairs() == 0) continue;
    const auto commodities = commodities_from_matching(m);
    const auto sparse = ring_concurrent_flow(g, commodities, gbps(800));
    ASSERT_TRUE(sparse.has_value());
    double ref_theta = 0.0;
    const auto ref = dense_ring_reference(g, commodities, &ref_theta);
    EXPECT_EQ(sparse->theta, ref_theta);  // bitwise
    const auto dense = sparse->flow.densify();
    ASSERT_EQ(dense.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      for (std::size_t e = 0; e < ref[k].size(); ++e) {
        EXPECT_EQ(dense[k][e], ref[k][e]) << "k=" << k << " e=" << e;
      }
    }
  }
}

TEST(FlowAssignmentGolden, ColdGkDensifiesToPreRefactorDenseFlows) {
  // torus fixture: the GK path is what non-ring topologies take.
  const auto g = topo::torus_2d(4, 4, gbps(800));
  const auto m = Matching::rotation(16, 5);
  const auto commodities = commodities_from_matching(m);
  const GargKonemannOptions cold{.epsilon = 0.1, .warm_start = false};
  const auto sparse = gk_concurrent_flow(g, commodities, gbps(800), cold);
  double ref_theta = 0.0;
  const auto ref = dense_gk_reference(g, commodities, 0.1, &ref_theta);
  EXPECT_EQ(sparse.theta, ref_theta);  // bitwise
  const auto dense = sparse.flow.densify();
  ASSERT_EQ(dense.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k) {
    for (std::size_t e = 0; e < ref[k].size(); ++e) {
      EXPECT_EQ(dense[k][e], ref[k][e]) << "k=" << k << " e=" << e;
    }
  }
}

TEST(FlowAssignmentGolden, ColdGkReferenceAlsoMatchesOnRing) {
  const auto g = topo::directed_ring(12, gbps(800));
  const auto m = Matching::rotation(12, 5);
  const auto commodities = commodities_from_matching(m);
  const GargKonemannOptions cold{.epsilon = 0.05, .warm_start = false};
  const auto sparse = gk_concurrent_flow(g, commodities, gbps(800), cold);
  double ref_theta = 0.0;
  const auto ref = dense_gk_reference(g, commodities, 0.05, &ref_theta);
  EXPECT_EQ(sparse.theta, ref_theta);
  const auto dense = sparse.flow.densify();
  for (std::size_t k = 0; k < ref.size(); ++k) {
    for (std::size_t e = 0; e < ref[k].size(); ++e) {
      EXPECT_EQ(dense[k][e], ref[k][e]);
    }
  }
}

TEST(FlowAssignmentGolden, LpFlowsDensifyConsistently) {
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const auto res = exact_concurrent_flow(g, Matching::rotation(4, 1), gbps(800));
  const auto dense = res.flow.densify();
  const auto& loads = res.flow.edge_loads();
  for (int e = 0; e < g.num_edges(); ++e) {
    double col = 0.0;
    for (const auto& row : dense) col += row[static_cast<std::size_t>(e)];
    EXPECT_NEAR(loads[static_cast<std::size_t>(e)], col, 1e-12);
  }
}

}  // namespace
}  // namespace psd::flow
