// Churn engine semantics (fault/repair traces, recovery accounting,
// connectivity guard, determinism) and the sweep integration of the failure
// axes (grid expansion, scenario ids, serial == parallel reports).
#include "psd/sim/churn.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "psd/sweep/driver.hpp"
#include "psd/sweep/scenario.hpp"
#include "psd/topo/builders.hpp"

namespace psd {
namespace {

std::vector<topo::Matching> ring_workload(int n) {
  return {topo::Matching::rotation(n, 1), topo::Matching::rotation(n, 2)};
}

sim::ChurnConfig small_config(int drops, double droop, std::uint64_t seed) {
  sim::ChurnConfig cfg;
  cfg.drops = drops;
  cfg.droop = droop;
  cfg.seed = seed;
  cfg.scenario_key = "test";
  return cfg;
}

TEST(ChurnEngine, ValidatesConfig) {
  const auto g = topo::bidirectional_ring(6, gbps(800));
  EXPECT_THROW(sim::ChurnEngine(g, ring_workload(6), gbps(800),
                                small_config(0, 1.0, 1)),
               InvalidArgument);
  EXPECT_THROW(sim::ChurnEngine(g, ring_workload(6), gbps(800),
                                small_config(1, 0.0, 1)),
               InvalidArgument);
  EXPECT_THROW(sim::ChurnEngine(g, ring_workload(6), gbps(800),
                                small_config(1, 1.5, 1)),
               InvalidArgument);
  EXPECT_THROW(
      sim::ChurnEngine(g, {}, gbps(800), small_config(1, 1.0, 1)),
      InvalidArgument);
}

TEST(ChurnEngine, RunIsSingleShot) {
  sim::ChurnEngine engine(topo::bidirectional_ring(6, gbps(800)),
                          ring_workload(6), gbps(800), small_config(1, 0.5, 1));
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), InvalidArgument);
}

TEST(ChurnEngine, TraceStructureAndAggregates) {
  sim::ChurnEngine engine(topo::bidirectional_ring(6, gbps(800)),
                          ring_workload(6), gbps(800), small_config(2, 1.0, 3));
  const auto report = engine.run();

  ASSERT_EQ(report.events.size(), 4u);  // 2 faults + 2 repairs
  // EventQueue order: F0@100us, F1@200us, R0@350us, R1@450us.
  EXPECT_EQ(report.events[0].kind, sim::ChurnEventKind::kFault);
  EXPECT_EQ(report.events[1].kind, sim::ChurnEventKind::kFault);
  EXPECT_EQ(report.events[2].kind, sim::ChurnEventKind::kRepair);
  EXPECT_EQ(report.events[3].kind, sim::ChurnEventKind::kRepair);
  EXPECT_EQ(report.events[0].fault_index, 0);
  EXPECT_EQ(report.events[1].fault_index, 1);
  EXPECT_EQ(report.events[2].fault_index, 0);
  EXPECT_EQ(report.events[3].fault_index, 1);
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    EXPECT_LT(report.events[i - 1].time_ns, report.events[i].time_ns);
  }
  // A repair restores the exact link its fault hit.
  EXPECT_EQ(report.events[0].src, report.events[2].src);
  EXPECT_EQ(report.events[0].dst, report.events[2].dst);

  // Totals are exactly the event sums.
  long long solves = 0, pushes = 0, searches = 0;
  std::size_t kept = 0, erased = 0;
  for (const auto& e : report.events) {
    solves += e.replan_solves;
    pushes += e.gk_path_pushes;
    searches += e.gk_sssp_searches;
    kept += e.cache_kept;
    erased += e.cache_erased;
  }
  EXPECT_EQ(report.total_replan_solves, solves);
  EXPECT_EQ(report.total_gk_path_pushes, pushes);
  EXPECT_EQ(report.total_gk_sssp_searches, searches);
  EXPECT_EQ(report.total_cache_kept, kept);
  EXPECT_EQ(report.total_cache_erased, erased);

  EXPECT_LE(report.theta_min, report.theta_healthy);
  EXPECT_GE(report.degradation_depth(), 0.0);
  EXPECT_LE(report.degradation_depth(), 1.0);
}

// On an LP-dispatched instance (exact solver) the restricting/relaxing
// directions are sharp: faults can only lower θ, repairs only raise it, and
// a fully repaired topology lands back on the healthy θ.
TEST(ChurnEngine, FaultsDegradeAndRepairsRecoverTheta) {
  sim::ChurnEngine engine(topo::bidirectional_ring(6, gbps(800)),
                          ring_workload(6), gbps(800), small_config(2, 1.0, 5));
  const auto report = engine.run();
  for (const auto& e : report.events) {
    if (e.kind == sim::ChurnEventKind::kFault) {
      EXPECT_LE(e.theta_after, e.theta_before + 1e-12);
    } else {
      EXPECT_GE(e.theta_after, e.theta_before - 1e-12);
    }
  }
  EXPECT_TRUE(report.fully_recovered);
  EXPECT_TRUE(report.events.back().recovered);
  EXPECT_NEAR(report.events.back().theta_after, report.theta_healthy, 1e-9);
  // A cut that actually dipped θ cannot recover before its repair fires.
  if (report.degradation_depth() > 0.2) {
    EXPECT_GE(report.worst_recovery_ns, 250'000.0);
  }
}

// A cut that would disconnect the domain must degrade to the fallback droop
// instead: every fault on a directed ring disconnects it.
TEST(ChurnEngine, DisconnectingCutFallsBackToDroop) {
  sim::ChurnEngine engine(topo::directed_ring(6, gbps(800)),
                          {topo::Matching::rotation(6, 2)}, gbps(800),
                          small_config(1, 1.0, 11));
  const auto report = engine.run();
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_FALSE(report.events[0].dropped);  // degraded, not removed
  EXPECT_LT(report.theta_min, report.theta_healthy);  // the droop bites
  EXPECT_TRUE(report.fully_recovered);
}

TEST(ChurnEngine, ReportsAreDeterministicAcrossRuns) {
  const auto g = topo::torus_2d(3, 3, gbps(800));
  const std::vector<topo::Matching> workload = {
      topo::Matching::rotation(9, 1), topo::Matching::rotation(9, 4)};
  const auto cfg = small_config(3, 1.0, 42);
  sim::ChurnEngine a(g, workload, gbps(800), cfg);
  sim::ChurnEngine b(g, workload, gbps(800), cfg);
  EXPECT_EQ(a.run(), b.run());
}

TEST(ChurnEngine, GkDispatchedReportsAreDeterministicAcrossRuns) {
  auto cfg = small_config(2, 0.5, 7);
  cfg.exact_var_limit = 0;  // force the FPTAS + warm-hint path
  const auto g = topo::bidirectional_ring(8, gbps(800));
  sim::ChurnEngine a(g, ring_workload(8), gbps(800), cfg);
  sim::ChurnEngine b(g, ring_workload(8), gbps(800), cfg);
  EXPECT_EQ(a.run(), b.run());
}

TEST(ChurnEngine, SeedSelectsTheFaultStream) {
  const auto g = topo::torus_2d(3, 3, gbps(800));
  const std::vector<topo::Matching> workload = {topo::Matching::rotation(9, 1)};
  sim::ChurnEngine a(g, workload, gbps(800), small_config(1, 1.0, 1));
  sim::ChurnEngine b(g, workload, gbps(800), small_config(1, 1.0, 2));
  const auto ra = a.run();
  const auto rb = b.run();
  // Same structure either way; the victim draw is all that may differ, and
  // both runs of the same seed must reproduce it (pinned above). Distinct
  // seeds hitting distinct links is the overwhelmingly likely case but not
  // guaranteed, so assert only the structural match.
  ASSERT_EQ(ra.events.size(), rb.events.size());
  EXPECT_EQ(ra.theta_healthy, rb.theta_healthy);
}

// --- Sweep integration --------------------------------------------------

TEST(ChurnSweep, GridExpansionAndScenarioIds) {
  sweep::ScenarioGrid grid;
  grid.topologies = {sweep::TopologyKind::kBidirectionalRing};
  grid.node_counts = {8};
  grid.collectives = {{workload::CollectiveKind::kAllReduce,
                       workload::AllReduceAlgo::kHalvingDoubling,
                       workload::AllToAllAlgo::kTranspose}};
  grid.message_sizes = {bytes(1 << 20)};
  core::CostParams cost;
  cost.alpha = TimeNs(100.0);
  cost.delta = TimeNs(100.0);
  cost.alpha_r = TimeNs(10'000.0);
  cost.b = gbps(800);
  grid.cost_params = {cost};
  grid.drop_counts = {0, 1};
  grid.droops = {0.5, 1.0};
  grid.seeds = {7};
  const auto scenarios = sweep::expand(grid);
  // drops=0 collapses the droop/seed axes to one no-churn scenario.
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].churn.drops, 0);
  EXPECT_EQ(scenarios[0].id().find("/k"), std::string::npos);
  EXPECT_NE(scenarios[1].id().find("/k1/f0.5/s7"), std::string::npos);
  EXPECT_NE(scenarios[2].id().find("/k1/f1/s7"), std::string::npos);
}

TEST(ChurnSweep, ParserRejectsOrphanFailureAxes) {
  EXPECT_THROW((void)sweep::parse_grid_spec("topology = ring\n"
                                            "nodes = 8\n"
                                            "collective = allreduce:hd\n"
                                            "size = 1024\n"
                                            "droop = 0.5\n"),
               InvalidArgument);
  const auto grid = sweep::parse_grid_spec("topology = bidir-ring\n"
                                           "nodes = 8\n"
                                           "collective = allreduce:hd\n"
                                           "size = 1024\n"
                                           "drops = 1, 2\n"
                                           "droop = 0.5\n"
                                           "seed = 7\n");
  EXPECT_EQ(grid.drop_counts, (std::vector<int>{1, 2}));
  EXPECT_EQ(grid.droops, (std::vector<double>{0.5}));
  EXPECT_EQ(grid.seeds, (std::vector<std::uint64_t>{7}));
}

TEST(ChurnSweep, RowsCarryChurnReportsAndMatchSerialExecution) {
  sweep::ScenarioGrid grid;
  grid.topologies = {sweep::TopologyKind::kBidirectionalRing};
  grid.node_counts = {8};
  grid.collectives = {{workload::CollectiveKind::kAllReduce,
                       workload::AllReduceAlgo::kHalvingDoubling,
                       workload::AllToAllAlgo::kTranspose}};
  grid.message_sizes = {bytes(1 << 20)};
  core::CostParams cost;
  cost.alpha = TimeNs(100.0);
  cost.delta = TimeNs(100.0);
  cost.alpha_r = TimeNs(10'000.0);
  cost.b = gbps(800);
  grid.cost_params = {cost};
  grid.drop_counts = {0, 1};
  grid.droops = {0.5};
  grid.seeds = {7};

  sweep::SweepOptions serial;
  serial.parallel = false;
  sweep::SweepOptions parallel;
  parallel.threads = 4;
  const auto a = sweep::run_sweep(grid, serial);
  const auto b = sweep::run_sweep(grid, parallel);

  ASSERT_EQ(a.rows.size(), 2u);
  EXPECT_FALSE(a.rows[0].churn.has_value());  // the drops=0 scenario
  ASSERT_TRUE(a.rows[1].churn.has_value());
  const auto& churn = *a.rows[1].churn;
  EXPECT_GT(churn.theta_healthy, 0.0);
  EXPECT_EQ(churn.events.size(), 2u);
  EXPECT_TRUE(churn.fully_recovered);

  // Churn metrics come from a private per-scenario oracle, so the full
  // report — churn blocks included — is byte-identical across thread
  // counts (cache counters excluded: shared-cache totals may interleave).
  ASSERT_EQ(b.rows.size(), 2u);
  EXPECT_EQ(a.rows[1].churn, b.rows[1].churn);
  EXPECT_EQ(sweep::to_json(a, false), sweep::to_json(b, false));
  EXPECT_EQ(sweep::to_csv(a), sweep::to_csv(b));
  // The JSON carries the churn block for churn rows only.
  const auto json = sweep::to_json(a, false);
  EXPECT_NE(json.find("\"churn\""), std::string::npos);
  EXPECT_NE(json.find("\"worst_recovery_ns\""), std::string::npos);
}

}  // namespace
}  // namespace psd
