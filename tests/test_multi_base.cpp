#include "psd/core/multi_base.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"

namespace psd::core {
namespace {

CostParams make_params(TimeNs alpha_r) {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

TEST(MultiBase, SingletonPoolMatchesSingleBaseDp) {
  const auto ring = topo::directed_ring(16, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(16, mib(1));
  const auto params = make_params(microseconds(5));

  const MultiBaseInstance multi(sched, {&oracle}, params);
  const auto multi_plan = optimal_multi_base_plan(multi);

  const ProblemInstance single(sched, oracle, params);
  const auto single_plan = optimal_plan(single);

  EXPECT_NEAR(multi_plan.total_time().ns(), single_plan.total_time().ns(), 1e-6);
}

TEST(MultiBase, LargerPoolNeverHurts) {
  const int n = 16;
  const auto ring1 = topo::directed_ring(n, gbps(800), 1);
  const auto ring5 = topo::directed_ring(n, gbps(800), 5);
  const flow::ThetaOracle o1(ring1, gbps(800));
  const flow::ThetaOracle o5(ring5, gbps(800));
  const auto sched = collective::alltoall_transpose(n, mib(1));
  const auto params = make_params(microseconds(5));

  const MultiBaseInstance pool1(sched, {&o1}, params);
  const MultiBaseInstance pool2(sched, {&o1, &o5}, params);
  EXPECT_LE(optimal_multi_base_plan(pool2).total_time().ns(),
            optimal_multi_base_plan(pool1).total_time().ns() + 1e-6);
}

TEST(MultiBase, SecondBaseGetsUsedWhenItHelps) {
  // Rotation-by-5 traffic is 1 hop on the stride-5 ring but 5 hops on the
  // stride-1 ring; with moderate α_r the optimizer should hop bases.
  const int n = 16;
  const auto ring1 = topo::directed_ring(n, gbps(800), 1);
  const auto ring5 = topo::directed_ring(n, gbps(800), 5);
  const flow::ThetaOracle o1(ring1, gbps(800));
  const flow::ThetaOracle o5(ring5, gbps(800));

  // A long run of rotation-5 steps: worth one switch into base 1.
  std::vector<std::pair<Bytes, topo::Matching>> raw(
      6, {mib(1), topo::Matching::rotation(n, 5)});
  collective::CollectiveSchedule sched("rot5", n, mib(6), 1,
                                       collective::ChunkSpace::kSegments);
  for (const auto& [v, m] : raw) {
    collective::Step st;
    st.matching = m;
    st.volume = v;
    sched.add_step(st);
  }

  const MultiBaseInstance inst(sched, {&o1, &o5}, make_params(microseconds(10)));
  const auto plan = optimal_multi_base_plan(inst);
  int in_base1 = 0;
  for (int s : plan.state) in_base1 += (s == 1);
  EXPECT_EQ(in_base1, 6);  // all steps on the stride-5 ring
  EXPECT_EQ(plan.num_reconfigurations, 1);  // one switch from base 0
}

TEST(MultiBase, EvaluateExplicitStates) {
  const int n = 8;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(n, mib(1));
  const auto params = make_params(microseconds(2));
  const MultiBaseInstance inst(sched, {&oracle}, params);

  // All-matched: every step pays α_r (matched state always re-charges).
  std::vector<int> all_matched(static_cast<std::size_t>(inst.num_steps()),
                               inst.matched_state());
  const auto plan = evaluate_multi_base_plan(inst, all_matched);
  EXPECT_EQ(plan.num_reconfigurations, inst.num_steps());
  EXPECT_DOUBLE_EQ(plan.breakdown.reconfiguration.us(),
                   2.0 * inst.num_steps());

  // All base 0: free transitions.
  std::vector<int> all_base(static_cast<std::size_t>(inst.num_steps()), 0);
  EXPECT_EQ(evaluate_multi_base_plan(inst, all_base).num_reconfigurations, 0);
}

TEST(MultiBase, CostAccessorsMatchSingleBaseSemantics) {
  const int n = 8;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(n, mib(1));
  const auto params = make_params(microseconds(2));
  const MultiBaseInstance multi(sched, {&oracle}, params);
  const ProblemInstance single(sched, oracle, params);

  for (int i = 0; i < multi.num_steps(); ++i) {
    EXPECT_DOUBLE_EQ(multi.propagation_cost(i, 0).ns(),
                     single.propagation_cost(i, TopoChoice::kBase).ns());
    EXPECT_DOUBLE_EQ(multi.serialization_cost(i, 0).ns(),
                     single.serialization_cost(i, TopoChoice::kBase).ns());
    EXPECT_DOUBLE_EQ(multi.propagation_cost(i, multi.matched_state()).ns(),
                     single.propagation_cost(i, TopoChoice::kMatched).ns());
    EXPECT_DOUBLE_EQ(multi.serialization_cost(i, multi.matched_state()).ns(),
                     single.serialization_cost(i, TopoChoice::kMatched).ns());
  }
}

TEST(MultiBase, DpMatchesExhaustiveEnumeration) {
  // (k+1)^s enumeration over a 3-state pool on a short random-ish workload.
  const int n = 8;
  const auto ring1 = topo::directed_ring(n, gbps(800), 1);
  const auto ring3 = topo::directed_ring(n, gbps(800), 3);
  const flow::ThetaOracle o1(ring1, gbps(800));
  const flow::ThetaOracle o3(ring3, gbps(800));

  collective::CollectiveSchedule sched("mixed", n, mib(8), 1,
                                       collective::ChunkSpace::kSegments);
  const int rotations[] = {1, 3, 5, 2, 7, 3};
  for (int r : rotations) {
    collective::Step st;
    st.matching = topo::Matching::rotation(n, r);
    st.volume = mib(1);
    sched.add_step(st);
  }

  const MultiBaseInstance inst(sched, {&o1, &o3}, make_params(microseconds(12)));
  const auto dp = optimal_multi_base_plan(inst);

  const int s = inst.num_steps();
  const int states = inst.matched_state() + 1;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> assign(static_cast<std::size_t>(s), 0);
  for (long long code = 0; code < static_cast<long long>(std::pow(states, s));
       ++code) {
    long long rem = code;
    for (int i = 0; i < s; ++i) {
      assign[static_cast<std::size_t>(i)] = static_cast<int>(rem % states);
      rem /= states;
    }
    best = std::min(best,
                    evaluate_multi_base_plan(inst, assign).total_time().ns());
  }
  EXPECT_NEAR(dp.total_time().ns(), best, 1e-6);
}

TEST(MultiBase, ValidatesInput) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(8, mib(1));
  const auto params = make_params(microseconds(1));
  EXPECT_THROW(MultiBaseInstance(sched, {}, params), psd::InvalidArgument);
  EXPECT_THROW(MultiBaseInstance(sched, {nullptr}, params), psd::InvalidArgument);

  const auto small_ring = topo::directed_ring(4, gbps(800));
  const flow::ThetaOracle small_oracle(small_ring, gbps(800));
  EXPECT_THROW(MultiBaseInstance(sched, {&small_oracle}, params),
               psd::InvalidArgument);

  const MultiBaseInstance inst(sched, {&oracle}, params);
  EXPECT_THROW((void)evaluate_multi_base_plan(inst, {0}), psd::InvalidArgument);
  EXPECT_THROW((void)inst.propagation_cost(0, 5), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::core
