#include "psd/collective/chunk_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "psd/util/error.hpp"
#include "psd/util/rng.hpp"

namespace psd::collective {
namespace {

std::vector<int> as_vec(const ChunkList& cl) {
  std::vector<int> out;
  for (int c : cl) out.push_back(c);
  return out;
}

TEST(ChunkList, EmptyAndSingle) {
  const ChunkList empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.num_intervals(), 0);
  EXPECT_FALSE(empty.contains(0));
  EXPECT_EQ(as_vec(empty), std::vector<int>{});

  const auto one = ChunkList::single(7);
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.num_intervals(), 1);
  EXPECT_TRUE(one.contains(7));
  EXPECT_FALSE(one.contains(6));
  EXPECT_EQ(one.first(), 7);
  EXPECT_EQ(one.last(), 7);
}

TEST(ChunkList, RangeAndInitializerList) {
  const auto r = ChunkList::range(3, 4);  // {3,4,5,6}
  EXPECT_EQ(r.size(), 4);
  EXPECT_EQ(r.num_intervals(), 1);
  EXPECT_EQ(as_vec(r), (std::vector<int>{3, 4, 5, 6}));

  const ChunkList il{6, 3, 5, 4};  // any order
  EXPECT_EQ(il, r);

  const ChunkList gap{0, 2, 3, 9};
  EXPECT_EQ(gap.num_intervals(), 3);
  EXPECT_EQ(as_vec(gap), (std::vector<int>{0, 2, 3, 9}));
  EXPECT_TRUE(gap.contains(3));
  EXPECT_FALSE(gap.contains(4));
  EXPECT_EQ(gap.first(), 0);
  EXPECT_EQ(gap.last(), 9);
}

TEST(ChunkList, RejectsDuplicatesAndNegatives) {
  EXPECT_THROW((ChunkList{1, 1}), psd::InvalidArgument);
  EXPECT_THROW((ChunkList{-1, 2}), psd::InvalidArgument);
  EXPECT_THROW(ChunkList::from_unsorted({3, 5, 3}), psd::InvalidArgument);
}

TEST(ChunkList, AppendCoalescesAndValidatesOrder) {
  ChunkList cl;
  cl.append(0);
  cl.append(1);           // adjacent: coalesces into [0,2)
  cl.append_range(5, 2);  // {5,6}
  EXPECT_EQ(cl.num_intervals(), 2);
  EXPECT_EQ(cl.size(), 4);
  EXPECT_THROW(cl.append(6), psd::InvalidArgument);   // overlaps the back run
  EXPECT_THROW(cl.append(3), psd::InvalidArgument);   // before the back run
  EXPECT_THROW(cl.append_range(8, 0), psd::InvalidArgument);  // empty run
  cl.append(7);  // coalesces: {5,6,7}
  EXPECT_EQ(cl.num_intervals(), 2);
  EXPECT_EQ(as_vec(cl), (std::vector<int>{0, 1, 5, 6, 7}));
}

TEST(ChunkList, WrappedRange) {
  EXPECT_EQ(ChunkList::wrapped_range(1, 3, 8), (ChunkList{1, 2, 3}));
  // Window {6, 7, 0, 1} mod 8 → two runs.
  const auto w = ChunkList::wrapped_range(6, 4, 8);
  EXPECT_EQ(w.num_intervals(), 2);
  EXPECT_EQ(as_vec(w), (std::vector<int>{0, 1, 6, 7}));
  // Full circle is the whole range.
  EXPECT_EQ(ChunkList::wrapped_range(5, 8, 8), ChunkList::range(0, 8));
  EXPECT_THROW(ChunkList::wrapped_range(8, 1, 8), psd::InvalidArgument);
  EXPECT_THROW(ChunkList::wrapped_range(0, 9, 8), psd::InvalidArgument);
}

TEST(ChunkList, UnionIntersectBasics) {
  const ChunkList a{0, 1, 2, 8, 9};
  const ChunkList b{2, 3, 4, 9, 15};
  const auto u = a.union_with(b);
  EXPECT_EQ(as_vec(u), (std::vector<int>{0, 1, 2, 3, 4, 8, 9, 15}));
  const auto i = a.intersect(b);
  EXPECT_EQ(as_vec(i), (std::vector<int>{2, 9}));
  // Adjacent-but-disjoint runs coalesce in the union.
  const auto adj = ChunkList::range(0, 2).union_with(ChunkList::range(2, 2));
  EXPECT_EQ(adj.num_intervals(), 1);
  EXPECT_EQ(adj.size(), 4);
  // Union/intersection with the empty set.
  EXPECT_EQ(a.union_with(ChunkList{}), a);
  EXPECT_TRUE(a.intersect(ChunkList{}).empty());
}

TEST(ChunkList, ToVectorRoundTrip) {
  const ChunkList a{5, 0, 1, 9, 2};
  EXPECT_EQ(ChunkList::from_unsorted(a.to_vector()), a);
}

TEST(ChunkList, Rotated) {
  const ChunkList base{0, 1, 5};
  EXPECT_EQ(ChunkList::rotated(base, 0, 8), base);
  EXPECT_EQ(ChunkList::rotated(base, 2, 8), (ChunkList{2, 3, 7}));
  // 5 + 4 wraps: {4, 5, 1}.
  EXPECT_EQ(ChunkList::rotated(base, 4, 8), (ChunkList{1, 4, 5}));
  // Negative offsets normalize mod n.
  EXPECT_EQ(ChunkList::rotated(base, -3, 8), ChunkList::rotated(base, 5, 8));
  // A run straddling the wrap point splits...
  EXPECT_EQ(ChunkList::rotated(ChunkList::range(6, 2), 1, 8), (ChunkList{0, 7}));
  // ...and runs separated only by the boundary coalesce after rotation.
  const ChunkList seam{0, 6, 7};
  EXPECT_EQ(ChunkList::rotated(seam, 2, 8), ChunkList::range(0, 3));
  EXPECT_THROW(ChunkList::rotated(ChunkList{9}, 1, 8), psd::InvalidArgument);
}

TEST(ChunkList, RotatedAllMatchesRotated) {
  const ChunkList base{0, 3, 4, 9, 12, 13};
  const std::vector<int> offsets = {0, 1, 5, 13, 15};
  const auto family = ChunkList::rotated_all(base, offsets, 16);
  ASSERT_EQ(family.size(), offsets.size());
  for (std::size_t k = 0; k < offsets.size(); ++k) {
    EXPECT_EQ(family[k], ChunkList::rotated(base, offsets[k], 16))
        << "offset " << offsets[k];
  }
}

TEST(ChunkList, CopyOnWriteIsolation) {
  // Spilled lists share storage on copy; mutating the copy must not touch
  // the original.
  ChunkList a{0, 2, 4, 6};  // 4 runs: spilled
  const ChunkList snapshot = a;
  ChunkList b = a;
  b.append(10);
  EXPECT_EQ(a, snapshot);
  EXPECT_EQ(b.size(), 5);
  EXPECT_TRUE(b.contains(10));
  EXPECT_FALSE(a.contains(10));
}

TEST(ChunkList, ArenaSliceMutationIsolation) {
  // rotated_all packs all rotations into one shared buffer; appending to
  // one member must not corrupt its siblings.
  const ChunkList base{0, 2, 4, 8};
  auto family = ChunkList::rotated_all(base, std::vector<int>{0, 1, 2}, 16);
  const ChunkList sib0 = family[0];
  const ChunkList sib2 = family[2];
  family[1].append(14);
  EXPECT_EQ(family[0], sib0);
  EXPECT_EQ(family[2], sib2);
  EXPECT_EQ(family[1].size(), base.size() + 1);
}

// ---- Randomized property tests against a std::set reference ------------

std::vector<int> random_subset(Rng& rng, int universe, double density) {
  std::vector<int> out;
  for (int c = 0; c < universe; ++c) {
    if (rng.next_double() < density) out.push_back(c);
  }
  return out;
}

TEST(ChunkListProperty, MatchesSetReference) {
  Rng rng(20260731);
  for (int trial = 0; trial < 200; ++trial) {
    const int universe = rng.uniform_int(1, 96);
    const double da = rng.next_double();
    const double db = rng.next_double();
    const auto va = random_subset(rng, universe, da);
    const auto vb = random_subset(rng, universe, db);
    const std::set<int> sa(va.begin(), va.end());
    const std::set<int> sb(vb.begin(), vb.end());
    const auto ca = ChunkList::from_unsorted(va);
    const auto cb = ChunkList::from_unsorted(vb);

    // Size / iteration / contains agree with the reference set.
    ASSERT_EQ(ca.size(), static_cast<int>(sa.size()));
    ASSERT_EQ(as_vec(ca), std::vector<int>(sa.begin(), sa.end()));
    for (int probe = 0; probe < 8; ++probe) {
      const int c = rng.uniform_int(0, universe);
      ASSERT_EQ(ca.contains(c), sa.count(c) > 0) << "chunk " << c;
    }

    // Union and intersection.
    std::set<int> su = sa;
    su.insert(sb.begin(), sb.end());
    std::set<int> si;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(si, si.begin()));
    ASSERT_EQ(as_vec(ca.union_with(cb)), std::vector<int>(su.begin(), su.end()));
    ASSERT_EQ(as_vec(cb.union_with(ca)), std::vector<int>(su.begin(), su.end()));
    ASSERT_EQ(as_vec(ca.intersect(cb)), std::vector<int>(si.begin(), si.end()));

    // Rotation: {(c + o) mod n}.
    const int o = rng.uniform_int(0, 2 * universe);
    std::set<int> sr;
    for (int c : sa) sr.insert((c + o) % universe);
    ASSERT_EQ(as_vec(ChunkList::rotated(ca, o, universe)),
              std::vector<int>(sr.begin(), sr.end()))
        << "universe " << universe << " offset " << o;

    // Canonical form: runs are maximal, so equal sets compare equal even
    // when built along different paths.
    ASSERT_EQ(ChunkList::from_unsorted(as_vec(ca)), ca);
  }
}

TEST(ChunkListProperty, UnionIsAssociativeOnRandomTriples) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int universe = rng.uniform_int(1, 64);
    const auto a = ChunkList::from_unsorted(random_subset(rng, universe, 0.4));
    const auto b = ChunkList::from_unsorted(random_subset(rng, universe, 0.4));
    const auto c = ChunkList::from_unsorted(random_subset(rng, universe, 0.4));
    ASSERT_EQ(a.union_with(b).union_with(c), a.union_with(b.union_with(c)));
    ASSERT_EQ(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
  }
}

}  // namespace
}  // namespace psd::collective
