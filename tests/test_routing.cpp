#include "psd/flow/routing.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(KShortestPaths, SingleShortest) {
  const auto g = topo::directed_ring(6, gbps(1));
  const auto paths = k_shortest_paths(g, 0, 3, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 3);
  EXPECT_DOUBLE_EQ(paths[0].length, 3.0);
}

TEST(KShortestPaths, DirectedRingHasOnlyOnePath) {
  const auto g = topo::directed_ring(6, gbps(1));
  const auto paths = k_shortest_paths(g, 0, 3, 5);
  EXPECT_EQ(paths.size(), 1u);  // no alternative loopless paths exist
}

TEST(KShortestPaths, BidirectionalRingHasTwo) {
  const auto g = topo::bidirectional_ring(6, gbps(1));
  const auto paths = k_shortest_paths(g, 0, 2, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops(), 2);  // clockwise
  EXPECT_EQ(paths[1].hops(), 4);  // counter-clockwise
}

TEST(KShortestPaths, LengthsNonDecreasingAndDistinct) {
  const auto g = topo::hypercube(3, gbps(1));
  const auto paths = k_shortest_paths(g, 0, 7, 10);
  EXPECT_GE(paths.size(), 3u);
  std::set<std::vector<topo::EdgeId>> seen;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(seen.insert(paths[i].edges).second) << "duplicate path";
    if (i > 0) {
      EXPECT_GE(paths[i].length, paths[i - 1].length);
    }
    // Paths are loopless: visited nodes distinct.
    std::set<topo::NodeId> nodes{0};
    for (topo::EdgeId e : paths[i].edges) {
      EXPECT_TRUE(nodes.insert(g.edge(e).dst).second) << "loop in path";
    }
  }
}

TEST(KShortestPaths, HypercubeShortestCount) {
  // 0 -> 7 in a 3-cube: 3! = 6 shortest paths of length 3.
  const auto g = topo::hypercube(3, gbps(1));
  const auto paths = k_shortest_paths(g, 0, 7, 20);
  const long count3 =
      std::count_if(paths.begin(), paths.end(),
                    [](const Path& p) { return p.hops() == 3; });
  EXPECT_EQ(count3, 6);
}

TEST(KShortestPaths, RespectsEdgeLengths) {
  // Direct edge is expensive; detour is cheaper and must come first.
  topo::Graph g(3);
  g.add_edge(0, 2, gbps(1));  // edge 0, length 10
  g.add_edge(0, 1, gbps(1));  // edge 1, length 1
  g.add_edge(1, 2, gbps(1));  // edge 2, length 1
  const auto paths = k_shortest_paths(g, 0, 2, 2, {10.0, 1.0, 1.0});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops(), 2);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_EQ(paths[1].hops(), 1);
  EXPECT_DOUBLE_EQ(paths[1].length, 10.0);
}

TEST(KShortestPaths, UnreachableReturnsEmpty) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(1));
  EXPECT_TRUE(k_shortest_paths(g, 0, 2, 3).empty());
}

TEST(KShortestPaths, ValidatesInput) {
  const auto g = topo::directed_ring(4, gbps(1));
  EXPECT_THROW((void)k_shortest_paths(g, 0, 0, 1), psd::InvalidArgument);
  EXPECT_THROW((void)k_shortest_paths(g, 0, 1, 0), psd::InvalidArgument);
  EXPECT_THROW((void)k_shortest_paths(g, 0, 9, 1), psd::InvalidArgument);
  EXPECT_THROW((void)k_shortest_paths(g, 0, 1, 1, {1.0}), psd::InvalidArgument);
}

TEST(ValiantPaths, TwoLegsThroughIntermediate) {
  const auto g = topo::bidirectional_ring(8, gbps(1));
  Rng rng(7);
  const auto commodities = commodities_from_matching(Matching::rotation(8, 1));
  const auto paths = valiant_paths(g, commodities, rng);
  ASSERT_EQ(paths.size(), commodities.size());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    // Each path really connects src to dst.
    topo::NodeId cur = commodities[k].src;
    for (topo::EdgeId e : paths[k].edges) {
      EXPECT_EQ(g.edge(e).src, cur);
      cur = g.edge(e).dst;
    }
    EXPECT_EQ(cur, commodities[k].dst);
  }
}

TEST(ValiantPaths, DeterministicGivenSeed) {
  const auto g = topo::hypercube(4, gbps(1));
  const auto commodities = commodities_from_matching(Matching::rotation(16, 3));
  Rng a(11);
  Rng b(11);
  const auto pa = valiant_paths(g, commodities, a);
  const auto pb = valiant_paths(g, commodities, b);
  for (std::size_t k = 0; k < pa.size(); ++k) {
    EXPECT_EQ(pa[k].edges, pb[k].edges);
  }
}

TEST(ValiantPaths, TwoNodeGraphFallsBackToDirect) {
  topo::Graph g(2);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 0, gbps(1));
  Rng rng(3);
  const auto paths = valiant_paths(g, {{0, 1, 1.0}}, rng);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 1);
}

TEST(PathLoads, AccumulatesDemand) {
  const auto g = topo::directed_ring(4, gbps(1));
  const std::vector<Commodity> commodities{{0, 2, 2.0}, {1, 2, 1.0}};
  std::vector<Path> paths(2);
  paths[0].edges = {0, 1};  // 0->1->2
  paths[1].edges = {1};     // 1->2
  const auto load = path_loads(g, commodities, paths);
  EXPECT_DOUBLE_EQ(load[0], 2.0);
  EXPECT_DOUBLE_EQ(load[1], 3.0);
  EXPECT_DOUBLE_EQ(load[2], 0.0);
  EXPECT_THROW((void)path_loads(g, commodities, std::vector<Path>(1)),
               psd::InvalidArgument);
}

TEST(ValiantPaths, PathLengthBoundedByTwiceDiameter) {
  // VLB's defining property: every path is at most two shortest legs, so
  // hop count <= 2 · diameter.
  const auto g = topo::hypercube(4, gbps(1));
  const int dia = topo::diameter(g);
  Rng rng(77);
  const auto commodities = commodities_from_matching(Matching::rotation(16, 7));
  const auto paths = valiant_paths(g, commodities, rng);
  for (const auto& p : paths) {
    EXPECT_LE(p.hops(), 2 * dia);
    EXPECT_GE(p.hops(), 1);
  }
}

TEST(ValiantPaths, LoadConservation) {
  // Total edge load equals Σ demand · hops regardless of spreading.
  const auto g = topo::bidirectional_ring(12, gbps(1));
  Rng rng(5);
  const auto commodities = commodities_from_matching(Matching::rotation(12, 5));
  const auto paths = valiant_paths(g, commodities, rng);
  const auto load = path_loads(g, commodities, paths);
  double total_load = 0.0;
  for (double l : load) total_load += l;
  double expected = 0.0;
  for (std::size_t k = 0; k < paths.size(); ++k) {
    expected += commodities[k].demand * paths[k].hops();
  }
  EXPECT_DOUBLE_EQ(total_load, expected);
}

}  // namespace
}  // namespace psd::flow
