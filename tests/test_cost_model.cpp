#include "psd/core/cost_model.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/topo/builders.hpp"

namespace psd::core {
namespace {

using topo::Matching;

CostParams params_800g() {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = microseconds(10);
  p.b = gbps(800);  // 100 B/ns
  return p;
}

/// n=4 directed ring with a rotation-2 step of 1 MiB.
struct Fixture {
  Fixture()
      : ring(topo::directed_ring(4, gbps(800))),
        oracle(ring, gbps(800)),
        inst({{mib(1), Matching::rotation(4, 2)},
              {mib(1), Matching::rotation(4, 1)}},
             oracle, params_800g()) {}
  topo::Graph ring;
  flow::ThetaOracle oracle;
  ProblemInstance inst;
};

TEST(CostModel, PrecomputesThetaAndEll) {
  const Fixture f;
  ASSERT_EQ(f.inst.num_steps(), 2);
  EXPECT_DOUBLE_EQ(f.inst.step(0).theta_base, 0.5);  // rotation-2 on a 4-ring
  EXPECT_EQ(f.inst.step(0).ell_base, 2);
  EXPECT_DOUBLE_EQ(f.inst.step(1).theta_base, 1.0);
  EXPECT_EQ(f.inst.step(1).ell_base, 1);
}

TEST(CostModel, DctComponentsMatchHandComputation) {
  const Fixture f;
  // Base: δ·ℓ = 200 ns; β·m/θ = (1048576 / 100) * 2 = 20971.52 ns.
  EXPECT_DOUBLE_EQ(f.inst.propagation_cost(0, TopoChoice::kBase).ns(), 200.0);
  EXPECT_NEAR(f.inst.serialization_cost(0, TopoChoice::kBase).ns(), 20971.52, 1e-6);
  // Matched: δ·1 = 100 ns; β·m = 10485.76 ns.
  EXPECT_DOUBLE_EQ(f.inst.propagation_cost(0, TopoChoice::kMatched).ns(), 100.0);
  EXPECT_NEAR(f.inst.serialization_cost(0, TopoChoice::kMatched).ns(), 10485.76, 1e-6);
}

TEST(CostModel, TransitionCostsFollowEq7) {
  const Fixture f;
  const ModelExtensions ext;
  // base→base free; everything else costs α_r.
  EXPECT_DOUBLE_EQ(
      f.inst.transition_cost(1, TopoChoice::kBase, TopoChoice::kBase, ext).ns(), 0.0);
  EXPECT_DOUBLE_EQ(
      f.inst.transition_cost(1, TopoChoice::kBase, TopoChoice::kMatched, ext).us(), 10.0);
  EXPECT_DOUBLE_EQ(
      f.inst.transition_cost(1, TopoChoice::kMatched, TopoChoice::kBase, ext).us(), 10.0);
  EXPECT_DOUBLE_EQ(
      f.inst.transition_cost(1, TopoChoice::kMatched, TopoChoice::kMatched, ext).us(), 10.0);
  // Step 0 starts from the base state (x_0 = 1).
  EXPECT_DOUBLE_EQ(
      f.inst.transition_cost(0, TopoChoice::kBase, TopoChoice::kMatched, ext).us(), 10.0);
  EXPECT_THROW(
      (void)f.inst.transition_cost(0, TopoChoice::kMatched, TopoChoice::kBase, ext),
      psd::InvalidArgument);
}

TEST(CostModel, EvaluatePlanBreakdown) {
  const Fixture f;
  const auto plan = evaluate_plan(
      f.inst, {TopoChoice::kMatched, TopoChoice::kBase});
  // latency: 2·α = 200 ns.
  EXPECT_DOUBLE_EQ(plan.breakdown.latency.ns(), 200.0);
  // propagation: 100 (matched) + 100 (rotation-1 on base, ℓ=1) = 200 ns.
  EXPECT_DOUBLE_EQ(plan.breakdown.propagation.ns(), 200.0);
  // reconfig: enter matched (α_r) + return to base (α_r) = 20 µs.
  EXPECT_DOUBLE_EQ(plan.breakdown.reconfiguration.us(), 20.0);
  // serialization: 10485.76 (matched) + 10485.76 (θ=1 on base) ns.
  EXPECT_NEAR(plan.breakdown.serialization.ns(), 2 * 10485.76, 1e-6);
  EXPECT_EQ(plan.num_reconfigurations, 2);
  EXPECT_NEAR(plan.total_time().ns(),
              200.0 + 200.0 + 20000.0 + 2 * 10485.76, 1e-6);
}

TEST(CostModel, DedupSkipsIdenticalMatchedTransitions) {
  const auto ring = topo::directed_ring(4, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const ProblemInstance inst(
      {{mib(1), Matching::rotation(4, 2)}, {mib(1), Matching::rotation(4, 2)}},
      oracle, params_800g());
  ModelExtensions ext;
  ext.dedup_identical_matchings = true;
  EXPECT_DOUBLE_EQ(
      inst.transition_cost(1, TopoChoice::kMatched, TopoChoice::kMatched, ext).ns(),
      0.0);
  // Without dedup the paper's rule charges it.
  EXPECT_DOUBLE_EQ(
      inst.transition_cost(1, TopoChoice::kMatched, TopoChoice::kMatched, {}).us(),
      10.0);
}

TEST(CostModel, PerPortDelayModelExtension) {
  const auto ring = topo::directed_ring(4, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const ProblemInstance inst(
      {{mib(1), Matching::rotation(4, 2)}, {mib(1), Matching::rotation(4, 2)}},
      oracle, params_800g());
  const photonic::PerPortDelayModel model(nanoseconds(0), nanoseconds(50));
  ModelExtensions ext;
  ext.delay_model = &model;
  // Missing base_config must be rejected.
  EXPECT_THROW((void)inst.transition_cost(0, TopoChoice::kBase,
                                          TopoChoice::kMatched, ext),
               psd::InvalidArgument);
  ext.base_config = Matching::rotation(4, 1);
  // ring(+1) -> rotation(+2): all 4 senders and 4 receivers change.
  EXPECT_DOUBLE_EQ(
      inst.transition_cost(0, TopoChoice::kBase, TopoChoice::kMatched, ext).ns(),
      50.0 * 8);
  // matched(rot2) -> matched(rot2): physically identical, free under the
  // port-count model.
  EXPECT_DOUBLE_EQ(
      inst.transition_cost(1, TopoChoice::kMatched, TopoChoice::kMatched, ext).ns(),
      0.0);
}

TEST(CostModel, OverlapHidesReconfigurationBehindCompute) {
  const Fixture f;
  ModelExtensions ext;
  ext.compute_before_step = {microseconds(4), microseconds(15)};
  const auto plan = evaluate_plan(
      f.inst, {TopoChoice::kMatched, TopoChoice::kMatched}, ext);
  // Step 0: α_r=10µs, compute 4µs → 6µs exposed. Step 1: fully hidden.
  EXPECT_DOUBLE_EQ(plan.breakdown.reconfiguration.us(), 6.0);
  EXPECT_DOUBLE_EQ(plan.breakdown.compute.us(), 19.0);
}

TEST(CostModel, RejectsMalformedInstances) {
  const auto ring = topo::directed_ring(4, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const CostParams p = params_800g();
  // Empty steps.
  EXPECT_THROW(ProblemInstance({}, oracle, p), psd::InvalidArgument);
  // Empty matching.
  EXPECT_THROW(ProblemInstance({{mib(1), Matching(4)}}, oracle, p),
               psd::InvalidArgument);
  // Zero volume.
  EXPECT_THROW(ProblemInstance({{bytes(0), Matching::rotation(4, 1)}}, oracle, p),
               psd::InvalidArgument);
  // Wrong matching size.
  EXPECT_THROW(ProblemInstance({{mib(1), Matching::rotation(5, 1)}}, oracle, p),
               psd::InvalidArgument);
  // Bad parameters.
  CostParams bad = p;
  bad.alpha = nanoseconds(-1);
  EXPECT_THROW(ProblemInstance({{mib(1), Matching::rotation(4, 1)}}, oracle, bad),
               psd::InvalidArgument);
}

TEST(CostModel, EvaluatePlanValidatesShape) {
  const Fixture f;
  EXPECT_THROW((void)evaluate_plan(f.inst, {TopoChoice::kBase}), psd::InvalidArgument);
  ModelExtensions ext;
  ext.compute_before_step = {microseconds(1)};  // wrong length
  EXPECT_THROW((void)evaluate_plan(f.inst,
                                   {TopoChoice::kBase, TopoChoice::kBase}, ext),
               psd::InvalidArgument);
}

TEST(CostModel, BuildsFromCollectiveSchedule) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::halving_doubling_allreduce(8, mib(1));
  const ProblemInstance inst(sched, oracle, params_800g());
  EXPECT_EQ(inst.num_steps(), sched.num_steps());
  for (int i = 0; i < inst.num_steps(); ++i) {
    EXPECT_GT(inst.step(i).theta_base, 0.0);
    EXPECT_GE(inst.step(i).ell_base, 1);
    EXPECT_DOUBLE_EQ(inst.step(i).volume.count(), sched.step(i).volume.count());
  }
}

}  // namespace
}  // namespace psd::core
