#include "psd/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psd::sim {
namespace {

Event make_event(double t_ns, int payload = 0,
                 EventType type = EventType::kFlowCompleted) {
  Event e;
  e.time = TimeNs(t_ns);
  e.type = type;
  e.payload = payload;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(make_event(30.0, 3));
  q.push(make_event(10.0, 1));
  q.push(make_event(20.0, 2));
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, AdvancesClock) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now().ns(), 0.0);
  q.push(make_event(15.0));
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now().ns(), 15.0);
}

TEST(EventQueue, StableForEqualTimestamps) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push(make_event(5.0, i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.push(make_event(10.0));
  (void)q.pop();
  EXPECT_THROW(q.push(make_event(5.0)), psd::InvalidArgument);
  q.push(make_event(10.0));  // equal to now is allowed
}

TEST(EventQueue, PopFromEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), psd::InvalidArgument);
}

TEST(EventQueue, ClearKeepsClock) {
  EventQueue q;
  q.push(make_event(10.0));
  (void)q.pop();
  q.push(make_event(20.0));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now().ns(), 10.0);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(make_event(1.0));
  q.push(make_event(2.0));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

// Insertion-order stability must survive interleaving with the heap's
// sift operations, not just a push-all-then-pop-all sequence: pops in
// between reshuffle the backing vector, and equal-time events pushed in
// separate batches still need to drain in global insertion order.
TEST(EventQueue, StableForEqualTimestampsAcrossInterleavedPops) {
  EventQueue q;
  q.push(make_event(5.0, 0));
  q.push(make_event(5.0, 1));
  q.push(make_event(1.0, 100));
  EXPECT_EQ(q.pop().payload, 100);  // reshuffles the heap under 0 and 1
  q.push(make_event(5.0, 2));
  q.push(make_event(5.0, 3));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().payload, i);
}

// The event-driven simulators push follow-up events from inside their
// drain loop; an event scheduled at exactly now() during the drain must be
// served this round, after already-queued events of the same timestamp.
TEST(EventQueue, PushDuringDrain) {
  EventQueue q;
  q.push(make_event(10.0, 0));
  q.push(make_event(10.0, 1));
  std::vector<int> order;
  while (!q.empty()) {
    const Event e = q.pop();
    order.push_back(e.payload);
    if (e.payload == 0) {
      q.push(make_event(10.0, 2));   // lands behind payload 1 (same time)
      q.push(make_event(12.0, 3));   // lands after every t=10 event
    }
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().ns(), 12.0);
}

// clear() must not reset the sequence counter: events pushed after a clear
// still order stably against each other and the clock keeps rejecting
// past-timestamp pushes.
TEST(EventQueue, StableAfterClear) {
  EventQueue q;
  q.push(make_event(5.0, 9));
  (void)q.pop();
  q.push(make_event(8.0, 9));
  q.clear();
  for (int i = 0; i < 5; ++i) q.push(make_event(6.0, i));
  EXPECT_THROW(q.push(make_event(4.0)), psd::InvalidArgument);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, PreservesEventFields) {
  EventQueue q;
  Event e = make_event(7.0, 42, EventType::kReconfigDone);
  e.epoch = 9;
  q.push(e);
  const Event out = q.pop();
  EXPECT_EQ(out.type, EventType::kReconfigDone);
  EXPECT_EQ(out.payload, 42);
  EXPECT_EQ(out.epoch, 9u);
}

}  // namespace
}  // namespace psd::sim
