// util::LineBuffer: incremental newline framing for byte-stream
// transports — split-across-read lines, coalesced lines, CRLF, and the
// bounded-memory overlong-line discard that keeps a flooding client from
// growing the buffer without bound.
#include "psd/util/line_buffer.hpp"

#include <string>

#include <gtest/gtest.h>

namespace psd::util {
namespace {

using Event = LineBuffer::Event;

TEST(LineBuffer, EmptyYieldsNothing) {
  LineBuffer lb;
  std::string line;
  EXPECT_EQ(lb.next(&line), Event::kNone);
  EXPECT_EQ(lb.buffered(), 0u);
}

TEST(LineBuffer, SingleCompleteLine) {
  LineBuffer lb;
  lb.append("hello\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(lb.next(&line), Event::kNone);
}

TEST(LineBuffer, StripsCarriageReturn) {
  LineBuffer lb;
  lb.append("a\r\nb\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "a");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "b");
}

TEST(LineBuffer, SplitAcrossAppends) {
  LineBuffer lb;
  std::string line;
  lb.append("{\"op\":\"pl");
  EXPECT_EQ(lb.next(&line), Event::kNone);
  lb.append("an\",\"id\":\"x\"}");
  EXPECT_EQ(lb.next(&line), Event::kNone);
  lb.append("\n");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "{\"op\":\"plan\",\"id\":\"x\"}");
}

TEST(LineBuffer, OneByteAtATime) {
  LineBuffer lb;
  const std::string payload = "byte-by-byte line";
  std::string line;
  for (const char c : payload) {
    lb.append(&c, 1);
    EXPECT_EQ(lb.next(&line), Event::kNone);
  }
  lb.append("\n");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, payload);
}

TEST(LineBuffer, ManyLinesInOneChunk) {
  LineBuffer lb;
  lb.append("one\ntwo\nthree\npartial");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "one");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "two");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "three");
  EXPECT_EQ(lb.next(&line), Event::kNone);
  EXPECT_EQ(lb.buffered(), 7u);  // "partial" awaits its newline
  lb.append("\n");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "partial");
}

TEST(LineBuffer, EmptyLinesAreLines) {
  LineBuffer lb;
  lb.append("\n\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "");
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "");
}

TEST(LineBuffer, OverlongLineIsDroppedAndReported) {
  LineBuffer lb(8);
  lb.append("0123456789abcdef\nok\n");
  std::string line = "sentinel";
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  EXPECT_EQ(line, "sentinel");  // kOverlong leaves *line untouched
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(lb.overlong_lines(), 1u);
}

TEST(LineBuffer, OverlongDiscardIsBoundedMemory) {
  // The oversized line never sits in memory: the buffer discards as the
  // flood arrives, keeping `buffered()` under the cap plus one chunk.
  LineBuffer lb(16);
  const std::string chunk(1024, 'x');
  for (int i = 0; i < 64; ++i) {
    lb.append(chunk);
    EXPECT_LE(lb.buffered(), 16u + chunk.size());
    EXPECT_TRUE(lb.discarding());
  }
  std::string line;
  EXPECT_EQ(lb.next(&line), Event::kNone);  // still mid-discard
  lb.append("\nafter\n");
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "after");
  EXPECT_FALSE(lb.discarding());
}

TEST(LineBuffer, OverlongSplitAcrossAppendsResyncs) {
  LineBuffer lb(4);
  std::string line;
  lb.append("toolongline");  // over cap, no terminator yet
  EXPECT_EQ(lb.next(&line), Event::kNone);
  lb.append("stilltoolong");
  lb.append("end\nok\n");
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(LineBuffer, ExactCapIsAllowed) {
  LineBuffer lb(4);
  lb.append("abcd\nabcde\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "abcd");
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  EXPECT_EQ(lb.overlong_lines(), 1u);
}

TEST(LineBuffer, UnlimitedCapNeverOverlong) {
  LineBuffer lb(0);
  const std::string big(1 << 20, 'y');
  lb.append(big);
  lb.append("\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, big);
  EXPECT_EQ(lb.overlong_lines(), 0u);
}

TEST(LineBuffer, BackToBackOverlongLinesEachReported) {
  LineBuffer lb(3);
  lb.append("aaaaaa\nbbbbbb\ncc\n");
  std::string line;
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  ASSERT_EQ(lb.next(&line), Event::kOverlong);
  ASSERT_EQ(lb.next(&line), Event::kLine);
  EXPECT_EQ(line, "cc");
  EXPECT_EQ(lb.overlong_lines(), 2u);
}

}  // namespace
}  // namespace psd::util
