// SocketServer end-to-end: 8 threads hammering one socket daemon with
// interleaved plan/delta/stats (exactly one response per request, no
// torn JSON lines, plan payloads byte-identical to a serial in-process
// run), a client disconnecting mid-solve (the accept loop must keep
// serving others), oversized lines, split/coalesced writes, and
// backpressure-by-disconnect for a client that stops reading.
#include "psd/serve/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;

std::string test_socket_path(const char* tag) {
  return "/tmp/psd-serve-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// Minimal blocking JSON-lines client over a Unix socket. Responses are
/// read on demand and kept both parsed and raw (for byte-level checks).
class SockClient {
 public:
  explicit SockClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0)
        << "connect " << path << ": " << std::strerror(errno);
    const timeval tv{120, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~SockClient() { close(); }
  SockClient(const SockClient&) = delete;
  SockClient& operator=(const SockClient&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// Blocks until the response for `id` has been read; empty on timeout
  /// or disconnect.
  std::string wait_raw(const std::string& id) {
    while (raw_by_id_.count(id) == 0) {
      if (!read_more()) return "";
    }
    return raw_by_id_[id];
  }
  JsonValue wait(const std::string& id) {
    const std::string raw = wait_raw(id);
    if (raw.empty()) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return parse_json(raw);
  }

  /// Ids that arrived more than once (every request must get exactly one
  /// response).
  [[nodiscard]] const std::set<std::string>& duplicate_ids() const {
    return duplicates_;
  }
  [[nodiscard]] std::size_t lines_read() const { return lines_read_; }
  [[nodiscard]] std::size_t parse_failures() const { return parse_failures_; }

 private:
  bool read_more() {
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;
    buf_.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf_.find('\n', start); nl != std::string::npos;
         nl = buf_.find('\n', start)) {
      const std::string line = buf_.substr(start, nl - start);
      start = nl + 1;
      ++lines_read_;
      try {
        const auto v = parse_json(line);  // a torn line fails right here
        const auto* id = v.find("id");
        const std::string key = id != nullptr ? id->as_string() : "";
        if (!raw_by_id_.emplace(key, line).second) duplicates_.insert(key);
      } catch (const std::exception&) {
        ++parse_failures_;
      }
    }
    buf_.erase(0, start);
    return true;
  }

  int fd_ = -1;
  std::string buf_;
  std::map<std::string, std::string> raw_by_id_;
  std::set<std::string> duplicates_;
  std::size_t lines_read_ = 0;
  std::size_t parse_failures_ = 0;
};

std::string cheap_plan(const std::string& id, int salt = 0) {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":)" + std::to_string(1048576 + salt) + "}";
}

std::string heavy_plan(const std::string& id, int salt = 0) {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"mesh","nodes":12,"collective":"alltoall",)" +
         R"("message_bytes":)" + std::to_string(4194304 + salt) + "}";
}

/// Delta on a context none of the stress plans use, so plan payloads stay
/// epoch-0 deterministic while deltas still exercise the delta path.
std::string side_delta(const std::string& id, int src) {
  return R"({"op":"delta","id":")" + id +
         R"(","topology":"bidir-ring","nodes":8,)"
         R"("ops":[{"kind":"scale_capacity","src":)" + std::to_string(src) +
         R"(,"dst":)" + std::to_string(src + 1) + R"(,"factor":0.9}]})";
}

/// The solve-payload fields of a plan response (everything that must be
/// identical for the same solve key, across transports and runs — i.e.
/// excluding only the per-request plan_latency_ms / cached / coalesced).
std::vector<std::pair<std::string, double>> payload_fields(
    const JsonValue& v) {
  std::vector<std::pair<std::string, double>> out;
  for (const char* f :
       {"steps", "optimal_ns", "static_ns", "naive_bvn_ns", "greedy_ns",
        "reconfigurations", "speedup_vs_static", "speedup_vs_bvn",
        "pipelined_ns", "pipeline_chunks", "epoch"}) {
    const auto* x = v.find(f);
    EXPECT_NE(x, nullptr) << "plan response missing " << f;
    out.emplace_back(f, x != nullptr ? x->as_number() : -1.0);
  }
  return out;
}

// ---- 8-thread interleaved stress ----------------------------------------

TEST(ServeTransport, EightThreadsInterleavedStress) {
  const std::string path = test_socket_path("stress");
  ServiceOptions sopts;
  sopts.workers = 2;
  sopts.queue_limit = 256;  // the stress must not shed
  PlanService svc(sopts, [](const std::string&) {});
  SocketServer server({.socket_path = path}, svc);
  server.start();

  constexpr int kThreads = 8;
  constexpr int kRequests = 18;
  constexpr int kSalts = 3;  // shared solve keys: exercises memo + coalesce
  // payloads[salt] -> every payload observed for that solve key.
  std::mutex payload_mu;
  std::map<int, std::vector<std::vector<std::pair<std::string, double>>>>
      payloads;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SockClient c(path);
      for (int i = 0; i < kRequests; ++i) {
        const std::string id = "t" + std::to_string(t) + "r" +
                               std::to_string(i);
        if (i % 6 == 4) {
          if (!c.send_line(R"({"op":"stats","id":")" + id + R"("})")) break;
          const auto r = c.wait(id);
          if (r.find("stats") == nullptr) failures.fetch_add(1);
        } else if (i % 6 == 5) {
          if (!c.send_line(side_delta(id, (t + i) % 7))) break;
          const auto r = c.wait(id);
          const auto* code = r.find("code");
          if (code == nullptr || code->as_string() != "OK") {
            failures.fetch_add(1);
          }
        } else {
          const int salt = (t + i) % kSalts;
          if (!c.send_line(cheap_plan(id, salt))) break;
          const auto r = c.wait(id);
          const auto* code = r.find("code");
          if (code == nullptr || code->as_string() != "OK") {
            failures.fetch_add(1);
            continue;
          }
          auto fields = payload_fields(r);
          const std::lock_guard<std::mutex> lk(payload_mu);
          payloads[salt].push_back(std::move(fields));
        }
      }
      EXPECT_EQ(c.parse_failures(), 0u) << "torn JSON line on thread " << t;
      EXPECT_TRUE(c.duplicate_ids().empty())
          << "duplicate response on thread " << t;
      EXPECT_EQ(c.lines_read(), static_cast<std::size_t>(kRequests))
          << "thread " << t << ": exactly one response per request";
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Same solve key ⇒ byte-identical payload, across all 8 connections.
  for (const auto& [salt, all] : payloads) {
    ASSERT_FALSE(all.empty());
    for (const auto& fields : all) {
      EXPECT_EQ(fields, all.front()) << "diverging payload for salt " << salt;
    }
  }

  // ... and identical to a serial in-process run of the same requests.
  std::mutex serial_mu;
  std::map<std::string, JsonValue> serial;
  std::condition_variable serial_cv;
  PlanService ref_svc(sopts, [&](const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::lock_guard<std::mutex> lk(serial_mu);
    serial[id != nullptr ? id->as_string() : ""] = std::move(v);
    serial_cv.notify_all();
  });
  for (int salt = 0; salt < kSalts; ++salt) {
    ref_svc.submit_line(cheap_plan("s" + std::to_string(salt), salt));
  }
  for (int salt = 0; salt < kSalts; ++salt) {
    const std::string id = "s" + std::to_string(salt);
    std::unique_lock<std::mutex> lk(serial_mu);
    ASSERT_TRUE(
        serial_cv.wait_for(lk, 60s, [&] { return serial.count(id) != 0; }));
    EXPECT_EQ(payloads[salt].front(), payload_fields(serial[id]))
        << "socket payload differs from serial run for salt " << salt;
  }

  EXPECT_GE(server.connections_accepted(), static_cast<std::uint64_t>(kThreads));
  server.stop();
  svc.shutdown();
}

// ---- Disconnect mid-solve (regression) ----------------------------------

TEST(ServeTransport, ClientDisconnectMidSolveKeepsServingOthers) {
  const std::string path = test_socket_path("midsolve");
  ServiceOptions sopts;
  sopts.workers = 1;  // the heavy solve pins the only worker
  PlanService svc(sopts, [](const std::string&) {});
  SocketServer server({.socket_path = path}, svc);
  server.start();

  // Client A starts a ~1.5 s solve and vanishes without reading.
  auto a = std::make_unique<SockClient>(path);
  ASSERT_TRUE(a->send_line(heavy_plan("doomed")));
  std::this_thread::sleep_for(150ms);  // the worker has picked it up
  a->close();
  a.reset();

  // The accept loop must take new clients immediately (not after the
  // solve): a stats round trip completes while the solve is in flight.
  const auto before = std::chrono::steady_clock::now();
  SockClient b(path);
  ASSERT_TRUE(b.send_line(R"({"op":"stats","id":"s"})"));
  const auto r = b.wait("s");
  EXPECT_NE(r.find("stats"), nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(elapsed, 1s) << "accept/stats stalled behind the dead client";

  // And a queued plan from a live client is still answered.
  ASSERT_TRUE(b.send_line(cheap_plan("alive")));
  const auto alive = b.wait("alive");
  ASSERT_NE(alive.find("code"), nullptr);
  EXPECT_EQ(alive.find("code")->as_string(), "OK");

  server.stop();
  svc.shutdown();
}

// ---- Framing over the wire ----------------------------------------------

TEST(ServeTransport, OversizedLineAnsweredInvalidConnectionSurvives) {
  const std::string path = test_socket_path("oversize");
  ServiceOptions sopts;
  sopts.workers = 1;
  PlanService svc(sopts, [](const std::string&) {});
  SocketServer server({.socket_path = path, .max_line_bytes = 1024}, svc);
  server.start();

  SockClient c(path);
  ASSERT_TRUE(c.send_line(std::string(8192, 'x')));
  ASSERT_TRUE(c.send_line(cheap_plan("after")));
  // The oversized line is answered INVALID_REQUEST with an empty id.
  const auto inv = c.wait("");
  ASSERT_NE(inv.find("code"), nullptr);
  EXPECT_EQ(inv.find("code")->as_string(), "INVALID_REQUEST");
  const auto ok = c.wait("after");
  ASSERT_NE(ok.find("code"), nullptr);
  EXPECT_EQ(ok.find("code")->as_string(), "OK");
  EXPECT_EQ(server.overlong_lines(), 1u);
  server.stop();
  svc.shutdown();
}

TEST(ServeTransport, SplitAndCoalescedWritesBothFrameCorrectly) {
  const std::string path = test_socket_path("frames");
  ServiceOptions sopts;
  sopts.workers = 1;
  PlanService svc(sopts, [](const std::string&) {});
  SocketServer server({.socket_path = path}, svc);
  server.start();

  SockClient c(path);
  // One request dribbled out in small chunks across many writes...
  const std::string req = cheap_plan("split") + "\n";
  for (std::size_t off = 0; off < req.size(); off += 7) {
    ASSERT_TRUE(c.send_raw(req.substr(off, 7)));
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(c.wait("split").find("code")->as_string(), "OK");
  // ...and three requests coalesced into a single write.
  ASSERT_TRUE(c.send_raw(cheap_plan("c1", 1) + "\n" + cheap_plan("c2", 2) +
                         "\n" + R"({"op":"stats","id":"c3"})" + "\n"));
  EXPECT_EQ(c.wait("c1").find("code")->as_string(), "OK");
  EXPECT_EQ(c.wait("c2").find("code")->as_string(), "OK");
  EXPECT_NE(c.wait("c3").find("stats"), nullptr);
  // A truncated trailing request (no newline) followed by EOF is simply
  // dropped — nothing to answer, nothing to crash on.
  ASSERT_TRUE(c.send_raw(R"({"op":"plan","id":"tr)"));
  c.close();
  std::this_thread::sleep_for(50ms);
  SockClient d(path);
  ASSERT_TRUE(d.send_line(cheap_plan("post-eof", 3)));
  EXPECT_EQ(d.wait("post-eof").find("code")->as_string(), "OK");
  server.stop();
  svc.shutdown();
}

// ---- Backpressure --------------------------------------------------------

TEST(ServeTransport, NonReadingClientIsDroppedNotBuffered) {
  const std::string path = test_socket_path("backpressure");
  ServiceOptions sopts;
  sopts.workers = 1;
  PlanService svc(sopts, [](const std::string&) {});
  // Tiny outbound cap: a client that never reads blows it quickly.
  SocketServer server({.socket_path = path, .max_outbound_bytes = 4096}, svc);
  server.start();

  SockClient hog(path);
  // Thousands of synchronous stats responses the hog never reads: kernel
  // buffers fill, the daemon-side outbound buffer hits the cap, drop.
  for (int i = 0; i < 3000; ++i) {
    if (!hog.send_line(R"({"op":"stats","id":"h)" + std::to_string(i) +
                       R"("})")) {
      break;  // daemon already dropped us mid-send — that's the point
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (server.connections_dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(server.connections_dropped(), 1u);

  // The daemon is unharmed and serves the next client.
  SockClient ok(path);
  ASSERT_TRUE(ok.send_line(cheap_plan("fine")));
  EXPECT_EQ(ok.wait("fine").find("code")->as_string(), "OK");
  server.stop();
  svc.shutdown();
}

}  // namespace
}  // namespace psd::serve
