// Chaos drills: the seeded fault injector driving the whole daemon.
//
// The contracts under fire:
//   exactly-once   — every request is answered exactly once with a known
//                    code, no matter which faults fire around it.
//   2x-budget      — a deadline-carrying request is answered within twice
//                    its budget even when every worker is stalled and the
//                    watchdog clock itself hiccups.
//   determinism    — the same seed replays the same fault schedule: two
//                    runs of a drill produce byte-identical event logs.
//   durability     — an injected mid-write crash costs at most the torn
//                    tail; a restart answers every committed plan key
//                    warm, with zero solves.
//   fairness       — under quotas + DRR, a chatty tenant flooding the
//                    queue cannot starve quiet tenants: their latency
//                    stays within 3x a solo baseline.
//   transport      — short reads/writes and EAGAIN storms on the socket
//                    never tear a frame or duplicate an answer.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/serve/service.hpp"
#include "psd/serve/transport.hpp"
#include "psd/util/fault_injection.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Thread-safe sink counting responses per id — the exactly-once probe.
class CountingCapture {
 public:
  void operator()(const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::string key = id != nullptr ? id->as_string() : "";
    const std::lock_guard<std::mutex> lk(mu_);
    ++count_[key];
    by_id_[key] = std::move(v);
    cv_.notify_all();
  }

  JsonValue wait(const std::string& id,
                 std::chrono::milliseconds timeout = 120'000ms) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return count_[id] != 0; })) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return by_id_[id];
  }

  [[nodiscard]] std::size_t count(const std::string& id) {
    const std::lock_guard<std::mutex> lk(mu_);
    return count_[id];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::size_t> count_;
  std::map<std::string, JsonValue> by_id_;
};

std::string cheap_plan(const std::string& id, int salt = 0,
                       const std::string& extra = "") {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":)" + std::to_string(1048576 + salt) + extra + "}";
}

/// Unique journal base path per test; removes the generation family.
class TempJournal {
 public:
  explicit TempJournal(const std::string& stem) {
    base_ = testing::TempDir() + stem + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    remove_family();
  }
  ~TempJournal() { remove_family(); }
  [[nodiscard]] const std::string& str() const { return base_; }

 private:
  void remove_family() const {
    namespace fs = std::filesystem;
    const fs::path base(base_);
    const std::string prefix = base.filename().string();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(
             base.parent_path().empty() ? "." : base.parent_path(), ec)) {
      if (entry.path().filename().string().compare(0, prefix.size(), prefix) ==
          0) {
        fs::remove(entry.path(), ec);
      }
    }
  }

  std::string base_;
};

// ---- Determinism: same seed, byte-identical event log --------------------

std::vector<std::string> run_seeded_drill(std::uint64_t seed,
                                          const std::string& journal_base) {
  util::FaultInjector fault(seed);
  fault.arm_spec(
      "worker.slow:delay_ms=1;"
      "worker.crash:p=0.25;"
      "journal.append.torn:p=0.2");
  CountingCapture cap;
  ServiceOptions opts;
  opts.workers = 1;  // sequential dispatch: the per-site hit order is fixed
  opts.memo_journal_path = journal_base;
  opts.fault = &fault;
  PlanService svc(opts, std::ref(cap));
  for (int i = 0; i < 25; ++i) {
    const std::string id = "r" + std::to_string(i);
    svc.submit_line(cheap_plan(id, i));
    const auto r = cap.wait(id);
    const std::string code = r.find("code")->as_string();
    EXPECT_TRUE(code == "OK" || code == "INTERNAL") << id << ": " << code;
    EXPECT_EQ(cap.count(id), 1u) << id << " answered more than once";
  }
  svc.shutdown();
  return fault.event_log();
}

TEST(ServeChaos, SameSeedReplaysByteIdenticalEventLog) {
  // CI sweeps the drill seed (PSD_CHAOS_SEED); any seed must replay.
  std::uint64_t seed = 20250808;
  if (const char* env = std::getenv("PSD_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  TempJournal tj1("chaos-replay-1");
  TempJournal tj2("chaos-replay-2");
  const auto log1 = run_seeded_drill(seed, tj1.str());
  const auto log2 = run_seeded_drill(seed, tj2.str());
  EXPECT_FALSE(log1.empty()) << "the drill must actually inject faults";
  EXPECT_EQ(log1, log2) << "same seed must replay the same fault schedule";
  // worker.slow is armed at p=1: it fires on every one of the 25 dispatches
  // in both runs — a floor that proves the log is not trivially empty.
  std::size_t slow_fires = 0;
  for (const auto& e : log1) {
    if (e.rfind("worker.slow#", 0) == 0) ++slow_fires;
  }
  EXPECT_EQ(slow_fires, 25u);
}

// ---- Exactly-once under a fault storm ------------------------------------

TEST(ServeChaos, EveryRequestAnsweredExactlyOnceUnderStorm) {
  util::FaultInjector fault(7);
  fault.arm_spec("worker.crash:p=0.2;worker.slow:p=0.5,delay_ms=10");
  CountingCapture cap;
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_limit = 8;  // small: the storm must shed sometimes
  opts.watchdog_interval = 5ms;
  opts.fault = &fault;
  PlanService svc(opts, std::ref(cap));

  constexpr int kThreads = 3;
  constexpr int kPerThread = 20;
  std::vector<std::string> ids;
  {
    std::mutex ids_mu;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string id =
              "t" + std::to_string(t) + "r" + std::to_string(i);
          std::string extra;
          if (i % 7 == 3) extra = R"(,"deadline_ms":1)";     // fast-path ladder
          else if (i % 5 == 2) extra = R"(,"deadline_ms":60)";  // watchdog race
          svc.submit_line(cheap_plan(id, i % 4, extra));
          {
            const std::lock_guard<std::mutex> lk(ids_mu);
            ids.push_back(id);
          }
          std::this_thread::sleep_for(2ms);
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  const std::set<std::string> known = {"OK", "SHED", "DEADLINE_EXCEEDED",
                                       "INTERNAL"};
  for (const auto& id : ids) {
    const auto r = cap.wait(id);
    const auto* code = r.find("code");
    ASSERT_NE(code, nullptr) << id;
    EXPECT_TRUE(known.count(code->as_string()) != 0)
        << id << " answered with unknown code " << code->as_string();
  }
  svc.drain();
  for (const auto& id : ids) {
    EXPECT_EQ(cap.count(id), 1u) << id << " must be answered exactly once";
  }
  EXPECT_GT(fault.fires(), 0u);
  EXPECT_EQ(svc.stats().faults_injected, fault.fires())
      << "stats must surface the injector's fire count";
}

// ---- 2x-budget guarantee under stalled workers + watchdog hiccups --------

TEST(ServeChaos, DeadlineAnsweredWithinTwiceBudgetUnderStall) {
  util::FaultInjector fault(7);
  // Every solve stalls 1.5 s; the watchdog clock itself hiccups twice.
  fault.arm_spec("worker.slow:delay_ms=1500;watchdog.stall:delay_ms=40,budget=2");
  CountingCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.watchdog_interval = 5ms;
  opts.fault = &fault;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("blocker", 1));
  std::this_thread::sleep_for(100ms);  // the only worker is now stalled

  constexpr double kBudgetMs = 250.0;
  const auto start = Clock::now();
  svc.submit_line(cheap_plan("hurry", 2, R"(,"deadline_ms":250)"));
  const auto r = cap.wait("hurry");
  const double elapsed = ms_since(start);
  ASSERT_NE(r.find("code"), nullptr);
  // No memo entry to degrade to: the ladder answers DEADLINE_EXCEEDED.
  EXPECT_EQ(r.find("code")->as_string(), "DEADLINE_EXCEEDED");
  EXPECT_LE(elapsed, 2 * kBudgetMs)
      << "the 2x-budget guarantee must hold under injected stalls";

  EXPECT_EQ(cap.wait("blocker").find("code")->as_string(), "OK");
  svc.drain();
}

// ---- Mid-write crash: restart answers committed keys warm ----------------

TEST(ServeChaos, InjectedMidWriteCrashRestartsWarmForCommittedRecords) {
  TempJournal tj("chaos-crash-journal");
  {
    util::FaultInjector fault(7);
    // Third append tears mid-record; every compaction (the self-heal path
    // AND the shutdown one) fails its rename — modelling a daemon that
    // died before it could rotate the generation.
    fault.arm_spec(
        "journal.append.torn:after=2,budget=1;journal.compact.rename");
    CountingCapture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_journal_path = tj.str();
    opts.fault = &fault;
    PlanService svc(opts, std::ref(cap));
    for (int i = 0; i < 3; ++i) {
      const std::string id = "p" + std::to_string(i);
      svc.submit_line(cheap_plan(id, i));
      // Every answer reaches the client even when its append tears.
      EXPECT_EQ(cap.wait(id).find("code")->as_string(), "OK");
    }
    svc.drain();
    // The journal append runs after the answer is emitted; give it a beat.
    for (int i = 0; i < 400 && fault.fires("journal.append.torn") == 0; ++i) {
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_EQ(fault.fires("journal.append.torn"), 1u);
  }  // dies with a torn tail on disk (all compactions were injected away)

  // Restart with no faults: the torn tail is healed, both committed
  // records answer warm with zero solves, the third re-solves.
  CountingCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.journal_truncated_tail, 1u);
  EXPECT_EQ(st.memo_loaded, 2u);
  EXPECT_EQ(st.memo_load_errors, 0u);

  for (int i = 0; i < 2; ++i) {
    const std::string id = "w" + std::to_string(i);
    svc.submit_line(cheap_plan(id, i));
    const auto r = cap.wait(id);
    ASSERT_EQ(r.find("code")->as_string(), "OK");
    EXPECT_TRUE(r.find("cached")->as_bool()) << "committed key must be warm";
    EXPECT_FALSE(r.find("degraded")->as_bool());
  }
  EXPECT_EQ(svc.stats().planned, 0u) << "warm answers must not solve";
  svc.submit_line(cheap_plan("w2", 2));
  const auto r2 = cap.wait("w2");
  ASSERT_EQ(r2.find("code")->as_string(), "OK");
  EXPECT_FALSE(r2.find("cached")->as_bool()) << "the torn record re-solves";
}

// ---- Fairness: quotas + DRR keep quiet tenants fast ----------------------

double quiet_max_latency_ms(PlanService& svc, CountingCapture& cap,
                            int requests, int salt_base) {
  double max_ms = 0.0;
  for (int i = 0; i < requests; ++i) {
    const std::string id = "q" + std::to_string(salt_base + i);
    const std::string tenant = "quiet" + std::to_string(i % 3);
    const auto start = Clock::now();
    svc.submit_line(cheap_plan(id, salt_base + i), nullptr, tenant);
    const auto r = cap.wait(id);
    EXPECT_EQ(r.find("code")->as_string(), "OK") << id;
    max_ms = std::max(max_ms, ms_since(start));
  }
  return max_ms;
}

TEST(ServeChaos, QuietTenantsStayFastUnderChattyFloodWithQuota) {
  const auto make_opts = [](util::FaultInjector* fault) {
    ServiceOptions opts;
    opts.workers = 2;
    opts.queue_limit = 64;
    opts.watchdog_interval = 5ms;
    opts.tenant_inflight_quota = 1;  // one in-flight solve per tenant
    // Weight 2 keeps the DRR rotation parked on the chatty tenant while
    // its backlog drains, so every quiet dequeue walks past the
    // quota-blocked slot — a deterministically counted deferral.
    opts.tenant_weights["chatty"] = 2;
    opts.fault = fault;
    return opts;
  };

  // Solo baseline: quiet tenants alone, every solve slowed by the drill.
  double solo_ms = 0.0;
  {
    util::FaultInjector fault(7);
    fault.arm_spec("worker.slow:delay_ms=60");
    CountingCapture cap;
    PlanService svc(make_opts(&fault), std::ref(cap));
    solo_ms = quiet_max_latency_ms(svc, cap, 6, 100);
    svc.drain();
  }
  ASSERT_GT(solo_ms, 0.0);

  // Contended: a chatty tenant floods 20 distinct solves up front. The
  // quota caps it at one in-flight solve, so the second worker always
  // belongs to whichever quiet tenant asks.
  util::FaultInjector fault(7);
  fault.arm_spec("worker.slow:delay_ms=60");
  CountingCapture cap;
  PlanService svc(make_opts(&fault), std::ref(cap));
  for (int i = 0; i < 20; ++i) {
    svc.submit_line(cheap_plan("chatty" + std::to_string(i), 200 + i), nullptr,
                    "chatty");
  }
  std::this_thread::sleep_for(50ms);  // one in flight, the rest queued

  const double contended_ms = quiet_max_latency_ms(svc, cap, 6, 300);
  EXPECT_LE(contended_ms, 3.0 * solo_ms)
      << "quiet p99 " << contended_ms << " ms vs solo baseline " << solo_ms
      << " ms: the chatty flood starved quiet tenants";
  EXPECT_GT(svc.stats().tenant_deferrals, 0u)
      << "the quota must actually have deferred the chatty tenant";

  for (int i = 0; i < 20; ++i) {
    (void)cap.wait("chatty" + std::to_string(i));
  }
  svc.drain();
}

// ---- Transport chaos over a real socket ----------------------------------

std::string chaos_socket_path() {
  return "/tmp/psd-serve-chaos-" + std::to_string(::getpid()) + ".sock";
}

/// Minimal blocking JSON-lines client (see test_serve_transport.cpp).
class SockClient {
 public:
  explicit SockClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0)
        << "connect " << path << ": " << std::strerror(errno);
    const timeval tv{120, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~SockClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  SockClient(const SockClient&) = delete;
  SockClient& operator=(const SockClient&) = delete;

  bool send_line(const std::string& line) {
    const std::string bytes = line + "\n";
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  JsonValue wait(const std::string& id) {
    while (by_id_.count(id) == 0) {
      if (!read_more()) {
        ADD_FAILURE() << "no response for " << id;
        return JsonValue{};
      }
    }
    return by_id_[id];
  }

  [[nodiscard]] std::size_t parse_failures() const { return parse_failures_; }
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::size_t lines_read() const { return lines_read_; }

 private:
  bool read_more() {
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;
    buf_.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf_.find('\n', start); nl != std::string::npos;
         nl = buf_.find('\n', start)) {
      const std::string line = buf_.substr(start, nl - start);
      start = nl + 1;
      ++lines_read_;
      try {
        const auto v = parse_json(line);  // a torn frame fails right here
        const auto* id = v.find("id");
        if (!by_id_.emplace(id != nullptr ? id->as_string() : "", v).second) {
          ++duplicates_;
        }
      } catch (const std::exception&) {
        ++parse_failures_;
      }
    }
    buf_.erase(0, start);
    return true;
  }

  int fd_ = -1;
  std::string buf_;
  std::map<std::string, JsonValue> by_id_;
  std::size_t duplicates_ = 0;
  std::size_t lines_read_ = 0;
  std::size_t parse_failures_ = 0;
};

TEST(ServeChaos, TransportShortIoNeverTearsFramesOrDuplicates) {
  const std::string path = chaos_socket_path();
  util::FaultInjector fault(7);
  // Every read delivers one byte, every write trickles one byte, and both
  // directions hit occasional EAGAIN storms — maximal fragmentation.
  fault.arm_spec(
      "transport.read.short;transport.write.short;"
      "transport.read.eagain:p=0.1;transport.write.eagain:p=0.1");
  ServiceOptions sopts;
  sopts.workers = 2;
  sopts.queue_limit = 128;
  PlanService svc(sopts, [](const std::string&) {});
  SocketServerOptions topts;
  topts.socket_path = path;
  topts.fault = &fault;
  SocketServer server(topts, svc);
  server.start();

  constexpr int kThreads = 4;
  constexpr int kRequests = 12;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SockClient c(path);
      for (int i = 0; i < kRequests; ++i) {
        const std::string id =
            "t" + std::to_string(t) + "r" + std::to_string(i);
        if (i % 5 == 4) {
          ASSERT_TRUE(c.send_line(R"({"op":"stats","id":")" + id + R"("})"));
          EXPECT_NE(c.wait(id).find("stats"), nullptr);
        } else {
          ASSERT_TRUE(c.send_line(cheap_plan(id, (t + i) % 3)));
          const auto r = c.wait(id);
          ASSERT_NE(r.find("code"), nullptr);
          EXPECT_EQ(r.find("code")->as_string(), "OK") << id;
        }
      }
      EXPECT_EQ(c.parse_failures(), 0u) << "torn frame on thread " << t;
      EXPECT_EQ(c.duplicates(), 0u);
      EXPECT_EQ(c.lines_read(), static_cast<std::size_t>(kRequests));
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(fault.fires("transport.read.short"), 0u);
  EXPECT_GT(fault.fires("transport.write.short"), 0u);
  server.stop();
  svc.shutdown();
}

// ---- Stats surface the robustness counters -------------------------------

TEST(ServeChaos, StatsResponseCarriesRobustnessCounters) {
  TempJournal tj("chaos-stats-journal");
  util::FaultInjector fault(7);
  fault.arm_spec("worker.slow:delay_ms=1");
  CountingCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  opts.journal_compact_records = 1;  // compact after every append
  opts.fault = &fault;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("a", 0));
  (void)cap.wait("a");
  svc.drain();
  for (int i = 0; i < 200 && svc.journal()->compactions() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }

  svc.submit_line(R"({"op":"stats","id":"st"})");
  const auto r = cap.wait("st");
  const auto* st = r.find("stats");
  ASSERT_NE(st, nullptr);
  for (const char* f : {"faults_injected", "journal_compactions",
                        "journal_truncated_tail", "tenant_deferrals"}) {
    ASSERT_NE(st->find(f), nullptr) << "stats response missing " << f;
  }
  EXPECT_GE(st->find("faults_injected")->as_number(), 1.0);
  EXPECT_GE(st->find("journal_compactions")->as_number(), 1.0);
  EXPECT_EQ(st->find("journal_truncated_tail")->as_number(), 0.0);
}

}  // namespace
}  // namespace psd::serve
