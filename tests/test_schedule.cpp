#include "psd/collective/schedule.hpp"

#include <gtest/gtest.h>

#include "psd/util/error.hpp"

namespace psd::collective {
namespace {

using topo::Matching;

CollectiveSchedule make_sched(int n = 4) {
  return CollectiveSchedule("test", n, mib(1), n, ChunkSpace::kSegments);
}

TEST(CollectiveSchedule, ConstructionAndAccessors) {
  const auto s = make_sched();
  EXPECT_EQ(s.name(), "test");
  EXPECT_EQ(s.num_nodes(), 4);
  EXPECT_EQ(s.num_steps(), 0);
  EXPECT_EQ(s.num_chunks(), 4);
  EXPECT_DOUBLE_EQ(s.buffer_size().mib(), 1.0);
  EXPECT_DOUBLE_EQ(s.chunk_size().count(), mib(1).count() / 4.0);
}

TEST(CollectiveSchedule, RejectsBadConstruction) {
  EXPECT_THROW(CollectiveSchedule("x", 1, mib(1), 1, ChunkSpace::kSegments),
               psd::InvalidArgument);
  EXPECT_THROW(CollectiveSchedule("x", 4, bytes(0), 1, ChunkSpace::kSegments),
               psd::InvalidArgument);
  EXPECT_THROW(CollectiveSchedule("x", 4, mib(1), 0, ChunkSpace::kSegments),
               psd::InvalidArgument);
  // Block space requires n*n chunks.
  EXPECT_THROW(CollectiveSchedule("x", 4, mib(1), 4, ChunkSpace::kBlocks),
               psd::InvalidArgument);
}

TEST(CollectiveSchedule, BlockChunkSizeIsPerDestination) {
  const CollectiveSchedule s("a2a", 4, mib(1), 16, ChunkSpace::kBlocks);
  EXPECT_DOUBLE_EQ(s.chunk_size().count(), mib(1).count() / 4.0);
}

TEST(CollectiveSchedule, AddStepValidatesMatchingSize) {
  auto s = make_sched();
  Step st;
  st.matching = Matching::rotation(5, 1);  // wrong n
  st.volume = kib(1);
  EXPECT_THROW(s.add_step(st), psd::InvalidArgument);
}

TEST(CollectiveSchedule, AddStepValidatesTransfers) {
  auto s = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = s.chunk_size();
  Transfer t;
  t.src = 0;
  t.dst = 2;  // not in matching (0 -> 1)
  t.chunks = {0};
  st.transfers = {t};
  EXPECT_THROW(s.add_step(st), psd::InvalidArgument);

  t.dst = 1;
  t.chunks = {7};  // chunk out of range
  st.transfers = {t};
  EXPECT_THROW(s.add_step(st), psd::InvalidArgument);

  t.chunks = {0, 1};  // bytes (2 chunks) != volume (1 chunk)
  st.transfers = {t};
  EXPECT_THROW(s.add_step(st), psd::InvalidArgument);

  t.chunks = {0};
  st.transfers = {t};
  s.add_step(st);  // now consistent
  EXPECT_EQ(s.num_steps(), 1);
}

TEST(CollectiveSchedule, FullyAnnotatedDetection) {
  auto s = make_sched();
  Step annotated;
  annotated.matching = Matching::rotation(4, 1);
  annotated.volume = s.chunk_size();
  for (int j = 0; j < 4; ++j) {
    annotated.transfers.push_back({j, (j + 1) % 4, {j}, false});
  }
  s.add_step(annotated);
  EXPECT_TRUE(s.fully_annotated());

  Step bare;
  bare.matching = Matching::rotation(4, 2);
  bare.volume = kib(2);
  s.add_step(bare);
  EXPECT_FALSE(s.fully_annotated());
}

TEST(CollectiveSchedule, FullyAnnotatedRequiresEveryActivePair) {
  // Regression: a step annotating only SOME of its matching's active pairs
  // used to count as annotated, so the executor silently under-delivered
  // the other pairs' data.
  auto s = make_sched();
  Step partial;
  partial.matching = Matching::rotation(4, 1);  // four active pairs
  partial.volume = s.chunk_size();
  partial.transfers.push_back({0, 1, {0}, false});  // only one annotated
  s.add_step(partial);
  EXPECT_FALSE(s.fully_annotated());
}

TEST(CollectiveSchedule, AddStepRejectsDuplicatePairTransfers) {
  // Regression: two transfers for the same (src, dst) pair each passed the
  // per-transfer byte check and would double-apply in the executor.
  auto s = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = s.chunk_size();
  for (int j = 0; j < 4; ++j) st.transfers.push_back({j, (j + 1) % 4, {j}, false});
  st.transfers.push_back({0, 1, {2}, false});  // second transfer for 0 → 1
  EXPECT_THROW(s.add_step(st), psd::InvalidArgument);
}

TEST(CollectiveSchedule, ThenKeepsAnnotationsAcrossFloatNoise) {
  // Regression: then() compared buffer sizes with exact floating-point ==,
  // dropping annotations for buffers built through differing arithmetic.
  const double exact = kib(96).count();
  double summed = 0.0;
  for (int i = 0; i < 10; ++i) summed += exact / 10.0;
  ASSERT_NE(summed, exact);  // the bit patterns genuinely differ...
  ASSERT_TRUE(approx_equal(Bytes(summed), Bytes(exact)));  // ...but only in ulps

  const auto make = [](double buffer) {
    CollectiveSchedule s("part", 4, Bytes(buffer), 4, ChunkSpace::kSegments);
    Step st;
    st.matching = Matching::rotation(4, 1);
    st.volume = s.chunk_size();
    for (int j = 0; j < 4; ++j) st.transfers.push_back({j, (j + 1) % 4, {j}, false});
    s.add_step(st);
    return s;
  };
  const auto composed = make(exact).then(make(summed));
  EXPECT_EQ(composed.num_steps(), 2);
  EXPECT_TRUE(composed.fully_annotated());  // annotations survived
  EXPECT_EQ(composed.step(1).transfers.size(), 4u);
}

TEST(CollectiveSchedule, MaxBytesSentPerNode) {
  auto s = make_sched();
  Step st;
  st.matching = Matching::from_pairs(4, {{0, 1}});
  st.volume = kib(4);
  s.add_step(st);
  Step st2;
  st2.matching = Matching::rotation(4, 1);
  st2.volume = kib(8);
  s.add_step(st2);
  // Node 0 sends in both steps: 4 + 8 KiB.
  EXPECT_DOUBLE_EQ(s.max_bytes_sent_per_node().kib(), 12.0);
}

TEST(CollectiveSchedule, AggregateDemandSumsVolumes) {
  auto s = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = kib(4);
  s.add_step(st);
  s.add_step(st);
  const auto agg = s.aggregate_demand();
  EXPECT_DOUBLE_EQ(agg(0, 1), 2.0 * kib(4).count());
  EXPECT_DOUBLE_EQ(agg(1, 0), 0.0);
}

TEST(CollectiveSchedule, ThenConcatenatesSteps) {
  auto a = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = kib(1);
  a.add_step(st);
  auto b = make_sched();
  Step st2;
  st2.matching = Matching::rotation(4, 2);
  st2.volume = kib(2);
  b.add_step(st2);

  const auto c = a.then(b);
  EXPECT_EQ(c.num_steps(), 2);
  EXPECT_EQ(c.name(), "test+test");
  EXPECT_DOUBLE_EQ(c.step(1).volume.kib(), 2.0);
}

TEST(CollectiveSchedule, ThenDropsIncompatibleAnnotations) {
  auto a = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = a.chunk_size();
  for (int j = 0; j < 4; ++j) st.transfers.push_back({j, (j + 1) % 4, {j}, false});
  a.add_step(st);

  CollectiveSchedule b("other", 4, mib(2), 8, ChunkSpace::kSegments);
  Step st2;
  st2.matching = Matching::rotation(4, 1);
  st2.volume = b.chunk_size();
  for (int j = 0; j < 4; ++j) st2.transfers.push_back({j, (j + 1) % 4, {j}, false});
  b.add_step(st2);

  const auto c = a.then(b);
  EXPECT_EQ(c.num_steps(), 2);
  EXPECT_FALSE(c.step(1).transfers.size() > 0);  // dropped: layouts differ
  EXPECT_TRUE(c.step(0).transfers.size() > 0);   // kept

  const CollectiveSchedule wrong_n("x", 8, mib(1), 8, ChunkSpace::kSegments);
  EXPECT_THROW((void)a.then(wrong_n), psd::InvalidArgument);
}

TEST(CollectiveSchedule, StepIndexBounds) {
  const auto s = make_sched();
  EXPECT_THROW((void)s.step(0), psd::InvalidArgument);
}

// The pipelining-granularity accessors behind SimConfig::pipeline_chunks=0:
// the widest per-pair transfer is the finest split a pipelined executor can
// use without going below the schedule's own chunk size.
TEST(CollectiveSchedule, MaxTransferChunksPerStep) {
  auto s = make_sched();
  Step wide;
  wide.matching = Matching::rotation(4, 1);
  wide.volume = s.chunk_size() * 2.0;
  for (int j = 0; j < 4; ++j) {
    wide.transfers.push_back({j, (j + 1) % 4, {j, (j + 2) % 4}, false});
  }
  EXPECT_EQ(wide.max_transfer_chunks(), 2);

  Step bare;  // un-annotated: no transfer to take a width from
  bare.matching = Matching::rotation(4, 1);
  bare.volume = kib(1);
  EXPECT_EQ(bare.max_transfer_chunks(), 0);
}

TEST(CollectiveSchedule, NaturalPipelineChunks) {
  // No annotated step anywhere: fall back to the declared chunk count.
  auto bare = make_sched();
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = kib(1);
  bare.add_step(st);
  EXPECT_EQ(bare.natural_pipeline_chunks(), 4);
  EXPECT_EQ(make_sched().natural_pipeline_chunks(), 4);  // even with no steps

  // Single-chunk transfers: already chunk-granular, nothing to split.
  auto fine = make_sched();
  Step single;
  single.matching = Matching::rotation(4, 1);
  single.volume = fine.chunk_size();
  for (int j = 0; j < 4; ++j) {
    single.transfers.push_back({j, (j + 1) % 4, {j}, false});
  }
  fine.add_step(single);
  EXPECT_EQ(fine.natural_pipeline_chunks(), 1);

  // Mixed widths across steps: the widest annotated step wins, and an
  // un-annotated step in between doesn't reset the maximum.
  auto mixed = make_sched();
  Step wide;
  wide.matching = Matching::rotation(4, 1);
  wide.volume = mixed.chunk_size() * 2.0;
  for (int j = 0; j < 4; ++j) {
    wide.transfers.push_back({j, (j + 1) % 4, {j, (j + 2) % 4}, false});
  }
  mixed.add_step(wide);
  mixed.add_step(st);      // un-annotated
  mixed.add_step(single);  // width 1
  EXPECT_EQ(mixed.natural_pipeline_chunks(), 2);
}

}  // namespace
}  // namespace psd::collective
