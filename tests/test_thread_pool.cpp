#include "psd/util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "psd/util/cancellation.hpp"

namespace psd::util {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesFirstExceptionAsJobError) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i == 37) throw std::invalid_argument("x");
    });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    // Job identity attached: the wrapper names the failing index and the
    // original exception survives for callers pinned to serial semantics.
    EXPECT_EQ(e.job_index(), 37u);
    EXPECT_NE(std::string(e.what()).find("job 37"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find('x'), std::string::npos);
    EXPECT_THROW(e.rethrow_original(), std::invalid_argument);
  }
}

TEST(ThreadPool, ParallelForInlinePathWrapsIdentically) {
  // Single-worker pools run inline; the error contract must not change
  // with pool size.
  ThreadPool pool(1);
  try {
    pool.parallel_for(5, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("inline boom");
    });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.job_index(), 3u);
    EXPECT_THROW(e.rethrow_original(), std::runtime_error);
  }
}

TEST(ThreadPool, ParallelForDoesNotDoubleWrapJobError) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t i) {
      if (i == 2) {
        throw JobError(99, std::make_exception_ptr(std::runtime_error("inner")),
                       "inner");
      }
    });
    FAIL() << "expected JobError";
  } catch (const JobError& e) {
    EXPECT_EQ(e.job_index(), 99u);  // original wrapper passes through
  }
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, OnWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);
  auto fut = pool.submit([] { return ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(fut.get());
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A task that itself fans out must not wait on the pool it occupies —
  // nested parallelism collapses to inline execution on the worker.
  ThreadPool pool(2);
  auto fut = pool.submit([&pool] {
    std::atomic<int> inner{0};
    pool.parallel_for(50, [&](std::size_t) {
      EXPECT_TRUE(ThreadPool::on_worker_thread());
      inner.fetch_add(1, std::memory_order_relaxed);
    });
    return inner.load();
  });
  EXPECT_EQ(fut.get(), 50);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  auto& pool = ThreadPool::shared();
  EXPECT_GE(pool.size(), 1u);
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPool, ManyConcurrentSubmits) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futs;
  futs.reserve(200);
  for (std::size_t i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(futs[i].get(), i * i);
  }
}

// ---- CancellationToken ---------------------------------------------------

TEST(CancellationToken, DefaultIsDisarmed) {
  CancellationToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.remaining(), std::chrono::nanoseconds::max());
  EXPECT_NO_THROW(t.check("solve"));
}

TEST(CancellationToken, CancelIsStickyUntilReset) {
  CancellationToken t;
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_THROW(t.check("solve"), psd::Cancelled);
  EXPECT_TRUE(t.cancelled());  // still cancelled after the throw
  t.reset();
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.check("solve"));
}

TEST(CancellationToken, DeadlineArithmetic) {
  CancellationToken t;
  t.set_deadline_after(std::chrono::hours(1));
  EXPECT_FALSE(t.cancelled());
  EXPECT_GT(t.remaining(), std::chrono::minutes(59));
  EXPECT_LE(t.remaining(), std::chrono::hours(1));

  t.set_deadline_after(std::chrono::nanoseconds(0));  // non-positive: now
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.remaining(), std::chrono::nanoseconds(0));
  EXPECT_THROW(t.check("late"), psd::Cancelled);

  t.reset();  // disarms the deadline too
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.remaining(), std::chrono::nanoseconds::max());
}

TEST(CancellationToken, CancelledMessageNamesTheOperation) {
  CancellationToken t;
  t.cancel();
  try {
    t.check("gk phase loop");
    FAIL() << "expected Cancelled";
  } catch (const psd::Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("gk phase loop"), std::string::npos);
  }
}

}  // namespace
}  // namespace psd::util
