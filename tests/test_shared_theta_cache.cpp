// SharedThetaCache and its util::ShardedLruCache substrate: single-shard LRU
// semantics, cross-tenant sharing, graph-fingerprint isolation, eviction,
// and concurrent multi-oracle hammering.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "psd/flow/theta.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"
#include "psd/util/sharded_lru.hpp"

namespace {

using namespace psd;

// ---- util::ShardedLruCache ----------------------------------------------

TEST(ShardedLruCache, MissThenInsertThenHit) {
  util::ShardedLruCache<int, double> cache(8, 1);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.insert(1, 2.5), 2.5);
  const auto v = cache.lookup(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLruCache, FirstWriterWinsOnDuplicateInsert) {
  util::ShardedLruCache<int, double> cache(8, 1);
  EXPECT_EQ(cache.insert(7, 1.0), 1.0);
  // Losing writer gets the canonical value back, no second insertion.
  EXPECT_EQ(cache.insert(7, 99.0), 1.0);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(*cache.lookup(7), 1.0);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedWithinShard) {
  // One shard so the LRU order is global and deterministic.
  util::ShardedLruCache<int, int> cache(3, 1);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(3, 30);
  // Touch 1 so 2 becomes the LRU tail, then overflow.
  EXPECT_TRUE(cache.lookup(1).has_value());
  cache.insert(4, 40);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_TRUE(cache.lookup(4).has_value());
}

TEST(ShardedLruCache, ShardCountRoundsUpToPowerOfTwo) {
  util::ShardedLruCache<int, int> cache(100, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
  util::ShardedLruCache<int, int> one(100, 1);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ShardedLruCache, CapacitySpreadsAcrossShards) {
  // 16 entries over 4 shards = 4 per shard; inserting many distinct keys
  // never grows past the total bound (modulo per-shard rounding).
  util::ShardedLruCache<int, int> cache(16, 4);
  for (int i = 0; i < 1000; ++i) cache.insert(i, i);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GE(cache.stats().evictions, 1000u - 16u - 3u);
}

TEST(ShardedLruCache, ConcurrentMixedLookupInsert) {
  util::ShardedLruCache<int, int> cache(1 << 10, 8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 256;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int round = 0; round < 50; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          const int key = (k + t * 17) % kKeys;
          if (const auto v = cache.lookup(key)) {
            // Values are pure functions of the key.
            ASSERT_EQ(*v, key * 3);
          } else {
            ASSERT_EQ(cache.insert(key, key * 3), key * 3);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(stats.insertions, static_cast<std::size_t>(kKeys));
  EXPECT_EQ(stats.evictions, 0u);
  // Every lookup either hit or missed; the sum is exact even under races.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::size_t>(kThreads) * 50u * kKeys);
}

// ---- topo::graph_fingerprint --------------------------------------------

TEST(GraphFingerprint, EqualGraphsCollideDifferentGraphsDoNot) {
  const auto a = topo::directed_ring(8, gbps(800));
  const auto b = topo::directed_ring(8, gbps(800));
  EXPECT_EQ(topo::graph_fingerprint(a), topo::graph_fingerprint(b));
  EXPECT_NE(topo::graph_fingerprint(a),
            topo::graph_fingerprint(topo::directed_ring(9, gbps(800))));
  EXPECT_NE(topo::graph_fingerprint(a),
            topo::graph_fingerprint(topo::full_mesh(8, gbps(800))));
  // Capacity participates in the key exactly as θ distinguishes it.
  EXPECT_NE(topo::graph_fingerprint(a),
            topo::graph_fingerprint(topo::directed_ring(8, gbps(400))));
}

// ---- sweep::SharedThetaCache --------------------------------------------

TEST(SharedThetaCache, OraclesOnSameGraphShareEntries) {
  const auto g = topo::directed_ring(16, gbps(800));
  auto cache = sweep::make_shared_theta_cache();
  flow::ThetaOptions opts;
  opts.shared_cache = cache;
  const flow::ThetaOracle a(g, gbps(800), opts);
  const flow::ThetaOracle b(g, gbps(800), opts);

  const auto m = topo::Matching::rotation(16, 5);
  const double va = a.theta(m);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().entries, 1u);
  const double vb = b.theta(m);
  EXPECT_EQ(va, vb);
  // Second oracle was served from the shared memo, not a private solve.
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().entries, 1u);
  // The private per-oracle caches sat idle.
  EXPECT_EQ(a.cache_size(), 0u);
  EXPECT_EQ(b.cache_size(), 0u);
}

TEST(SharedThetaCache, SharedValuesMatchPrivateCacheValues) {
  for (const auto& g : {topo::directed_ring(12, gbps(800)),
                        topo::torus_2d(3, 4, gbps(800))}) {
    auto cache = sweep::make_shared_theta_cache();
    flow::ThetaOptions shared_opts;
    shared_opts.shared_cache = cache;
    const flow::ThetaOracle shared_oracle(g, gbps(800), shared_opts);
    const flow::ThetaOracle private_oracle(g, gbps(800));
    for (int k = 1; k < 12; ++k) {
      const auto m = topo::Matching::rotation(12, k);
      EXPECT_EQ(shared_oracle.theta(m), private_oracle.theta(m)) << "k=" << k;
      // Cached read-back agrees too.
      EXPECT_EQ(shared_oracle.theta(m), private_oracle.theta(m)) << "k=" << k;
    }
  }
}

TEST(SharedThetaCache, GraphFingerprintIsolatesTopologies) {
  // Same destination vectors, different topologies: entries must not mix.
  const auto ring = topo::directed_ring(8, gbps(800));
  const auto mesh = topo::full_mesh(8, gbps(800));
  auto cache = sweep::make_shared_theta_cache();
  flow::ThetaOptions opts;
  opts.shared_cache = cache;
  const flow::ThetaOracle ring_oracle(ring, gbps(800), opts);
  const flow::ThetaOracle mesh_oracle(mesh, gbps(800), opts);

  const auto m = topo::Matching::rotation(8, 3);
  const double theta_ring = ring_oracle.theta(m);
  const double theta_mesh = mesh_oracle.theta(m);
  // On the mesh every pair has a direct link: θ = 1. On the ring a k=3
  // rotation shares links: θ < 1. A key collision would conflate them.
  EXPECT_NE(theta_ring, theta_mesh);
  EXPECT_EQ(cache->stats().entries, 2u);
  EXPECT_EQ(cache->stats().misses, 2u);
  // Read back through fresh oracles: both served from the right entry.
  const flow::ThetaOracle ring2(ring, gbps(800), opts);
  const flow::ThetaOracle mesh2(mesh, gbps(800), opts);
  EXPECT_EQ(ring2.theta(m), theta_ring);
  EXPECT_EQ(mesh2.theta(m), theta_mesh);
  EXPECT_EQ(cache->stats().hits, 2u);
}

TEST(SharedThetaCache, DifferentBandwidthOrSolverOptionsDoNotShareEntries) {
  // θ is normalized by b_ref and shaped by the solver options, so the
  // context fingerprint must isolate oracles that differ in either — a
  // graph-only key would let an 800 Gbps tenant serve a 400 Gbps tenant a
  // 2x-wrong θ.
  const auto g = topo::directed_ring(8, gbps(800));
  auto cache = sweep::make_shared_theta_cache();
  flow::ThetaOptions opts;
  opts.shared_cache = cache;
  const flow::ThetaOracle fast(g, gbps(800), opts);
  const flow::ThetaOracle slow(g, gbps(400), opts);
  const auto m = topo::Matching::rotation(8, 3);
  const double theta_fast = fast.theta(m);
  const double theta_slow = slow.theta(m);
  EXPECT_EQ(theta_slow, 2.0 * theta_fast);  // half the demand per unit link
  EXPECT_EQ(cache->stats().entries, 2u);
  EXPECT_EQ(cache->stats().misses, 2u);

  // Solver-option changes are isolated the same way (fresh entry, not a
  // hit against the default-options entry).
  flow::ThetaOptions tweaked = opts;
  tweaked.epsilon = 0.2;
  tweaked.exact_var_limit = 0;  // force the FPTAS everywhere
  const flow::ThetaOracle approx(g, gbps(800), tweaked);
  (void)approx.theta(m);
  EXPECT_EQ(cache->stats().entries, 3u);
}

TEST(SharedThetaCache, LruEvictionAcrossTenantsRecomputesCorrectly) {
  const auto g = topo::directed_ring(16, gbps(800));
  auto cache = sweep::make_shared_theta_cache(
      sweep::SharedThetaCacheOptions{.capacity = 4, .shards = 1});
  flow::ThetaOptions opts;
  opts.shared_cache = cache;
  const flow::ThetaOracle oracle(g, gbps(800), opts);

  std::vector<double> reference;
  for (int k = 1; k < 16; ++k) {
    reference.push_back(oracle.theta(topo::Matching::rotation(16, k)));
  }
  EXPECT_GE(cache->stats().evictions, 15u - 4u);
  EXPECT_LE(cache->stats().entries, 4u);
  // Evicted entries are recomputed, not wrong.
  for (int k = 1; k < 16; ++k) {
    EXPECT_EQ(oracle.theta(topo::Matching::rotation(16, k)),
              reference[static_cast<std::size_t>(k - 1)]);
  }
}

TEST(SharedThetaCache, UseCacheFalseBypassesSharedCache) {
  const auto g = topo::directed_ring(8, gbps(800));
  auto cache = sweep::make_shared_theta_cache();
  flow::ThetaOptions opts;
  opts.use_cache = false;
  opts.shared_cache = cache;
  const flow::ThetaOracle oracle(g, gbps(800), opts);
  (void)oracle.theta(topo::Matching::rotation(8, 1));
  const auto stats = cache->stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(SharedThetaCache, ConcurrentMultiOracleHammering) {
  // Several threads, each with its own oracle (two distinct topologies),
  // hammer overlapping rotations through one shared cache. Values must
  // match a serial single-oracle reference exactly; counters must add up.
  const auto ring = topo::directed_ring(16, gbps(800));
  const auto cube = topo::hypercube(4, gbps(800));
  const flow::ThetaOracle ring_ref(ring, gbps(800), {});
  const flow::ThetaOracle cube_ref(cube, gbps(800), {});
  std::vector<double> ref_ring, ref_cube;
  for (int k = 1; k < 16; ++k) {
    ref_ring.push_back(ring_ref.theta(topo::Matching::rotation(16, k)));
    ref_cube.push_back(cube_ref.theta(topo::Matching::rotation(16, k)));
  }

  auto cache = sweep::make_shared_theta_cache(
      sweep::SharedThetaCacheOptions{.capacity = 1 << 10, .shards = 4});
  flow::ThetaOptions opts;
  opts.shared_cache = cache;
  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const bool use_ring = t % 2 == 0;
      const flow::ThetaOracle oracle(use_ring ? ring : cube, gbps(800), opts);
      const auto& ref = use_ring ? ref_ring : ref_cube;
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 1; k < 16; ++k) {
          const double v = oracle.theta(topo::Matching::rotation(16, k));
          ASSERT_EQ(v, ref[static_cast<std::size_t>(k - 1)])
              << "t=" << t << " k=" << k;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = cache->stats();
  EXPECT_EQ(stats.entries, 30u);  // 15 rotations x 2 topologies
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::size_t>(kThreads) * kRounds * 15u);
  // Racing first-round misses may each solve, but the steady state hits:
  // at least every round after the first per thread.
  EXPECT_GE(stats.hits, static_cast<std::size_t>(kThreads) * (kRounds - 1) * 15u);
}

// ---- Heterogeneous (borrowed-key) lookup ---------------------------------

TEST(ShardedLruCache, TransparentLookupFindsOwnedKeys) {
  // A string cache probed with string_views: the transparent hash/eq route
  // the view to the same shard and map slot as the owning key, so lookups
  // build no temporary std::string. The sweep's SharedThetaCache uses the
  // same mechanism with a borrowed destination vector.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  util::ShardedLruCache<std::string, int, Hash, Eq> cache(64, 8);
  for (int i = 0; i < 20; ++i) {
    cache.insert("key-" + std::to_string(i), i);
  }
  for (int i = 0; i < 20; ++i) {
    const std::string owned = "key-" + std::to_string(i);
    const std::string_view view = owned;
    const auto hit = cache.lookup(view);
    ASSERT_TRUE(hit.has_value()) << owned;
    EXPECT_EQ(*hit, i);
  }
  EXPECT_FALSE(cache.lookup(std::string_view("key-99")).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 20u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SharedThetaCache, LookupDoesNotCopyDestinations) {
  // Functional check of the KeyView path: entries inserted with owning keys
  // are found by borrowed-vector probes across many shards, and repeated
  // probes count as hits (same shard, same slot — i.e. hash/eq agree
  // between Key and KeyView).
  sweep::SharedThetaCache cache({.capacity = 1 << 10, .shards = 8});
  std::vector<std::vector<int>> keys;
  for (int k = 1; k < 40; ++k) {
    keys.push_back(topo::Matching::rotation(64, k).destinations());
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    cache.insert(0xfeedULL + (i % 3), keys[i], static_cast<double>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto hit = cache.lookup(0xfeedULL + (i % 3), keys[i]);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, static_cast<double>(i));
    // Same destinations under a different context fingerprint: distinct key.
    EXPECT_FALSE(cache.lookup(0xbeefULL, keys[i]).has_value());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, keys.size());
  EXPECT_EQ(stats.entries, keys.size());
}

}  // namespace
