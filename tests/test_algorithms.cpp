#include "psd/collective/algorithms.hpp"

#include <gtest/gtest.h>

#include "psd/collective/executor.hpp"

namespace psd::collective {
namespace {

using topo::Matching;

// ---------------- Ring AllReduce ----------------------------------------

class RingAllReduceP : public ::testing::TestWithParam<int> {};

TEST_P(RingAllReduceP, SemanticsAndShape) {
  const int n = GetParam();
  const auto sched = ring_allreduce(n, mib(1));
  EXPECT_EQ(sched.num_steps(), 2 * (n - 1));
  EXPECT_TRUE(is_valid_allreduce(sched)) << "n=" << n;
  // Every step is the +1 rotation carrying one chunk.
  for (const auto& step : sched.steps()) {
    EXPECT_TRUE(step.matching == Matching::rotation(n, 1));
    EXPECT_DOUBLE_EQ(step.volume.count(), mib(1).count() / n);
  }
  // Bandwidth-optimal: 2(n−1)/n · M per node.
  EXPECT_NEAR(sched.max_bytes_sent_per_node().count(),
              2.0 * (n - 1) / n * mib(1).count(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingAllReduceP,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 64));

TEST(RingPhases, ReduceScatterOwnership) {
  const int n = 6;
  const auto rs = ring_reduce_scatter(n, mib(1));
  EXPECT_EQ(rs.num_steps(), n - 1);
  const ChunkExecutor exec(rs, InitMode::kAllReduce);
  // Chunk c travels one hop per step and is fully reduced at node
  // (c + n − 1) mod n = (c − 1) mod n after the ring pass.
  std::vector<int> owners(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) owners[static_cast<std::size_t>(c)] = (c + n - 1) % n;
  EXPECT_TRUE(exec.verify_reduce_scatter(owners));
}

TEST(RingPhases, AllGatherCompletesFromOwnership) {
  const int n = 6;
  // Compose rs+ag manually and check the full pipeline (same as
  // ring_allreduce, but exercises then()).
  const auto composed = ring_reduce_scatter(n, mib(1)).then(ring_allgather(n, mib(1)));
  EXPECT_TRUE(is_valid_allreduce(composed));
}

// ---------------- Recursive exchange family -----------------------------

class AllReduceFamilyP
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 public:
  static CollectiveSchedule build(const std::string& algo, int n) {
    if (algo == "ring") return ring_allreduce(n, mib(4));
    if (algo == "hd") return halving_doubling_allreduce(n, mib(4));
    if (algo == "swing") return swing_allreduce(n, mib(4));
    if (algo == "rd") return recursive_doubling_allreduce(n, mib(4));
    throw psd::InvalidArgument("unknown algorithm " + algo);
  }
};

TEST_P(AllReduceFamilyP, ProducesCorrectAllReduce) {
  const auto [algo, n] = GetParam();
  EXPECT_TRUE(is_valid_allreduce(build(algo, n))) << algo << " n=" << n;
}

TEST_P(AllReduceFamilyP, NoDoubleCounting) {
  const auto [algo, n] = GetParam();
  const ChunkExecutor exec(build(algo, n), InitMode::kAllReduce);
  EXPECT_FALSE(exec.double_counted());
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSizes, AllReduceFamilyP,
    ::testing::Combine(::testing::Values("ring", "hd", "swing", "rd"),
                       ::testing::Values(2, 4, 8, 16, 32, 64)));

TEST(HalvingDoubling, StepCountLogarithmic) {
  EXPECT_EQ(halving_doubling_allreduce(64, mib(1)).num_steps(), 12);
  EXPECT_EQ(swing_allreduce(64, mib(1)).num_steps(), 12);
  EXPECT_EQ(recursive_doubling_allreduce(64, mib(1)).num_steps(), 6);
}

TEST(RecursiveDoubling, FullVectorEveryStep) {
  const auto sched = recursive_doubling_allreduce(8, mib(2));
  for (const auto& step : sched.steps()) {
    EXPECT_DOUBLE_EQ(step.volume.mib(), 2.0);
  }
  // Latency-optimal but NOT bandwidth-optimal: log2(n)·M per node.
  EXPECT_DOUBLE_EQ(sched.max_bytes_sent_per_node().mib(), 3 * 2.0);
}

TEST(RecursiveDoubling, PeersAreXor) {
  const auto sched = recursive_doubling_allreduce(8, mib(1));
  for (int s = 0; s < 3; ++s) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(sched.step(s).matching.dst_of(j), j ^ (1 << s));
    }
  }
}

// ---------------- All-to-All ---------------------------------------------

class AllToAllP : public ::testing::TestWithParam<int> {};

TEST_P(AllToAllP, TransposeSemantics) {
  const int n = GetParam();
  const auto sched = alltoall_transpose(n, mib(1));
  EXPECT_EQ(sched.num_steps(), n - 1);
  EXPECT_TRUE(is_valid_alltoall(sched)) << "n=" << n;
  for (int i = 1; i < n; ++i) {
    EXPECT_TRUE(sched.step(i - 1).matching == Matching::rotation(n, i));
    EXPECT_DOUBLE_EQ(sched.step(i - 1).volume.count(), mib(1).count() / n);
  }
  // Each node ships (n−1)/n · M in total.
  EXPECT_NEAR(sched.max_bytes_sent_per_node().count(),
              (n - 1.0) / n * mib(1).count(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllToAllP, ::testing::Values(2, 3, 4, 7, 8, 16, 64));

class BruckP : public ::testing::TestWithParam<int> {};

TEST_P(BruckP, LogStepAllToAll) {
  const int n = GetParam();
  const auto sched = alltoall_bruck(n, mib(1));
  int q = 0;
  while ((1 << q) < n) ++q;
  EXPECT_EQ(sched.num_steps(), q);
  EXPECT_TRUE(is_valid_alltoall(sched)) << "n=" << n;
  // Every step carries exactly M/2 per node over a power-of-two rotation.
  for (int k = 0; k < q; ++k) {
    EXPECT_TRUE(sched.step(k).matching == Matching::rotation(n, 1 << k));
    EXPECT_DOUBLE_EQ(sched.step(k).volume.count(), mib(1).count() / 2.0);
  }
  // Total traffic: q·M/2 per node (relaying costs bandwidth).
  EXPECT_NEAR(sched.max_bytes_sent_per_node().count(), q * mib(1).count() / 2.0,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BruckP, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Bruck, TradesBandwidthForSteps) {
  // Versus the transpose: log(n) steps instead of n−1, but more bytes.
  const int n = 32;
  const auto bruck = alltoall_bruck(n, mib(1));
  const auto transpose = alltoall_transpose(n, mib(1));
  EXPECT_LT(bruck.num_steps(), transpose.num_steps());
  EXPECT_GT(bruck.max_bytes_sent_per_node().count(),
            transpose.max_bytes_sent_per_node().count());
}

TEST(Bruck, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)alltoall_bruck(6, mib(1)), psd::InvalidArgument);
}

// ---------------- Broadcast ----------------------------------------------

class BroadcastP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BroadcastP, AllNodesReceiveRootData) {
  const auto [n, root] = GetParam();
  const auto sched = binomial_broadcast(n, root, mib(1));
  const ChunkExecutor exec(sched, InitMode::kBroadcast, root);
  EXPECT_TRUE(exec.verify_all_complete()) << "n=" << n << " root=" << root;
  // ceil(log2(n)) steps.
  int q = 0;
  while ((1 << q) < n) ++q;
  EXPECT_EQ(sched.num_steps(), q);
}

INSTANTIATE_TEST_SUITE_P(SizesAndRoots, BroadcastP,
                         ::testing::Values(std::tuple{2, 0}, std::tuple{5, 0},
                                           std::tuple{8, 3}, std::tuple{16, 15},
                                           std::tuple{13, 6}, std::tuple{64, 0}));

TEST(Broadcast, RejectsBadRoot) {
  EXPECT_THROW((void)binomial_broadcast(4, 4, mib(1)), psd::InvalidArgument);
  EXPECT_THROW((void)binomial_broadcast(4, -1, mib(1)), psd::InvalidArgument);
}

// ---------------- Allgather ----------------------------------------------

TEST(RecursiveDoublingAllgather, CompletesAndDoublesVolumes) {
  const int n = 16;
  const auto sched = recursive_doubling_allgather(n, mib(1));
  EXPECT_EQ(sched.num_steps(), 4);
  const ChunkExecutor exec(sched, InitMode::kAllGather);
  EXPECT_TRUE(exec.verify_all_complete());
  for (int s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(sched.step(s).volume.count(),
                     mib(1).count() / n * (1 << s));
  }
}

TEST(RingAllgather, CompletesFromRingOwnership) {
  // Ring allgather assumes the ring reduce-scatter's ownership: node j
  // holds chunk (j+1) mod n, i.e. chunk c lives at node (c−1) mod n.
  const int n = 8;
  const auto sched = ring_allgather(n, mib(1));
  std::vector<int> owners(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) owners[static_cast<std::size_t>(c)] = (c + n - 1) % n;
  const ChunkExecutor exec(sched, owners);
  EXPECT_TRUE(exec.verify_all_complete());

  // From the *wrong* ownership (node j holding chunk j) it must fail.
  const ChunkExecutor wrong(sched, InitMode::kAllGather);
  EXPECT_FALSE(wrong.verify_all_complete());
}

class BruckAllgatherP : public ::testing::TestWithParam<int> {};

TEST_P(BruckAllgatherP, AnyNodeCountCompletes) {
  const int n = GetParam();
  const auto sched = bruck_allgather(n, mib(1));
  int q = 0;
  while ((1 << q) < n) ++q;
  EXPECT_EQ(sched.num_steps(), q);  // ceil(log2 n) — beats the ring's n−1
  const ChunkExecutor exec(sched, InitMode::kAllGather);
  EXPECT_TRUE(exec.verify_all_complete()) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BruckAllgatherP,
                         ::testing::Values(2, 3, 5, 6, 8, 13, 16, 33, 64));

class ReduceP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReduceP, RootAccumulatesEverything) {
  const auto [n, root] = GetParam();
  const auto sched = binomial_reduce(n, root, mib(1));
  const ChunkExecutor exec(sched, InitMode::kAllReduce);
  EXPECT_FALSE(exec.double_counted());
  EXPECT_TRUE(exec.verify_reduce_scatter({root})) << "n=" << n << " root=" << root;
  // Non-roots are NOT fully reduced (it is a reduce, not an allreduce).
  const int other = (root + 1) % n;
  EXPECT_FALSE(exec.mask_full(other, 0));
}

INSTANTIATE_TEST_SUITE_P(SizesAndRoots, ReduceP,
                         ::testing::Values(std::tuple{2, 0}, std::tuple{5, 2},
                                           std::tuple{8, 0}, std::tuple{8, 7},
                                           std::tuple{13, 6}, std::tuple{64, 9}));

TEST(ScatterGather, ScatterDeliversDistinctChunks) {
  const int n = 8;
  const int root = 3;
  const auto sched = binomial_scatter(n, root, mib(1));
  EXPECT_EQ(sched.num_steps(), 3);
  // Root starts with the whole buffer (all chunks complete).
  std::vector<int> owners(static_cast<std::size_t>(n), root);
  const ChunkExecutor exec(sched, owners);
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(exec.mask_full((root + r) % n, r)) << "relative rank " << r;
  }
  // Volumes halve: n/2, n/4, ... chunks.
  EXPECT_DOUBLE_EQ(sched.step(0).volume.count(), mib(1).count() / 2);
  EXPECT_DOUBLE_EQ(sched.step(2).volume.count(), mib(1).count() / 8);
}

TEST(ScatterGather, GatherCollectsAllChunksAtRoot) {
  const int n = 16;
  const int root = 5;
  const auto sched = binomial_gather(n, root, mib(1));
  EXPECT_EQ(sched.num_steps(), 4);
  // Node (root + r) starts owning relative chunk r.
  std::vector<int> owners(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) owners[static_cast<std::size_t>(r)] = (root + r) % n;
  const ChunkExecutor exec(sched, owners);
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(exec.mask_full(root, r)) << "chunk " << r;
  }
}

TEST(ScatterGather, GatherMirrorsScatterVolumes) {
  const int n = 8;
  const auto scatter = binomial_scatter(n, 0, mib(1));
  const auto gather = binomial_gather(n, 0, mib(1));
  ASSERT_EQ(scatter.num_steps(), gather.num_steps());
  for (int i = 0; i < scatter.num_steps(); ++i) {
    EXPECT_DOUBLE_EQ(
        scatter.step(i).volume.count(),
        gather.step(gather.num_steps() - 1 - i).volume.count());
  }
}

TEST(ScatterGather, RejectNonPowerOfTwoAndBadRoot) {
  EXPECT_THROW((void)binomial_scatter(6, 0, mib(1)), psd::InvalidArgument);
  EXPECT_THROW((void)binomial_gather(6, 0, mib(1)), psd::InvalidArgument);
  EXPECT_THROW((void)binomial_scatter(8, 8, mib(1)), psd::InvalidArgument);
  EXPECT_THROW((void)binomial_reduce(8, -1, mib(1)), psd::InvalidArgument);
}

class BarrierP : public ::testing::TestWithParam<int> {};

TEST_P(BarrierP, EveryoneHearsFromEveryone) {
  const int n = GetParam();
  const auto sched = dissemination_barrier(n, bytes(64));
  int q = 0;
  while ((1 << q) < n) ++q;
  EXPECT_EQ(sched.num_steps(), q);
  const ChunkExecutor exec(sched, InitMode::kAllReduce);
  EXPECT_TRUE(exec.verify_all_complete()) << "n=" << n;
}

TEST_P(BarrierP, OneFewerRoundIsInsufficient) {
  const int n = GetParam();
  const auto full = dissemination_barrier(n, bytes(64));
  if (full.num_steps() < 2) GTEST_SKIP();
  CollectiveSchedule partial("partial-barrier", n, bytes(64), 1,
                             ChunkSpace::kSegments);
  for (int i = 0; i + 1 < full.num_steps(); ++i) partial.add_step(full.step(i));
  const ChunkExecutor exec(partial, InitMode::kAllReduce);
  EXPECT_FALSE(exec.verify_all_complete()) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierP, ::testing::Values(2, 3, 5, 8, 17, 64));

// ---------------- Composition ---------------------------------------------

TEST(Composition, AllReduceThenAllToAllKeepsStructure) {
  // §3.3: the framework supports sequences of collectives.
  const auto composed = halving_doubling_allreduce(8, mib(1))
                            .then(alltoall_transpose(8, mib(1)));
  EXPECT_EQ(composed.num_steps(), 6 + 7);
  // Annotations of the tail are dropped (different chunk spaces) but
  // matchings and volumes survive.
  EXPECT_TRUE(composed.step(6).matching == Matching::rotation(8, 1));
  EXPECT_DOUBLE_EQ(composed.step(6).volume.count(), mib(1).count() / 8);
}

}  // namespace
}  // namespace psd::collective
