#include "psd/flow/ring_theta.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(RingTheta, RotationThetaIsInverseDistance) {
  const auto g = topo::directed_ring(8, gbps(800));
  for (int k = 1; k < 8; ++k) {
    const auto res = ring_concurrent_flow(g, Matching::rotation(8, k), gbps(800));
    ASSERT_TRUE(res.has_value());
    // Every flow travels k clockwise hops; each link carries k flows.
    EXPECT_NEAR(res->theta, 1.0 / k, 1e-12) << "k=" << k;
  }
}

TEST(RingTheta, SinglePairFullThroughput) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto res =
      ring_concurrent_flow(g, Matching::from_pairs(8, {{0, 5}}), gbps(800));
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->theta, 1.0, 1e-12);
}

TEST(RingTheta, PairwiseExchangeLongWayBack) {
  const auto g = topo::directed_ring(8, gbps(800));
  // 0 <-> 1: the reverse flow wraps 7 links but no link is shared twice.
  const auto res = ring_concurrent_flow(
      g, Matching::from_pairs(8, {{0, 1}, {1, 0}}), gbps(800));
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->theta, 1.0, 1e-12);
}

TEST(RingTheta, DenseExchangeCongests) {
  const int n = 8;
  const auto g = topo::directed_ring(n, gbps(800));
  // Neighbour exchange (0,1)(2,3)(4,5)(6,7) in both directions: the four
  // long-way-back flows stack up on shared links.
  Matching m(n);
  for (int j = 0; j < n; j += 2) {
    m.set(j, j + 1);
    m.set(j + 1, j);
  }
  const auto res = ring_concurrent_flow(g, m, gbps(800));
  ASSERT_TRUE(res.has_value());
  // Link (1,2) is crossed by the long flows from 1, 3, 5, 7 except the one
  // ending at 2... exact value: max load is 4 (computed by hand): flows
  // 1->0, 3->2, 5->4, 7->6 wrap nearly the whole ring; the most loaded link
  // carries 4 of them minus boundary effects. Verify against brute force.
  double max_load = 0.0;
  const auto caps = normalized_capacities(g, gbps(800));
  const auto& loads = res->flow.edge_loads();
  for (int e = 0; e < g.num_edges(); ++e) {
    const double load = loads[static_cast<std::size_t>(e)];
    EXPECT_LE(load, caps[static_cast<std::size_t>(e)] + 1e-9);
    max_load = std::max(max_load, load);
  }
  // θ-scaled loads saturate the bottleneck exactly.
  EXPECT_NEAR(max_load, 1.0, 1e-9);
  EXPECT_GT(res->theta, 0.0);
  EXPECT_LT(res->theta, 0.5);
}

TEST(RingTheta, CapacityScalesWithReference) {
  const auto g = topo::directed_ring(6, gbps(400));
  const auto res = ring_concurrent_flow(g, Matching::rotation(6, 1), gbps(800));
  ASSERT_TRUE(res.has_value());
  // Links are half the transceiver reference rate.
  EXPECT_NEAR(res->theta, 0.5, 1e-12);
}

TEST(RingTheta, StridedRingRemapsDistances) {
  // Ring with stride 3 over n=8: the cycle is 0,3,6,1,4,7,2,5. A demand
  // 0 -> 3 is one hop on this ring.
  const auto g = topo::directed_ring(8, gbps(800), 3);
  const auto res =
      ring_concurrent_flow(g, Matching::from_pairs(8, {{0, 3}}), gbps(800));
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->theta, 1.0, 1e-12);
}

TEST(RingTheta, EmptyMatchingIsInfinite) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto res = ring_concurrent_flow(g, Matching(4), gbps(800));
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(std::isinf(res->theta));
  EXPECT_TRUE(res->flow.empty());
  EXPECT_EQ(res->flow.num_entries(), 0u);
}

TEST(RingTheta, NonRingReturnsNullopt) {
  const auto mesh = topo::full_mesh(4, gbps(800));
  EXPECT_FALSE(ring_concurrent_flow(mesh, Matching::rotation(4, 1), gbps(800)).has_value());
  const auto bidi = topo::bidirectional_ring(4, gbps(800));
  EXPECT_FALSE(ring_concurrent_flow(bidi, Matching::rotation(4, 1), gbps(800)).has_value());
}

TEST(RingTheta, FlowsRespectConservationOnRandomMatchings) {
  psd::Rng rng(1234);
  const int n = 16;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int trial = 0; trial < 20; ++trial) {
    const auto perm = rng.permutation(n);
    Matching m(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    if (m.active_pairs() == 0) continue;
    const auto res = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(res.has_value());
    EXPECT_GT(res->theta, 0.0);
    EXPECT_LE(res->theta, 1.0 + 1e-12);
    // Per-commodity flow forms a contiguous interval carrying θ.
    const auto pairs = m.pairs();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      double total_on_src_out = 0.0;
      for (topo::EdgeId e : g.out_edges(pairs[k].first)) {
        total_on_src_out += res->flow.at(k, e);
      }
      EXPECT_NEAR(total_on_src_out, res->theta, 1e-9);
    }
  }
}

}  // namespace
}  // namespace psd::flow
